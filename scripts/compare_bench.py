#!/usr/bin/env python3
"""Compare the two most recent ``BENCH_<date>.json`` records for regressions.

Stdlib-only, like ``check_doc_links.py``, so it can run anywhere the repo
checks out.  The script reads the tracked throughput/speedup fields
(:data:`TRACKED_FIELDS` -- dotted paths into the record) from an older and
a newer benchmark record and exits non-zero when any tracked field
regressed by more than :data:`REGRESSION_THRESHOLD` (20%).

It is wired into CI as an *informational* step (``continue-on-error``):
shared runners are noisy enough that a hard gate would flap, but the
red check is the prompt to look at the numbers before merging.

Comparisons only make sense between records of the same workload size, so
a smoke record is never compared against a full one (exit 0 with a note).
Fields missing from either record -- older records predate newer
measurements -- are skipped and reported, never treated as regressions.

Usage::

    python scripts/compare_bench.py                  # two newest in repo root
    python scripts/compare_bench.py --dir DIR        # two newest in DIR
    python scripts/compare_bench.py OLD.json NEW.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Dotted paths of the tracked higher-is-better fields.  Adding a metric to
#: the BENCH record is only "tracked" once it is listed here.
TRACKED_FIELDS = (
    "placement.plans_per_second",
    "scheduler_scaling.largest_speedup",
    "replay.server_slots_per_second",
    "sweep.speedup",
    "characterization.speedup",
    "streaming_ingest.vms_per_second",
    "streaming_ingest.samples_per_second",
    "scenario_matrix.vms_per_second",
)

#: Fractional drop that counts as a regression (new < old * (1 - this)).
REGRESSION_THRESHOLD = 0.20


def lookup(record: dict, dotted: str):
    """The value at *dotted* path, or ``None`` when any segment is absent."""
    node = record
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def bench_records(directory: Path):
    """``BENCH_*.json`` paths in *directory*, oldest first.

    The date is in the filename (``BENCH_<ISO-date>.json``), so plain
    filename order is chronological order.
    """
    return sorted(directory.glob("BENCH_*.json"))


def compare(old_path: Path, new_path: Path,
            threshold: float = REGRESSION_THRESHOLD) -> int:
    old = json.loads(old_path.read_text())
    new = json.loads(new_path.read_text())
    print(f"comparing {old_path.name} ({old.get('git_revision', '?')}) "
          f"-> {new_path.name} ({new.get('git_revision', '?')})")

    if bool(old.get("smoke")) != bool(new.get("smoke")):
        print("records measured different workload sizes "
              f"(smoke={old.get('smoke')} vs smoke={new.get('smoke')}); "
              "not comparable, skipping")
        return 0

    regressions = []
    for field in TRACKED_FIELDS:
        old_value = lookup(old, field)
        new_value = lookup(new, field)
        if old_value is None or new_value is None:
            missing = old_path.name if old_value is None else new_path.name
            print(f"  {field:44s} skipped (absent from {missing})")
            continue
        change = (new_value - old_value) / old_value if old_value else 0.0
        marker = ""
        if old_value and new_value < old_value * (1.0 - threshold):
            marker = "  << REGRESSION"
            regressions.append(field)
        print(f"  {field:44s} {old_value:12.2f} -> {new_value:12.2f} "
              f"({change:+7.1%}){marker}")

    if regressions:
        print(f"{len(regressions)} tracked field(s) regressed more than "
              f"{threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("no tracked field regressed more than "
          f"{threshold:.0%}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("records", nargs="*", type=Path,
                        help="explicit OLD.json NEW.json pair "
                             "(default: the two newest BENCH_*.json)")
    parser.add_argument("--dir", type=Path,
                        default=Path(__file__).resolve().parents[1],
                        help="directory scanned for BENCH_*.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    if args.records:
        if len(args.records) != 2:
            parser.error("pass exactly two records (OLD.json NEW.json) "
                         "or none")
        old_path, new_path = args.records
    else:
        found = bench_records(args.dir)
        if len(found) < 2:
            print(f"found {len(found)} BENCH_*.json record(s) in "
                  f"{args.dir}; need two to compare -- nothing to do")
            return 0
        old_path, new_path = found[-2], found[-1]
    return compare(old_path, new_path)


if __name__ == "__main__":
    raise SystemExit(main())
