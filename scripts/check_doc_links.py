#!/usr/bin/env python
"""Check that relative markdown links in the repo's docs resolve.

The docs cross-link aggressively (README -> docs/ -> examples/ -> tests),
and a renamed file silently strands those links.  This checker walks every
tracked ``*.md`` file, extracts the relative link targets, and fails if
any of them points at a path that does not exist.

Scope is deliberately narrow and stdlib-only so it can run anywhere the
repo checks out:

* only inline links ``[text](target)`` are checked;
* ``http(s)://``, ``mailto:``, and pure-anchor ``#...`` targets are
  skipped (no network, no heading parsing);
* fenced code blocks and inline code spans are stripped first, so code
  samples that merely *look* like links do not count;
* a ``target#anchor`` suffix is dropped before the existence check.

Run from anywhere: ``python scripts/check_doc_links.py``.  Exits 0 when
every link resolves, 1 otherwise (one line per broken link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories never scanned for markdown files.
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".ruff_cache",
             "node_modules", ".venv", "venv"}

_FENCE = re.compile(r"^(```|~~~)")
_INLINE_CODE = re.compile(r"`[^`]*`")
#: ``[text](target)`` with no nesting; images ``![alt](target)`` match too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:


def markdown_files(root: Path) -> List[Path]:
    """Every ``*.md`` under *root*, skipping vendored/cache directories."""
    found = []
    for path in sorted(root.rglob("*.md")):
        parts = set(path.relative_to(root).parts[:-1])
        if parts & SKIP_DIRS:
            continue
        found.append(path)
    return found


def iter_links(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for each inline link in *text*.

    Fenced code blocks and inline code spans are removed before matching.
    """
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(_INLINE_CODE.sub("", line)):
            yield lineno, match.group(1)


def broken_links(md_file: Path, root: Path = REPO_ROOT) -> List[str]:
    """Human-readable description of every unresolvable link in *md_file*."""
    problems = []
    for lineno, target in iter_links(md_file.read_text(encoding="utf-8")):
        if _EXTERNAL.match(target) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            rel = md_file.relative_to(root)
            problems.append(f"{rel}:{lineno}: broken link -> {target}")
    return problems


def main(root: Path = REPO_ROOT) -> int:
    files = markdown_files(root)
    problems = [p for md_file in files for p in broken_links(md_file, root)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
