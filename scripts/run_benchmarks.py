#!/usr/bin/env python3
"""Run the perf-tracking benchmarks and emit a machine-readable JSON record.

Writes ``BENCH_<date>.json`` (see ``--output-dir``) with the headline
performance numbers tracked PR over PR:

* placement throughput (plans/s) of the vectorized scheduler, plus the
  multi-size scaling curve (to 100k servers) of the incremental batched
  scheduler against the dense baseline, with per-size peak RSS and an
  explicit flag + factor whenever the dense rate is extrapolated from a
  timed prefix,
* replay throughput (observed server-slots/s) of the vectorized meter,
* policy-sweep wall-clock, serial vs. process pool -- the pool timed
  cold (worker spawn + imports) and warm (compute only) on one reused
  executor -- with bitwise equality checks against the serial walk,
* peak replay memory (tracemalloc bytes) for dense vs. chunked streaming
  replay, plus the process high-water RSS,
* trace-store numbers: per-worker sweep-task bytes (pickled trace vs.
  shared-memory handle) and mmap-backed streaming replay peak vs. the
  full in-RAM load.

The workloads are the same builders the ``benchmarks/`` suite uses
(:mod:`repro.simulator.synthetic`), so numbers are comparable with the
pytest benchmarks.  ``REPRO_BENCH_SMOKE=1`` (or ``--smoke``) shrinks the
workloads for shared CI runners; the JSON records which mode produced it.

Usage::

    python scripts/run_benchmarks.py [--output-dir DIR] [--smoke]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.scheduler import ClusterScheduler
from repro.simulator.replay import VectorizedViolationMeter

# Workloads AND measurement harnesses are shared with the benchmarks/
# suite via repro.simulator.synthetic / repro.simulator.benchmarking, so
# the JSON trajectory and the pytest benchmark numbers cannot silently
# diverge.
from repro.simulator.benchmarking import (
    bench_smoke_enabled,
    measure_characterization_throughput,
    measure_mmap_bounded_replay,
    measure_replay_memory,
    measure_scenario_matrix,
    measure_scheduler_scaling,
    measure_streaming_ingest,
    measure_sweep_serial_vs_pool,
    measure_sweep_task_footprint,
)
from repro.simulator.synthetic import (
    BENCH_CHUNK_SLOTS,
    BENCH_WINDOWS,
    SCALE_BENCH_CLUSTER,
    build_chunked_bench_state,
    build_placement_bench_plans,
    build_replay_scale_state,
    generate_store_bench_trace,
    generate_sweep_bench_trace,
    streaming_ingest_batch_vms,
    streaming_ingest_config,
)


def measure_placement(smoke: bool) -> dict:
    """Plans/s of the vectorized scheduler on the 200-server cluster."""
    plans = build_placement_bench_plans(smoke=smoke)
    scheduler = ClusterScheduler(SCALE_BENCH_CLUSTER, BENCH_WINDOWS)
    begin = time.perf_counter()
    for plan in plans:
        scheduler.place(plan)
    seconds = time.perf_counter() - begin
    return {
        "n_plans": len(plans),
        "n_servers": SCALE_BENCH_CLUSTER.server_count,
        "accepted": scheduler.accepted_count(),
        "seconds": seconds,
        "plans_per_second": len(plans) / seconds,
    }


def measure_scaling(smoke: bool) -> dict:
    """Scheduler scaling curve: incremental place_batch vs the dense baseline."""
    return measure_scheduler_scaling(smoke=smoke)


def measure_replay(smoke: bool) -> dict:
    """Observed server-slots/s of the vectorized violation meter."""
    servers, placed, n_slots = build_replay_scale_state(smoke=smoke)
    meter = VectorizedViolationMeter()
    meter.measure(servers, placed, 0, n_slots, 0.5)  # warm-up
    begin = time.perf_counter()
    stats = meter.measure(servers, placed, 0, n_slots, 0.5)
    seconds = time.perf_counter() - begin
    return {
        "n_vms": len(placed),
        "n_slots": n_slots,
        "observed_server_slots": stats.observed_server_slots,
        "seconds": seconds,
        "server_slots_per_second": stats.observed_server_slots / seconds,
    }


def measure_sweep(smoke: bool) -> dict:
    """Wall-clock of the standard-policy sweep, serial vs. process pool."""
    trace = generate_sweep_bench_trace(smoke=smoke)
    outcome = measure_sweep_serial_vs_pool(trace)
    results = outcome.pop("results")
    outcome["trace_slots"] = trace.n_slots
    evaluations = {}
    for name, evaluation in results.items():
        evaluations[name] = evaluation.to_dict()
    outcome["evaluations"] = evaluations
    return outcome


def measure_chunked_replay(smoke: bool) -> dict:
    """Peak replay memory: dense vs. chunked streaming on a multi-week state."""
    servers, placed, n_slots = build_chunked_bench_state(smoke=smoke)
    outcome = measure_replay_memory(servers, placed, n_slots, BENCH_CHUNK_SLOTS)
    outcome["n_vms"] = len(placed)
    outcome["n_slots"] = n_slots
    outcome["ru_maxrss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return outcome


def measure_trace_store(smoke: bool) -> dict:
    """Trace-store numbers: sweep-task bytes and mmap-bounded replay peaks."""
    trace = generate_store_bench_trace(smoke=smoke)
    outcome = measure_sweep_task_footprint(trace)
    with tempfile.TemporaryDirectory() as workdir:
        outcome["mmap_replay"] = measure_mmap_bounded_replay(trace, workdir)
    return outcome


def measure_streaming(smoke: bool) -> dict:
    """Bounded-memory ingest: streaming builder vs the eager from_trace path."""
    config = streaming_ingest_config(smoke=smoke)
    with tempfile.TemporaryDirectory() as workdir:
        outcome = measure_streaming_ingest(
            config, workdir, batch_vms=streaming_ingest_batch_vms(smoke=smoke))
    outcome["ru_maxrss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return outcome


def measure_scenarios(smoke: bool) -> dict:
    """Scenario-matrix wall-clock: the repro.scenarios registry end to end."""
    return measure_scenario_matrix(smoke=smoke)


def measure_characterization(smoke: bool) -> dict:
    """Section-2 suite wall-clock: columnar kernels vs the per-VM reference."""
    trace = generate_sweep_bench_trace(smoke=smoke, columnar=True)
    return measure_characterization_throughput(trace)


def measure_static_analysis() -> dict:
    """Invariant-linter counts: convention debt tracked alongside perf.

    ``active_findings`` must be 0 on a releasable tree (CI enforces it);
    ``suppressed_findings`` is the justified-violation debt whose trajectory
    the BENCH record makes visible PR over PR.
    """
    from repro.analysis import (
        AnalysisEngine,
        apply_baseline,
        default_rules,
        load_baseline,
    )

    root = Path(__file__).resolve().parents[1]
    findings = AnalysisEngine(default_rules()).analyze_paths(
        [root / "src" / "repro"], rel_root=root)
    baseline_path = root / "analysis_baseline.json"
    baseline = load_baseline(baseline_path) if baseline_path.exists() else {}
    result = apply_baseline(findings, baseline)
    by_rule: dict = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    return {
        "active_findings": len(result.active),
        "suppressed_findings": len(result.suppressed),
        "baseline_entries": len(baseline),
        "unused_baseline_entries": len(result.unused_entries),
        "findings_by_rule": dict(sorted(by_rule.items())),
    }


def git_revision() -> str:
    command = ["git", "rev-parse", "--short", "HEAD"]
    try:
        out = subprocess.run(
            command,
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parents[1],
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def smoke_requested(args: argparse.Namespace) -> bool:
    return args.smoke or bench_smoke_enabled()


def print_summary(record: dict) -> None:
    placement = record["placement"]
    replay = record["replay"]
    sweep = record["sweep"]
    chunked = record["chunked_replay"]
    dense_mb = chunked["dense_peak_bytes"] / 1e6
    chunked_mb = chunked["chunked_peak_bytes"] / 1e6
    print(f"  placement  {placement['plans_per_second']:12.0f} plans/s")
    scaling = record["scheduler_scaling"]
    # "~" marks a dense rate extrapolated from a timed prefix (the factor
    # is in the JSON as dense_extrapolation_factor) -- the incremental
    # rate and the speedup denominator, never a measured end-to-end dense
    # wall-clock at that size.
    points = ", ".join(
        f"{p['n_servers']}sv {p['incremental_plans_per_s']:.0f}/s "
        f"({'~' if p['dense_extrapolated'] else ''}{p['speedup']:.1f}x)"
        for p in scaling["curve"])
    print(f"  scaling    {points}")
    if any(p["dense_extrapolated"] for p in scaling["curve"]):
        print("             (~ = dense baseline extrapolated from a "
              "prefix; factor recorded in the JSON)")
    print(f"  replay     {replay['server_slots_per_second']:12.0f} server-slots/s")
    print(f"  sweep      serial {sweep['serial_seconds']:.2f}s", end="")
    print(f"  pool cold {sweep['pool_cold_seconds']:.2f}s", end="")
    print(f"  warm {sweep['pool_seconds']:.2f}s", end="")
    print(f"  ({sweep['workers']} workers, warm {sweep['speedup']:.2f}x, "
          f"cold {sweep['cold_speedup']:.2f}x)")
    print(f"  chunked    peak {chunked_mb:.1f} MB vs dense {dense_mb:.1f} MB", end="")
    print(f"  ({chunked['peak_reduction']:.1f}x reduction)")
    store = record["trace_store"]
    mmap_replay = store["mmap_replay"]
    pickled_mb = store["pickled_task_bytes"] / 1e6
    shared_kb = store["shared_task_bytes"] / 1e3
    print(f"  sweep task {pickled_mb:10.1f} MB pickled vs {shared_kb:.1f} KB shared", end="")
    print(f"  ({store['footprint_reduction']:.0f}x smaller per worker)")
    mmap_mb = mmap_replay["mmap_peak_bytes"] / 1e6
    budget_mb = mmap_replay["budget_bytes"] / 1e6
    buffer_mb = mmap_replay["buffer_nbytes"] / 1e6
    print(f"  mmap       peak {mmap_mb:.1f} MB (budget {budget_mb:.1f} MB", end="")
    print(f", buffer {buffer_mb:.1f} MB, {mmap_replay['peak_reduction']:.1f}x vs in-RAM)")
    ingest = record["streaming_ingest"]
    stream_mb = ingest["stream_peak_bytes"] / 1e6
    eager_mb = ingest["eager_peak_bytes"] / 1e6
    print(f"  ingest     peak {stream_mb:.1f} MB streaming vs {eager_mb:.1f} MB"
          f" eager ({ingest['peak_reduction']:.1f}x, "
          f"{ingest['vms_per_second']:.0f} VMs/s, bitwise identical)")
    characterization = record["characterization"]
    print(f"  character. columnar {characterization['columnar_seconds']:.2f}s"
          f" vs reference {characterization['reference_seconds']:.2f}s", end="")
    print(f"  ({characterization['speedup']:.1f}x, bitwise identical)")
    matrix = record["scenario_matrix"]
    print(f"  scenarios  {matrix['scenarios']} scenarios in "
          f"{matrix['total_seconds']:.2f}s "
          f"({matrix['vms_per_second']:.0f} VMs/s, invariants ok)")
    analysis = record["static_analysis"]
    print(f"  analysis   {analysis['active_findings']} active finding(s), "
          f"{analysis['suppressed_findings']} baselined "
          f"({analysis['baseline_entries']} entries, "
          f"{analysis['unused_baseline_entries']} unused)")


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory for the BENCH_<date>.json record (default: cwd)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink workloads for CI (REPRO_BENCH_SMOKE=1 implies this)",
    )
    args = parser.parse_args(argv)
    smoke = smoke_requested(args)

    print(f"running perf benchmarks (smoke={smoke}) ...")
    record = {
        "date": datetime.date.today().isoformat(),
        "git_revision": git_revision(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "smoke": smoke,
        "placement": measure_placement(smoke),
        "scheduler_scaling": measure_scaling(smoke),
        "replay": measure_replay(smoke),
        "sweep": measure_sweep(smoke),
        "chunked_replay": measure_chunked_replay(smoke),
        "trace_store": measure_trace_store(smoke),
        "streaming_ingest": measure_streaming(smoke),
        "characterization": measure_characterization(smoke),
        "scenario_matrix": measure_scenarios(smoke),
        "static_analysis": measure_static_analysis(),
    }
    print_summary(record)

    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    output_path = output_dir / f"BENCH_{record['date']}.json"
    output_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
