"""Time-window demand formulation (Section 3.3, Equations 1-4).

Coach divides the day into equal time windows and plans each VM's resources
from its predicted per-window utilization:

* For the non-fungible memory *space*, the guaranteed (PA-backed) portion is
  sized to the maximum PX-percentile across all windows (Eq. 1) so it never
  has to move at runtime; the per-window oversubscribed (VA-backed) demand is
  whatever the predicted maximum exceeds the PA portion by (Eq. 2).
* At the server level, the guaranteed pool is the sum of the VMs' PA demands
  (Eq. 3) and the oversubscribed pool is the *multiplexed* maximum over
  windows of the summed VA demands (Eq. 4) -- this is where complementary
  temporal patterns turn into savings.
* Fungible resources (CPU, network, SSD bandwidth) are planned directly from
  the per-window predicted demand, since the hypervisor can reassign them on
  the fly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource, is_fungible
from repro.prediction.buckets import round_memory_up
from repro.prediction.utilization_model import WindowUtilizationPrediction
from repro.trace.timeseries import TimeWindowConfig


@dataclass
class ResourcePlan:
    """Planned demand for one resource of one VM, in absolute units."""

    resource: Resource
    #: The full allocation the customer requested.
    requested: float
    #: Guaranteed portion, static across windows (Eq. 1 for memory).
    guaranteed: float
    #: Per-window total demand (predicted maximum utilization x allocation).
    window_demand: np.ndarray
    #: Per-window oversubscribed demand (Eq. 2); zero for fully guaranteed plans.
    window_oversubscribed: np.ndarray

    @property
    def peak_demand(self) -> float:
        return float(self.window_demand.max())

    @property
    def oversubscription_savings(self) -> float:
        """Resources not guaranteed compared to the requested allocation."""
        return max(0.0, self.requested - self.guaranteed)

    def validate(self) -> None:
        if self.guaranteed < -1e-9 or self.requested < -1e-9:
            raise ValueError("negative resource amounts")
        if self.guaranteed > self.requested + 1e-6:
            raise ValueError("guaranteed portion exceeds the requested allocation")
        if np.any(self.window_demand < -1e-9):
            raise ValueError("negative window demand")
        if np.any(self.window_oversubscribed < -1e-9):
            raise ValueError("negative oversubscribed demand")


@dataclass
class VMResourcePlan:
    """Per-resource plans for one VM under a given policy."""

    vm_id: str
    windows: TimeWindowConfig
    plans: Dict[Resource, ResourcePlan] = field(default_factory=dict)
    oversubscribed: bool = True

    def plan(self, resource: Resource) -> ResourcePlan:
        return self.plans[resource]

    @property
    def guaranteed_memory_gb(self) -> float:
        return self.plans[Resource.MEMORY].guaranteed

    @property
    def oversubscribed_memory_gb(self) -> float:
        plan = self.plans[Resource.MEMORY]
        return max(0.0, plan.requested - plan.guaranteed)

    def total_savings(self) -> Dict[Resource, float]:
        return {r: plan.oversubscription_savings for r, plan in self.plans.items()}

    def validate(self) -> None:
        for plan in self.plans.values():
            plan.validate()


# --------------------------------------------------------------------------- #
# Per-VM demand computation
# --------------------------------------------------------------------------- #
def plan_resource(
    resource: Resource,
    allocated: float,
    prediction: WindowUtilizationPrediction,
    oversubscribe: bool = True,
    memory_granularity_gb: float = 1.0,
) -> ResourcePlan:
    """Build the per-window plan for one resource of one VM.

    ``allocated`` is the requested amount in absolute units.  When
    ``oversubscribe`` is false (no history, opt-out, or the None policy), the
    guaranteed portion is the full allocation and every window demands it.
    """
    n_windows = prediction.windows.windows_per_day
    if not oversubscribe:
        full = np.full(n_windows, float(allocated))
        return ResourcePlan(resource, float(allocated), float(allocated), full,
                            np.zeros(n_windows))

    maximum = np.clip(prediction.maximum[resource], 0.0, 1.0) * allocated
    percentile = np.clip(prediction.percentile[resource], 0.0, 1.0) * allocated

    if is_fungible(resource):
        # Fungible resources are planned directly from per-window demand; the
        # "guaranteed" share is the demand the VM needs essentially always
        # (its smallest per-window percentile).
        guaranteed = float(percentile.min())
        window_demand = np.minimum(maximum, allocated)
        oversub = np.maximum(0.0, window_demand - guaranteed)
        return ResourcePlan(resource, float(allocated), guaranteed, window_demand, oversub)

    # Non-fungible memory space: Eq. 1 and Eq. 2.
    pa_demand = float(percentile.max())
    if resource is Resource.MEMORY:
        pa_demand = round_memory_up(pa_demand, memory_granularity_gb)
    pa_demand = min(pa_demand, float(allocated))
    window_demand = np.minimum(maximum, allocated)
    va_demand = np.maximum(0.0, window_demand - pa_demand)
    return ResourcePlan(resource, float(allocated), pa_demand, window_demand, va_demand)


def plan_vm(
    vm_id: str,
    allocation: Dict[Resource, float],
    prediction: WindowUtilizationPrediction,
    oversubscribe: bool = True,
    memory_granularity_gb: float = 1.0,
) -> VMResourcePlan:
    """Build the full per-resource plan for one VM."""
    effective = oversubscribe and prediction.oversubscribable
    plans = {
        resource: plan_resource(resource, allocation[resource], prediction,
                                effective, memory_granularity_gb)
        for resource in ALL_RESOURCES
    }
    plan = VMResourcePlan(vm_id=vm_id, windows=prediction.windows, plans=plans,
                          oversubscribed=effective)
    plan.validate()
    return plan


# --------------------------------------------------------------------------- #
# Server-level aggregation (Eq. 3 and Eq. 4)
# --------------------------------------------------------------------------- #
def guaranteed_memory(plans: Iterable[VMResourcePlan]) -> float:
    """Eq. 3: the server's guaranteed (PA-backed) memory is the sum of PA demands."""
    return float(sum(p.plans[Resource.MEMORY].guaranteed for p in plans))


def multiplexed_oversubscribed_memory(plans: Sequence[VMResourcePlan]) -> float:
    """Eq. 4: the oversubscribed pool is the max over windows of summed VA demands.

    This multiplexes complementary temporal patterns: VMs whose VA demand
    peaks in different windows share the same backing memory.
    """
    plans = list(plans)
    if not plans:
        return 0.0
    n_windows = plans[0].windows.windows_per_day
    total = np.zeros(n_windows)
    for plan in plans:
        oversub = plan.plans[Resource.MEMORY].window_oversubscribed
        if oversub.shape[0] != n_windows:
            raise ValueError("all plans must use the same time window configuration")
        total += oversub
    return float(total.max())


def unmultiplexed_oversubscribed_memory(plans: Iterable[VMResourcePlan]) -> float:
    """The naive alternative to Eq. 4: allocate the sum of each VM's peak VA demand.

    Used in ablations to quantify how much the multiplexing step saves.
    """
    return float(sum(p.plans[Resource.MEMORY].window_oversubscribed.max()
                     for p in plans))


def server_memory_backing(plans: Sequence[VMResourcePlan]) -> Dict[str, float]:
    """Total PA and VA backing a server must reserve for a set of plans."""
    return {
        "pa_backing_gb": guaranteed_memory(plans),
        "va_backing_gb": multiplexed_oversubscribed_memory(plans),
    }


def window_demand_matrix(plans: Sequence[VMResourcePlan], resource: Resource) -> np.ndarray:
    """Stack of per-window demands, shape ``(n_plans, n_windows)``."""
    plans = list(plans)
    if not plans:
        return np.zeros((0, 0))
    return np.vstack([p.plans[resource].window_demand for p in plans])


def scheduling_vector(plan: VMResourcePlan, resource: Resource) -> np.ndarray:
    """The vector the scheduler checks for one resource of one plan.

    Per Section 3.3 the scheduler considers the number of windows plus one
    extra dimension for the static guaranteed portion of non-fungible
    resources.  For fungible resources the extra dimension is zero (their
    guaranteed share is already inside the window demands).
    """
    resource_plan = plan.plans[resource]
    extra = 0.0 if is_fungible(resource) else resource_plan.guaranteed
    return np.concatenate([resource_plan.window_demand, [extra]])
