"""Oversubscription policies evaluated in the paper (Section 4.3, Figure 20).

* ``NONE`` -- no oversubscription: every VM gets its full request.
* ``SINGLE`` -- a single static oversubscription rate per VM (one 24-hour
  window), representative of the state of the art (Resource Central et al.).
* ``COACH`` -- Coach's default: six 4-hour windows and the P95 prediction
  percentile.
* ``AGGR_COACH`` -- an aggressive variant using the P50 percentile.

A policy bundles the time-window configuration, the prediction percentile,
and whether oversubscription is enabled at all; the cluster manager uses it
to instantiate the right predictor and to turn predictions into plans.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict

from repro.trace.timeseries import TimeWindowConfig


class PolicyKind(str, Enum):
    NONE = "none"
    SINGLE = "single"
    COACH = "coach"
    AGGR_COACH = "aggr-coach"


@dataclass(frozen=True)
class PolicyConfig:
    """Everything the cluster manager needs to apply an oversubscription policy."""

    kind: PolicyKind
    #: Windows per day used for prediction and scheduling.
    windows: TimeWindowConfig
    #: Prediction percentile used to size the guaranteed portion.
    percentile: float
    #: Whether any oversubscription happens at all.
    oversubscribe: bool
    #: Initial fraction of the VA portion backed with physical memory.
    va_backing_fraction: float = 0.7
    #: Memory allocation granularity in GB.
    memory_granularity_gb: float = 1.0
    #: Minimum number of historical VMs required to oversubscribe a VM.
    min_history_vms: int = 1

    @property
    def name(self) -> str:
        return self.kind.value

    def with_percentile(self, percentile: float) -> "PolicyConfig":
        return replace(self, percentile=percentile)

    def with_windows(self, window_hours: int) -> "PolicyConfig":
        return replace(self, windows=TimeWindowConfig(window_hours))


#: Coach's default configuration (Section 3.3): six 4-hour windows, P95.
COACH_POLICY = PolicyConfig(
    kind=PolicyKind.COACH,
    windows=TimeWindowConfig(4),
    percentile=95.0,
    oversubscribe=True,
)

#: Aggressive Coach: P50 percentile, otherwise identical (Figure 20).
AGGR_COACH_POLICY = PolicyConfig(
    kind=PolicyKind.AGGR_COACH,
    windows=TimeWindowConfig(4),
    percentile=50.0,
    oversubscribe=True,
)

#: Single static rate per VM: one 24-hour window (state-of-the-art baseline).
SINGLE_RATE_POLICY = PolicyConfig(
    kind=PolicyKind.SINGLE,
    windows=TimeWindowConfig(24),
    percentile=95.0,
    oversubscribe=True,
)

#: No oversubscription at all.
NO_OVERSUBSCRIPTION_POLICY = PolicyConfig(
    kind=PolicyKind.NONE,
    windows=TimeWindowConfig(24),
    percentile=100.0,
    oversubscribe=False,
)

#: The four policies of Figure 20, in presentation order.
STANDARD_POLICIES: Dict[str, PolicyConfig] = {
    "none": NO_OVERSUBSCRIPTION_POLICY,
    "single": SINGLE_RATE_POLICY,
    "coach": COACH_POLICY,
    "aggr-coach": AGGR_COACH_POLICY,
}


def policy_by_name(name: str) -> PolicyConfig:
    """Look up one of the standard policies by name."""
    try:
        return STANDARD_POLICIES[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown policy {name!r}; expected one of {sorted(STANDARD_POLICIES)}"
        ) from exc
