"""CoachVM: the general-purpose oversubscribed VM type (Section 3.2).

A CoachVM partitions every resource into a *guaranteed* portion (always
allocated, PA-backed for memory) and an *oversubscribed* portion (allocated
on demand from a shared pool, VA-backed for memory and exposed to the guest
as a zero-core NUMA node so unmodified guests deprioritise it).  The class
below carries that partition plus the runtime state the server agent needs:
how much of the VA portion is currently backed, how much memory is cold and
trimmable, and the VM's current demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.windows import VMResourcePlan
from repro.trace.vm import VMConfig, VMRecord


@dataclass
class MemorySplit:
    """The PA/VA split of one CoachVM's memory space, in GB."""

    pa_gb: float
    va_gb: float
    #: How much physical memory currently backs the VA portion.
    va_backed_gb: float = 0.0

    @property
    def total_gb(self) -> float:
        return self.pa_gb + self.va_gb

    @property
    def va_unbacked_gb(self) -> float:
        return max(0.0, self.va_gb - self.va_backed_gb)

    def validate(self) -> None:
        if self.pa_gb < -1e-9 or self.va_gb < -1e-9:
            raise ValueError("negative memory split")
        if self.va_backed_gb > self.va_gb + 1e-6:
            raise ValueError("VA backing exceeds the VA portion")


@dataclass
class CoachVM:
    """A VM admitted by Coach, with its resource plan and runtime state."""

    vm: VMRecord
    plan: VMResourcePlan
    memory: MemorySplit
    #: Per-resource guaranteed portions (absolute units).
    guaranteed: Dict[Resource, float] = field(default_factory=dict)
    #: Server hosting this VM (set by the scheduler).
    server_id: Optional[str] = None
    #: Amount of memory the guest currently holds that is cold (trimmable), GB.
    cold_memory_gb: float = 0.0

    def __post_init__(self) -> None:
        if not self.guaranteed:
            self.guaranteed = {r: self.plan.plans[r].guaranteed for r in ALL_RESOURCES}
        self.memory.validate()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_plan(cls, vm: VMRecord, plan: VMResourcePlan,
                  initial_va_backing_fraction: float = 1.0) -> "CoachVM":
        """Build a CoachVM from its resource plan.

        The VA portion is the difference between the requested memory and the
        guaranteed (PA) portion; initially it is backed by
        ``initial_va_backing_fraction`` of its size (the paper backs ~70% in
        the Figure 15 study, and the multiplexed pool at runtime).
        """
        memory_plan = plan.plans[Resource.MEMORY]
        pa_gb = memory_plan.guaranteed
        va_gb = max(0.0, memory_plan.requested - pa_gb)
        split = MemorySplit(pa_gb=pa_gb, va_gb=va_gb,
                            va_backed_gb=va_gb * float(initial_va_backing_fraction))
        return cls(vm=vm, plan=plan, memory=split)

    @classmethod
    def fully_guaranteed(cls, vm: VMRecord, plan: VMResourcePlan) -> "CoachVM":
        """A general-purpose (non-oversubscribed) VM expressed as a CoachVM."""
        memory_plan = plan.plans[Resource.MEMORY]
        split = MemorySplit(pa_gb=memory_plan.requested, va_gb=0.0, va_backed_gb=0.0)
        return cls(vm=vm, plan=plan, memory=split)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def vm_id(self) -> str:
        return self.vm.vm_id

    @property
    def config(self) -> VMConfig:
        return self.vm.config

    @property
    def is_oversubscribed(self) -> bool:
        return self.plan.oversubscribed and self.memory.va_gb > 0.0

    def requested(self, resource: Resource) -> float:
        return self.plan.plans[resource].requested

    def oversubscribed_portion(self, resource: Resource) -> float:
        return max(0.0, self.requested(resource) - self.guaranteed.get(resource, 0.0))

    def oversubscription_rate(self, resource: Resource) -> float:
        """Fraction of the requested allocation that is oversubscribed."""
        requested = self.requested(resource)
        if requested <= 0:
            return 0.0
        return self.oversubscribed_portion(resource) / requested

    # ------------------------------------------------------------------ #
    # Runtime memory accounting
    # ------------------------------------------------------------------ #
    def memory_demand_gb(self, slot: int) -> float:
        """The VM's actual memory demand at a trace slot (absolute GB)."""
        return self.vm.demand_at(Resource.MEMORY, slot)

    def memory_pressure_gb(self, demand_gb: float) -> float:
        """Demand that spills beyond the PA portion into VA-backed memory."""
        return max(0.0, demand_gb - self.memory.pa_gb)

    def unbacked_demand_gb(self, demand_gb: float) -> float:
        """Demand that currently has no physical backing (would page)."""
        spill = self.memory_pressure_gb(demand_gb)
        return max(0.0, spill - self.memory.va_backed_gb)

    def update_cold_memory(self, demand_gb: float) -> None:
        """Refresh the cold (trimmable) memory estimate.

        Memory the guest holds but has not touched recently is assumed cold;
        we approximate it as the backed memory beyond current demand.
        """
        backed = self.memory.pa_gb + self.memory.va_backed_gb
        self.cold_memory_gb = max(0.0, backed - demand_gb)

    def trim(self, amount_gb: float) -> float:
        """Trim cold VA-backed memory, returning how much was actually freed."""
        trimmable = min(amount_gb, self.cold_memory_gb, self.memory.va_backed_gb)
        if trimmable <= 0:
            return 0.0
        self.memory.va_backed_gb -= trimmable
        self.cold_memory_gb -= trimmable
        return trimmable

    def back_va(self, amount_gb: float) -> float:
        """Add physical backing to the VA portion, returning the amount applied."""
        addable = min(amount_gb, self.memory.va_unbacked_gb)
        if addable <= 0:
            return 0.0
        self.memory.va_backed_gb += addable
        return addable

    def __repr__(self) -> str:
        return (
            f"CoachVM({self.vm_id}, {self.config.name}, PA={self.memory.pa_gb:.1f}GB, "
            f"VA={self.memory.va_gb:.1f}GB, backed={self.memory.va_backed_gb:.1f}GB)"
        )
