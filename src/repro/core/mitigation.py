"""Contention mitigation policies and engine (Section 3.4, Figure 21).

Mitigations escalate from cheap and local to expensive and global:

1. **Trim** -- write cold VA-backed pages to the backing store to free
   physical memory (measured trim bandwidth ~1.1 GB/s).
2. **Extend** -- grow the oversubscribed pool with unallocated server memory
   (~15.7 GB/s, no cold data has to be written).
3. **Migrate** -- live-migrate a VM off the server; the most expensive option
   because cold memory must be paged in and copied first.

Each step can be triggered *reactively* (after the monitoring component
detects contention) or *proactively* (when the prediction component forecasts
it).  The policy names match the Figure 21 legend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Protocol

#: Bandwidths measured in Section 4.5.
TRIM_BANDWIDTH_GBPS = 1.1
EXTEND_BANDWIDTH_GBPS = 15.7
#: Live-migration effective bandwidth (network bound).
MIGRATION_BANDWIDTH_GBPS = 3.0


class MitigationAction(str, Enum):
    TRIM = "trim"
    EXTEND = "extend"
    MIGRATE = "migrate"


class TriggerMode(str, Enum):
    REACTIVE = "reactive"
    PROACTIVE = "proactive"


@dataclass(frozen=True)
class MitigationPolicy:
    """Which mitigations are allowed and how they are triggered."""

    name: str
    allow_trim: bool = False
    allow_extend: bool = False
    allow_migrate: bool = False
    mode: TriggerMode = TriggerMode.REACTIVE

    @property
    def proactive(self) -> bool:
        return self.mode is TriggerMode.PROACTIVE

    @property
    def enabled(self) -> bool:
        return self.allow_trim or self.allow_extend or self.allow_migrate


def _policy(name: str, trim: bool, extend: bool, migrate: bool,
            mode: TriggerMode) -> MitigationPolicy:
    return MitigationPolicy(name, trim, extend, migrate, mode)


#: The seven policies compared in Figure 21.
MITIGATION_POLICIES: Dict[str, MitigationPolicy] = {
    "none": MitigationPolicy("none"),
    "trim-reactive": _policy("trim-reactive", True, False, False, TriggerMode.REACTIVE),
    "trim-proactive": _policy("trim-proactive", True, False, False, TriggerMode.PROACTIVE),
    "extend-reactive": _policy("extend-reactive", True, True, False, TriggerMode.REACTIVE),
    "extend-proactive": _policy("extend-proactive", True, True, False, TriggerMode.PROACTIVE),
    "migrate-reactive": _policy("migrate-reactive", True, False, True, TriggerMode.REACTIVE),
    "migrate-proactive": _policy("migrate-proactive", True, False, True, TriggerMode.PROACTIVE),
}


def mitigation_policy(name: str) -> MitigationPolicy:
    try:
        return MITIGATION_POLICIES[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown mitigation policy {name!r}; "
                       f"expected one of {sorted(MITIGATION_POLICIES)}") from exc


@dataclass
class MitigationResult:
    """What one mitigation cycle accomplished."""

    actions: List[MitigationAction] = field(default_factory=list)
    trimmed_gb: float = 0.0
    extended_gb: float = 0.0
    migrated_vm: Optional[str] = None
    freed_gb: float = 0.0

    def merge(self, other: "MitigationResult") -> "MitigationResult":
        return MitigationResult(
            actions=self.actions + other.actions,
            trimmed_gb=self.trimmed_gb + other.trimmed_gb,
            extended_gb=self.extended_gb + other.extended_gb,
            migrated_vm=other.migrated_vm or self.migrated_vm,
            freed_gb=self.freed_gb + other.freed_gb,
        )


class MemoryManager(Protocol):
    """The subset of the server memory model the mitigation engine drives.

    Implemented by :class:`repro.simulator.memory.ServerMemoryModel`.
    """

    def oversub_shortfall_gb(self) -> float: ...

    def trimmable_gb(self) -> float: ...

    def trim_cold_memory(self, amount_gb: float) -> float: ...

    def unallocated_gb(self) -> float: ...

    def extend_pool(self, amount_gb: float) -> float: ...

    def migration_candidates(self) -> List[str]: ...

    def start_migration(self, vm_id: str) -> float: ...


class MitigationEngine:
    """Executes a mitigation policy against a server memory model."""

    def __init__(self, policy: MitigationPolicy):
        self.policy = policy
        self.history: List[MitigationResult] = []

    def mitigate(self, memory: MemoryManager, dt_seconds: float,
                 needed_gb: Optional[float] = None) -> MitigationResult:
        """Run one mitigation cycle trying to free *needed_gb* of memory.

        The amount actually freed is limited by the per-action bandwidths and
        the time available in this cycle (*dt_seconds*).
        """
        result = MitigationResult()
        if not self.policy.enabled:
            self.history.append(result)
            return result

        target = memory.oversub_shortfall_gb() if needed_gb is None else float(needed_gb)
        if target <= 1e-9:
            self.history.append(result)
            return result

        remaining = target

        if self.policy.allow_trim and remaining > 1e-9:
            budget = TRIM_BANDWIDTH_GBPS * dt_seconds
            amount = min(remaining, memory.trimmable_gb(), budget)
            if amount > 1e-9:
                freed = memory.trim_cold_memory(amount)
                if freed > 0:
                    result.actions.append(MitigationAction.TRIM)
                    result.trimmed_gb = freed
                    result.freed_gb += freed
                    remaining -= freed

        if self.policy.allow_extend and remaining > 1e-9:
            budget = EXTEND_BANDWIDTH_GBPS * dt_seconds
            amount = min(remaining, memory.unallocated_gb(), budget)
            if amount > 1e-9:
                added = memory.extend_pool(amount)
                if added > 0:
                    result.actions.append(MitigationAction.EXTEND)
                    result.extended_gb = added
                    result.freed_gb += added
                    remaining -= added

        if self.policy.allow_migrate and remaining > 1e-9:
            candidates = memory.migration_candidates()
            if candidates:
                vm_id = candidates[0]
                memory.start_migration(vm_id)
                result.actions.append(MitigationAction.MIGRATE)
                result.migrated_vm = vm_id

        self.history.append(result)
        return result

    def total_trimmed_gb(self) -> float:
        return sum(r.trimmed_gb for r in self.history)

    def total_extended_gb(self) -> float:
        return sum(r.extended_gb for r in self.history)

    def migrations(self) -> List[str]:
        return [r.migrated_vm for r in self.history if r.migrated_vm]
