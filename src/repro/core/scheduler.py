"""Cluster scheduler: time-window-aware vector bin packing (Section 3.3).

Traditional VM schedulers check a single demand vector against the free
capacity of each server.  Coach extends the vector with one entry per time
window (plus one for the static guaranteed portion of non-fungible
resources), so VMs with complementary temporal patterns can share the same
oversubscribed capacity.

Two admission checks are provided:

* ``fits_vector_check`` -- the paper's formulation: per-window summed demand
  and the summed PA portions must each fit the server's capacity.
* ``fits_backing_check`` -- the physically conservative variant: the PA pool
  plus the multiplexed VA pool (Eq. 3 + Eq. 4) must fit.  This is the default
  because it guarantees the server never commits more physical memory than it
  has.

Matrix-form bookkeeping
-----------------------

Scheduling-time state lives in a :class:`ClusterLedger` owned by the
:class:`ClusterScheduler`, not in per-server dictionaries:

* ``demand`` -- one ``(n_servers, n_windows)`` committed-demand matrix per
  resource, stored as a single ``(n_resources, n_servers, n_windows)`` array;
* ``pa_memory`` -- an ``(n_servers,)`` vector of committed guaranteed (PA)
  memory;
* ``va_demand`` -- an ``(n_servers, n_windows)`` matrix of committed
  oversubscribed (VA) demand.

``ClusterScheduler.place`` evaluates both admission checks and the best-fit
packing score for *every server at once* with a handful of broadcasted numpy
operations, instead of looping over servers and re-running per-resource
checks.  ``commit``/``release`` are row updates.  The arithmetic is the same
as the per-server formulation, so placement decisions are identical to the
reference loop (see :class:`ReferenceLoopScheduler`, kept for differential
testing and benchmarking); only the evaluation order changes, turning the
per-VM placement cost from O(servers x resources x windows) Python iterations
into a few dense matrix operations.

:class:`ServerAccount` remains the public per-server API, but is now a thin
view over one ledger row; accounts constructed standalone get a private
single-row ledger, so existing callers and tests keep working unchanged.

Incremental score caching and the summation-order contract
----------------------------------------------------------

``place()`` no longer pays a full ``(n_resources, n_servers, n_windows)``
pass per plan.  The ledger maintains per-``(resource, server)`` caches --
``demand_sum``/``demand_peak`` plus the VA peak ``va_peak`` -- refreshed in
O(n_windows) whenever a row mutates.  The caches are *recomputed from the
mutated row*, never incremented, so they are bitwise-equal to a fresh
full-matrix reduction by construction (no drift to test away; the churn
differential suite pins this anyway).

The summation-order contract: the dense score of a server is
``sum_r[(mean_w committed + plan demand) / capacity] / positive_count``,
where the window mean and the resource sum each reduce a C-contiguous axis
in index order.  Gathering a *subset* of rows (``demand[:, rows, :]``)
yields the same contiguous per-row layout, so re-scoring only candidate
rows reproduces the full pass bitwise.  The cached sums cannot reproduce
that order (they pre-round ``sum_w`` before the plan term is added), so
:meth:`ClusterLedger.best_fit_row` only uses them to *screen*: an exact
interval argument (IEEE-754 addition is monotone, and the cached peaks are
exact row maxima) classifies every server as surely-fitting, surely-failing
or uncertain, and a documented tolerance band over the approximate scores
bounds which rows can possibly win.  The shortlisted rows are then
re-checked and re-scored with the exact dense arithmetic, which preserves
bitwise-identical tie-breaking; whenever exactness cannot be guaranteed
(degenerate capacities, or a band covering most of the fleet) the ledger
falls back to the dense path wholesale.  ``ClusterScheduler.place_batch``
amortizes the per-plan preprocessing across an arrival batch on top of the
same row-level machinery, with decisions identical to sequential ``place``.

The tiered candidate index
--------------------------

The screened path above still touches every server per placement (a few
O(n_servers) vector ops).  To make placement cost sublinear in fleet size
the ledger additionally maintains a *tiered candidate index*:

* used rows are bucketed into **score bands** of width :data:`_BAND_WIDTH`
  over their cached ``score_base`` (``_row_band`` / ``_band_members``);
* empty rows sit in one **min-heap per capacity kind**
  (``_empty_heaps``), so the globally lowest-index empty row of each kind
  -- the only empty row that can survive the first-max tie-break -- is a
  peek away.

Within one capacity kind the approximate score is monotone in
``score_base``, so a band has a cheap upper bound on the approximate score
of every row it contains.  :meth:`ClusterLedger.best_fit_row` descends
bands in decreasing upper-bound order, stops as soon as the remaining
bands provably sit below the SCORE_TOLERANCE frontier of the best
surely-fitting row, and hands the surviving shortlist to the same exact
gathered re-verify as the screened path.  Whenever the scan cannot stay
sublinear (band occupancy, no fitting row found yet, degenerate
capacities) it falls back to the screened path, which can in turn fall
back to the dense path -- each link of the chain is individually exact, so
the decision is bitwise-identical no matter where the chain stops.  The
index itself is only ever written inside the sanctioned mutators
(REP007), exactly like the row caches (REP006): ``_refresh_row_caches``
moves the touched row between bands/heaps in the same call that refreshes
its caches, and stale heap entries are popped eagerly by the mutator so
the read path never mutates the index.

Batched admission commits *provably independent runs* with one vectorized
multi-row scatter (:meth:`ClusterLedger.commit_rows`):
``ClusterScheduler.place_batch`` evaluates consecutive plans against the
ledger state frozen at the start of the current run, and keeps extending
the run while each accepted plan (a) chooses a row no earlier run member
chose, and (b) cannot be overtaken by any earlier member's post-commit
score even under worst-case rounding (rejections are always safe: commits
only add demand, and IEEE-754 addition is monotone, so a plan rejected
against the stale state is also rejected against the true state).  The
first plan that fails either proof ends the run: the accumulated members
are scatter-committed, and the plan re-evaluates against the true state as
the start of the next run.  Every row receives at most one commit per
scatter, so the scatter is elementwise the same additions as sequential
``commit_row`` calls, and the caches refresh per row afterwards -- the
decision sequence, including rejection ordering, stays bitwise-equal to
looped ``place``.
"""

# repro: hot-path  -- REP003: placement evaluates every server per VM; the
# ledger matrices are updated by row, never rebuilt or copied per plan.

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource, ResourceVector
from repro.core.windows import VMResourcePlan
from repro.trace.hardware import ClusterConfig, ServerConfig
from repro.trace.timeseries import TimeWindowConfig
from repro.trace.vm import AllocationClass

#: Tolerance used by the admission checks (matches the seed implementation).
FIT_EPSILON = 1e-6
#: Residues at or below this magnitude after a release are snapped to zero so
#: repeated commit/release churn cannot accumulate float drift.
RESIDUE_EPSILON = 1e-9
#: The screened best-fit path scores candidates approximately from the cached
#: row sums, then re-scores every row within this band of the best
#: surely-fitting score with the exact dense arithmetic.  For servers a plan
#: fits, the approximation error is ~1e-13 (each per-resource ratio is at most
#: ~2 given the capacity floor below, across tens of 2^-53 rounding steps), so
#: the exact winner -- and every row tied with it -- always lands in the band.
SCORE_TOLERANCE = 1e-9
#: The SCORE_TOLERANCE error bound assumes positive capacities of at least
#: this size; degenerate configs below it use the dense path wholesale.
_CAPACITY_FLOOR = 1e-3
#: Minimum candidate-set size at which the screened path abandons the
#: shortlist and re-runs the dense evaluation (e.g. an empty cluster, where
#: every approximate score ties inside the band).
_DENSE_FALLBACK_MIN = 32
#: Width of one ``score_base`` band in the tiered candidate index.  Scores
#: are per-resource committed fractions summed over <= n_resources terms, so
#: bases live in roughly [0, n_resources] and the band count stays small.
_BAND_WIDTH = 1.0 / 64.0
#: Slack added to a band's upper edge before bounding its members'
#: approximate scores.  It swamps both the ``int(score / width)`` rounding at
#: the edge (~1e-15 at these magnitudes) and the last-ulp difference between
#: the per-kind GEMV and the gathered per-row GEMV, while staying far below
#: :data:`SCORE_TOLERANCE`, so the bound is safe without widening the band
#: frontier.
_BAND_EDGE_SLACK = 1e-9
#: Sentinel returned by the tiered scan when band occupancy makes a
#: sublinear exact answer uncertain; the caller falls back to the screened
#: O(n_servers) path (which may itself fall back to the dense path).
_TIERED_UNDECIDED = -2
#: Slack added to a pending run member's reconstructed post-commit
#: ``score_base`` upper bound (see ``place_batch``): the true refreshed base
#: differs from ``fl(base + mean-term)`` by a handful of 2^-53 rounding
#: steps (~1e-14 at these magnitudes), so 1e-10 is a safe over-estimate
#: while staying far below the 2x SCORE_TOLERANCE overtake margin.
_RUN_BASE_SLACK = 1e-10
#: Below this fleet size the tiered scan is pure overhead: the screened
#: path's O(n_servers) vector ops already cost less than the band-descent
#: bookkeeping, so ``best_fit_row`` skips straight to it.  Purely a
#: performance dispatch -- both paths reach the same decision.
_TIERED_MIN_SERVERS = 8192
#: Starting credit for the provable-run partition in ``place_batch``.
#: Consolidating arrival patterns conflict on every plan (each placement
#: makes the winning row *more* attractive to the next plan), in which case
#: every run commits a single member and the stale evaluation that detected
#: the conflict is wasted; the credit decays on such degenerate runs and the
#: batch falls back to sequential admission when it runs out.
_RUN_CREDIT = 8

#: Indices of resources inside ``ALL_RESOURCES``-ordered arrays.
_CPU_INDEX = ALL_RESOURCES.index(Resource.CPU)
_MEMORY_INDEX = ALL_RESOURCES.index(Resource.MEMORY)
_NON_MEMORY_INDICES = np.array(
    [i for i, r in enumerate(ALL_RESOURCES) if r is not Resource.MEMORY])


def plan_demand_matrix(plan: VMResourcePlan) -> np.ndarray:
    """Stack a plan's per-resource window demands, shape ``(n_resources, n_windows)``."""
    return np.stack([plan.plans[r].window_demand for r in ALL_RESOURCES])


def _plan_screen_stats(plan_demand: np.ndarray,
                       va_window_demand: np.ndarray) -> tuple:
    """Per-resource extrema and means feeding the screened best-fit path.

    The peaks/minima are exact window maxima/minima (order-independent), so
    precomputing them for a whole batch yields the same values as computing
    them per plan; the means only feed the approximate scores.
    """
    return (plan_demand.max(axis=1), plan_demand.min(axis=1),
            plan_demand.mean(axis=1),
            float(va_window_demand.max()), float(va_window_demand.min()))


class ClusterLedger:
    """Cluster-level matrix bookkeeping of committed scheduling demand.

    One row per server.  All state the admission checks and the packing score
    need is kept in dense arrays so the scheduler can evaluate every server
    in one vectorized pass.
    """

    __slots__ = ("windows", "n_servers", "n_windows", "capacity", "demand",
                 "pa_memory", "va_demand", "demand_sum", "demand_peak",
                 "va_peak", "score_base", "row_used", "row_available",
                 "_inv_capacity",
                 "_inv_counts", "_fit_threshold", "_memory_threshold",
                 "_score_safe", "_capacity_kind", "_kind_count",
                 "_kind_inv_capacity", "_kind_inv_counts", "_row_band",
                 "_band_members", "_empty_heaps")

    def __init__(self, server_configs: Sequence[ServerConfig],
                 windows: TimeWindowConfig):
        self.windows = windows
        self.n_servers = len(server_configs)
        self.n_windows = windows.windows_per_day
        capacity = np.zeros((len(ALL_RESOURCES), self.n_servers))
        for column, config in enumerate(server_configs):
            vector = config.capacity_vector()
            for row, resource in enumerate(ALL_RESOURCES):
                capacity[row, column] = vector[resource]
        self.capacity = capacity
        self.demand = np.zeros((len(ALL_RESOURCES), self.n_servers, self.n_windows))
        self.pa_memory = np.zeros(self.n_servers)
        self.va_demand = np.zeros((self.n_servers, self.n_windows))
        # Incremental caches (module docstring: "Incremental score caching").
        # Derived strictly from the row arrays above and refreshed by
        # _refresh_row_caches in the same mutation that touches a row (REP006
        # enforces that no other code writes any of these arrays).
        self.demand_sum = np.zeros((len(ALL_RESOURCES), self.n_servers))
        self.demand_peak = np.zeros((len(ALL_RESOURCES), self.n_servers))
        self.va_peak = np.zeros(self.n_servers)
        self.score_base = np.zeros(self.n_servers)
        self.row_used = np.zeros(self.n_servers, dtype=bool)
        # Failure injection (repro.scenarios): rows flip to unavailable via
        # disable_row and are excluded from every placement path; committed
        # demand is unaffected (release still works on a disabled row).
        self.row_available = np.ones(self.n_servers, dtype=bool)
        positive = capacity > 0
        self._inv_capacity = np.where(
            positive, 1.0 / np.where(positive, capacity, 1.0), 0.0)
        self._inv_counts = 1.0 / np.maximum(positive.sum(axis=0), 1)
        self._fit_threshold = capacity + FIT_EPSILON
        self._memory_threshold = self._fit_threshold[_MEMORY_INDEX]
        self._score_safe = bool(np.all(capacity[positive] >= _CAPACITY_FLOOR))
        # Rows with bitwise-identical capacity columns are interchangeable
        # while empty (identical scores, identical admission outcome), so the
        # candidate shortlist only ever needs the first empty row per kind.
        if self.n_servers:
            self._capacity_kind = np.unique(
                capacity.T, axis=0, return_inverse=True)[1].reshape(-1)
        else:
            self._capacity_kind = np.zeros(0, dtype=np.intp)
        # Per-kind score statics for the tiered index: one representative
        # column per capacity kind (kind labels are indices into the sorted
        # unique capacity rows, and np.unique returns first occurrences, so
        # the representative is the lowest-index row of its kind).
        self._kind_count = int(self._capacity_kind.max()) + 1 if self.n_servers else 0
        if self._kind_count:
            first_rows = np.unique(self._capacity_kind, return_index=True)[1]
            self._kind_inv_capacity = self._inv_capacity[:, first_rows]
            self._kind_inv_counts = self._inv_counts[first_rows]
        else:
            self._kind_inv_capacity = np.zeros((len(ALL_RESOURCES), 0))
            self._kind_inv_counts = np.zeros(0)
        self.rebuild_candidate_index()

    def rebuild_candidate_index(self) -> None:
        """Rebuild the tiered candidate index from the cached row state.

        The index is fully derived from ``row_used`` / ``row_available`` /
        ``score_base`` / ``_capacity_kind``, so a from-scratch rebuild must
        land in the same state that incremental maintenance
        (:meth:`_index_update_row`) reaches -- the churn differential suite
        pins exactly that.  This is the bootstrap path (``__init__``) and the
        sanctioned recovery hook.  Disabled rows join neither structure:
        they can never win a placement, so indexing them would only add
        screen work.
        """
        self._row_band = np.full(self.n_servers, -1, dtype=np.intp)
        self._band_members: Dict[int, Set[int]] = {}
        heaps: List[List[int]] = [[] for _ in range(self._kind_count)]
        for row in range(self.n_servers):
            if not self.row_available[row]:
                continue
            if self.row_used[row]:
                band = int(self.score_base[row] / _BAND_WIDTH)
                self._row_band[row] = band
                self._band_members.setdefault(band, set()).add(row)
            else:
                # Ascending append per kind already satisfies the heap
                # invariant; heapify keeps that independent of build order.
                heaps[self._capacity_kind[row]].append(row)
        for heap in heaps:
            heapify(heap)
        self._empty_heaps = heaps

    # ------------------------------------------------------------------ #
    # Vectorized admission checks and packing score
    # ------------------------------------------------------------------ #
    def hypothetical_demand(self, plan_demand: np.ndarray) -> np.ndarray:
        """Committed demand as if *plan_demand* were placed on every server.

        The ``(n_resources, n_servers, n_windows)`` array is the dominant
        per-placement allocation, so ``place()`` computes it once and feeds
        it to both the admission masks and the packing scores.
        """
        return self.demand + plan_demand[:, None, :]

    def fit_masks(self, plan_demand: np.ndarray, guaranteed_memory_gb: float,
                  va_window_demand: np.ndarray,
                  hypothetical: Optional[np.ndarray] = None) -> tuple:
        """Evaluate both admission checks for every server at once.

        Returns ``(vector_ok, backing_ok)`` boolean arrays of shape
        ``(n_servers,)`` with the same semantics as
        :meth:`ServerAccount.fits_vector_check` and
        :meth:`ServerAccount.fits_backing_check`.
        """
        if hypothetical is None:
            hypothetical = self.hypothetical_demand(plan_demand)
        window_ok = np.all(hypothetical <= self.capacity[:, :, None] + FIT_EPSILON,
                           axis=2)
        capacity_memory = self.capacity[_MEMORY_INDEX]
        new_pa = self.pa_memory + guaranteed_memory_gb
        vector_ok = window_ok.all(axis=0) & (new_pa <= capacity_memory + FIT_EPSILON)
        new_va = (self.va_demand + va_window_demand[None, :]).max(axis=1)
        backing_ok = (np.all(window_ok[_NON_MEMORY_INDICES], axis=0)
                      & (new_pa + new_va <= capacity_memory + FIT_EPSILON))
        return vector_ok, backing_ok

    def packing_scores(self, plan_demand: Optional[np.ndarray] = None,
                       hypothetical: Optional[np.ndarray] = None) -> np.ndarray:
        """Best-fit packing score of every server, shape ``(n_servers,)``.

        Same semantics as :meth:`ServerAccount.packing_score`: the committed
        fraction of capacity, averaged over windows and over the resources
        with positive capacity, optionally as if *plan_demand* were committed.
        The mean is taken over the summed demand (not split into per-term
        means) so the scores stay bitwise-identical to the per-server loop.
        """
        if hypothetical is None:
            hypothetical = (self.demand if plan_demand is None
                            else self.hypothetical_demand(plan_demand))
        means = hypothetical.mean(axis=2)
        positive = self.capacity > 0
        ratios = np.where(positive, means / np.where(positive, self.capacity, 1.0), 0.0)
        counts = positive.sum(axis=0)
        return ratios.sum(axis=0) / np.maximum(counts, 1)

    def approx_packing_scores(self, plan_mean: np.ndarray) -> np.ndarray:
        """Approximate packing scores from the cached per-row score bases.

        ``plan_mean`` is the plan's per-resource window mean; the plan's
        contribution is one ``(n_resources,) @ (n_resources, n_servers)``
        product on top of the cached committed-demand term.  The result
        tracks :meth:`packing_scores` to within the bound documented at
        :data:`SCORE_TOLERANCE` for every server the plan fits, but is *not*
        bitwise-identical (the cached sums round ``sum_w`` before the plan
        term is added) -- callers must re-score candidates densely.
        """
        return (self.score_base + plan_mean @ self._inv_capacity) * self._inv_counts

    def best_fit_row_dense(self, plan_demand: np.ndarray,
                           guaranteed_memory_gb: float,
                           va_window_demand: np.ndarray,
                           conservative: bool) -> int:
        """Reference best-fit: full-matrix admission masks + dense scores.

        Returns the winning row index, or ``-1`` when no server fits.  This
        is the pre-incremental placement arithmetic, kept as the exactness
        fallback of :meth:`best_fit_row` and as the scaling-bench baseline.
        """
        hypothetical = self.hypothetical_demand(plan_demand)
        vector_ok, backing_ok = self.fit_masks(
            plan_demand, guaranteed_memory_gb, va_window_demand,
            hypothetical=hypothetical)
        mask = (vector_ok & backing_ok) if conservative else vector_ok
        mask &= self.row_available
        if not mask.any():
            return -1
        scores = np.where(
            mask, self.packing_scores(hypothetical=hypothetical), -np.inf)
        return int(np.argmax(scores))

    def _screen_rows(self, rows: np.ndarray, guaranteed_memory_gb: float,
                     conservative: bool, stats: tuple) -> tuple:
        """Tri-state screen + approximate scores for a gathered row subset.

        Elementwise the same arithmetic as the full-fleet screen in
        :meth:`best_fit_row_screened` (no cross-row reductions), so each
        row's surely-fits / surely-fails classification is bitwise-identical
        to the O(n_servers) pass.  The approximate scores use a gathered
        GEMV, which may differ from the full GEMV in the last ulp -- callers
        must only compare them against SCORE_TOLERANCE-wide margins, never
        bitwise across paths.
        """
        plan_peak, plan_min, plan_mean, va_peak_add, va_min_add = stats
        threshold = self._fit_threshold[:, rows]
        peaks = self.demand_peak[:, rows]
        sure_ok = np.all(peaks + plan_peak[:, None] <= threshold, axis=0)
        sure_bad = np.any(peaks + plan_min[:, None] > threshold, axis=0)
        capacity_memory = self._memory_threshold[rows]
        new_pa = self.pa_memory[rows] + guaranteed_memory_gb
        pa_ok = new_pa <= capacity_memory
        if conservative:
            va_peak = self.va_peak[rows]
            fit_hi = (pa_ok & sure_ok
                      & (new_pa + (va_peak + va_peak_add) <= capacity_memory))
            sure_fail = (~pa_ok | sure_bad
                         | (new_pa + (va_peak + va_min_add) > capacity_memory))
        else:
            fit_hi = pa_ok & sure_ok
            sure_fail = ~pa_ok | sure_bad
        available = self.row_available[rows]
        fit_hi &= available
        sure_fail |= ~available
        approx = ((self.score_base[rows]
                   + plan_mean @ self._inv_capacity[:, rows])
                  * self._inv_counts[rows])
        return fit_hi, sure_fail, approx

    def _verify_candidate_rows(self, rows: np.ndarray, plan_demand: np.ndarray,
                               guaranteed_memory_gb: float,
                               va_window_demand: np.ndarray,
                               conservative: bool) -> int:
        """Exact admission + scoring over a sorted candidate shortlist.

        Gathered rows are C-contiguous, so the window mean and resource sum
        reduce in the same order as the full-matrix pass (summation-order
        contract, module docstring) and the scores are bitwise-identical to
        :meth:`best_fit_row_dense`; *rows* must be sorted ascending so the
        first-max argmax preserves lowest-index tie-breaking.
        """
        hypothetical = self.demand[:, rows, :] + plan_demand[:, None, :]
        capacity = self.capacity[:, rows]
        window_ok = np.all(hypothetical <= capacity[:, :, None] + FIT_EPSILON,
                           axis=2)
        new_pa_rows = self.pa_memory[rows] + guaranteed_memory_gb
        capacity_memory = capacity[_MEMORY_INDEX]
        fit = (window_ok.all(axis=0)
               & (new_pa_rows <= capacity_memory + FIT_EPSILON)
               & self.row_available[rows])
        if conservative:
            new_va = (self.va_demand[rows] + va_window_demand[None, :]).max(axis=1)
            fit &= (np.all(window_ok[_NON_MEMORY_INDICES], axis=0)
                    & (new_pa_rows + new_va <= capacity_memory + FIT_EPSILON))
        if not fit.any():
            return -1
        means = hypothetical.mean(axis=2)
        positive = capacity > 0
        ratios = np.where(positive, means / np.where(positive, capacity, 1.0), 0.0)
        counts = positive.sum(axis=0)
        scores = ratios.sum(axis=0) / np.maximum(counts, 1)
        return int(rows[int(np.argmax(np.where(fit, scores, -np.inf)))])

    def _best_fit_row_tiered(self, plan_demand: np.ndarray,
                             guaranteed_memory_gb: float,
                             va_window_demand: np.ndarray,
                             conservative: bool, stats: tuple) -> int:
        """Band-descent candidate search over the tiered index.

        Returns the winning row, ``-1`` when no server fits, or
        :data:`_TIERED_UNDECIDED` when the scan cannot stay sublinear --
        the caller then falls back to the screened O(n_servers) path, which
        reaches the same decision by construction.

        Within one capacity kind the approximate score
        ``(score_base + plan_term) * inv_count`` is monotone in
        ``score_base``, so a band's upper edge bounds every member's
        approximate score: ``max_k fl((band_hi + term_k) * inv_count_k)``
        with :data:`_BAND_EDGE_SLACK` absorbing edge rounding.  Bands are
        scanned in decreasing-bound order (bound is monotone in the band
        id); once every unscanned band's bound sits below
        ``best_sure - SCORE_TOLERANCE``, no unscanned row can reach the
        frontier -- the winner and every row tied with it live in scanned
        bands, because a fitting row's approximate score is within ~1e-13
        of its exact score (same argument as the screened path).  Empty
        rows contribute one candidate per capacity kind: the heap top,
        which is the lowest-index empty row of its kind, the only one that
        can survive the first-max tie-break among interchangeable rows.
        """
        plan_mean = stats[2]
        budget = max(_DENSE_FALLBACK_MIN, self.n_servers // 8)
        kind_term = plan_mean @ self._kind_inv_capacity
        chunks = []
        best_sure = -np.inf
        scanned = 0
        # Bands are buffered and screened in geometrically growing chunks:
        # a placement near the frontier resolves after one small screen,
        # while a deep descent pays O(log scanned) numpy dispatches instead
        # of one per band.  Buffered-but-unscreened rows cannot raise
        # best_sure yet, which only delays pruning -- never unsoundly prunes.
        buffered: List[int] = [heap[0] for heap in self._empty_heaps if heap]
        chunk_target = _DENSE_FALLBACK_MIN
        bands = sorted(self._band_members, reverse=True)
        position = 0
        while True:
            while position < len(bands) and len(buffered) < chunk_target:
                band = bands[position]
                if best_sure > -np.inf:
                    band_hi = (band + 1) * _BAND_WIDTH + _BAND_EDGE_SLACK
                    bound = float(((band_hi + kind_term)
                                   * self._kind_inv_counts).max())
                    if bound < best_sure - SCORE_TOLERANCE:
                        # Bounds only shrink from here on (monotone in the
                        # band id): every unscanned row is provably outside
                        # the frontier.
                        position = len(bands)
                        break
                buffered.extend(self._band_members[band])
                position += 1
            if not buffered:
                break
            scanned += len(buffered)
            if scanned > budget:
                return _TIERED_UNDECIDED
            rows = np.fromiter(buffered, np.intp, len(buffered))
            fit_hi, sure_fail, approx = self._screen_rows(
                rows, guaranteed_memory_gb, conservative, stats)
            chunks.append((rows, sure_fail, approx))
            if fit_hi.any():
                best_sure = max(best_sure, float(approx[fit_hi].max()))
            buffered = []
            chunk_target *= 2
            if position >= len(bands):
                break
        if not chunks:
            return -1
        rows = np.concatenate([chunk[0] for chunk in chunks])
        sure_fail = np.concatenate([chunk[1] for chunk in chunks])
        approx = np.concatenate([chunk[2] for chunk in chunks])
        if best_sure > -np.inf:
            keep = ~sure_fail & (approx >= best_sure - SCORE_TOLERANCE)
        else:
            keep = ~sure_fail
        candidates = np.sort(rows[keep])
        if candidates.size == 0:
            # Every used row was scanned (best_sure = -inf means no band was
            # pruned) and every empty row fails exactly like its kind's
            # representative, so this is a complete rejection proof.
            return -1
        if candidates.size > budget:
            return _TIERED_UNDECIDED
        return self._verify_candidate_rows(
            candidates, plan_demand, guaranteed_memory_gb, va_window_demand,
            conservative)

    def best_fit_row(self, plan_demand: np.ndarray, guaranteed_memory_gb: float,
                     va_window_demand: np.ndarray, conservative: bool,
                     stats: Optional[tuple] = None) -> int:
        """Exact best-fit via the tiered index, screened and dense fallbacks.

        Tries :meth:`_best_fit_row_tiered` first (sublinear in fleet size);
        when the tiered scan cannot stay sublinear it falls back to
        :meth:`best_fit_row_screened` (O(n_servers) screen), which itself
        falls back to :meth:`best_fit_row_dense` when the shortlist
        degenerates.  Every link of the chain reproduces the dense
        decision bitwise, so the chain may stop anywhere.
        """
        if not self._score_safe:
            return self.best_fit_row_dense(plan_demand, guaranteed_memory_gb,
                                           va_window_demand, conservative)
        if stats is None:
            stats = _plan_screen_stats(plan_demand, va_window_demand)
        if self.n_servers >= _TIERED_MIN_SERVERS:
            row = self._best_fit_row_tiered(plan_demand, guaranteed_memory_gb,
                                            va_window_demand, conservative,
                                            stats)
            if row != _TIERED_UNDECIDED:
                return row
        return self.best_fit_row_screened(plan_demand, guaranteed_memory_gb,
                                          va_window_demand, conservative,
                                          stats=stats)

    def best_fit_row_screened(self, plan_demand: np.ndarray,
                              guaranteed_memory_gb: float,
                              va_window_demand: np.ndarray, conservative: bool,
                              stats: Optional[tuple] = None) -> int:
        """Screened best-fit over the cached row sums, exact by construction.

        Three steps, each relying only on IEEE-754 addition being monotone
        (``fl(a + b)`` is non-decreasing in both arguments) and on the cached
        peaks being exact row maxima:

        1. *Screen* in O(n_resources x n_servers): if
           ``fl(demand_peak + plan_peak) <= fl(capacity + eps)`` every window
           of the row fits that resource; if
           ``fl(demand_peak + plan_min) > fl(capacity + eps)`` the peak
           window fails it.  Rows proven neither way stay *uncertain*.  The
           PA term is evaluated exactly; the VA backing term is bounded the
           same way through ``va_peak``.
        2. *Band*: keep every not-surely-failing row whose approximate score
           is within :data:`SCORE_TOLERANCE` of the best surely-fitting
           row's.  The true winner (and every row tied with it) is fittable,
           so its approximate score sits within the ~1e-13 error bound of its
           exact score and cannot fall outside the band.
        3. *Verify*: re-check admission and re-score the shortlisted rows
           with the exact dense arithmetic.  Gathered rows are C-contiguous,
           so the window mean and resource sum reduce in the same order as
           the full-matrix pass (summation-order contract, module docstring)
           and scores are bitwise-identical to :meth:`best_fit_row_dense`;
           rows are scanned in ascending order, preserving first-max
           tie-breaking.

        Falls back to :meth:`best_fit_row_dense` when exactness cannot be
        guaranteed (positive capacities below the documented floor) or when
        the shortlist degenerates to a large fraction of the fleet (e.g. an
        empty cluster, where every approximate score ties).
        """
        if not self._score_safe:
            return self.best_fit_row_dense(plan_demand, guaranteed_memory_gb,
                                           va_window_demand, conservative)
        if stats is None:
            stats = _plan_screen_stats(plan_demand, va_window_demand)
        plan_peak, plan_min, plan_mean, va_peak_add, va_min_add = stats
        threshold = self._fit_threshold
        sure_ok = np.all(self.demand_peak + plan_peak[:, None] <= threshold, axis=0)
        sure_bad = np.any(self.demand_peak + plan_min[:, None] > threshold, axis=0)
        capacity_memory = self._memory_threshold
        new_pa = self.pa_memory + guaranteed_memory_gb
        pa_ok = new_pa <= capacity_memory
        if conservative:
            fit_hi = (pa_ok & sure_ok
                      & (new_pa + (self.va_peak + va_peak_add) <= capacity_memory))
            sure_fail = (~pa_ok | sure_bad
                         | (new_pa + (self.va_peak + va_min_add) > capacity_memory))
        else:
            fit_hi = pa_ok & sure_ok
            sure_fail = ~pa_ok | sure_bad
        fit_hi &= self.row_available
        sure_fail |= ~self.row_available
        maybe = ~sure_fail
        # fit_hi <= true fit set <= maybe (setwise); rows outside `maybe`
        # cannot fit and rows in `fit_hi` need no window re-check to count
        # as candidates, but are still re-scored below.
        approx = self.approx_packing_scores(plan_mean)
        if fit_hi.any():
            best_sure = approx[fit_hi].max()
            candidate_mask = maybe & (approx >= best_sure - SCORE_TOLERANCE)
        else:
            candidate_mask = maybe
        rows = np.nonzero(candidate_mask)[0]
        if rows.size == 0:
            return -1
        if rows.size > len(ALL_RESOURCES):
            # Empty rows with bitwise-identical capacity columns have
            # identical scores and admission outcomes, so only the first
            # empty candidate of each capacity kind can survive the first-max
            # tie-break; the rest are pruned before the exact re-score.  This
            # keeps the shortlist O(ties + kinds) even while most of a large
            # fleet is still empty (every same-kind empty row is banded
            # together, so the kept row is the globally lowest-index one).
            keep = self.row_used[rows]  # fancy indexing: a fresh, mutable array
            if not keep.all():
                empty_positions = np.nonzero(~keep)[0]
                first_per_kind = np.unique(
                    self._capacity_kind[rows[empty_positions]],
                    return_index=True)[1]
                keep[empty_positions[first_per_kind]] = True
                rows = rows[keep]
        if rows.size > max(_DENSE_FALLBACK_MIN, self.n_servers // 8):
            return self.best_fit_row_dense(plan_demand, guaranteed_memory_gb,
                                           va_window_demand, conservative)
        return self._verify_candidate_rows(rows, plan_demand,
                                           guaranteed_memory_gb,
                                           va_window_demand, conservative)

    # ------------------------------------------------------------------ #
    # Row updates
    # ------------------------------------------------------------------ #
    def _refresh_row_caches(self, row: int) -> None:
        """Recompute one row's cached sums/peaks from the row arrays.

        The caches are always *recomputed* from the mutated row, never
        incremented, so they stay bitwise-equal to a fresh full-matrix
        reduction (``demand.sum(axis=2)`` / ``demand.max(axis=2)`` /
        ``va_demand.max(axis=1)`` reduce the same contiguous rows in the
        same order) and cannot drift under commit/release churn; the same
        holds for ``score_base`` against a per-column recompute of its
        defining dot product.
        """
        row_demand = self.demand[:, row, :]
        row_sum = row_demand.sum(axis=1)
        self.demand_sum[:, row] = row_sum
        self.demand_peak[:, row] = row_demand.max(axis=1)
        self.va_peak[row] = self.va_demand[row].max()
        self.score_base[row] = (row_sum / self.n_windows) @ self._inv_capacity[:, row]
        # Committed demand is non-negative (release validates residues), so a
        # zero sum/PA/VA-peak proves the whole row is exactly zero.
        self.row_used[row] = bool(row_sum.any() or self.pa_memory[row]
                                  or self.va_peak[row])
        self._index_update_row(row)

    def _index_update_row(self, row: int) -> None:
        """Move one row between the tiered-index structures after a mutation.

        Called only from :meth:`_refresh_row_caches` (REP007), so the index
        tracks ``row_used`` / ``row_available`` / ``score_base`` in the same
        call that refreshes them.  A used->empty transition pushes the row
        back onto its kind's heap; stale heap entries (rows that became used
        or unavailable while enqueued) are popped eagerly here -- the only
        place a row's usedness or availability can change -- so the read
        path can trust every heap top without mutating anything.  Disabled
        rows (:meth:`disable_row`) leave both structures and never re-enter.
        """
        old_band = int(self._row_band[row])
        if self.row_used[row] and self.row_available[row]:
            band = int(self.score_base[row] / _BAND_WIDTH)
            if band != old_band:
                if old_band >= 0:
                    members = self._band_members[old_band]
                    members.discard(row)
                    if not members:
                        del self._band_members[old_band]
                self._band_members.setdefault(band, set()).add(row)
                self._row_band[row] = band
        else:
            if old_band >= 0:
                members = self._band_members[old_band]
                members.discard(row)
                if not members:
                    del self._band_members[old_band]
                self._row_band[row] = -1
                # Seeded at __init__ and re-pushed on every used->empty
                # transition, so every currently-empty available row has an
                # entry; empty->empty refreshes (old_band < 0) push nothing,
                # so entries don't multiply under repeated asserts.
                if not self.row_used[row] and self.row_available[row]:
                    heappush(self._empty_heaps[self._capacity_kind[row]], row)
        heap = self._empty_heaps[self._capacity_kind[row]]
        while heap and (self.row_used[heap[0]]
                        or not self.row_available[heap[0]]):
            heappop(heap)

    def commit_row(self, row: int, plan: VMResourcePlan) -> None:
        for index, resource in enumerate(ALL_RESOURCES):
            self.demand[index, row, :] += plan.plans[resource].window_demand
        memory_plan = plan.plans[Resource.MEMORY]
        self.pa_memory[row] += memory_plan.guaranteed
        self.va_demand[row, :] += memory_plan.window_oversubscribed
        self._refresh_row_caches(row)

    def commit_rows(self, rows: np.ndarray, plans: Sequence[VMResourcePlan],
                    plan_demand: np.ndarray) -> None:
        """Commit one plan per row in a single vectorized scatter.

        *rows* must be distinct (each row receives exactly one plan), so
        every ledger element gets exactly one addition -- elementwise the
        same ``fl(committed + demand)`` as the equivalent sequence of
        :meth:`commit_row` calls, in any order.  ``plan_demand`` is the
        ``(n_plans, n_resources, n_windows)`` stack of the plans' demand
        matrices (the batch path already has it; rebuilding it here would
        repeat the preprocessing the batch amortized).  The caches refresh
        per row: ``score_base`` deliberately stays a per-row dot product,
        because batched GEMV and per-row ``@`` are not bitwise-equal on
        every BLAS.
        """
        memory_plans = [plan.plans[Resource.MEMORY] for plan in plans]
        self.demand[:, rows, :] += plan_demand.transpose(1, 0, 2)
        self.pa_memory[rows] += np.fromiter(
            (memory_plan.guaranteed for memory_plan in memory_plans),
            float, len(memory_plans))
        self.va_demand[rows, :] += np.stack(
            [memory_plan.window_oversubscribed for memory_plan in memory_plans])
        for row in rows:
            self._refresh_row_caches(int(row))

    def release_row(self, row: int, plan: VMResourcePlan) -> None:
        """Subtract a plan from a row, snapping near-zero residues to zero.

        ``commit`` adds and ``release`` subtracts floats in whatever order
        plans churn through the server, so exact cancellation is not
        guaranteed; without the snap, residues of a few ULPs accumulate and
        make servers look permanently fuller than they are.  A residue more
        negative than ``-RESIDUE_EPSILON`` cannot come from float drift -- it
        means the plan was never committed to this row, or was already
        released -- so it raises :class:`ValueError` instead of being
        silently clamped to zero (which would corrupt the accounting).  All
        residues are validated before any array is mutated, so a failed
        release leaves the ledger (and its caches) untouched.
        """
        memory_plan = plan.plans[Resource.MEMORY]
        lines = []
        for index, resource in enumerate(ALL_RESOURCES):
            line = self.demand[index, row] - plan.plans[resource].window_demand
            lowest = float(line.min(initial=0.0))
            if lowest < -RESIDUE_EPSILON:
                raise ValueError(
                    f"releasing {plan.vm_id} from server row {row} drives "
                    f"{resource.value} demand negative ({lowest:g}): the plan "
                    "was not committed here or was already released")
            lines.append(line)
        new_pa = float(self.pa_memory[row]) - memory_plan.guaranteed
        if new_pa < -RESIDUE_EPSILON:
            raise ValueError(
                f"releasing {plan.vm_id} from server row {row} drives "
                f"guaranteed memory negative ({new_pa:g}): the plan was not "
                "committed here or was already released")
        new_va = self.va_demand[row] - memory_plan.window_oversubscribed
        lowest = float(new_va.min(initial=0.0))
        if lowest < -RESIDUE_EPSILON:
            raise ValueError(
                f"releasing {plan.vm_id} from server row {row} drives VA "
                f"memory demand negative ({lowest:g}): the plan was not "
                "committed here or was already released")
        for index, line in enumerate(lines):
            line[np.abs(line) <= RESIDUE_EPSILON] = 0.0
            self.demand[index, row, :] = line
        self.pa_memory[row] = 0.0 if abs(new_pa) <= RESIDUE_EPSILON else new_pa
        new_va[np.abs(new_va) <= RESIDUE_EPSILON] = 0.0
        self.va_demand[row, :] = new_va
        self._refresh_row_caches(row)

    def assert_row_empty(self, row: int) -> None:
        """Verify a row carries no demand (called when its last plan leaves)."""
        residue = max(float(self.demand[:, row].max(initial=0.0)),
                      float(self.pa_memory[row]),
                      float(self.va_demand[row].max(initial=0.0)))
        if residue > FIT_EPSILON:
            raise AssertionError(
                f"server row {row} still carries {residue:g} committed demand "
                "after its last plan was released")
        self.demand[:, row, :] = 0.0
        self.pa_memory[row] = 0.0
        self.va_demand[row, :] = 0.0
        self._refresh_row_caches(row)

    def disable_row(self, row: int) -> None:
        """Mark a row failed: it never wins another placement.

        Failure injection (drain or crash, see
        :class:`repro.simulator.engine.FailureEvent`) removes a server from
        the candidate pool without touching its committed demand -- residents
        are the caller's problem (drains re-place them, crashes drop them),
        and :meth:`release_row` keeps working on a disabled row so the
        ledger's non-negativity invariants survive the evacuation.  The flip
        is one-way: re-enabling would have to re-derive the row's index
        placement, and no scenario needs repaired servers.
        """
        self.row_available[row] = False
        self._refresh_row_caches(row)


class ServerAccount:
    """Scheduling-time bookkeeping of the plans committed to one server.

    A thin view over one row of a :class:`ClusterLedger`.  Accounts created
    standalone (outside a :class:`ClusterScheduler`) own a private single-row
    ledger, which preserves the original standalone API.
    """

    __slots__ = ("server_id", "config", "windows", "plans", "_ledger", "_row")

    def __init__(self, server_id: str, config: ServerConfig,
                 windows: TimeWindowConfig,
                 ledger: Optional[ClusterLedger] = None, row: int = 0):
        self.server_id = server_id
        self.config = config
        self.windows = windows
        if ledger is None:
            ledger = ClusterLedger([config], windows)
            row = 0
        self._ledger = ledger
        self._row = row
        #: Plans currently placed on this server, keyed by VM id.
        self.plans: Dict[str, VMResourcePlan] = {}

    # ------------------------------------------------------------------ #
    # Capacity accessors
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> ResourceVector:
        return self.config.capacity_vector()

    @property
    def window_demand(self) -> Dict[Resource, np.ndarray]:
        """Per-resource committed demand per window (views into the ledger)."""
        return {r: self._ledger.demand[i, self._row]
                for i, r in enumerate(ALL_RESOURCES)}

    @property
    def pa_memory_gb(self) -> float:
        """Committed guaranteed (PA) memory in GB."""
        return float(self._ledger.pa_memory[self._row])

    @property
    def va_window_demand(self) -> np.ndarray:
        """Per-window committed oversubscribed (VA) memory demand in GB."""
        return self._ledger.va_demand[self._row]

    @property
    def va_backing_gb(self) -> float:
        """Physical memory reserved for the oversubscribed pool (Eq. 4)."""
        va = self.va_window_demand
        return float(va.max()) if va.size else 0.0

    @property
    def committed_memory_backing_gb(self) -> float:
        return self.pa_memory_gb + self.va_backing_gb

    @property
    def n_vms(self) -> int:
        return len(self.plans)

    def allocated_request(self, resource: Resource) -> float:
        """Sum of the full requested allocations (what customers bought)."""
        return float(sum(p.plans[resource].requested for p in self.plans.values()))

    # ------------------------------------------------------------------ #
    # Admission checks
    # ------------------------------------------------------------------ #
    def fits_vector_check(self, plan: VMResourcePlan) -> bool:
        """The paper's windows-plus-one vector check."""
        capacity = self.capacity
        window_demand = self.window_demand
        for resource in ALL_RESOURCES:
            demand = plan.plans[resource].window_demand
            if np.any(window_demand[resource] + demand > capacity[resource] + FIT_EPSILON):
                return False
        new_pa = self.pa_memory_gb + plan.plans[Resource.MEMORY].guaranteed
        return new_pa <= capacity[Resource.MEMORY] + FIT_EPSILON

    def fits_backing_check(self, plan: VMResourcePlan) -> bool:
        """Conservative check: physical PA + multiplexed VA backing must fit."""
        capacity = self.capacity
        window_demand = self.window_demand
        for resource in ALL_RESOURCES:
            if resource is Resource.MEMORY:
                continue
            demand = plan.plans[resource].window_demand
            if np.any(window_demand[resource] + demand > capacity[resource] + FIT_EPSILON):
                return False
        memory_plan = plan.plans[Resource.MEMORY]
        new_pa = self.pa_memory_gb + memory_plan.guaranteed
        new_va = float((self.va_window_demand + memory_plan.window_oversubscribed).max())
        return new_pa + new_va <= capacity[Resource.MEMORY] + FIT_EPSILON

    def can_fit(self, plan: VMResourcePlan, conservative: bool = True) -> bool:
        if plan.windows.windows_per_day != self.windows.windows_per_day:
            raise ValueError("plan and server use different time window configurations")
        if conservative:
            return self.fits_backing_check(plan) and self.fits_vector_check(plan)
        return self.fits_vector_check(plan)

    # ------------------------------------------------------------------ #
    # Commit / release
    # ------------------------------------------------------------------ #
    def commit(self, plan: VMResourcePlan) -> None:
        if plan.vm_id in self.plans:
            raise ValueError(f"VM {plan.vm_id} already placed on {self.server_id}")
        self._ledger.commit_row(self._row, plan)
        self.plans[plan.vm_id] = plan

    def release(self, vm_id: str) -> VMResourcePlan:
        try:
            plan = self.plans.pop(vm_id)
        except KeyError as exc:
            raise KeyError(f"VM {vm_id} is not placed on {self.server_id}") from exc
        self._ledger.release_row(self._row, plan)
        if not self.plans:
            self._ledger.assert_row_empty(self._row)
        return plan

    # ------------------------------------------------------------------ #
    # Packing diagnostics
    # ------------------------------------------------------------------ #
    def packing_score(self, plan: Optional[VMResourcePlan] = None) -> float:
        """Fraction of capacity committed (averaged over resources and windows).

        Higher means fuller.  When *plan* is given, the score is computed as
        if the plan were committed -- the best-fit scheduler places each VM on
        the fittable server that would become fullest, which consolidates VMs
        onto fewer servers.
        """
        capacity = self.capacity
        window_demand = self.window_demand
        scores = []
        for resource in ALL_RESOURCES:
            demand = window_demand[resource]
            if plan is not None:
                demand = demand + plan.plans[resource].window_demand
            if capacity[resource] > 0:
                scores.append(float(demand.mean()) / capacity[resource])
        return float(np.mean(scores)) if scores else 0.0

    def is_empty(self) -> bool:
        return not self.plans


def bulk_cpu_capacity_and_memory_backing(accounts: Sequence[ServerAccount]):
    """CPU capacity and committed memory backing per account, as vectors.

    When every account is a view over the same ledger (accounts of one
    :class:`ClusterScheduler`), both vectors come straight out of the ledger
    matrices; otherwise each account's property chain is walked.  The
    arithmetic (``pa + va.max()``) is identical either way, so callers such
    as the vectorized violation meter stay bitwise-equivalent to per-account
    loops.
    """
    if not accounts:
        # A drained (or zero-server) cluster has no accounts; callers such as
        # the violation meter expect empty vectors, not an IndexError.
        return np.zeros(0), np.zeros(0)
    ledger = accounts[0]._ledger
    if all(account._ledger is ledger for account in accounts):
        rows = np.fromiter((account._row for account in accounts), np.intp,
                           len(accounts))
        capacity_cpu = ledger.capacity[_CPU_INDEX, rows]
        va = ledger.va_demand[rows]
        backing = ledger.pa_memory[rows] + (va.max(axis=1) if va.size else 0.0)
        return capacity_cpu, backing
    capacity_cpu = np.array([a.capacity[Resource.CPU] for a in accounts])
    backing = np.array([a.committed_memory_backing_gb for a in accounts])
    return capacity_cpu, backing


@dataclass
class PlacementDecision:
    """Result of asking the scheduler to place one VM.

    ``preempted`` lists the spot VMs evicted while admitting this VM under
    class-aware admission, in eviction order; evictions stand even when the
    arrival is ultimately rejected (real preemption is not transactional).
    """

    vm_id: str
    accepted: bool
    server_id: Optional[str] = None
    reason: str = ""
    preempted: Tuple[str, ...] = ()


class ClusterScheduler:
    """Best-fit scheduler over the servers of one cluster.

    Placement is fully vectorized: both admission checks and the best-fit
    packing score are evaluated for all servers in one pass over the
    :class:`ClusterLedger` matrices.  Ties on the packing score resolve to
    the lowest server index, matching the reference per-server loop.

    ``decisions`` keeps only the most recent *decision_history* outcomes (a
    diagnostic ring); accept/reject totals are running counters, so neither
    grows with the number of placements.

    *incremental* selects the screened best-fit path over the ledger's
    cached row sums (:meth:`ClusterLedger.best_fit_row`); it produces
    bitwise-identical decisions to the dense path, which remains selectable
    (``incremental=False``) as the pre-cache baseline the scaling bench
    measures against.
    """

    def __init__(self, cluster: ClusterConfig, windows: TimeWindowConfig,
                 conservative: bool = True, decision_history: int = 256,
                 incremental: bool = True, class_aware: bool = False):
        self.cluster = cluster
        self.windows = windows
        self.conservative = conservative
        self.incremental = incremental
        self.class_aware = class_aware
        server_configs = cluster.server_configs()
        self.ledger = ClusterLedger(server_configs, windows)
        self.servers: Dict[str, ServerAccount] = {}
        self._accounts: List[ServerAccount] = []
        for index, server_config in enumerate(server_configs):
            server_id = f"{cluster.cluster_id}-s{index:03d}"
            account = ServerAccount(server_id, server_config, windows,
                                    ledger=self.ledger, row=index)
            self.servers[server_id] = account
            self._accounts.append(account)
        self._placements: Dict[str, str] = {}
        # Insertion-ordered spot registry: class-aware admission evicts the
        # oldest surviving spot VM first (dict preserves acceptance order).
        self._spot_vms: Dict[str, None] = {}
        self._accepted = 0
        self._rejected = 0
        self.decisions: Deque[PlacementDecision] = deque(maxlen=max(0, decision_history))

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def place(self, plan: VMResourcePlan,
              allocation_class: Optional[AllocationClass] = None
              ) -> PlacementDecision:
        """Place a VM plan on the best-fitting server (fullest that still fits).

        With ``class_aware=True`` and an *allocation_class*, admission
        becomes class-aware: a ``RESERVED`` arrival that finds no fitting
        server preempts ``SPOT`` VMs (oldest accepted first) until it fits
        or no spot capacity remains.  Without a class (or with
        ``class_aware=False``) the classic class-blind path runs and draws
        identical decisions -- class-awareness is strictly opt-in.
        """
        if plan.windows.windows_per_day != self.windows.windows_per_day:
            raise ValueError("plan and server use different time window configurations")
        plan_demand = plan_demand_matrix(plan)
        if self.class_aware and allocation_class is not None:
            return self._place_class_aware(plan, plan_demand, allocation_class)
        return self._place_prepared(plan, plan_demand, None)

    def _place_class_aware(self, plan: VMResourcePlan, plan_demand: np.ndarray,
                           allocation_class: AllocationClass
                           ) -> PlacementDecision:
        """Class-aware admission: reserved arrivals may preempt spot VMs.

        The best-fit search itself is the class-blind arithmetic
        (:meth:`ClusterLedger.best_fit_row`); class-awareness only adds the
        eviction loop around it, so the differential twin
        (:class:`ReferenceLoopScheduler` with ``class_aware=True``) stays a
        line-for-line mirror.  Evictions are not rolled back on final
        rejection: a real preemption pipeline kills the spot VM before the
        reserved VM boots, so the decision records them either way.
        """
        if plan.vm_id in self._placements:
            raise ValueError(f"VM {plan.vm_id} is already placed on "
                             f"{self._placements[plan.vm_id]}")
        memory_plan = plan.plans[Resource.MEMORY]

        def find_row() -> int:
            if self.incremental:
                return self.ledger.best_fit_row(
                    plan_demand, memory_plan.guaranteed,
                    memory_plan.window_oversubscribed, self.conservative)
            return self.ledger.best_fit_row_dense(
                plan_demand, memory_plan.guaranteed,
                memory_plan.window_oversubscribed, self.conservative)

        row = find_row()
        preempted: List[str] = []
        if row < 0 and allocation_class is AllocationClass.RESERVED:
            while row < 0 and self._spot_vms:
                victim = next(iter(self._spot_vms))
                self.deallocate(victim)
                preempted.append(victim)
                row = find_row()
        if row < 0:
            decision = PlacementDecision(plan.vm_id, False, None,
                                         "no server fits",
                                         preempted=tuple(preempted))
            self._rejected += 1
        else:
            best = self._accounts[row]
            best.commit(plan)
            self._placements[plan.vm_id] = best.server_id
            if allocation_class is AllocationClass.SPOT:
                self._spot_vms[plan.vm_id] = None
            decision = PlacementDecision(plan.vm_id, True, best.server_id,
                                         preempted=tuple(preempted))
            self._accepted += 1
        if self.decisions.maxlen:
            self.decisions.append(decision)
        return decision

    def place_batch(self, plans: Sequence[VMResourcePlan]) -> List[PlacementDecision]:
        """Place an arrival batch, amortizing preprocessing and commits.

        Decisions are bitwise-identical to calling :meth:`place` on each plan
        in order, including rejection ordering: the demand tensors and the
        screening extrema/means feeding :meth:`ClusterLedger.best_fit_row`
        are built in one stacked pass for the whole batch, and admission runs
        as *provably independent runs* (module docstring) whose members are
        committed with one multi-row scatter
        (:meth:`ClusterLedger.commit_rows`); any plan whose decision could
        depend on a pending commit ends the run and re-evaluates against the
        true ledger state.  The only divergence from the sequential loop is
        on the error path: window-config mismatches are validated up front,
        so a bad plan fails the whole batch before any commit instead of
        after its predecessors were placed.
        """
        plans = list(plans)
        for plan in plans:
            if plan.windows.windows_per_day != self.windows.windows_per_day:
                raise ValueError(
                    "plan and server use different time window configurations")
        if not plans:
            return []
        tensor = np.stack([plan_demand_matrix(plan) for plan in plans])
        va = np.stack([plan.plans[Resource.MEMORY].window_oversubscribed
                       for plan in plans])
        # Extrema are order-independent and the means reduce the same
        # contiguous rows as the per-plan path, so the batched stats are
        # bitwise-equal to _plan_screen_stats on each plan.
        peaks = tensor.max(axis=2)
        mins = tensor.min(axis=2)
        means = tensor.mean(axis=2)
        va_peaks = va.max(axis=1)
        va_mins = va.min(axis=1)
        if self.incremental and self.ledger._score_safe:
            return self._place_batch_runs(plans, tensor, peaks, mins, means,
                                          va_peaks, va_mins)
        return [
            self._place_prepared(
                plan, tensor[index],
                (peaks[index], mins[index], means[index],
                 float(va_peaks[index]), float(va_mins[index])))
            for index, plan in enumerate(plans)
        ]

    def _place_batch_runs(self, plans: List[VMResourcePlan],
                          tensor: np.ndarray, peaks: np.ndarray,
                          mins: np.ndarray, means: np.ndarray,
                          va_peaks: np.ndarray,
                          va_mins: np.ndarray) -> List[PlacementDecision]:
        """Admit a batch as provably independent runs with scatter commits.

        Each run evaluates consecutive plans against the ledger state frozen
        at the run's start (commits are deferred), and only keeps a plan in
        the run when its decision provably matches sequential admission:

        * a **rejection** is always safe -- commits only add demand and
          IEEE-754 addition is monotone, so a plan no server fits on the
          stale state fits no server on the true state either;
        * an **acceptance** is safe when the chosen row is not pending a
          commit in this run (its fit and score are then untouched), and no
          pending row's post-commit score can reach the winner's score even
          under worst-case rounding: each pending row's post-commit
          ``score_base`` is over-estimated by ``fl(base + mean-term)`` plus
          :data:`_RUN_BASE_SLACK`, and the resulting approximate score must
          stay ``2 * SCORE_TOLERANCE`` below the winner's approximate score
          -- a margin that dwarfs the ~1e-13 approximation error, so the
          exact comparison (and its lowest-index tie-break) cannot flip.

        The first plan that fails either proof ends the run: the pending
        members are committed with one :meth:`ClusterLedger.commit_rows`
        scatter (bitwise-equal to their sequential commits) and the plan
        re-evaluates against the refreshed state as the start of the next
        run, so the decision sequence stays bitwise-identical to looped
        :meth:`place`.
        """
        ledger = self.ledger
        n = len(plans)
        decisions: List[PlacementDecision] = []
        pending_rows = np.empty(n, dtype=np.intp)
        pending_ub = np.empty(n)
        index = 0
        credit = _RUN_CREDIT
        while index < n:
            if credit <= 0:
                # Degenerate arrival pattern: every placement makes its row
                # more attractive to the next plan, so runs keep ending after
                # one member and each conflict wastes one stale evaluation.
                # Sequential admission is the same decision sequence without
                # the waste.
                decisions.append(self._place_prepared(
                    plans[index], tensor[index],
                    (peaks[index], mins[index], means[index],
                     float(va_peaks[index]), float(va_mins[index]))))
                index += 1
                continue
            run_members: List[int] = []
            run_rows: Set[int] = set()
            duplicate_vm: Optional[str] = None
            pending = 0
            while index < n:
                plan = plans[index]
                if plan.vm_id in self._placements:
                    # Sequential _place_prepared raises here with the
                    # predecessors already committed; flush, then raise.
                    duplicate_vm = plan.vm_id
                    break
                memory_plan = plan.plans[Resource.MEMORY]
                stats = (peaks[index], mins[index], means[index],
                         float(va_peaks[index]), float(va_mins[index]))
                row = ledger.best_fit_row(
                    tensor[index], memory_plan.guaranteed,
                    memory_plan.window_oversubscribed, self.conservative,
                    stats=stats)
                if row < 0:
                    decision = PlacementDecision(plan.vm_id, False, None,
                                                 "no server fits")
                    self._rejected += 1
                    if self.decisions.maxlen:
                        self.decisions.append(decision)
                    decisions.append(decision)
                    index += 1
                    continue
                if row in run_rows:
                    break
                mean_term = means[index] @ ledger._inv_capacity[:, row]
                if pending:
                    winner_approx = float(
                        (ledger.score_base[row] + mean_term)
                        * ledger._inv_counts[row])
                    rows_view = pending_rows[:pending]
                    overtake_ub = ((pending_ub[:pending]
                                    + means[index]
                                    @ ledger._inv_capacity[:, rows_view])
                                   * ledger._inv_counts[rows_view])
                    if not np.all(overtake_ub
                                  < winner_approx - 2.0 * SCORE_TOLERANCE):
                        break
                account = self._accounts[row]
                pending_rows[pending] = row
                pending_ub[pending] = (float(ledger.score_base[row]
                                             + mean_term) + _RUN_BASE_SLACK)
                pending += 1
                run_rows.add(row)
                run_members.append(index)
                self._placements[plan.vm_id] = account.server_id
                account.plans[plan.vm_id] = plan
                decision = PlacementDecision(plan.vm_id, True,
                                             account.server_id)
                self._accepted += 1
                if self.decisions.maxlen:
                    self.decisions.append(decision)
                decisions.append(decision)
                index += 1
            if pending:
                member_index = np.fromiter(run_members, np.intp, pending)
                ledger.commit_rows(pending_rows[:pending],
                                   [plans[i] for i in run_members],
                                   tensor[member_index])
            if duplicate_vm is not None:
                raise ValueError(f"VM {duplicate_vm} is already placed on "
                                 f"{self._placements[duplicate_vm]}")
            if index < n:
                # The run ended on a conflict (not batch end): multi-member
                # runs earn credit, single-member runs -- where the stale
                # evaluation was pure waste -- spend it.
                credit = min(credit + 1, 4 * _RUN_CREDIT) if pending >= 2 \
                    else credit - 1
        return decisions

    def _place_prepared(self, plan: VMResourcePlan, plan_demand: np.ndarray,
                        stats: Optional[tuple]) -> PlacementDecision:
        if plan.vm_id in self._placements:
            # Silently overwriting would leak the old server's committed
            # demand forever; callers must deallocate first.
            raise ValueError(f"VM {plan.vm_id} is already placed on "
                             f"{self._placements[plan.vm_id]}")
        memory_plan = plan.plans[Resource.MEMORY]
        if self.incremental:
            row = self.ledger.best_fit_row(
                plan_demand, memory_plan.guaranteed,
                memory_plan.window_oversubscribed, self.conservative,
                stats=stats)
        else:
            row = self.ledger.best_fit_row_dense(
                plan_demand, memory_plan.guaranteed,
                memory_plan.window_oversubscribed, self.conservative)
        if row < 0:
            decision = PlacementDecision(plan.vm_id, False, None, "no server fits")
            self._rejected += 1
        else:
            best = self._accounts[row]
            best.commit(plan)
            self._placements[plan.vm_id] = best.server_id
            decision = PlacementDecision(plan.vm_id, True, best.server_id)
            self._accepted += 1
        if self.decisions.maxlen:
            self.decisions.append(decision)
        return decision

    def deallocate(self, vm_id: str) -> None:
        self._spot_vms.pop(vm_id, None)
        server_id = self._placements.pop(vm_id, None)
        if server_id is None:
            return
        self.servers[server_id].release(vm_id)

    def disable_server(self, server_id: str) -> None:
        """Take a failed server out of the placement pool (one-way).

        Committed demand is untouched: the caller decides what happens to
        residents (the simulation engine re-places them on a drain and drops
        them on a crash, via :meth:`deallocate`, which still works on a
        disabled server).
        """
        self.ledger.disable_row(self.servers[server_id]._row)

    def server_of(self, vm_id: str) -> Optional[str]:
        return self._placements.get(vm_id)

    # ------------------------------------------------------------------ #
    # Cluster-level statistics
    # ------------------------------------------------------------------ #
    def accepted_count(self) -> int:
        return self._accepted

    def rejected_count(self) -> int:
        return self._rejected

    def servers_in_use(self) -> int:
        return sum(1 for s in self._accounts if not s.is_empty())

    def total_allocated_request(self, resource: Resource) -> float:
        return float(sum(s.allocated_request(resource) for s in self._accounts))

    def total_capacity(self, resource: Resource) -> float:
        return float(self.ledger.capacity[ALL_RESOURCES.index(resource)].sum())

    def utilization_summary(self) -> Dict[str, float]:
        return {
            "servers_in_use": float(self.servers_in_use()),
            "servers_total": float(len(self.servers)),
            "vms_placed": float(len(self._placements)),
            "rejections": float(self.rejected_count()),
        }


class ReferenceLoopScheduler:
    """The seed per-server-loop best-fit scheduler.

    Kept as the differential-testing and benchmarking reference: it iterates
    every :class:`ServerAccount` and re-runs the scalar admission checks and
    packing score per server, exactly like the original implementation.
    :class:`ClusterScheduler` must produce identical placement decisions.
    """

    def __init__(self, cluster: ClusterConfig, windows: TimeWindowConfig,
                 conservative: bool = True, class_aware: bool = False):
        self.cluster = cluster
        self.windows = windows
        self.conservative = conservative
        self.class_aware = class_aware
        self.servers: Dict[str, ServerAccount] = {}
        for index, server_config in enumerate(cluster.server_configs()):
            server_id = f"{cluster.cluster_id}-s{index:03d}"
            self.servers[server_id] = ServerAccount(server_id, server_config, windows)
        self._placements: Dict[str, str] = {}
        self._spot_vms: Dict[str, None] = {}
        self._disabled: Set[str] = set()

    def _find_best(self, plan: VMResourcePlan) -> Optional[ServerAccount]:
        best_server: Optional[ServerAccount] = None
        best_score = -1.0
        for server in self.servers.values():
            if server.server_id in self._disabled:
                continue
            if not server.can_fit(plan, self.conservative):
                continue
            score = server.packing_score(plan)
            if score > best_score:
                best_score = score
                best_server = server
        return best_server

    def place(self, plan: VMResourcePlan,
              allocation_class: Optional[AllocationClass] = None
              ) -> PlacementDecision:
        if plan.vm_id in self._placements:
            raise ValueError(f"VM {plan.vm_id} is already placed on "
                             f"{self._placements[plan.vm_id]}")
        best_server = self._find_best(plan)
        preempted: List[str] = []
        if (self.class_aware and allocation_class is not None
                and best_server is None
                and allocation_class is AllocationClass.RESERVED):
            while best_server is None and self._spot_vms:
                victim = next(iter(self._spot_vms))
                self.deallocate(victim)
                preempted.append(victim)
                best_server = self._find_best(plan)
        if best_server is None:
            return PlacementDecision(plan.vm_id, False, None, "no server fits",
                                     preempted=tuple(preempted))
        best_server.commit(plan)
        self._placements[plan.vm_id] = best_server.server_id
        if (self.class_aware and allocation_class is AllocationClass.SPOT):
            self._spot_vms[plan.vm_id] = None
        return PlacementDecision(plan.vm_id, True, best_server.server_id,
                                 preempted=tuple(preempted))

    def deallocate(self, vm_id: str) -> None:
        self._spot_vms.pop(vm_id, None)
        server_id = self._placements.pop(vm_id, None)
        if server_id is None:
            return
        self.servers[server_id].release(vm_id)

    def disable_server(self, server_id: str) -> None:
        self._disabled.add(server_id)


def schedule_all(scheduler: ClusterScheduler,
                 plans: Sequence[VMResourcePlan]) -> List[PlacementDecision]:
    """Place a batch of plans in order, returning every decision."""
    return [scheduler.place(plan) for plan in plans]
