"""Cluster scheduler: time-window-aware vector bin packing (Section 3.3).

Traditional VM schedulers check a single demand vector against the free
capacity of each server.  Coach extends the vector with one entry per time
window (plus one for the static guaranteed portion of non-fungible
resources), so VMs with complementary temporal patterns can share the same
oversubscribed capacity.

Two admission checks are provided:

* ``fits_vector_check`` -- the paper's formulation: per-window summed demand
  and the summed PA portions must each fit the server's capacity.
* ``fits_backing_check`` -- the physically conservative variant: the PA pool
  plus the multiplexed VA pool (Eq. 3 + Eq. 4) must fit.  This is the default
  because it guarantees the server never commits more physical memory than it
  has.

Matrix-form bookkeeping
-----------------------

Scheduling-time state lives in a :class:`ClusterLedger` owned by the
:class:`ClusterScheduler`, not in per-server dictionaries:

* ``demand`` -- one ``(n_servers, n_windows)`` committed-demand matrix per
  resource, stored as a single ``(n_resources, n_servers, n_windows)`` array;
* ``pa_memory`` -- an ``(n_servers,)`` vector of committed guaranteed (PA)
  memory;
* ``va_demand`` -- an ``(n_servers, n_windows)`` matrix of committed
  oversubscribed (VA) demand.

``ClusterScheduler.place`` evaluates both admission checks and the best-fit
packing score for *every server at once* with a handful of broadcasted numpy
operations, instead of looping over servers and re-running per-resource
checks.  ``commit``/``release`` are row updates.  The arithmetic is the same
as the per-server formulation, so placement decisions are identical to the
reference loop (see :class:`ReferenceLoopScheduler`, kept for differential
testing and benchmarking); only the evaluation order changes, turning the
per-VM placement cost from O(servers x resources x windows) Python iterations
into a few dense matrix operations.

:class:`ServerAccount` remains the public per-server API, but is now a thin
view over one ledger row; accounts constructed standalone get a private
single-row ledger, so existing callers and tests keep working unchanged.
"""

# repro: hot-path  -- REP003: placement evaluates every server per VM; the
# ledger matrices are updated by row, never rebuilt or copied per plan.

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource, ResourceVector
from repro.core.windows import VMResourcePlan
from repro.trace.hardware import ClusterConfig, ServerConfig
from repro.trace.timeseries import TimeWindowConfig

#: Tolerance used by the admission checks (matches the seed implementation).
FIT_EPSILON = 1e-6
#: Residues at or below this magnitude after a release are snapped to zero so
#: repeated commit/release churn cannot accumulate float drift.
RESIDUE_EPSILON = 1e-9

#: Indices of resources inside ``ALL_RESOURCES``-ordered arrays.
_CPU_INDEX = ALL_RESOURCES.index(Resource.CPU)
_MEMORY_INDEX = ALL_RESOURCES.index(Resource.MEMORY)
_NON_MEMORY_INDICES = np.array(
    [i for i, r in enumerate(ALL_RESOURCES) if r is not Resource.MEMORY])


def plan_demand_matrix(plan: VMResourcePlan) -> np.ndarray:
    """Stack a plan's per-resource window demands, shape ``(n_resources, n_windows)``."""
    return np.stack([plan.plans[r].window_demand for r in ALL_RESOURCES])


class ClusterLedger:
    """Cluster-level matrix bookkeeping of committed scheduling demand.

    One row per server.  All state the admission checks and the packing score
    need is kept in dense arrays so the scheduler can evaluate every server
    in one vectorized pass.
    """

    __slots__ = ("windows", "n_servers", "n_windows", "capacity", "demand",
                 "pa_memory", "va_demand")

    def __init__(self, server_configs: Sequence[ServerConfig],
                 windows: TimeWindowConfig):
        self.windows = windows
        self.n_servers = len(server_configs)
        self.n_windows = windows.windows_per_day
        capacity = np.zeros((len(ALL_RESOURCES), self.n_servers))
        for column, config in enumerate(server_configs):
            vector = config.capacity_vector()
            for row, resource in enumerate(ALL_RESOURCES):
                capacity[row, column] = vector[resource]
        self.capacity = capacity
        self.demand = np.zeros((len(ALL_RESOURCES), self.n_servers, self.n_windows))
        self.pa_memory = np.zeros(self.n_servers)
        self.va_demand = np.zeros((self.n_servers, self.n_windows))

    # ------------------------------------------------------------------ #
    # Vectorized admission checks and packing score
    # ------------------------------------------------------------------ #
    def hypothetical_demand(self, plan_demand: np.ndarray) -> np.ndarray:
        """Committed demand as if *plan_demand* were placed on every server.

        The ``(n_resources, n_servers, n_windows)`` array is the dominant
        per-placement allocation, so ``place()`` computes it once and feeds
        it to both the admission masks and the packing scores.
        """
        return self.demand + plan_demand[:, None, :]

    def fit_masks(self, plan_demand: np.ndarray, guaranteed_memory_gb: float,
                  va_window_demand: np.ndarray,
                  hypothetical: Optional[np.ndarray] = None) -> tuple:
        """Evaluate both admission checks for every server at once.

        Returns ``(vector_ok, backing_ok)`` boolean arrays of shape
        ``(n_servers,)`` with the same semantics as
        :meth:`ServerAccount.fits_vector_check` and
        :meth:`ServerAccount.fits_backing_check`.
        """
        if hypothetical is None:
            hypothetical = self.hypothetical_demand(plan_demand)
        window_ok = np.all(hypothetical <= self.capacity[:, :, None] + FIT_EPSILON,
                           axis=2)
        capacity_memory = self.capacity[_MEMORY_INDEX]
        new_pa = self.pa_memory + guaranteed_memory_gb
        vector_ok = window_ok.all(axis=0) & (new_pa <= capacity_memory + FIT_EPSILON)
        new_va = (self.va_demand + va_window_demand[None, :]).max(axis=1)
        backing_ok = (np.all(window_ok[_NON_MEMORY_INDICES], axis=0)
                      & (new_pa + new_va <= capacity_memory + FIT_EPSILON))
        return vector_ok, backing_ok

    def packing_scores(self, plan_demand: Optional[np.ndarray] = None,
                       hypothetical: Optional[np.ndarray] = None) -> np.ndarray:
        """Best-fit packing score of every server, shape ``(n_servers,)``.

        Same semantics as :meth:`ServerAccount.packing_score`: the committed
        fraction of capacity, averaged over windows and over the resources
        with positive capacity, optionally as if *plan_demand* were committed.
        The mean is taken over the summed demand (not split into per-term
        means) so the scores stay bitwise-identical to the per-server loop.
        """
        if hypothetical is None:
            hypothetical = (self.demand if plan_demand is None
                            else self.hypothetical_demand(plan_demand))
        means = hypothetical.mean(axis=2)
        positive = self.capacity > 0
        ratios = np.where(positive, means / np.where(positive, self.capacity, 1.0), 0.0)
        counts = positive.sum(axis=0)
        return ratios.sum(axis=0) / np.maximum(counts, 1)

    # ------------------------------------------------------------------ #
    # Row updates
    # ------------------------------------------------------------------ #
    def commit_row(self, row: int, plan: VMResourcePlan) -> None:
        for index, resource in enumerate(ALL_RESOURCES):
            self.demand[index, row, :] += plan.plans[resource].window_demand
        memory_plan = plan.plans[Resource.MEMORY]
        self.pa_memory[row] += memory_plan.guaranteed
        self.va_demand[row, :] += memory_plan.window_oversubscribed

    def release_row(self, row: int, plan: VMResourcePlan) -> None:
        """Subtract a plan from a row, snapping near-zero residues to zero.

        ``commit`` adds and ``release`` subtracts floats in whatever order
        plans churn through the server, so exact cancellation is not
        guaranteed; without the snap, residues of a few ULPs accumulate and
        make servers look permanently fuller than they are.
        """
        for index, resource in enumerate(ALL_RESOURCES):
            line = self.demand[index, row]
            line -= plan.plans[resource].window_demand
            np.maximum(line, 0.0, out=line)
            line[line <= RESIDUE_EPSILON] = 0.0
        memory_plan = plan.plans[Resource.MEMORY]
        new_pa = self.pa_memory[row] - memory_plan.guaranteed
        self.pa_memory[row] = 0.0 if new_pa <= RESIDUE_EPSILON else new_pa
        va = self.va_demand[row]
        va -= memory_plan.window_oversubscribed
        np.maximum(va, 0.0, out=va)
        va[va <= RESIDUE_EPSILON] = 0.0

    def assert_row_empty(self, row: int) -> None:
        """Verify a row carries no demand (called when its last plan leaves)."""
        residue = max(float(self.demand[:, row].max(initial=0.0)),
                      float(self.pa_memory[row]),
                      float(self.va_demand[row].max(initial=0.0)))
        if residue > FIT_EPSILON:
            raise AssertionError(
                f"server row {row} still carries {residue:g} committed demand "
                "after its last plan was released")
        self.demand[:, row, :] = 0.0
        self.pa_memory[row] = 0.0
        self.va_demand[row, :] = 0.0


class ServerAccount:
    """Scheduling-time bookkeeping of the plans committed to one server.

    A thin view over one row of a :class:`ClusterLedger`.  Accounts created
    standalone (outside a :class:`ClusterScheduler`) own a private single-row
    ledger, which preserves the original standalone API.
    """

    __slots__ = ("server_id", "config", "windows", "plans", "_ledger", "_row")

    def __init__(self, server_id: str, config: ServerConfig,
                 windows: TimeWindowConfig,
                 ledger: Optional[ClusterLedger] = None, row: int = 0):
        self.server_id = server_id
        self.config = config
        self.windows = windows
        if ledger is None:
            ledger = ClusterLedger([config], windows)
            row = 0
        self._ledger = ledger
        self._row = row
        #: Plans currently placed on this server, keyed by VM id.
        self.plans: Dict[str, VMResourcePlan] = {}

    # ------------------------------------------------------------------ #
    # Capacity accessors
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> ResourceVector:
        return self.config.capacity_vector()

    @property
    def window_demand(self) -> Dict[Resource, np.ndarray]:
        """Per-resource committed demand per window (views into the ledger)."""
        return {r: self._ledger.demand[i, self._row]
                for i, r in enumerate(ALL_RESOURCES)}

    @property
    def pa_memory_gb(self) -> float:
        """Committed guaranteed (PA) memory in GB."""
        return float(self._ledger.pa_memory[self._row])

    @property
    def va_window_demand(self) -> np.ndarray:
        """Per-window committed oversubscribed (VA) memory demand in GB."""
        return self._ledger.va_demand[self._row]

    @property
    def va_backing_gb(self) -> float:
        """Physical memory reserved for the oversubscribed pool (Eq. 4)."""
        va = self.va_window_demand
        return float(va.max()) if va.size else 0.0

    @property
    def committed_memory_backing_gb(self) -> float:
        return self.pa_memory_gb + self.va_backing_gb

    @property
    def n_vms(self) -> int:
        return len(self.plans)

    def allocated_request(self, resource: Resource) -> float:
        """Sum of the full requested allocations (what customers bought)."""
        return float(sum(p.plans[resource].requested for p in self.plans.values()))

    # ------------------------------------------------------------------ #
    # Admission checks
    # ------------------------------------------------------------------ #
    def fits_vector_check(self, plan: VMResourcePlan) -> bool:
        """The paper's windows-plus-one vector check."""
        capacity = self.capacity
        window_demand = self.window_demand
        for resource in ALL_RESOURCES:
            demand = plan.plans[resource].window_demand
            if np.any(window_demand[resource] + demand > capacity[resource] + FIT_EPSILON):
                return False
        new_pa = self.pa_memory_gb + plan.plans[Resource.MEMORY].guaranteed
        return new_pa <= capacity[Resource.MEMORY] + FIT_EPSILON

    def fits_backing_check(self, plan: VMResourcePlan) -> bool:
        """Conservative check: physical PA + multiplexed VA backing must fit."""
        capacity = self.capacity
        window_demand = self.window_demand
        for resource in ALL_RESOURCES:
            if resource is Resource.MEMORY:
                continue
            demand = plan.plans[resource].window_demand
            if np.any(window_demand[resource] + demand > capacity[resource] + FIT_EPSILON):
                return False
        memory_plan = plan.plans[Resource.MEMORY]
        new_pa = self.pa_memory_gb + memory_plan.guaranteed
        new_va = float((self.va_window_demand + memory_plan.window_oversubscribed).max())
        return new_pa + new_va <= capacity[Resource.MEMORY] + FIT_EPSILON

    def can_fit(self, plan: VMResourcePlan, conservative: bool = True) -> bool:
        if plan.windows.windows_per_day != self.windows.windows_per_day:
            raise ValueError("plan and server use different time window configurations")
        if conservative:
            return self.fits_backing_check(plan) and self.fits_vector_check(plan)
        return self.fits_vector_check(plan)

    # ------------------------------------------------------------------ #
    # Commit / release
    # ------------------------------------------------------------------ #
    def commit(self, plan: VMResourcePlan) -> None:
        if plan.vm_id in self.plans:
            raise ValueError(f"VM {plan.vm_id} already placed on {self.server_id}")
        self._ledger.commit_row(self._row, plan)
        self.plans[plan.vm_id] = plan

    def release(self, vm_id: str) -> VMResourcePlan:
        try:
            plan = self.plans.pop(vm_id)
        except KeyError as exc:
            raise KeyError(f"VM {vm_id} is not placed on {self.server_id}") from exc
        self._ledger.release_row(self._row, plan)
        if not self.plans:
            self._ledger.assert_row_empty(self._row)
        return plan

    # ------------------------------------------------------------------ #
    # Packing diagnostics
    # ------------------------------------------------------------------ #
    def packing_score(self, plan: Optional[VMResourcePlan] = None) -> float:
        """Fraction of capacity committed (averaged over resources and windows).

        Higher means fuller.  When *plan* is given, the score is computed as
        if the plan were committed -- the best-fit scheduler places each VM on
        the fittable server that would become fullest, which consolidates VMs
        onto fewer servers.
        """
        capacity = self.capacity
        window_demand = self.window_demand
        scores = []
        for resource in ALL_RESOURCES:
            demand = window_demand[resource]
            if plan is not None:
                demand = demand + plan.plans[resource].window_demand
            if capacity[resource] > 0:
                scores.append(float(demand.mean()) / capacity[resource])
        return float(np.mean(scores)) if scores else 0.0

    def is_empty(self) -> bool:
        return not self.plans


def bulk_cpu_capacity_and_memory_backing(accounts: Sequence[ServerAccount]):
    """CPU capacity and committed memory backing per account, as vectors.

    When every account is a view over the same ledger (accounts of one
    :class:`ClusterScheduler`), both vectors come straight out of the ledger
    matrices; otherwise each account's property chain is walked.  The
    arithmetic (``pa + va.max()``) is identical either way, so callers such
    as the vectorized violation meter stay bitwise-equivalent to per-account
    loops.
    """
    ledger = accounts[0]._ledger
    if all(account._ledger is ledger for account in accounts):
        rows = np.fromiter((account._row for account in accounts), np.intp,
                           len(accounts))
        capacity_cpu = ledger.capacity[_CPU_INDEX, rows]
        va = ledger.va_demand[rows]
        backing = ledger.pa_memory[rows] + (va.max(axis=1) if va.size else 0.0)
        return capacity_cpu, backing
    capacity_cpu = np.array([a.capacity[Resource.CPU] for a in accounts])
    backing = np.array([a.committed_memory_backing_gb for a in accounts])
    return capacity_cpu, backing


@dataclass
class PlacementDecision:
    """Result of asking the scheduler to place one VM."""

    vm_id: str
    accepted: bool
    server_id: Optional[str] = None
    reason: str = ""


class ClusterScheduler:
    """Best-fit scheduler over the servers of one cluster.

    Placement is fully vectorized: both admission checks and the best-fit
    packing score are evaluated for all servers in one pass over the
    :class:`ClusterLedger` matrices.  Ties on the packing score resolve to
    the lowest server index, matching the reference per-server loop.

    ``decisions`` keeps only the most recent *decision_history* outcomes (a
    diagnostic ring); accept/reject totals are running counters, so neither
    grows with the number of placements.
    """

    def __init__(self, cluster: ClusterConfig, windows: TimeWindowConfig,
                 conservative: bool = True, decision_history: int = 256):
        self.cluster = cluster
        self.windows = windows
        self.conservative = conservative
        server_configs = cluster.server_configs()
        self.ledger = ClusterLedger(server_configs, windows)
        self.servers: Dict[str, ServerAccount] = {}
        self._accounts: List[ServerAccount] = []
        for index, server_config in enumerate(server_configs):
            server_id = f"{cluster.cluster_id}-s{index:03d}"
            account = ServerAccount(server_id, server_config, windows,
                                    ledger=self.ledger, row=index)
            self.servers[server_id] = account
            self._accounts.append(account)
        self._placements: Dict[str, str] = {}
        self._accepted = 0
        self._rejected = 0
        self.decisions: Deque[PlacementDecision] = deque(maxlen=max(0, decision_history))

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def place(self, plan: VMResourcePlan) -> PlacementDecision:
        """Place a VM plan on the best-fitting server (fullest that still fits)."""
        if plan.windows.windows_per_day != self.windows.windows_per_day:
            raise ValueError("plan and server use different time window configurations")
        if plan.vm_id in self._placements:
            # Silently overwriting would leak the old server's committed
            # demand forever; callers must deallocate first.
            raise ValueError(f"VM {plan.vm_id} is already placed on "
                             f"{self._placements[plan.vm_id]}")
        plan_demand = plan_demand_matrix(plan)
        memory_plan = plan.plans[Resource.MEMORY]
        hypothetical = self.ledger.hypothetical_demand(plan_demand)
        vector_ok, backing_ok = self.ledger.fit_masks(
            plan_demand, memory_plan.guaranteed, memory_plan.window_oversubscribed,
            hypothetical=hypothetical)
        mask = (vector_ok & backing_ok) if self.conservative else vector_ok

        if not mask.any():
            decision = PlacementDecision(plan.vm_id, False, None, "no server fits")
            self._rejected += 1
        else:
            scores = np.where(
                mask, self.ledger.packing_scores(hypothetical=hypothetical), -np.inf)
            best = self._accounts[int(np.argmax(scores))]
            best.commit(plan)
            self._placements[plan.vm_id] = best.server_id
            decision = PlacementDecision(plan.vm_id, True, best.server_id)
            self._accepted += 1
        if self.decisions.maxlen:
            self.decisions.append(decision)
        return decision

    def deallocate(self, vm_id: str) -> None:
        server_id = self._placements.pop(vm_id, None)
        if server_id is None:
            return
        self.servers[server_id].release(vm_id)

    def server_of(self, vm_id: str) -> Optional[str]:
        return self._placements.get(vm_id)

    # ------------------------------------------------------------------ #
    # Cluster-level statistics
    # ------------------------------------------------------------------ #
    def accepted_count(self) -> int:
        return self._accepted

    def rejected_count(self) -> int:
        return self._rejected

    def servers_in_use(self) -> int:
        return sum(1 for s in self._accounts if not s.is_empty())

    def total_allocated_request(self, resource: Resource) -> float:
        return float(sum(s.allocated_request(resource) for s in self._accounts))

    def total_capacity(self, resource: Resource) -> float:
        return float(self.ledger.capacity[ALL_RESOURCES.index(resource)].sum())

    def utilization_summary(self) -> Dict[str, float]:
        return {
            "servers_in_use": float(self.servers_in_use()),
            "servers_total": float(len(self.servers)),
            "vms_placed": float(len(self._placements)),
            "rejections": float(self.rejected_count()),
        }


class ReferenceLoopScheduler:
    """The seed per-server-loop best-fit scheduler.

    Kept as the differential-testing and benchmarking reference: it iterates
    every :class:`ServerAccount` and re-runs the scalar admission checks and
    packing score per server, exactly like the original implementation.
    :class:`ClusterScheduler` must produce identical placement decisions.
    """

    def __init__(self, cluster: ClusterConfig, windows: TimeWindowConfig,
                 conservative: bool = True):
        self.cluster = cluster
        self.windows = windows
        self.conservative = conservative
        self.servers: Dict[str, ServerAccount] = {}
        for index, server_config in enumerate(cluster.server_configs()):
            server_id = f"{cluster.cluster_id}-s{index:03d}"
            self.servers[server_id] = ServerAccount(server_id, server_config, windows)
        self._placements: Dict[str, str] = {}

    def place(self, plan: VMResourcePlan) -> PlacementDecision:
        if plan.vm_id in self._placements:
            raise ValueError(f"VM {plan.vm_id} is already placed on "
                             f"{self._placements[plan.vm_id]}")
        best_server: Optional[ServerAccount] = None
        best_score = -1.0
        for server in self.servers.values():
            if not server.can_fit(plan, self.conservative):
                continue
            score = server.packing_score(plan)
            if score > best_score:
                best_score = score
                best_server = server
        if best_server is None:
            return PlacementDecision(plan.vm_id, False, None, "no server fits")
        best_server.commit(plan)
        self._placements[plan.vm_id] = best_server.server_id
        return PlacementDecision(plan.vm_id, True, best_server.server_id)

    def deallocate(self, vm_id: str) -> None:
        server_id = self._placements.pop(vm_id, None)
        if server_id is None:
            return
        self.servers[server_id].release(vm_id)


def schedule_all(scheduler: ClusterScheduler,
                 plans: Sequence[VMResourcePlan]) -> List[PlacementDecision]:
    """Place a batch of plans in order, returning every decision."""
    return [scheduler.place(plan) for plan in plans]
