"""Cluster scheduler: time-window-aware vector bin packing (Section 3.3).

Traditional VM schedulers check a single demand vector against the free
capacity of each server.  Coach extends the vector with one entry per time
window (plus one for the static guaranteed portion of non-fungible
resources), so VMs with complementary temporal patterns can share the same
oversubscribed capacity.

Two admission checks are provided:

* ``fits_vector_check`` -- the paper's formulation: per-window summed demand
  and the summed PA portions must each fit the server's capacity.
* ``fits_backing_check`` -- the physically conservative variant: the PA pool
  plus the multiplexed VA pool (Eq. 3 + Eq. 4) must fit.  This is the default
  because it guarantees the server never commits more physical memory than it
  has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource, ResourceVector, is_fungible
from repro.core.windows import VMResourcePlan
from repro.trace.hardware import ClusterConfig, ServerConfig
from repro.trace.timeseries import TimeWindowConfig


@dataclass
class ServerAccount:
    """Scheduling-time bookkeeping of the plans committed to one server."""

    server_id: str
    config: ServerConfig
    windows: TimeWindowConfig
    #: Per-resource committed demand per window, shape (n_windows,).
    window_demand: Dict[Resource, np.ndarray] = field(default_factory=dict)
    #: Committed guaranteed (PA) memory in GB.
    pa_memory_gb: float = 0.0
    #: Per-window committed oversubscribed (VA) memory demand in GB.
    va_window_demand: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Plans currently placed on this server, keyed by VM id.
    plans: Dict[str, VMResourcePlan] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.windows.windows_per_day
        if not self.window_demand:
            self.window_demand = {r: np.zeros(n) for r in ALL_RESOURCES}
        if self.va_window_demand.size == 0:
            self.va_window_demand = np.zeros(n)

    # ------------------------------------------------------------------ #
    # Capacity accessors
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> ResourceVector:
        return self.config.capacity_vector()

    @property
    def va_backing_gb(self) -> float:
        """Physical memory reserved for the oversubscribed pool (Eq. 4)."""
        return float(self.va_window_demand.max()) if self.va_window_demand.size else 0.0

    @property
    def committed_memory_backing_gb(self) -> float:
        return self.pa_memory_gb + self.va_backing_gb

    @property
    def n_vms(self) -> int:
        return len(self.plans)

    def allocated_request(self, resource: Resource) -> float:
        """Sum of the full requested allocations (what customers bought)."""
        return float(sum(p.plans[resource].requested for p in self.plans.values()))

    # ------------------------------------------------------------------ #
    # Admission checks
    # ------------------------------------------------------------------ #
    def fits_vector_check(self, plan: VMResourcePlan) -> bool:
        """The paper's windows-plus-one vector check."""
        capacity = self.capacity
        for resource in ALL_RESOURCES:
            demand = plan.plans[resource].window_demand
            if np.any(self.window_demand[resource] + demand > capacity[resource] + 1e-6):
                return False
        new_pa = self.pa_memory_gb + plan.plans[Resource.MEMORY].guaranteed
        return new_pa <= capacity[Resource.MEMORY] + 1e-6

    def fits_backing_check(self, plan: VMResourcePlan) -> bool:
        """Conservative check: physical PA + multiplexed VA backing must fit."""
        capacity = self.capacity
        for resource in ALL_RESOURCES:
            if resource is Resource.MEMORY:
                continue
            demand = plan.plans[resource].window_demand
            if np.any(self.window_demand[resource] + demand > capacity[resource] + 1e-6):
                return False
        memory_plan = plan.plans[Resource.MEMORY]
        new_pa = self.pa_memory_gb + memory_plan.guaranteed
        new_va = float((self.va_window_demand + memory_plan.window_oversubscribed).max())
        return new_pa + new_va <= capacity[Resource.MEMORY] + 1e-6

    def can_fit(self, plan: VMResourcePlan, conservative: bool = True) -> bool:
        if plan.windows.windows_per_day != self.windows.windows_per_day:
            raise ValueError("plan and server use different time window configurations")
        if conservative:
            return self.fits_backing_check(plan) and self.fits_vector_check(plan)
        return self.fits_vector_check(plan)

    # ------------------------------------------------------------------ #
    # Commit / release
    # ------------------------------------------------------------------ #
    def commit(self, plan: VMResourcePlan) -> None:
        if plan.vm_id in self.plans:
            raise ValueError(f"VM {plan.vm_id} already placed on {self.server_id}")
        for resource in ALL_RESOURCES:
            self.window_demand[resource] = (self.window_demand[resource]
                                            + plan.plans[resource].window_demand)
        memory_plan = plan.plans[Resource.MEMORY]
        self.pa_memory_gb += memory_plan.guaranteed
        self.va_window_demand = self.va_window_demand + memory_plan.window_oversubscribed
        self.plans[plan.vm_id] = plan

    def release(self, vm_id: str) -> VMResourcePlan:
        try:
            plan = self.plans.pop(vm_id)
        except KeyError as exc:
            raise KeyError(f"VM {vm_id} is not placed on {self.server_id}") from exc
        for resource in ALL_RESOURCES:
            self.window_demand[resource] = np.maximum(
                0.0, self.window_demand[resource] - plan.plans[resource].window_demand)
        memory_plan = plan.plans[Resource.MEMORY]
        self.pa_memory_gb = max(0.0, self.pa_memory_gb - memory_plan.guaranteed)
        self.va_window_demand = np.maximum(
            0.0, self.va_window_demand - memory_plan.window_oversubscribed)
        return plan

    # ------------------------------------------------------------------ #
    # Packing diagnostics
    # ------------------------------------------------------------------ #
    def packing_score(self, plan: Optional[VMResourcePlan] = None) -> float:
        """Fraction of capacity committed (averaged over resources and windows).

        Higher means fuller.  When *plan* is given, the score is computed as
        if the plan were committed -- the best-fit scheduler places each VM on
        the fittable server that would become fullest, which consolidates VMs
        onto fewer servers.
        """
        capacity = self.capacity
        scores = []
        for resource in ALL_RESOURCES:
            demand = self.window_demand[resource].copy()
            if plan is not None:
                demand = demand + plan.plans[resource].window_demand
            if capacity[resource] > 0:
                scores.append(float(demand.mean()) / capacity[resource])
        return float(np.mean(scores)) if scores else 0.0

    def is_empty(self) -> bool:
        return not self.plans


@dataclass
class PlacementDecision:
    """Result of asking the scheduler to place one VM."""

    vm_id: str
    accepted: bool
    server_id: Optional[str] = None
    reason: str = ""


class ClusterScheduler:
    """Best-fit scheduler over the servers of one cluster."""

    def __init__(self, cluster: ClusterConfig, windows: TimeWindowConfig,
                 conservative: bool = True):
        self.cluster = cluster
        self.windows = windows
        self.conservative = conservative
        self.servers: Dict[str, ServerAccount] = {}
        for index, server_config in enumerate(cluster.server_configs()):
            server_id = f"{cluster.cluster_id}-s{index:03d}"
            self.servers[server_id] = ServerAccount(server_id, server_config, windows)
        self._placements: Dict[str, str] = {}
        self.decisions: List[PlacementDecision] = []

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def place(self, plan: VMResourcePlan) -> PlacementDecision:
        """Place a VM plan on the best-fitting server (fullest that still fits)."""
        best_server: Optional[ServerAccount] = None
        best_score = -1.0
        for server in self.servers.values():
            if not server.can_fit(plan, self.conservative):
                continue
            score = server.packing_score(plan)
            if score > best_score:
                best_score = score
                best_server = server

        if best_server is None:
            decision = PlacementDecision(plan.vm_id, False, None, "no server fits")
        else:
            best_server.commit(plan)
            self._placements[plan.vm_id] = best_server.server_id
            decision = PlacementDecision(plan.vm_id, True, best_server.server_id)
        self.decisions.append(decision)
        return decision

    def deallocate(self, vm_id: str) -> None:
        server_id = self._placements.pop(vm_id, None)
        if server_id is None:
            return
        self.servers[server_id].release(vm_id)

    def server_of(self, vm_id: str) -> Optional[str]:
        return self._placements.get(vm_id)

    # ------------------------------------------------------------------ #
    # Cluster-level statistics
    # ------------------------------------------------------------------ #
    def accepted_count(self) -> int:
        return sum(1 for d in self.decisions if d.accepted)

    def rejected_count(self) -> int:
        return sum(1 for d in self.decisions if not d.accepted)

    def servers_in_use(self) -> int:
        return sum(1 for s in self.servers.values() if not s.is_empty())

    def total_allocated_request(self, resource: Resource) -> float:
        return float(sum(s.allocated_request(resource) for s in self.servers.values()))

    def total_capacity(self, resource: Resource) -> float:
        return float(sum(s.capacity[resource] for s in self.servers.values()))

    def utilization_summary(self) -> Dict[str, float]:
        return {
            "servers_in_use": float(self.servers_in_use()),
            "servers_total": float(len(self.servers)),
            "vms_placed": float(len(self._placements)),
            "rejections": float(self.rejected_count()),
        }


def schedule_all(scheduler: ClusterScheduler,
                 plans: Sequence[VMResourcePlan]) -> List[PlacementDecision]:
    """Place a batch of plans in order, returning every decision."""
    return [scheduler.place(plan) for plan in plans]
