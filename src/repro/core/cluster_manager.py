"""Cluster manager: turns VM requests into CoachVM placements (Section 3.1).

For every incoming request the cluster manager asks the prediction model for
per-window utilization, converts the request into guaranteed/oversubscribed
portions under the active policy, and hands the resulting plan to the cluster
scheduler.  Requests from customers without sufficient history are admitted
without oversubscription (conservative default, G2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.coachvm import CoachVM
from repro.core.policy import PolicyConfig
from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import ClusterScheduler, PlacementDecision
from repro.core.windows import VMResourcePlan, plan_vm
from repro.prediction.utilization_model import (
    LongTermUtilizationModel,
    NoOversubscriptionModel,
    OracleUtilizationModel,
    WindowUtilizationPrediction,
)
from repro.trace.hardware import ClusterConfig
from repro.trace.vm import VMRecord


@dataclass
class AdmissionResult:
    """Outcome of one VM request."""

    vm_id: str
    accepted: bool
    coach_vm: Optional[CoachVM] = None
    decision: Optional[PlacementDecision] = None

    @property
    def server_id(self) -> Optional[str]:
        return self.decision.server_id if self.decision else None

    @property
    def preempted(self) -> Tuple[str, ...]:
        """Spot VMs evicted while admitting this request (class-aware only)."""
        return self.decision.preempted if self.decision else ()


@dataclass
class ClusterManagerStats:
    requests: int = 0
    accepted: int = 0
    rejected: int = 0
    oversubscribed: int = 0
    not_oversubscribed: int = 0
    preempted: int = 0
    savings_gb: float = 0.0
    savings_cores: float = 0.0


class ClusterManager:
    """Logically centralised manager for one cluster."""

    def __init__(
        self,
        cluster: ClusterConfig,
        policy: PolicyConfig,
        prediction_model: Optional[object] = None,
        conservative_admission: bool = True,
        class_aware: bool = False,
    ):
        self.cluster = cluster
        self.policy = policy
        self.class_aware = class_aware
        if prediction_model is None:
            prediction_model = NoOversubscriptionModel(policy.windows)
        self.prediction_model = prediction_model
        self.scheduler = ClusterScheduler(cluster, policy.windows,
                                          conservative=conservative_admission,
                                          class_aware=class_aware)
        self.stats = ClusterManagerStats()
        self._vms: Dict[str, CoachVM] = {}
        #: server id -> ordered set of resident VM ids (dict used as an
        #: ordered set), maintained on admit/deallocate so
        #: :meth:`vms_on_server` does not scan every placed VM.
        self._server_vms: Dict[str, Dict[str, None]] = {}

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def _predict(self, vm: VMRecord) -> WindowUtilizationPrediction:
        prediction = self.prediction_model.predict(vm)
        if prediction.windows.windows_per_day != self.policy.windows.windows_per_day:
            raise ValueError(
                "prediction model and policy use different time window configurations")
        return prediction

    def build_plan(self, vm: VMRecord) -> VMResourcePlan:
        """Convert a VM request into a resource plan under the active policy."""
        prediction = self._predict(vm)
        allocation = {r: vm.allocated(r) for r in ALL_RESOURCES}
        oversubscribe = self.policy.oversubscribe and prediction.oversubscribable
        return plan_vm(vm.vm_id, allocation, prediction, oversubscribe,
                       self.policy.memory_granularity_gb)

    def request_vm(self, vm: VMRecord) -> AdmissionResult:
        """Admit (or reject) one VM request."""
        self.stats.requests += 1
        plan = self.build_plan(vm)
        if self.class_aware:
            decision = self.scheduler.place(
                plan, allocation_class=vm.allocation_class)
        else:
            decision = self.scheduler.place(plan)
        return self._register(vm, plan, decision)

    def request_batch(self, vms: Sequence[VMRecord]) -> List[AdmissionResult]:
        """Admit (or reject) an arrival batch through one scheduler call.

        Plans are built up front (the prediction model is read-only, so each
        plan is identical to what :meth:`request_vm` would build) and placed
        via :meth:`ClusterScheduler.place_batch`, which amortizes the
        per-plan preprocessing while still admitting sequentially against
        the ledger.  Results and stats are identical to calling
        :meth:`request_vm` on each record in order.

        Under class-aware admission the batch path degrades to the
        sequential loop: a preemption mid-batch invalidates the frozen
        ledger snapshot the run-based batcher reasons against, so batching
        could not stay decision-identical.
        """
        vms = list(vms)
        if self.class_aware:
            results = []
            for vm in vms:
                self.stats.requests += 1
                plan = self.build_plan(vm)
                decision = self.scheduler.place(
                    plan, allocation_class=vm.allocation_class)
                results.append(self._register(vm, plan, decision))
            return results
        self.stats.requests += len(vms)
        plans = [self.build_plan(vm) for vm in vms]
        decisions = self.scheduler.place_batch(plans)
        return [self._register(vm, plan, decision)
                for vm, plan, decision in zip(vms, plans, decisions)]

    def _register(self, vm: VMRecord, plan: VMResourcePlan,
                  decision: PlacementDecision) -> AdmissionResult:
        """Post-placement bookkeeping shared by the single and batch paths."""
        # The scheduler already released preempted spot VMs from its ledger;
        # mirror that in the manager's registries (evictions stand even when
        # the arrival itself was rejected).
        for victim in decision.preempted:
            coach_vm = self._vms.pop(victim, None)
            if coach_vm is not None:
                self._unindex(victim, coach_vm.server_id)
            self.stats.preempted += 1
        if not decision.accepted:
            self.stats.rejected += 1
            return AdmissionResult(vm.vm_id, False, None, decision)

        coach_vm = CoachVM.from_plan(vm, plan, self.policy.va_backing_fraction)
        coach_vm.server_id = decision.server_id
        self._vms[vm.vm_id] = coach_vm
        self._server_vms.setdefault(decision.server_id, {})[vm.vm_id] = None
        self.stats.accepted += 1
        if plan.oversubscribed:
            self.stats.oversubscribed += 1
        else:
            self.stats.not_oversubscribed += 1
        savings = plan.total_savings()
        self.stats.savings_gb += savings[Resource.MEMORY]
        self.stats.savings_cores += savings[Resource.CPU]
        return AdmissionResult(vm.vm_id, True, coach_vm, decision)

    def request_many(self, vms: Sequence[VMRecord]) -> List[AdmissionResult]:
        """Sequential reference for :meth:`request_batch` (kept for
        differential testing)."""
        return [self.request_vm(vm) for vm in vms]

    def deallocate(self, vm_id: str) -> None:
        """Release a VM's resources when it is deallocated or migrated away."""
        self.scheduler.deallocate(vm_id)
        coach_vm = self._vms.pop(vm_id, None)
        if coach_vm is not None:
            self._unindex(vm_id, coach_vm.server_id)

    def disable_server(self, server_id: str) -> None:
        """Remove a failed server from the placement pool (residents stay).

        Callers evacuate residents first (:meth:`vms_on_server` +
        :meth:`deallocate`) or drop them; the flip itself only stops future
        placements (:meth:`ClusterScheduler.disable_server`).
        """
        self.scheduler.disable_server(server_id)

    def _unindex(self, vm_id: str, server_id: Optional[str]) -> None:
        if server_id is None:
            return
        residents = self._server_vms.get(server_id)
        if residents is not None:
            residents.pop(vm_id, None)
            if not residents:
                del self._server_vms[server_id]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def placed_vms(self) -> Dict[str, CoachVM]:
        return dict(self._vms)

    def vms_on_server(self, server_id: str) -> List[CoachVM]:
        """Resident CoachVMs of one server, via the maintained index (O(residents))."""
        return [self._vms[vm_id]
                for vm_id in self._server_vms.get(server_id, ())]

    def capacity_summary(self) -> Dict[str, float]:
        """Headline packing numbers for the cluster."""
        scheduler = self.scheduler
        return {
            "vms_placed": float(self.stats.accepted),
            "vms_rejected": float(self.stats.rejected),
            "servers_in_use": float(scheduler.servers_in_use()),
            "allocated_cores": scheduler.total_allocated_request(Resource.CPU),
            "allocated_memory_gb": scheduler.total_allocated_request(Resource.MEMORY),
            "capacity_cores": scheduler.total_capacity(Resource.CPU),
            "capacity_memory_gb": scheduler.total_capacity(Resource.MEMORY),
            "savings_memory_gb": self.stats.savings_gb,
            "savings_cores": self.stats.savings_cores,
        }


def build_prediction_model(policy: PolicyConfig, history_vms: Sequence[VMRecord],
                           oracle: bool = False,
                           n_estimators: int = 15) -> object:
    """Construct the prediction model appropriate for a policy.

    * ``NONE`` policy -> :class:`NoOversubscriptionModel`.
    * otherwise -> a :class:`LongTermUtilizationModel` trained on the history
      (or an :class:`OracleUtilizationModel` when ``oracle`` is requested,
      used by ablations and the ideal-allocation baseline).
    """
    if not policy.oversubscribe:
        return NoOversubscriptionModel(policy.windows)
    if oracle:
        return OracleUtilizationModel(policy.windows, policy.percentile)
    model = LongTermUtilizationModel(
        windows=policy.windows,
        percentile=policy.percentile,
        n_estimators=n_estimators,
        min_history_vms=policy.min_history_vms,
    )
    model.fit(list(history_vms))
    return model
