"""Server-level monitoring and contention detection (Section 3.4).

The monitoring component of the oversubscription agent samples OS performance
counters every 20 seconds (CPU utilization and wait time, memory page
read/write operations, free oversubscribed memory) and compares them against
thresholds derived from historical incident data.  When a threshold trips, it
signals the mitigation component to run *reactive* mitigations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.resources import Resource

#: Default monitoring interval in seconds.
MONITORING_INTERVAL_SECONDS = 20.0


@dataclass(frozen=True)
class MonitoringThresholds:
    """Contention-detection thresholds.

    The CPU rule follows the paper's example: flag contention when CPU wait
    time exceeds 0.1% while utilization is above 20%.  The memory rules flag
    contention when the oversubscribed pool is nearly exhausted or when page
    faults occur.
    """

    cpu_wait_fraction: float = 0.001
    cpu_utilization_floor: float = 0.20
    #: Flag memory contention when free oversubscribed memory drops below this
    #: fraction of the pool.
    memory_free_pool_fraction: float = 0.10
    #: Flag memory contention when more than this many GB faulted to the
    #: backing store during the interval.
    page_fault_gb: float = 0.0


@dataclass
class ServerSample:
    """One monitoring interval's worth of counters for a server."""

    time_seconds: float
    cpu_utilization: float
    cpu_wait_fraction: float
    memory_demand_gb: float
    memory_capacity_gb: float
    oversub_pool_gb: float
    oversub_available_gb: float
    page_fault_gb: float = 0.0

    @property
    def memory_utilization(self) -> float:
        if self.memory_capacity_gb <= 0:
            return 0.0
        return min(1.0, self.memory_demand_gb / self.memory_capacity_gb)

    @property
    def oversub_pressure(self) -> float:
        """Fraction of the oversubscribed pool currently consumed."""
        if self.oversub_pool_gb <= 0:
            return 0.0
        return 1.0 - self.oversub_available_gb / self.oversub_pool_gb


@dataclass
class ContentionSignal:
    """A detected (or predicted) contention event on one resource."""

    resource: Resource
    severity: float
    reason: str
    proactive: bool = False

    def __post_init__(self) -> None:
        self.severity = float(max(0.0, min(1.0, self.severity)))


@dataclass
class MonitoringComponent:
    """Threshold-based contention detector fed by periodic samples."""

    thresholds: MonitoringThresholds = field(default_factory=MonitoringThresholds)
    interval_seconds: float = MONITORING_INTERVAL_SECONDS
    history: List[ServerSample] = field(default_factory=list)
    max_history: int = 4096

    def observe(self, sample: ServerSample) -> List[ContentionSignal]:
        """Record a sample and return any contention signals it triggers."""
        self.history.append(sample)
        if len(self.history) > self.max_history:
            self.history = self.history[-self.max_history:]
        return self.detect(sample)

    def detect(self, sample: ServerSample) -> List[ContentionSignal]:
        signals: List[ContentionSignal] = []
        t = self.thresholds

        if (sample.cpu_wait_fraction > t.cpu_wait_fraction
                and sample.cpu_utilization > t.cpu_utilization_floor):
            severity = min(1.0, sample.cpu_wait_fraction / max(t.cpu_wait_fraction, 1e-9) / 10.0)
            signals.append(ContentionSignal(
                Resource.CPU, severity,
                f"cpu wait {sample.cpu_wait_fraction:.4f} at "
                f"{sample.cpu_utilization:.0%} utilization"))

        if sample.page_fault_gb > t.page_fault_gb:
            signals.append(ContentionSignal(
                Resource.MEMORY, min(1.0, sample.page_fault_gb / 1.0),
                f"{sample.page_fault_gb:.2f} GB faulted to the backing store"))
        elif (sample.oversub_pool_gb > 0
              and sample.oversub_available_gb
              < t.memory_free_pool_fraction * sample.oversub_pool_gb):
            signals.append(ContentionSignal(
                Resource.MEMORY, sample.oversub_pressure,
                f"oversubscribed pool {sample.oversub_pressure:.0%} consumed"))
        return signals

    # ------------------------------------------------------------------ #
    # Derived utilization feeds for the prediction component
    # ------------------------------------------------------------------ #
    def recent_memory_utilization(self, n: Optional[int] = None) -> List[float]:
        samples = self.history if n is None else self.history[-n:]
        return [s.memory_utilization for s in samples]

    def recent_cpu_utilization(self, n: Optional[int] = None) -> List[float]:
        samples = self.history if n is None else self.history[-n:]
        return [s.cpu_utilization for s in samples]

    def summary(self) -> Dict[str, float]:
        if not self.history:
            return {"samples": 0.0}
        return {
            "samples": float(len(self.history)),
            "mean_cpu": float(sum(s.cpu_utilization for s in self.history) / len(self.history)),
            "mean_memory": float(sum(s.memory_utilization for s in self.history)
                                 / len(self.history)),
            "total_page_fault_gb": float(sum(s.page_fault_gb for s in self.history)),
        }
