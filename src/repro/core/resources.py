"""Resource model shared by the whole library.

This module defines the resource types Coach manages, their fungibility
classification, and the sharing mechanism the platform uses for each
(Table 1 of the paper), together with ``ResourceVector`` -- the small
fixed-size vector of per-resource quantities used throughout the
scheduler, the simulator, and the characterization code.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class Resource(str, Enum):
    """Resource types tracked for every VM and server.

    The paper oversubscribes *all* resources; the four below are the ones
    its telemetry records at 5-minute granularity (Section 2, Methodology).
    """

    CPU = "cpu"
    MEMORY = "memory"
    NETWORK = "network"
    SSD = "ssd"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Resources in canonical order.  Many arrays in the library are indexed in
#: this order, so it must stay stable.
ALL_RESOURCES: Tuple[Resource, ...] = (
    Resource.CPU,
    Resource.MEMORY,
    Resource.NETWORK,
    Resource.SSD,
)

#: Units used when reporting each resource.
RESOURCE_UNITS: Dict[Resource, str] = {
    Resource.CPU: "cores",
    Resource.MEMORY: "GB",
    Resource.NETWORK: "Gbps",
    Resource.SSD: "GB",
}


class Fungibility(str, Enum):
    """Whether a resource can be quickly reassigned between VMs."""

    FUNGIBLE = "fungible"
    NON_FUNGIBLE = "non-fungible"


@dataclass(frozen=True)
class SharingMechanism:
    """One row of Table 1: how a resource is shared across CoachVMs."""

    name: str
    fungibility: Fungibility
    mechanism: str

    @property
    def is_fungible(self) -> bool:
        return self.fungibility is Fungibility.FUNGIBLE


#: Table 1 of the paper: common fungible and non-fungible resources and the
#: mechanism used to share them across VMs.  Keys are descriptive names; the
#: four entries matching :class:`Resource` are the ones the simulator models
#: explicitly (memory *space* is the non-fungible one Coach focuses on).
SHARING_MECHANISMS: Dict[str, SharingMechanism] = {
    "cpu": SharingMechanism("CPU", Fungibility.FUNGIBLE, "CPU groups"),
    "memory_space": SharingMechanism(
        "Memory space", Fungibility.NON_FUNGIBLE, "PA/VA portions, VA-backing"
    ),
    "memory_bandwidth": SharingMechanism(
        "Memory bandwidth", Fungibility.FUNGIBLE, "Shares, reservations, caps"
    ),
    "network_bandwidth": SharingMechanism(
        "Network bandwidth", Fungibility.FUNGIBLE, "Shares, reservations, caps"
    ),
    "accelerated_network": SharingMechanism(
        "Accelerated network", Fungibility.NON_FUNGIBLE, "SR-IOV"
    ),
    "storage_bandwidth": SharingMechanism(
        "Storage bandwidth", Fungibility.FUNGIBLE, "Shares, reservations, caps"
    ),
    "local_storage_space": SharingMechanism(
        "Local storage space", Fungibility.NON_FUNGIBLE, "Disk partitions, DDA, SR-IOV"
    ),
    "remote_storage_space": SharingMechanism(
        "Remote storage space", Fungibility.FUNGIBLE, "Cache size and network bandwidth"
    ),
    "gpu": SharingMechanism("GPU", Fungibility.NON_FUNGIBLE, "DDA, SR-IOV"),
    "power": SharingMechanism("Power", Fungibility.FUNGIBLE, "Frequency and power caps"),
}

#: Fungibility of the four resources the simulator tracks.  Memory space is
#: the non-fungible one; CPU, network bandwidth, and SSD bandwidth/space are
#: treated as fungible for scheduling purposes (the paper focuses its
#: non-fungible machinery on memory).
RESOURCE_FUNGIBILITY: Dict[Resource, Fungibility] = {
    Resource.CPU: Fungibility.FUNGIBLE,
    Resource.MEMORY: Fungibility.NON_FUNGIBLE,
    Resource.NETWORK: Fungibility.FUNGIBLE,
    Resource.SSD: Fungibility.FUNGIBLE,
}


def is_fungible(resource: Resource) -> bool:
    """Return ``True`` when *resource* can be reassigned quickly between VMs."""
    return RESOURCE_FUNGIBILITY[resource] is Fungibility.FUNGIBLE


class ResourceVector:
    """A fixed-size mapping from :class:`Resource` to a float quantity.

    Supports element-wise arithmetic and comparisons used by the bin-packing
    scheduler (a VM "fits" in a server when its demand vector is element-wise
    less than or equal to the free-capacity vector).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[Resource, float] | None = None, **kwargs: float):
        merged: Dict[Resource, float] = {r: 0.0 for r in ALL_RESOURCES}
        if values:
            for key, val in values.items():
                merged[Resource(key)] = float(val)
        for key, val in kwargs.items():
            merged[Resource(key)] = float(val)
        self._values = merged

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls) -> "ResourceVector":
        return cls()

    @classmethod
    def uniform(cls, value: float) -> "ResourceVector":
        return cls({r: value for r in ALL_RESOURCES})

    @classmethod
    def of(cls, cpu: float = 0.0, memory: float = 0.0, network: float = 0.0,
           ssd: float = 0.0) -> "ResourceVector":
        return cls({Resource.CPU: cpu, Resource.MEMORY: memory,
                    Resource.NETWORK: network, Resource.SSD: ssd})

    def copy(self) -> "ResourceVector":
        return ResourceVector(self._values)

    # ------------------------------------------------------------------ #
    # Mapping-like access
    # ------------------------------------------------------------------ #
    def __getitem__(self, resource: Resource) -> float:
        return self._values[Resource(resource)]

    def __setitem__(self, resource: Resource, value: float) -> None:
        self._values[Resource(resource)] = float(value)

    def get(self, resource: Resource, default: float = 0.0) -> float:
        return self._values.get(Resource(resource), default)

    def items(self) -> Iterator[Tuple[Resource, float]]:
        return iter(self._values.items())

    def keys(self) -> Iterable[Resource]:
        return self._values.keys()

    def as_dict(self) -> Dict[Resource, float]:
        return dict(self._values)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector({r: self._values[r] + other[r] for r in ALL_RESOURCES})

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector({r: self._values[r] - other[r] for r in ALL_RESOURCES})

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector({r: self._values[r] * scalar for r in ALL_RESOURCES})

    __rmul__ = __mul__

    def scale(self, factors: Mapping[Resource, float]) -> "ResourceVector":
        """Element-wise multiplication by per-resource factors."""
        return ResourceVector(
            {r: self._values[r] * factors.get(r, 1.0) for r in ALL_RESOURCES}
        )

    def clamp_min(self, minimum: float = 0.0) -> "ResourceVector":
        return ResourceVector({r: max(minimum, v) for r, v in self._values.items()})

    def maximum(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector({r: max(self._values[r], other[r]) for r in ALL_RESOURCES})

    def minimum(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector({r: min(self._values[r], other[r]) for r in ALL_RESOURCES})

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def fits_within(self, capacity: "ResourceVector", epsilon: float = 1e-9) -> bool:
        """Return ``True`` when every component is <= the capacity component."""
        return all(self._values[r] <= capacity[r] + epsilon for r in ALL_RESOURCES)

    def dominates(self, other: "ResourceVector") -> bool:
        """Return ``True`` when every component is >= the other's component."""
        return all(self._values[r] >= other[r] for r in ALL_RESOURCES)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return all(abs(self._values[r] - other[r]) < 1e-12 for r in ALL_RESOURCES)

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(tuple(round(self._values[r], 12) for r in ALL_RESOURCES))

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def total(self) -> float:
        return sum(self._values.values())

    def is_zero(self, epsilon: float = 1e-12) -> bool:
        return all(abs(v) < epsilon for v in self._values.values())

    def __repr__(self) -> str:
        parts = ", ".join(f"{r.value}={v:g}" for r, v in self._values.items())
        return f"ResourceVector({parts})"
