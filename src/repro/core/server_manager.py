"""The per-server oversubscription agent (Section 3.1 and 3.4).

Every server runs a local agent with three components:

* **monitoring** -- samples utilization and contention counters every
  20 seconds;
* **prediction** -- a two-level EWMA + LSTM forecaster anticipating
  contention up to five minutes ahead;
* **mitigation** -- trims, extends, or migrates to relieve contention,
  triggered reactively (monitoring) or proactively (prediction).

The agent is written against the memory-model protocol implemented by
:class:`repro.simulator.memory.ServerMemoryModel`, so it can drive either the
fine-grained single-server simulation (Figure 21) or a real backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.mitigation import MitigationEngine, MitigationPolicy, MitigationResult
from repro.core.monitoring import (
    ContentionSignal,
    MonitoringComponent,
    MonitoringThresholds,
    ServerSample,
)
from repro.core.resources import Resource
from repro.prediction.contention import TwoLevelContentionPredictor


@dataclass
class AgentTickReport:
    """Everything the agent observed and did during one monitoring interval."""

    time_seconds: float
    sample: ServerSample
    signals: List[ContentionSignal] = field(default_factory=list)
    forecast_short: float = 0.0
    forecast_long: Optional[float] = None
    proactive_trigger: bool = False
    reactive_trigger: bool = False
    mitigation: Optional[MitigationResult] = None
    page_fault_gb: float = 0.0
    oversub_available_gb: float = 0.0


class OversubscriptionAgent:
    """Coach's local server agent: monitor, predict, mitigate."""

    def __init__(
        self,
        memory_model,
        mitigation_policy: MitigationPolicy,
        thresholds: Optional[MonitoringThresholds] = None,
        interval_seconds: float = 20.0,
        contention_predictor: Optional[TwoLevelContentionPredictor] = None,
        proactive_threshold: float = 0.9,
    ):
        self.memory = memory_model
        self.policy = mitigation_policy
        self.monitoring = MonitoringComponent(thresholds or MonitoringThresholds(),
                                              interval_seconds)
        self.predictor = contention_predictor or TwoLevelContentionPredictor(
            samples_per_window=max(1, int(300 / interval_seconds)),
            warmup_windows=3,
        )
        self.engine = MitigationEngine(mitigation_policy)
        self.interval_seconds = interval_seconds
        self.proactive_threshold = proactive_threshold
        self.reports: List[AgentTickReport] = []

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def tick(self, time_seconds: float, vm_demands_gb: Dict[str, float],
             cpu_utilization: float = 0.0, cpu_wait_fraction: float = 0.0) -> AgentTickReport:
        """Advance one monitoring interval.

        ``vm_demands_gb`` gives each VM's current memory demand; the memory
        model applies it (allocating VA backing on demand and paging when the
        pool is exhausted), then the agent monitors, predicts, and mitigates.
        """
        outcome = self.memory.apply_demands(vm_demands_gb, self.interval_seconds)

        sample = ServerSample(
            time_seconds=time_seconds,
            cpu_utilization=cpu_utilization,
            cpu_wait_fraction=cpu_wait_fraction,
            memory_demand_gb=sum(vm_demands_gb.values()),
            memory_capacity_gb=self.memory.capacity_gb,
            oversub_pool_gb=self.memory.oversub_pool_gb,
            oversub_available_gb=self.memory.oversub_available_gb,
            page_fault_gb=outcome.page_fault_gb,
        )
        signals = self.monitoring.observe(sample)

        # Feed the predictors with the oversubscribed-pool pressure, which is
        # the quantity whose exhaustion causes memory contention.
        self.predictor.observe(sample.oversub_pressure)
        forecast = self.predictor.forecast()

        proactive_trigger = (
            self.policy.proactive and forecast.exceeds(self.proactive_threshold))
        reactive_trigger = any(s.resource is Resource.MEMORY for s in signals)

        mitigation: Optional[MitigationResult] = None
        if self.policy.enabled and (reactive_trigger or proactive_trigger):
            needed = max(outcome.unbacked_gb, self._headroom_deficit())
            mitigation = self.engine.mitigate(self.memory, self.interval_seconds, needed)

        report = AgentTickReport(
            time_seconds=time_seconds,
            sample=sample,
            signals=signals,
            forecast_short=forecast.short_term,
            forecast_long=forecast.long_term,
            proactive_trigger=proactive_trigger,
            reactive_trigger=reactive_trigger,
            mitigation=mitigation,
            page_fault_gb=outcome.page_fault_gb,
            oversub_available_gb=self.memory.oversub_available_gb,
        )
        self.reports.append(report)
        return report

    def _headroom_deficit(self) -> float:
        """How much free pool we would like to restore when acting proactively."""
        target_free = 0.15 * self.memory.oversub_pool_gb
        return max(0.0, target_free - self.memory.oversub_available_gb)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def available_series(self) -> List[float]:
        """Available oversubscribed memory over time (Figure 21a)."""
        return [r.oversub_available_gb for r in self.reports]

    def fault_series(self) -> List[float]:
        return [r.page_fault_gb for r in self.reports]

    def total_page_faults_gb(self) -> float:
        return sum(r.page_fault_gb for r in self.reports)

    def mitigation_count(self) -> int:
        return sum(1 for r in self.reports if r.mitigation and r.mitigation.actions)
