"""Result records produced by the cluster-scale simulations."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class ViolationStats:
    """Contention accounting for one policy run (Figure 20b).

    Counts are the source of truth; the fractions are derived from them so
    stats from independent clusters can be merged exactly (integer sums)
    instead of re-weighting floating-point fractions.  The per-server dicts
    record, for every server that hosted at least one occupied slot, how many
    slots were observed and how many violated each resource.
    """

    #: Fraction of occupied server-slots with CPU contention.
    cpu_violation_fraction: float = 0.0
    #: Fraction of occupied server-slots with memory contention.
    memory_violation_fraction: float = 0.0
    #: Number of (server, slot) pairs inspected.
    observed_server_slots: int = 0
    #: Number of occupied server-slots with CPU contention.
    cpu_violation_slots: int = 0
    #: Number of occupied server-slots with memory contention.
    memory_violation_slots: int = 0
    #: Per-server breakdowns, keyed by server id (occupied servers only).
    per_server_observed: Dict[str, int] = field(default_factory=dict)
    per_server_cpu_violations: Dict[str, int] = field(default_factory=dict)
    per_server_memory_violations: Dict[str, int] = field(default_factory=dict)

    @property
    def cpu_violation_pct(self) -> float:
        return 100.0 * self.cpu_violation_fraction

    @property
    def memory_violation_pct(self) -> float:
        return 100.0 * self.memory_violation_fraction

    @classmethod
    def from_counts(cls,
                    per_server_observed: Dict[str, int],
                    per_server_cpu_violations: Dict[str, int],
                    per_server_memory_violations: Dict[str, int]) -> "ViolationStats":
        """Build stats from per-server counts, deriving totals and fractions."""
        observed = sum(per_server_observed.values())
        cpu = sum(per_server_cpu_violations.values())
        mem = sum(per_server_memory_violations.values())
        return cls(
            cpu_violation_fraction=cpu / observed if observed else 0.0,
            memory_violation_fraction=mem / observed if observed else 0.0,
            observed_server_slots=observed,
            cpu_violation_slots=cpu,
            memory_violation_slots=mem,
            per_server_observed=per_server_observed,
            per_server_cpu_violations=per_server_cpu_violations,
            per_server_memory_violations=per_server_memory_violations,
        )

    @classmethod
    def merge(cls, parts: Iterable["ViolationStats"]) -> "ViolationStats":
        """Exact aggregation across clusters.

        Server ids must be globally unique across the merged parts (they are
        prefixed with the cluster id); a collision -- e.g. the same cluster
        simulated twice via a duplicated ``SimulationConfig.clusters`` entry
        -- would silently drop counts, so it fails loudly instead.
        """
        observed: Dict[str, int] = {}
        cpu: Dict[str, int] = {}
        mem: Dict[str, int] = {}
        n_servers = 0
        for part in parts:
            observed.update(part.per_server_observed)
            cpu.update(part.per_server_cpu_violations)
            mem.update(part.per_server_memory_violations)
            n_servers += len(part.per_server_observed)
        if len(observed) != n_servers:
            raise ValueError(
                "duplicate server ids across merged ViolationStats "
                "(was the same cluster simulated twice?)")
        return cls.from_counts(observed, cpu, mem)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (plain ints/floats/dicts), used by the
        benchmark-tracking script and report generators."""
        return asdict(self)


@dataclass
class PolicyEvaluation:
    """Packing and violation outcome of one oversubscription policy."""

    policy_name: str
    requested_vms: int
    accepted_vms: int
    rejected_vms: int
    servers_in_use: int
    servers_total: int
    accepted_core_requests: float
    accepted_memory_requests_gb: float
    #: Average number of VMs hosted concurrently during the evaluation period.
    average_concurrent_vms: float = 0.0
    #: Average requested cores hosted concurrently (sellable capacity proxy).
    average_concurrent_cores: float = 0.0
    #: Average requested memory hosted concurrently, GB.
    average_concurrent_memory_gb: float = 0.0
    violations: ViolationStats = field(default_factory=ViolationStats)
    #: Additional sellable capacity relative to the no-oversubscription run
    #: (populated by :func:`compare_policies`).
    additional_capacity_pct: Optional[float] = None
    server_reduction_pct: Optional[float] = None

    @property
    def acceptance_rate(self) -> float:
        return self.accepted_vms / max(1, self.requested_vms)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form, including the nested ViolationStats."""
        return asdict(self)


def compare_policies(results: Dict[str, PolicyEvaluation],
                     baseline: str = "none") -> Dict[str, PolicyEvaluation]:
    """Fill in capacity gains relative to the baseline policy.

    Additional capacity follows the paper's definition: the extra VMs the
    platform can host compared to not oversubscribing, measured as the
    increase in concurrently hosted VMs.  Server reduction is the drop in
    servers needed to host the same load, approximated by hosted VMs per
    server in use.
    """
    if baseline not in results:
        raise KeyError(f"baseline policy {baseline!r} missing from results")
    base = results[baseline]
    base_hosted = max(base.average_concurrent_cores, 1e-9)
    base_density = base.average_concurrent_cores / max(1, base.servers_in_use)
    for evaluation in results.values():
        evaluation.additional_capacity_pct = (
            100.0 * (evaluation.average_concurrent_cores - base.average_concurrent_cores)
            / base_hosted)
        density = evaluation.average_concurrent_cores / max(1, evaluation.servers_in_use)
        if density > 0:
            evaluation.server_reduction_pct = 100.0 * (1.0 - base_density / density)
    return results


@dataclass
class PredictionAccuracy:
    """Over/under-allocation statistics for Figure 19."""

    resource: str
    percentile: float
    #: Mean over-allocation error relative to the ideal allocation (%).
    over_allocation_error_pct: float
    #: Fraction of VMs whose planned allocation is below the ideal one (%).
    under_allocation_pct: float
    n_vms: int


@dataclass
class MitigationTimeline:
    """Time series produced by the Figure 21 single-server scenario."""

    policy_name: str
    times_seconds: List[float] = field(default_factory=list)
    available_oversub_gb: List[float] = field(default_factory=list)
    page_fault_gb: List[float] = field(default_factory=list)
    #: Normalised slowdown per workload VM over time.
    slowdown: Dict[str, List[float]] = field(default_factory=dict)

    def peak_slowdown(self, vm_id: str) -> float:
        series = self.slowdown.get(vm_id, [])
        return max(series) if series else 1.0

    def recovered(self, threshold_gb: float = 0.5) -> bool:
        """Whether the oversubscribed pool ends with available headroom."""
        return bool(self.available_oversub_gb) and self.available_oversub_gb[-1] >= threshold_gb
