"""Shared measurement harnesses for the perf-tracking benchmarks.

``benchmarks/test_bench_sweep_scale.py`` and ``scripts/run_benchmarks.py``
must measure the same thing the same way, or the ``BENCH_<date>.json``
trajectory silently stops being comparable with the pytest benchmark
numbers.  The workload *builders* live in :mod:`repro.simulator.synthetic`
for that reason; the measurement *harnesses* (worker sizing, wall-clock
pairing, tracemalloc peaks, and the bitwise divergence checks) live here
for the same one.
"""

from __future__ import annotations

import dataclasses
import filecmp
import os
import pickle
import time
import tracemalloc
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.policy import COACH_POLICY
from repro.core.scheduler import ServerAccount
from repro.simulator.engine import SimulationConfig, simulate_policy
from repro.simulator.replay import VectorizedViolationMeter, chunk_slots_for_budget
from repro.simulator.sweep import SweepTask, create_sweep_executor, sweep_policies
from repro.trace.generator import TraceGenerator, TraceGeneratorConfig
from repro.trace.store import TraceStore
from repro.trace.trace import Trace
from repro.trace.vm import VMRecord


#: Values that switch smoke mode on; anything else (including "false",
#: "no", "off") leaves the benchmarks at full strength, so a developer
#: exporting a falsy-looking value cannot silently disable enforcement.
_SMOKE_TRUTHY = frozenset({"1", "true", "yes", "on"})


def bench_smoke_enabled() -> bool:
    """Whether benchmark smoke mode is on (``REPRO_BENCH_SMOKE=1``).

    The single source of truth for the knob: the pytest benchmarks (via
    ``benchmarks/conftest.py``) and ``scripts/run_benchmarks.py`` must
    parse it identically or the two would measure different workload sizes
    in the same CI run.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in _SMOKE_TRUTHY


def sweep_bench_workers() -> int:
    """Worker count for the sweep wall-clock measurements: at least 2 so
    the process-pool path (and its bitwise merge) is exercised even on
    single-CPU machines, at most 4 (the standard policy count)."""
    return max(2, min(4, os.cpu_count() or 1))


def measure_sweep_serial_vs_pool(trace: Trace, *, n_clusters: int = 3,
                                 n_estimators: int = 3,
                                 workers: Optional[int] = None) -> Dict[str, object]:
    """Time the standard-policy sweep serially and with a process pool.

    The pool is timed twice on one long-lived executor
    (:func:`repro.simulator.sweep.create_sweep_executor`): the first run
    (``pool_cold_seconds``) pays the worker spawn + numpy-import bill on
    top of the compute, the second (``pool_seconds``) hits warm workers
    and measures the compute the pool actually parallelizes.  The tracked
    ``speedup`` is serial/warm -- spawn is a fixed per-pool cost any
    caller who sweeps repeatedly amortizes away -- with serial/cold kept
    alongside as ``cold_speedup`` so the one-shot bill stays visible.

    Raises ``AssertionError`` if either pool merge diverges from the
    serial walk -- the differential check at scale.  The returned mapping
    carries the wall-clocks, both speedups, and (under ``"results"``) the
    serial PolicyEvaluations for callers that want the numbers themselves.
    """
    clusters = trace.cluster_ids()[:n_clusters]
    if workers is None:
        workers = sweep_bench_workers()
    serial_config = SimulationConfig(clusters=clusters, n_estimators=n_estimators)
    pool_config = replace(serial_config, sweep_parallelism=workers)

    begin = time.perf_counter()
    serial = sweep_policies(trace, config=serial_config)
    serial_seconds = time.perf_counter() - begin

    executor = create_sweep_executor(workers)
    try:
        begin = time.perf_counter()
        cold = sweep_policies(trace, config=pool_config, executor=executor)
        pool_cold_seconds = time.perf_counter() - begin

        begin = time.perf_counter()
        pooled = sweep_policies(trace, config=pool_config, executor=executor)
        pool_seconds = time.perf_counter() - begin
    finally:
        executor.shutdown()

    for label, run in (("cold", cold), ("warm", pooled)):
        if list(serial) != list(run):
            raise AssertionError(
                f"{label} process-pool sweep reordered the policy results")
        for name in serial:
            if serial[name] != run[name]:
                raise AssertionError(
                    f"{label} process-pool sweep diverged from serial "
                    f"for policy {name!r}")
    return {
        "policies": list(serial),
        "n_clusters": len(clusters),
        "workers": workers,
        "serial_seconds": serial_seconds,
        "pool_cold_seconds": pool_cold_seconds,
        "pool_seconds": pool_seconds,
        "speedup": serial_seconds / pool_seconds,
        "cold_speedup": serial_seconds / pool_cold_seconds,
        "bitwise_identical": True,
        "results": serial,
    }


def measure_scheduler_scaling(*, smoke: bool = False,
                              seed: int = 7) -> Dict[str, object]:
    """Placement throughput across fleet sizes: incremental vs dense (PR 6).

    For every fleet size in :func:`scheduler_scaling_sizes`, one batched
    incremental scheduler (tiered index + provable-run scatter commits)
    places the full arrival sequence while the dense PR 6 baseline
    (``ClusterScheduler(..., incremental=False)`` driven by sequential
    ``place`` calls) is timed on a prefix -- the dense per-call cost is
    dominated by the full-fleet ``mean(axis=2)`` pass, which is independent
    of cluster fill, so a prefix rate is representative.  Each curve point
    records the extrapolation explicitly (``dense_extrapolated`` /
    ``dense_extrapolation_factor``) so the dense plans/s can never be
    misread as measured end-to-end, plus the process's peak RSS after the
    size finished (``ru_maxrss_kb`` -- a monotone high-water mark, sizes
    run in ascending order).  Raises ``AssertionError`` if the two paths'
    decisions diverge on the shared prefix (they are contractually
    bitwise-identical).  Returns the curve plus the speedup at the largest
    size, the number tracked by the BENCH JSON.
    """
    import resource as _resource
    from repro.core.scheduler import ClusterScheduler
    from repro.simulator.synthetic import (
        BENCH_WINDOWS,
        build_placement_plans,
        build_scaled_bench_cluster,
        scheduler_scaling_plan_count,
        scheduler_scaling_sizes,
    )

    sizes = scheduler_scaling_sizes(smoke=smoke)
    n_plans = scheduler_scaling_plan_count(smoke=smoke)
    dense_prefix = max(50, n_plans // 5)
    curve = []
    for n_servers in sizes:
        cluster = build_scaled_bench_cluster(n_servers)
        plans = build_placement_plans(n_plans, BENCH_WINDOWS, seed=seed)

        incremental = ClusterScheduler(cluster, BENCH_WINDOWS)
        begin = time.perf_counter()
        batched_decisions = incremental.place_batch(plans)
        incremental_seconds = time.perf_counter() - begin

        dense = ClusterScheduler(cluster, BENCH_WINDOWS, incremental=False)
        begin = time.perf_counter()
        dense_decisions = [dense.place(plan) for plan in plans[:dense_prefix]]
        dense_seconds = time.perf_counter() - begin

        if batched_decisions[:dense_prefix] != dense_decisions:
            raise AssertionError(
                f"incremental place_batch diverged from the dense sequential "
                f"baseline at {n_servers} servers")
        incremental_rate = n_plans / incremental_seconds
        dense_rate = dense_prefix / dense_seconds
        curve.append({
            "n_servers": n_servers,
            "n_plans": n_plans,
            "accepted": incremental.accepted_count(),
            "rejected": incremental.rejected_count(),
            "incremental_seconds": incremental_seconds,
            "incremental_plans_per_s": incremental_rate,
            "dense_prefix_plans": dense_prefix,
            "dense_seconds": dense_seconds,
            "dense_plans_per_s": dense_rate,
            "dense_extrapolated": dense_prefix < n_plans,
            "dense_extrapolation_factor": n_plans / dense_prefix,
            "speedup": incremental_rate / dense_rate,
            "decisions_identical": True,
            "ru_maxrss_kb": int(
                _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss),
        })
    return {
        "sizes": list(sizes),
        "curve": curve,
        "largest_size": curve[-1]["n_servers"],
        "largest_speedup": curve[-1]["speedup"],
    }


def measure_replay_memory(servers: Iterable[ServerAccount],
                          placed: Dict[str, VMRecord], n_slots: int,
                          chunk_slots: int,
                          cpu_contention_fraction: float = 0.5) -> Dict[str, object]:
    """Peak traced memory and wall-clock of dense vs. chunked replay.

    tracemalloc traces every allocation, so for a fixed workload the peaks
    are deterministic.  Raises ``AssertionError`` if the chunked stats
    diverge from the dense ones.
    """
    # Both passes iterate the servers; materialize so a generator argument
    # cannot arrive exhausted at the second pass.
    servers = list(servers)

    def replay(meter: VectorizedViolationMeter):
        tracemalloc.start()
        begin = time.perf_counter()
        stats = meter.measure(servers, placed, 0, n_slots,
                              cpu_contention_fraction)
        seconds = time.perf_counter() - begin
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return stats, peak, seconds

    dense_stats, dense_peak, dense_seconds = replay(VectorizedViolationMeter())
    chunked_stats, chunked_peak, chunked_seconds = replay(
        VectorizedViolationMeter(chunk_slots=chunk_slots))
    if chunked_stats != dense_stats:
        raise AssertionError("chunked replay diverged from dense replay")
    return {
        "chunk_slots": chunk_slots,
        "observed_server_slots": dense_stats.observed_server_slots,
        "dense_peak_bytes": dense_peak,
        "dense_seconds": dense_seconds,
        "chunked_peak_bytes": chunked_peak,
        "chunked_seconds": chunked_seconds,
        "peak_reduction": dense_peak / max(1, chunked_peak),
    }


def assert_results_identical(reference: object, candidate: object, *,
                             rtol: float = 0.0, path: str = "result") -> None:
    """Structural equality of two characterization/figure results.

    Walks dataclasses, dicts, sequences and arrays side by side.  With the
    default ``rtol=0`` every float must match *bitwise* (NaNs compare equal
    positionally) -- the differential contract of the columnar layer; a
    nonzero ``rtol`` relaxes floats to ``np.isclose`` for reduced-precision
    (float32) stores.  Raises ``AssertionError`` naming the first diverging
    path.
    """
    if dataclasses.is_dataclass(reference) and not isinstance(reference, type):
        assert type(reference) is type(candidate), \
            f"{path}: {type(reference)} vs {type(candidate)}"
        for field in dataclasses.fields(reference):
            assert_results_identical(getattr(reference, field.name),
                                     getattr(candidate, field.name),
                                     rtol=rtol, path=f"{path}.{field.name}")
        return
    if isinstance(reference, dict):
        assert set(reference) == set(candidate), \
            f"{path}: key mismatch {set(reference) ^ set(candidate)}"
        for key in reference:
            assert_results_identical(reference[key], candidate[key],
                                     rtol=rtol, path=f"{path}[{key!r}]")
        return
    if isinstance(reference, np.ndarray) or isinstance(candidate, np.ndarray):
        left = np.asarray(reference)
        right = np.asarray(candidate)
        assert left.shape == right.shape, \
            f"{path}: shape {left.shape} vs {right.shape}"
        if rtol and left.dtype.kind == "f":
            matches = np.isclose(left, right, rtol=rtol, equal_nan=True)
        else:
            matches = (left == right) | (_isnan(left) & _isnan(right))
        assert matches.all(), f"{path}: arrays diverge ({left} vs {right})"
        return
    if isinstance(reference, (list, tuple)):
        assert len(reference) == len(candidate), \
            f"{path}: length {len(reference)} vs {len(candidate)}"
        for i, (left, right) in enumerate(zip(reference, candidate)):
            assert_results_identical(left, right, rtol=rtol, path=f"{path}[{i}]")
        return
    if rtol and isinstance(reference, float):
        assert np.isclose(reference, candidate, rtol=rtol, equal_nan=True), \
            f"{path}: {reference!r} vs {candidate!r}"
        return
    assert reference == candidate or (reference != reference
                                      and candidate != candidate), \
        f"{path}: {reference!r} vs {candidate!r}"


def _isnan(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind == "f":
        return np.isnan(values)
    return np.zeros(values.shape, dtype=bool)


def run_characterization_suite(trace: Trace) -> Dict[str, object]:
    """The Section-2 statistic suite timed by the characterization benchmark.

    One call per rewired statistic family (Figures 2-12), with the window
    sweeps trimmed to representative lengths so the reference pass stays
    benchmarkable.  Both the pytest benchmark and
    ``scripts/run_benchmarks.py`` time exactly this function, once over the
    columnar dispatch and once over the per-VM reference, so the tracked
    speedup cannot drift between the two.
    """
    # Imported here (not module level): characterization sits above the
    # simulator in the layering, and only this harness needs it.
    from repro.characterization import (
        cluster_savings,
        group_predictability,
        median_vm_shape,
        peak_consistency_cdf,
        peaks_and_valleys_by_window,
        resource_hours_by_duration,
        resource_hours_by_size,
        stranding_by_scenario,
        utilization_scatter,
        utilization_summary,
        weekly_savings_profile,
    )
    from repro.trace.timeseries import SLOTS_PER_DAY

    return {
        "duration": resource_hours_by_duration(trace),
        "size": resource_hours_by_size(trace),
        "shape": median_vm_shape(trace),
        "scatter": utilization_scatter(trace),
        "summary": utilization_summary(trace),
        "peaks": peaks_and_valleys_by_window(trace),
        "consistency": peak_consistency_cdf(trace, window_hours_sweep=[1, 4, 24]),
        "savings": cluster_savings(trace, window_hours_sweep=[24, 4, 1]),
        "weekly": weekly_savings_profile(trace, window_hours_sweep=[4]),
        "stranding": stranding_by_scenario(
            trace, sample_every_slots=SLOTS_PER_DAY // 2),
        "predictability": group_predictability(trace),
    }


def measure_characterization_throughput(trace: Trace) -> Dict[str, object]:
    """Wall-clock of the Section-2 suite: columnar vs per-VM reference.

    *trace* must be store-backed; the reference pass runs the same suite on
    ``trace.without_store()`` -- the identical VM views minus the columnar
    dispatch, i.e. the seed per-VM loops reading the same buffers.  Raises
    ``AssertionError`` if any statistic diverges bitwise (float64 stores
    carry the exactness contract).  One warm-up pass per side keeps
    first-call numpy setup out of the timings.
    """
    if trace.store is None:
        trace = TraceStore.from_trace(trace).as_trace()
    reference_trace = trace.without_store()

    run_characterization_suite(trace)
    run_characterization_suite(reference_trace)

    begin = time.perf_counter()
    columnar_results = run_characterization_suite(trace)
    columnar_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    reference_results = run_characterization_suite(reference_trace)
    reference_seconds = time.perf_counter() - begin

    assert_results_identical(reference_results, columnar_results)
    return {
        "n_vms": len(trace.vms),
        "n_slots": trace.n_slots,
        "n_clusters": len(trace.fleet.clusters),
        "reference_seconds": reference_seconds,
        "columnar_seconds": columnar_seconds,
        "speedup": reference_seconds / columnar_seconds,
        "bitwise_identical": True,
    }


def measure_sweep_task_footprint(trace: Trace,
                                 config: Optional[SimulationConfig] = None
                                 ) -> Dict[str, object]:
    """Per-worker bytes shipped by a sweep task: pickled trace vs shared handle.

    A pickle-transport :class:`SweepTask` carries the whole trace, so every
    worker unpickles (and then owns) a private copy of the telemetry; the
    shared-memory transport ships a handle of a few kilobytes and workers
    attach the parent's buffers zero-copy.  The pickled task size is the
    exact number of bytes each worker must receive *and materialize*, which
    makes it the deterministic proxy for per-worker sweep memory tracked in
    ``BENCH_<date>.json``.  Also times unpickling the trace task against
    attaching the handle (the per-worker startup cost the transports trade).
    """
    config = config or SimulationConfig()
    # The pickled baseline must model the seed transport -- the same
    # store-stripped payload the sweep's pickle fallback ships -- or a
    # store-backed input would flatter the shared-memory reduction.
    pickled_task = pickle.dumps(
        SweepTask("coach", COACH_POLICY, trace.without_store(), config),
        protocol=pickle.HIGHEST_PROTOCOL)

    store = trace.store if trace.store is not None else TraceStore.from_trace(trace)
    handle = store.export_shared()
    try:
        shared_task = pickle.dumps(
            SweepTask("coach", COACH_POLICY, None, config, shared_trace=handle),
            protocol=pickle.HIGHEST_PROTOCOL)

        begin = time.perf_counter()
        unpickled = pickle.loads(pickled_task)
        unpickle_seconds = time.perf_counter() - begin
        n_vms = len(unpickled.trace.vms)

        begin = time.perf_counter()
        attached = pickle.loads(shared_task).shared_trace.attach()
        attach_trace = attached.as_trace()
        attach_seconds = time.perf_counter() - begin
        if [vm.vm_id for vm in attach_trace.vms] != \
                [vm.vm_id for vm in unpickled.trace.vms]:
            raise AssertionError("attached trace diverged from pickled trace")
        attached.close_shared()
    finally:
        handle.unlink()
    return {
        "n_vms": n_vms,
        "util_nbytes": store.util_nbytes,
        "pickled_task_bytes": len(pickled_task),
        "shared_task_bytes": len(shared_task),
        "footprint_reduction": len(pickled_task) / max(1, len(shared_task)),
        "unpickle_seconds": unpickle_seconds,
        "attach_seconds": attach_seconds,
    }


def assert_store_dirs_identical(reference, candidate) -> None:
    """Byte-compare two on-disk trace stores, file by file.

    The builder's differential contract at benchmark scale: same file set,
    same bytes.  ``filecmp.cmp(shallow=False)`` streams fixed-size blocks,
    so the comparison itself never loads a telemetry buffer into RAM.
    Raises ``AssertionError`` naming the first divergence.
    """
    reference = Path(reference)
    candidate = Path(candidate)
    ref_names = sorted(p.name for p in reference.iterdir())
    cand_names = sorted(p.name for p in candidate.iterdir())
    if ref_names != cand_names:
        raise AssertionError(
            f"store file sets differ: {ref_names} vs {cand_names}")
    for name in ref_names:
        if not filecmp.cmp(reference / name, candidate / name, shallow=False):
            raise AssertionError(f"store file {name} differs byte-wise")


def measure_streaming_ingest(config: TraceGeneratorConfig, workdir,
                             *, batch_vms: int) -> Dict[str, object]:
    """Peak ingest memory: streaming builder vs the eager from_trace path.

    Runs the same generator configuration twice from the same seed: once
    through ``generate_to_store`` (at most *batch_vms* VM records alive,
    telemetry appended straight to disk) and once through the eager shape
    (``generate()`` materializing every record, then
    ``TraceStore.from_trace(...).save(...)`` concatenating the full flat
    buffers), each under tracemalloc.  Asserts the two stores are
    byte-identical and that the streaming one opens via
    ``TraceStore.open(mmap=True)`` -- the correctness half of the claim --
    then reports the peak-memory ratio and ingest rate, the numbers
    ``BENCH_<date>.json`` tracks.
    """
    workdir = Path(workdir)
    stream_path = workdir / "stream-store"
    eager_path = workdir / "eager-store"

    tracemalloc.start()
    begin = time.perf_counter()
    TraceGenerator(config).generate_to_store(stream_path, batch_vms=batch_vms)
    stream_seconds = time.perf_counter() - begin
    _current, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    begin = time.perf_counter()
    trace = TraceGenerator(config).generate()
    TraceStore.from_trace(trace).save(eager_path)
    eager_seconds = time.perf_counter() - begin
    _current, eager_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del trace

    assert_store_dirs_identical(eager_path, stream_path)
    opened = TraceStore.open(stream_path, mmap=True)
    if len(opened) != config.n_vms:
        raise AssertionError(
            f"streamed store holds {len(opened)} VMs, expected {config.n_vms}")
    n_samples = int(opened.offsets[-1])
    store_bytes = sum(p.stat().st_size for p in stream_path.iterdir())
    return {
        "n_vms": config.n_vms,
        "n_days": config.n_days,
        "n_slots": config.n_slots,
        "n_samples": n_samples,
        "batch_vms": batch_vms,
        "store_bytes": store_bytes,
        "stream_seconds": stream_seconds,
        "stream_peak_bytes": stream_peak,
        "eager_seconds": eager_seconds,
        "eager_peak_bytes": eager_peak,
        "peak_reduction": eager_peak / max(1, stream_peak),
        "vms_per_second": config.n_vms / stream_seconds,
        "samples_per_second": n_samples / stream_seconds,
        "bitwise_identical": True,
    }


def measure_mmap_bounded_replay(trace: Trace, workdir,
                                *, n_estimators: int = 3,
                                budget_divisor: int = 3) -> Dict[str, object]:
    """End-to-end replay RAM: full in-RAM load vs mmap + chunked streaming.

    Saves the trace as a columnar store (native telemetry dtype), then runs
    the coach policy through ``simulate_policy`` twice from disk: once fully
    loaded with the dense meter (the seed shape: everything in RAM), once
    memory-mapped with the chunk width sized by
    :func:`chunk_slots_for_budget` for a budget of
    ``util_nbytes / budget_divisor`` -- i.e. the telemetry deliberately does
    *not* fit the configured budget, and only the streaming path can respect
    it.  Raises ``AssertionError`` if the two evaluations diverge (they read
    the same buffer, so they must be bitwise identical) or if the streaming
    peak exceeds the budget.
    """
    store = trace.store if trace.store is not None else TraceStore.from_trace(trace)
    path = Path(workdir) / "trace-store"
    store.save(path)
    buffer_nbytes = store.util_nbytes
    budget_bytes = max(1, buffer_nbytes // budget_divisor)
    max_servers = max(c.server_count for c in trace.fleet.clusters)
    chunk_slots = chunk_slots_for_budget(max_servers, budget_bytes)

    def replay_from_disk(mmap: bool, config: SimulationConfig):
        tracemalloc.start()
        begin = time.perf_counter()
        opened = TraceStore.open(path, mmap=mmap)
        evaluation = simulate_policy(opened.as_trace(), COACH_POLICY, config)
        seconds = time.perf_counter() - begin
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return evaluation, peak, seconds

    dense_eval, dense_peak, dense_seconds = replay_from_disk(
        False, SimulationConfig(n_estimators=n_estimators))
    mmap_eval, mmap_peak, mmap_seconds = replay_from_disk(
        True, SimulationConfig(n_estimators=n_estimators,
                               replay_chunk_slots=chunk_slots))
    if mmap_eval != dense_eval:
        raise AssertionError("mmap-backed replay diverged from in-RAM replay")
    if mmap_peak >= budget_bytes:
        raise AssertionError(
            f"streaming replay peak {mmap_peak} bytes exceeds the in-RAM "
            f"budget {budget_bytes} bytes")
    return {
        "buffer_nbytes": buffer_nbytes,
        "budget_bytes": budget_bytes,
        "chunk_slots": chunk_slots,
        "n_servers_max": max_servers,
        "dense_peak_bytes": dense_peak,
        "dense_seconds": dense_seconds,
        "mmap_peak_bytes": mmap_peak,
        "mmap_seconds": mmap_seconds,
        "peak_reduction": dense_peak / max(1, mmap_peak),
        "bitwise_identical": True,
    }


def measure_scenario_matrix(*, smoke: bool = False) -> Dict[str, object]:
    """Wall-clock the scenario registry end to end (repro.scenarios).

    Runs every registered scenario (a smoke run keeps only the cheapest
    and the most loaded one), asserts its expected invariants held, and
    reports per-scenario wall-clock plus the aggregate admission rate
    ``vms_per_second`` -- the headline number ``BENCH_<date>.json``
    tracks for the scenario engine.  Fingerprints ride along so a perf
    regression can be told apart from a behaviour change at a glance.
    """
    from repro.scenarios.registry import scenario_names
    from repro.scenarios.runner import run_scenario

    names = scenario_names()
    if smoke:
        names = ["baseline", "spot-churn-with-crashes"]
    per_scenario: Dict[str, Dict[str, object]] = {}
    total_requested = 0
    total_seconds = 0.0
    for name in names:
        begin = time.perf_counter()
        result = run_scenario(name)
        seconds = time.perf_counter() - begin
        if result.invariant_failures:
            raise AssertionError(
                f"scenario {name!r} violated invariants: "
                f"{result.invariant_failures}")
        requested = int(result.fingerprint["requested"])  # type: ignore[arg-type]
        per_scenario[name] = {
            "seconds": seconds,
            "requested": requested,
            "accepted": result.fingerprint["accepted"],
            "preempted": result.fingerprint["preempted"],
            "decision_ring_sha256": result.fingerprint["decision_ring_sha256"],
        }
        total_requested += requested
        total_seconds += seconds
    return {
        "scenarios": len(names),
        "per_scenario": per_scenario,
        "total_requested": total_requested,
        "total_seconds": total_seconds,
        "vms_per_second": total_requested / max(total_seconds, 1e-9),
        "invariants_ok": True,
    }
