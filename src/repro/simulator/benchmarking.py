"""Shared measurement harnesses for the perf-tracking benchmarks.

``benchmarks/test_bench_sweep_scale.py`` and ``scripts/run_benchmarks.py``
must measure the same thing the same way, or the ``BENCH_<date>.json``
trajectory silently stops being comparable with the pytest benchmark
numbers.  The workload *builders* live in :mod:`repro.simulator.synthetic`
for that reason; the measurement *harnesses* (worker sizing, wall-clock
pairing, tracemalloc peaks, and the bitwise divergence checks) live here
for the same one.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from dataclasses import replace
from typing import Dict, Iterable, Optional

from repro.core.scheduler import ServerAccount
from repro.simulator.engine import SimulationConfig
from repro.simulator.replay import VectorizedViolationMeter
from repro.simulator.sweep import sweep_policies
from repro.trace.trace import Trace
from repro.trace.vm import VMRecord


#: Values that switch smoke mode on; anything else (including "false",
#: "no", "off") leaves the benchmarks at full strength, so a developer
#: exporting a falsy-looking value cannot silently disable enforcement.
_SMOKE_TRUTHY = frozenset({"1", "true", "yes", "on"})


def bench_smoke_enabled() -> bool:
    """Whether benchmark smoke mode is on (``REPRO_BENCH_SMOKE=1``).

    The single source of truth for the knob: the pytest benchmarks (via
    ``benchmarks/conftest.py``) and ``scripts/run_benchmarks.py`` must
    parse it identically or the two would measure different workload sizes
    in the same CI run.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in _SMOKE_TRUTHY


def sweep_bench_workers() -> int:
    """Worker count for the sweep wall-clock measurements: at least 2 so
    the process-pool path (and its bitwise merge) is exercised even on
    single-CPU machines, at most 4 (the standard policy count)."""
    return max(2, min(4, os.cpu_count() or 1))


def measure_sweep_serial_vs_pool(trace: Trace, *, n_clusters: int = 3,
                                 n_estimators: int = 3,
                                 workers: Optional[int] = None) -> Dict[str, object]:
    """Time the standard-policy sweep serially and with a process pool.

    Raises ``AssertionError`` if the pool merge diverges from the serial
    walk -- the differential check at scale.  The returned mapping carries
    the wall-clocks, the speedup, and (under ``"results"``) the serial
    PolicyEvaluations for callers that want the numbers themselves.
    """
    clusters = trace.cluster_ids()[:n_clusters]
    if workers is None:
        workers = sweep_bench_workers()
    serial_config = SimulationConfig(clusters=clusters, n_estimators=n_estimators)
    pool_config = replace(serial_config, sweep_parallelism=workers)

    begin = time.perf_counter()
    serial = sweep_policies(trace, config=serial_config)
    serial_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    pooled = sweep_policies(trace, config=pool_config)
    pool_seconds = time.perf_counter() - begin

    if list(serial) != list(pooled):
        raise AssertionError("process-pool sweep reordered the policy results")
    for name in serial:
        if serial[name] != pooled[name]:
            raise AssertionError(
                f"process-pool sweep diverged from serial for policy {name!r}")
    return {
        "policies": list(serial),
        "n_clusters": len(clusters),
        "workers": workers,
        "serial_seconds": serial_seconds,
        "pool_seconds": pool_seconds,
        "speedup": serial_seconds / pool_seconds,
        "bitwise_identical": True,
        "results": serial,
    }


def measure_replay_memory(servers: Iterable[ServerAccount],
                          placed: Dict[str, VMRecord], n_slots: int,
                          chunk_slots: int,
                          cpu_contention_fraction: float = 0.5) -> Dict[str, object]:
    """Peak traced memory and wall-clock of dense vs. chunked replay.

    tracemalloc traces every allocation, so for a fixed workload the peaks
    are deterministic.  Raises ``AssertionError`` if the chunked stats
    diverge from the dense ones.
    """
    # Both passes iterate the servers; materialize so a generator argument
    # cannot arrive exhausted at the second pass.
    servers = list(servers)

    def replay(meter: VectorizedViolationMeter):
        tracemalloc.start()
        begin = time.perf_counter()
        stats = meter.measure(servers, placed, 0, n_slots,
                              cpu_contention_fraction)
        seconds = time.perf_counter() - begin
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return stats, peak, seconds

    dense_stats, dense_peak, dense_seconds = replay(VectorizedViolationMeter())
    chunked_stats, chunked_peak, chunked_seconds = replay(
        VectorizedViolationMeter(chunk_slots=chunk_slots))
    if chunked_stats != dense_stats:
        raise AssertionError("chunked replay diverged from dense replay")
    return {
        "chunk_slots": chunk_slots,
        "observed_server_slots": dense_stats.observed_server_slots,
        "dense_peak_bytes": dense_peak,
        "dense_seconds": dense_seconds,
        "chunked_peak_bytes": chunked_peak,
        "chunked_seconds": chunked_seconds,
        "peak_reduction": dense_peak / max(1, chunked_peak),
    }
