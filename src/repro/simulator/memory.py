"""Server memory model: PA/VA pools, backing store, trimming and migration.

This is the substrate that stands in for Hyper-V's memory management in the
paper's testbed experiments.  Each server partitions its physical memory into

* per-VM **PA pools** (the guaranteed portions, statically mapped),
* a shared **oversubscribed pool** backing the VMs' VA portions on demand,
* **unallocated** memory (free for new VMs or for extending the pool), and
* a small host reservation.

When VM demand spills beyond its PA portion, backing is taken from the
oversubscribed pool; when the pool is exhausted the spill goes to the backing
store (disk) -- those are the page faults that degrade performance.  The
mitigation engine frees pool space by trimming cold memory (1.1 GB/s),
extending the pool from unallocated memory (15.7 GB/s), or live-migrating a
VM away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.coachvm import CoachVM
from repro.core.mitigation import MIGRATION_BANDWIDTH_GBPS

#: Effective paging bandwidth to the NVMe backing store in GB/s.  Spill that
#: cannot be backed by physical memory moves at this rate, which is what makes
#: unmitigated contention so painful.
PAGING_BANDWIDTH_GBPS = 0.5


@dataclass
class DemandOutcome:
    """Result of applying one interval's memory demand to a server."""

    page_fault_gb: float = 0.0
    unbacked_gb: float = 0.0
    per_vm_fault_gb: Dict[str, float] = field(default_factory=dict)
    per_vm_unbacked_gb: Dict[str, float] = field(default_factory=dict)
    completed_migrations: List[str] = field(default_factory=list)


@dataclass
class _Migration:
    vm_id: str
    remaining_gb: float


class ServerMemoryModel:
    """Physical-memory accounting for one oversubscribed server."""

    def __init__(self, capacity_gb: float, host_reserved_gb: float = 4.0,
                 oversub_pool_gb: float = 0.0):
        if capacity_gb <= 0:
            raise ValueError("capacity must be positive")
        if host_reserved_gb < 0 or host_reserved_gb >= capacity_gb:
            raise ValueError("host reservation must be within capacity")
        self.capacity_gb = float(capacity_gb)
        self.host_reserved_gb = float(host_reserved_gb)
        self.oversub_pool_gb = float(oversub_pool_gb)
        self.vms: Dict[str, CoachVM] = {}
        self._migrations: Dict[str, _Migration] = {}
        self._last_demands: Dict[str, float] = {}
        self._last_unbacked: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Capacity accounting
    # ------------------------------------------------------------------ #
    @property
    def pa_allocated_gb(self) -> float:
        return sum(vm.memory.pa_gb for vm in self.vms.values())

    @property
    def oversub_used_gb(self) -> float:
        return sum(vm.memory.va_backed_gb for vm in self.vms.values())

    @property
    def oversub_available_gb(self) -> float:
        return max(0.0, self.oversub_pool_gb - self.oversub_used_gb)

    def unallocated_gb(self) -> float:
        return max(0.0, self.capacity_gb - self.host_reserved_gb
                   - self.pa_allocated_gb - self.oversub_pool_gb)

    def total_va_gb(self) -> float:
        return sum(vm.memory.va_gb for vm in self.vms.values())

    # ------------------------------------------------------------------ #
    # VM lifecycle
    # ------------------------------------------------------------------ #
    def add_vm(self, vm: CoachVM, back_initially: bool = False) -> None:
        """Place a CoachVM on the server.

        The VM's PA portion must fit in unallocated memory.  Its VA portion is
        *not* backed up-front unless ``back_initially`` is set -- backing is
        granted on demand from the oversubscribed pool.
        """
        if vm.vm_id in self.vms:
            raise ValueError(f"VM {vm.vm_id} is already on this server")
        if vm.memory.pa_gb > self.unallocated_gb() + 1e-9:
            raise ValueError(
                f"not enough unallocated memory for the PA portion of {vm.vm_id}: "
                f"need {vm.memory.pa_gb:.1f} GB, have {self.unallocated_gb():.1f} GB")
        if not back_initially:
            vm.memory.va_backed_gb = 0.0
        self.vms[vm.vm_id] = vm

    def remove_vm(self, vm_id: str) -> CoachVM:
        try:
            vm = self.vms.pop(vm_id)
        except KeyError as exc:
            raise KeyError(f"VM {vm_id} is not on this server") from exc
        self._migrations.pop(vm_id, None)
        self._last_demands.pop(vm_id, None)
        self._last_unbacked.pop(vm_id, None)
        return vm

    def resize_pool(self, pool_gb: float) -> None:
        """Set the oversubscribed pool size (used at (de)allocation time)."""
        if pool_gb < 0:
            raise ValueError("pool size cannot be negative")
        if pool_gb > self.capacity_gb - self.host_reserved_gb - self.pa_allocated_gb + 1e-9:
            raise ValueError("pool does not fit in the remaining physical memory")
        self.oversub_pool_gb = float(pool_gb)

    # ------------------------------------------------------------------ #
    # Demand application
    # ------------------------------------------------------------------ #
    def apply_demands(self, demands_gb: Dict[str, float], dt_seconds: float) -> DemandOutcome:
        """Apply one interval's per-VM memory demand.

        Backing for demand spilling beyond each VM's PA portion is granted
        from the oversubscribed pool while it lasts; the rest pages against
        the backing store at :data:`PAGING_BANDWIDTH_GBPS`.
        """
        outcome = DemandOutcome()
        self._advance_migrations(dt_seconds, outcome)

        for vm_id, demand in demands_gb.items():
            vm = self.vms.get(vm_id)
            if vm is None:
                continue
            demand = float(max(0.0, min(demand, vm.memory.total_gb)))
            self._last_demands[vm_id] = demand
            spill = vm.memory_pressure_gb(demand)
            need = max(0.0, spill - vm.memory.va_backed_gb)
            if need > 0.0:
                granted = min(need, self.oversub_available_gb,
                              vm.memory.va_unbacked_gb)
                if granted > 0.0:
                    vm.back_va(granted)
                    need -= granted
            unbacked = need
            self._last_unbacked[vm_id] = unbacked
            fault = min(unbacked, PAGING_BANDWIDTH_GBPS * dt_seconds)
            outcome.per_vm_fault_gb[vm_id] = fault
            outcome.per_vm_unbacked_gb[vm_id] = unbacked
            outcome.page_fault_gb += fault
            outcome.unbacked_gb += unbacked
            vm.update_cold_memory(demand)
        return outcome

    def _advance_migrations(self, dt_seconds: float, outcome: DemandOutcome) -> None:
        finished: List[str] = []
        for migration in self._migrations.values():
            migration.remaining_gb -= MIGRATION_BANDWIDTH_GBPS * dt_seconds
            if migration.remaining_gb <= 0:
                finished.append(migration.vm_id)
        for vm_id in finished:
            self.remove_vm(vm_id)
            outcome.completed_migrations.append(vm_id)

    # ------------------------------------------------------------------ #
    # Mitigation hooks (MemoryManager protocol)
    # ------------------------------------------------------------------ #
    def oversub_shortfall_gb(self) -> float:
        """Memory currently demanded but without physical backing."""
        return float(sum(self._last_unbacked.values()))

    def trimmable_gb(self) -> float:
        return float(sum(min(vm.cold_memory_gb, vm.memory.va_backed_gb)
                         for vm in self.vms.values()))

    def trim_cold_memory(self, amount_gb: float) -> float:
        """Trim cold VA-backed memory across VMs, largest cold share first."""
        remaining = float(amount_gb)
        freed = 0.0
        candidates = sorted(self.vms.values(),
                            key=lambda vm: min(vm.cold_memory_gb, vm.memory.va_backed_gb),
                            reverse=True)
        for vm in candidates:
            if remaining <= 1e-9:
                break
            trimmed = vm.trim(remaining)
            freed += trimmed
            remaining -= trimmed
        return freed

    def extend_pool(self, amount_gb: float) -> float:
        addable = min(float(amount_gb), self.unallocated_gb())
        if addable <= 0:
            return 0.0
        self.oversub_pool_gb += addable
        return addable

    def migration_candidates(self) -> List[str]:
        """VMs ranked by how much contention migrating them would relieve.

        The paper picks VMs by their potential to remedy contention (busier
        VMs first) weighed against migration overhead (larger VMs take
        longer); VMs already migrating are excluded.
        """
        scored = []
        for vm_id, vm in self.vms.items():
            if vm_id in self._migrations:
                continue
            demand = self._last_demands.get(vm_id, 0.0)
            over_use = max(0.0, demand - vm.memory.pa_gb)
            size_penalty = vm.memory.total_gb / 64.0
            scored.append((over_use - size_penalty, vm_id))
        scored.sort(reverse=True)
        return [vm_id for _score, vm_id in scored]

    def start_migration(self, vm_id: str) -> float:
        """Begin live-migrating a VM; returns the expected duration in seconds."""
        vm = self.vms.get(vm_id)
        if vm is None:
            raise KeyError(f"VM {vm_id} is not on this server")
        if vm_id in self._migrations:
            return self._migrations[vm_id].remaining_gb / MIGRATION_BANDWIDTH_GBPS
        # Cold VA memory must be paged in before the pre-copy phase can move it.
        to_copy = vm.memory.pa_gb + vm.memory.va_backed_gb + vm.cold_memory_gb
        self._migrations[vm_id] = _Migration(vm_id, to_copy)
        return to_copy / MIGRATION_BANDWIDTH_GBPS

    def migrations_in_progress(self) -> List[str]:
        return list(self._migrations)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, float]:
        return {
            "capacity_gb": self.capacity_gb,
            "pa_allocated_gb": self.pa_allocated_gb,
            "oversub_pool_gb": self.oversub_pool_gb,
            "oversub_used_gb": self.oversub_used_gb,
            "oversub_available_gb": self.oversub_available_gb,
            "unallocated_gb": self.unallocated_gb(),
            "n_vms": float(len(self.vms)),
        }
