"""Process-parallel policy sweep orchestration.

``evaluate_policies`` walks a whole policy suite over one trace.  The phases
that dominate a sweep -- random-forest training and the replay arithmetic --
hold the GIL, so the thread pool that fans *clusters* out inside one policy
run (``SimulationConfig.parallelism``) cannot speed the sweep itself up.
This module fans the sweep out at the policy level instead: one
:class:`SweepTask` per policy, dispatched to a ``ProcessPoolExecutor``
(``SimulationConfig.sweep_parallelism`` workers).  Callers that sweep
repeatedly can hand ``sweep_policies`` a long-lived pool from
:func:`create_sweep_executor`, paying the worker spawn + import bill once
instead of per sweep.

Determinism contract
--------------------
Every worker runs the exact same ``simulate_policy`` code path on the exact
same pickled inputs (the trace, the :class:`PolicyConfig`, and the
:class:`SimulationConfig`), and all model training is seeded
(``random_state=0`` forests), so a policy's :class:`PolicyEvaluation` is
bitwise identical whether it was computed in-process or in a worker.
Results are merged in *policy-declaration order* regardless of completion
order, so the returned mapping -- including the relative
``compare_policies`` columns -- is bitwise identical for any worker count.
``tests/test_golden_trace.py`` pins this against the golden trace.

Trace transport
---------------
Shipping the trace itself is the sweep's memory bill: pickling one
:class:`SweepTask` per policy makes every worker unpickle a private copy of
the full telemetry (``sweep_parallelism * trace_size`` bytes at peak).  With
``SimulationConfig.sweep_trace_transport="auto"`` (the default) the sweep
columnarizes the trace (:class:`repro.trace.store.TraceStore`), exports the
flat telemetry buffers to ``multiprocessing.shared_memory`` once, and ships
workers a kilobyte-sized :class:`~repro.trace.store.SharedTraceHandle`
instead -- workers attach zero-copy and read the exporting process's pages.
Traces that cannot columnarize (non-uniform telemetry) fall back to
pickling; ``"shared"`` makes that fallback an error and ``"pickle"`` forces
the seed behaviour.  The parent owns the segments and unlinks them in a
``finally`` around the pool, so neither a failing policy nor an abruptly
dying worker can leak shared memory.  Workers read the exact same float
buffers the parent holds, so every transport is bitwise identical (pinned
in ``tests/test_golden_trace.py``).

Failure contract
----------------
A policy that raises inside a worker must not hang the sweep or surface a
bare pickling error.  Workers catch everything and ship a
:class:`_SweepFailure` back to the parent, which cancels the outstanding
tasks and raises :class:`PolicySweepError` carrying the policy name, the
original exception type/message, and the worker's formatted traceback.  The
serial path wraps failures in the same exception type so callers handle one
shape.  When several policies fail, the one earliest in declaration order
wins (deterministic error reporting).
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, Optional

from repro.core.policy import STANDARD_POLICIES, PolicyConfig
from repro.simulator.engine import SimulationConfig, simulate_policy
from repro.simulator.metrics import PolicyEvaluation, compare_policies
from repro.simulator.replay import get_violation_meter
from repro.trace.store import SharedTraceHandle, TraceStore
from repro.trace.trace import Trace

#: Valid values of ``SimulationConfig.sweep_trace_transport``.
TRACE_TRANSPORTS = ("auto", "shared", "pickle")

#: Start method for sweep workers.  ``spawn`` is used on every platform: it
#: is the only method that exists everywhere, and it never inherits thread
#: or RNG state from the parent, which keeps the determinism contract free
#: of fork-time surprises (at the price of re-importing numpy per worker).
_MP_START_METHOD = "spawn"


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: evaluate a single policy on a trace.

    The task is fully self-contained and picklable -- the trace (or the
    shared-memory handle standing in for it), the policy, and the
    simulation knobs travel together -- so it can be shipped to a spawned
    worker process that shares no state with the parent.  Exactly one of
    ``trace`` / ``shared_trace`` is set: with a handle, the worker attaches
    the exported telemetry buffers zero-copy instead of unpickling a
    private copy of the trace.
    """

    policy_name: str
    policy: PolicyConfig
    trace: Optional[Trace]
    config: SimulationConfig
    shared_trace: Optional[SharedTraceHandle] = None


@dataclass(frozen=True)
class _SweepFailure:
    """Picklable capture of an exception raised inside a sweep worker."""

    original_type: str
    original_message: str
    worker_traceback: str


@dataclass(frozen=True)
class _SweepOutcome:
    """What a worker ships back: an evaluation or a captured failure."""

    policy_name: str
    evaluation: Optional[PolicyEvaluation] = None
    failure: Optional[_SweepFailure] = None


class PolicySweepError(RuntimeError):
    """A policy evaluation failed during a sweep.

    Carries the failing policy's name plus the original exception type,
    message, and (for process-pool failures) the worker-side traceback, so
    the root cause is debuggable without re-running the sweep serially.
    """

    def __init__(self, policy_name: str, original_type: str,
                 original_message: str, worker_traceback: str = ""):
        self.policy_name = policy_name
        self.original_type = original_type
        self.original_message = original_message
        self.worker_traceback = worker_traceback
        detail = f"policy {policy_name!r} failed: {original_type}: {original_message}"
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)


def run_sweep_task(task: SweepTask) -> _SweepOutcome:
    """Evaluate one policy; never raises (failures are shipped as data).

    Module-level so it is importable by ``spawn`` workers.  Exceptions are
    captured into the outcome instead of propagating: a raised exception
    would be pickled by ``concurrent.futures`` machinery, and exception
    classes with non-trivial constructors round-trip poorly, turning the
    real failure into an opaque ``BrokenProcessPool``.

    Shared-memory tasks attach the exported buffers for the duration of the
    evaluation and release the mapping before returning; the evaluation
    result carries only counts and floats, never buffer views, so nothing
    outlives the mapping.
    """
    attached = None
    try:
        if task.shared_trace is not None:
            attached = task.shared_trace.attach()
            trace = attached.as_trace()
        else:
            trace = task.trace
        evaluation = simulate_policy(trace, task.policy, task.config)
        return _SweepOutcome(task.policy_name, evaluation=evaluation)
    except Exception as exc:  # noqa: BLE001 -- the parent re-raises with context
        failure = _SweepFailure(type(exc).__name__, str(exc),
                                traceback.format_exc())
        return _SweepOutcome(task.policy_name, failure=failure)
    finally:
        if attached is not None:
            attached.close_shared()


def _evaluate_serial(trace: Trace, name: str, policy: PolicyConfig,
                     config: SimulationConfig) -> PolicyEvaluation:
    """In-process evaluation with the same failure shape as the pool path."""
    try:
        return simulate_policy(trace, policy, config)
    except Exception as exc:
        raise PolicySweepError(name, type(exc).__name__, str(exc)) from exc


def create_sweep_executor(n_workers: int) -> ProcessPoolExecutor:
    """A sweep-compatible process pool the caller owns (``spawn`` workers).

    Passing the pool to ``sweep_policies(..., executor=...)`` reuses the
    same workers across consecutive sweeps, paying the one-time spawn +
    numpy-import bill once instead of per sweep.  The caller is
    responsible for ``shutdown()``; the sweep never closes a pool it did
    not create.
    """
    return ProcessPoolExecutor(max_workers=max(1, n_workers),
                               mp_context=get_context(_MP_START_METHOD))


def sweep_policies(trace: Trace,
                   policies: Optional[Dict[str, PolicyConfig]] = None,
                   config: Optional[SimulationConfig] = None,
                   *,
                   executor: Optional[ProcessPoolExecutor] = None) -> Dict[str, PolicyEvaluation]:
    """Evaluate several policies on the same trace (Figure 20).

    Dispatches one :class:`SweepTask` per policy across
    ``config.sweep_parallelism`` worker processes (1 = serial, the
    default).  Results are merged in policy-declaration order, so the
    returned mapping is bitwise identical to the serial sweep for any
    worker count.  Additional capacity is computed relative to the
    ``none`` policy when present.

    With *executor* (see :func:`create_sweep_executor`) the tasks are
    submitted to the caller's pool instead of a freshly spawned one and
    the pool is left running afterwards -- worker reuse for callers that
    sweep repeatedly.  Determinism is unaffected: workers share no sweep
    state, so a warm worker computes the same bits as a cold one.
    """
    policies = dict(policies or STANDARD_POLICIES)
    config = config or SimulationConfig()
    # Fail fast on a mistyped meter name / bad chunk size / bad transport,
    # before any worker is spawned (workers would each fail with the same
    # error otherwise).
    get_violation_meter(config.violation_meter,
                        chunk_slots=config.replay_chunk_slots)
    if config.sweep_trace_transport not in TRACE_TRANSPORTS:
        raise ValueError(
            f"unknown sweep trace transport "
            f"{config.sweep_trace_transport!r}; expected one of "
            f"{sorted(TRACE_TRANSPORTS)}")

    n_workers = min(max(1, config.sweep_parallelism), max(1, len(policies)))
    pooled = (n_workers > 1 or executor is not None) and len(policies) > 1
    if not pooled:
        results = {name: _evaluate_serial(trace, name, policy, config)
                   for name, policy in policies.items()}
    else:
        results = _sweep_with_pool(trace, policies, config, n_workers,
                                   executor=executor)

    if "none" in results:
        compare_policies(results, baseline="none")
    return results


def _export_shared_trace(trace: Trace,
                         config: SimulationConfig) -> Optional[SharedTraceHandle]:
    """Export the trace for zero-copy worker attach, per the transport knob.

    Returns ``None`` when the sweep should fall back to pickling: transport
    ``"pickle"``, or ``"auto"`` with a trace that cannot columnarize
    (non-uniform telemetry) or a platform without usable shared memory.
    With transport ``"shared"`` those fallbacks raise instead.
    """
    transport = config.sweep_trace_transport
    if transport == "pickle":
        return None
    store: Optional[TraceStore] = trace.store
    if store is None:
        try:
            store = TraceStore.from_trace(trace)
        except ValueError:
            if transport == "shared":
                raise
            return None
    try:
        return store.export_shared()
    except OSError:
        if transport == "shared":
            raise
        return None


def _run_sweep_tasks(pool: ProcessPoolExecutor,
                     tasks: list) -> Dict[str, PolicyEvaluation]:
    """Submit every task and collect outcomes in declaration order.

    Declaration-order collection gives a deterministic merge AND
    deterministic error attribution when several policies fail at once.
    On any failure the outstanding futures are cancelled and the running
    ones drained before the exception propagates, so the caller can
    unlink shared memory immediately -- even when the pool it handed in
    keeps living after the sweep.
    """
    futures = [(task.policy_name, pool.submit(run_sweep_task, task))
               for task in tasks]
    results: Dict[str, PolicyEvaluation] = {}
    try:
        for name, future in futures:
            try:
                outcome = future.result()
            except BrokenProcessPool as exc:
                # A worker died outright (OOM-kill, segfault) -- nothing
                # could ship a _SweepFailure back, so attribute the break
                # to the policy whose result was pending when it surfaced.
                raise PolicySweepError(
                    name, type(exc).__name__,
                    "a sweep worker process died abruptly (e.g. "
                    "OOM-killed or segfaulted) while this policy was "
                    f"pending: {exc}",
                ) from exc
            if outcome.failure is not None:
                failure = outcome.failure
                raise PolicySweepError(name, failure.original_type,
                                       failure.original_message,
                                       failure.worker_traceback)
            results[name] = outcome.evaluation
    except BaseException:
        for _name, pending in futures:
            pending.cancel()
        wait([future for _name, future in futures])
        raise
    return results


def _sweep_with_pool(trace: Trace, policies: Dict[str, PolicyConfig],
                     config: SimulationConfig, n_workers: int,
                     executor: Optional[ProcessPoolExecutor] = None) -> Dict[str, PolicyEvaluation]:
    handle = _export_shared_trace(trace, config)
    if handle is None:
        # The pickle transport must carry exactly the seed payload -- one
        # object trace per worker, not the store's buffers on top of it.
        trace = trace.without_store()
    tasks = [SweepTask(name, policy, None if handle is not None else trace,
                       config, shared_trace=handle)
             for name, policy in policies.items()]
    try:
        if executor is not None:
            # Caller-owned pool: reuse its warm workers, never shut it
            # down.  _run_sweep_tasks drains in-flight tasks on failure,
            # so the unlink below cannot race a worker still attached.
            results = _run_sweep_tasks(executor, tasks)
        else:
            with ProcessPoolExecutor(max_workers=n_workers,
                                     mp_context=get_context(_MP_START_METHOD)) as pool:
                results = _run_sweep_tasks(pool, tasks)
    finally:
        # Every exit path reaches here with the workers drained (the
        # executor's __exit__ or _run_sweep_tasks' failure wait), so
        # unlinking on *every* path is what guarantees no shared-memory
        # segment outlives the sweep.
        if handle is not None:
            handle.unlink()
    return results
