"""Violation replay engines (Section 4.1, "Simulator").

After a cluster's arrivals have been replayed through the scheduler, the
evaluation replays each placed VM's 5-minute utilization against the physical
resources the scheduler committed on its server and counts CPU and memory
violations.  Two interchangeable meters implement that accounting:

* :class:`ReferenceViolationMeter` -- the seed per-server, per-VM loop, kept
  verbatim as the differential-testing and benchmarking reference (the same
  pattern as ``ReferenceLoopScheduler`` on the placement side).
* :class:`VectorizedViolationMeter` -- the dense formulation: every placed
  VM's CPU/memory demand segments are materialized once and scatter-added
  into ``(n_servers, n_slots)`` demand matrices via a single ``bincount``
  over precomputed flat ``server * n_slots + slot`` indices; occupancy uses
  the interval difference-array trick; violations for all servers fall out
  of one broadcasted comparison against the per-server capacity vectors.

The vectorized meter is arranged to be *bitwise* identical to the reference,
not merely close: segments are emitted in the same (server, VM) iteration
order the reference uses, and ``np.bincount`` accumulates its weights
sequentially in input order, so every per-slot float addition happens in the
same order as the reference loop's ``demand[lo:hi] += series * allocated``.
The differential test (``tests/test_violation_equivalence.py``) asserts exact
equality of the resulting :class:`ViolationStats`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.core.resources import Resource
from repro.core.scheduler import ServerAccount, bulk_cpu_capacity_and_memory_backing
from repro.simulator.metrics import ViolationStats
from repro.trace.vm import VMRecord

#: Absolute tolerance on the memory-backing comparison (seed value).
MEMORY_EPSILON = 1e-6


class ReferenceViolationMeter:
    """The seed per-server, per-VM replay loop.

    Iterates every server, accumulates each placed VM's absolute CPU/memory
    demand into per-server slot arrays, and counts the occupied slots whose
    demand exceeds the committed capacity.  Kept alive for differential
    testing and benchmarking of :class:`VectorizedViolationMeter`.
    """

    def measure(self, servers: Iterable[ServerAccount],
                placed: Dict[str, VMRecord],
                start: int, end: int,
                cpu_contention_fraction: float) -> ViolationStats:
        n_slots = end - start
        observed: Dict[str, int] = {}
        cpu_counts: Dict[str, int] = {}
        mem_counts: Dict[str, int] = {}
        if n_slots <= 0:
            return ViolationStats.from_counts(observed, cpu_counts, mem_counts)

        for server in servers:
            if not server.plans:
                continue
            capacity_cpu = server.capacity[Resource.CPU]
            capacity_mem_backing = server.committed_memory_backing_gb
            cpu_demand = np.zeros(n_slots)
            mem_demand = np.zeros(n_slots)
            occupancy = np.zeros(n_slots, dtype=bool)
            for vm_id in server.plans:
                vm = placed.get(vm_id)
                if vm is None:
                    continue
                lo = max(vm.start_slot, start)
                hi = min(vm.end_slot, end)
                if hi <= lo:
                    continue
                # A series may cover less than [start_slot, end_slot), so the
                # destination slice must be clamped to the samples actually
                # returned, not to the VM lifetime.
                for series, demand, allocated in (
                        (vm.series(Resource.CPU), cpu_demand, vm.allocated(Resource.CPU)),
                        (vm.series(Resource.MEMORY), mem_demand, vm.allocated(Resource.MEMORY))):
                    seg_lo = max(lo, series.start_slot)
                    seg_hi = min(hi, series.end_slot)
                    if seg_hi > seg_lo:
                        demand[seg_lo - start:seg_hi - start] += (
                            series.slice_absolute(seg_lo, seg_hi) * allocated)
                occupancy[lo - start:hi - start] = True

            occupied = int(occupancy.sum())
            if occupied == 0:
                continue
            observed[server.server_id] = occupied
            cpu_counts[server.server_id] = int(np.count_nonzero(
                occupancy & (cpu_demand > cpu_contention_fraction * capacity_cpu)))
            # Memory contention: actual demand exceeds the physical memory the
            # scheduler committed for these VMs (PA pools plus the multiplexed
            # oversubscribed pool), i.e. accesses would fault to disk.
            mem_counts[server.server_id] = int(np.count_nonzero(
                occupancy & (mem_demand > capacity_mem_backing + MEMORY_EPSILON)))
        return ViolationStats.from_counts(observed, cpu_counts, mem_counts)


def _scatter_add(chunks: List[np.ndarray], dest_starts: List[int],
                 chunk_lengths: List[int], allocations: List[float],
                 size: int) -> np.ndarray:
    """Scatter-add variable-length demand segments into a flat accumulator.

    ``chunks[i]`` (fractional utilization samples, ``chunk_lengths[i]`` of
    them) is scaled by ``allocations[i]`` and added at flat indices
    ``dest_starts[i] .. dest_starts[i] + chunk_lengths[i]``.  ``np.bincount``
    adds its weights in input order, so keeping the segments in reference
    iteration order keeps the per-slot accumulation order -- and therefore
    the float results -- bitwise identical to the reference loop.
    """
    if not chunks:
        return np.zeros(size)
    lengths = np.asarray(chunk_lengths, dtype=np.intp)
    total = int(lengths.sum())
    values = np.concatenate(chunks) * np.repeat(
        np.asarray(allocations, dtype=np.float64), lengths)
    # Flat index of sample j of chunk i is dest_starts[i] + j.  Fold the
    # per-chunk base into one repeat: repeat(dest_start - chunk_offset) +
    # arange(total) where chunk_offset is the chunk's position in the
    # concatenated sample array.
    starts = np.asarray(dest_starts, dtype=np.intp)
    chunk_offsets = np.cumsum(lengths) - lengths
    indices = np.repeat(starts - chunk_offsets, lengths) + np.arange(total)
    return np.bincount(indices, weights=values, minlength=size)


class VectorizedViolationMeter:
    """Dense scatter-add violation replay.

    One Python pass gathers each placed VM's demand segments (a raw slice of
    the utilization series plus a flat destination index); everything after
    that -- scaling, accumulation, occupancy, and the capacity comparisons
    for every server -- is a handful of whole-array numpy operations.
    """

    def measure(self, servers: Iterable[ServerAccount],
                placed: Dict[str, VMRecord],
                start: int, end: int,
                cpu_contention_fraction: float) -> ViolationStats:
        n_slots = end - start
        if n_slots <= 0:
            return ViolationStats.from_counts({}, {}, {})
        active = [server for server in servers if server.plans]
        if not active:
            return ViolationStats.from_counts({}, {}, {})

        capacity_cpu, backing = bulk_cpu_capacity_and_memory_backing(active)

        # One lean Python pass over the placed VMs gathers raw series slices
        # and flat destination indices; everything numeric happens afterwards
        # in whole-array operations.  The loop deliberately avoids the
        # per-call conveniences of the reference (``vm.series()`` lookups,
        # ``vm.allocated()`` building a ResourceVector per call, numpy scalar
        # indexing): at 5k VMs those dominate the replay cost.
        cpu_chunks: List[np.ndarray] = []
        cpu_starts: List[int] = []
        cpu_lens: List[int] = []
        cpu_alloc: List[float] = []
        mem_chunks: List[np.ndarray] = []
        mem_starts: List[int] = []
        mem_lens: List[int] = []
        mem_alloc: List[float] = []
        # Occupancy difference indices: +1 at interval start, -1 one past the
        # end; the running sum > 0 marks occupied slots.  Rows are padded by
        # one column to absorb intervals ending at n_slots.
        occ_plus: List[int] = []
        occ_minus: List[int] = []

        cpu_resource, mem_resource = Resource.CPU, Resource.MEMORY
        placed_get = placed.get
        cpu_chunks_append = cpu_chunks.append
        cpu_starts_append = cpu_starts.append
        cpu_lens_append = cpu_lens.append
        cpu_alloc_append = cpu_alloc.append
        mem_chunks_append = mem_chunks.append
        mem_starts_append = mem_starts.append
        mem_lens_append = mem_lens.append
        mem_alloc_append = mem_alloc.append
        occ_plus_append = occ_plus.append
        occ_minus_append = occ_minus.append
        for row, server in enumerate(active):
            row_base = row * n_slots - start
            occ_base = row * (n_slots + 1) - start
            for vm_id in server.plans:
                vm = placed_get(vm_id)
                if vm is None:
                    continue
                vm_start = vm.start_slot
                vm_end = vm.end_slot
                lo = vm_start if vm_start > start else start
                hi = vm_end if vm_end < end else end
                if hi <= lo:
                    continue
                utilization = vm.utilization
                config = vm.config
                try:
                    series = utilization[cpu_resource]
                    mem_series = utilization[mem_resource]
                except KeyError as exc:
                    raise KeyError(
                        f"VM {vm_id} has no utilization series for {exc.args[0]}"
                    ) from exc
                values = series.values
                series_start = series.start_slot
                series_end = series_start + values.size
                seg_lo = lo if lo > series_start else series_start
                seg_hi = hi if hi < series_end else series_end
                if seg_hi > seg_lo:
                    cpu_chunks_append(values[seg_lo - series_start:
                                             seg_hi - series_start])
                    cpu_starts_append(row_base + seg_lo)
                    cpu_lens_append(seg_hi - seg_lo)
                    cpu_alloc_append(config.cores)
                mem_values = mem_series.values
                mem_start = mem_series.start_slot
                if mem_start != series_start or mem_values.size != values.size:
                    # Memory telemetry covers a different window: recompute.
                    series_end = mem_start + mem_values.size
                    seg_lo = lo if lo > mem_start else mem_start
                    seg_hi = hi if hi < series_end else series_end
                if seg_hi > seg_lo:
                    mem_chunks_append(mem_values[seg_lo - mem_start:
                                                 seg_hi - mem_start])
                    mem_starts_append(row_base + seg_lo)
                    mem_lens_append(seg_hi - seg_lo)
                    mem_alloc_append(config.memory_gb)
                occ_plus_append(occ_base + lo)
                occ_minus_append(occ_base + hi)

        if not occ_plus:
            # Servers hold plans but none of the placed VMs overlap the
            # evaluation period -- every row is unoccupied, as in the
            # reference loop's ``occupied == 0`` skip.
            return ViolationStats.from_counts({}, {}, {})

        size = len(active) * n_slots
        cpu_demand = _scatter_add(cpu_chunks, cpu_starts, cpu_lens, cpu_alloc, size)
        mem_demand = _scatter_add(mem_chunks, mem_starts, mem_lens, mem_alloc, size)
        cpu_demand = cpu_demand.reshape(len(active), n_slots)
        mem_demand = mem_demand.reshape(len(active), n_slots)
        occ_size = len(active) * (n_slots + 1)
        occ_delta = (np.bincount(occ_plus, minlength=occ_size)
                     - np.bincount(occ_minus, minlength=occ_size))
        occupancy = np.cumsum(
            occ_delta.reshape(len(active), n_slots + 1), axis=1)[:, :n_slots] > 0

        cpu_violations = np.count_nonzero(
            occupancy & (cpu_demand > cpu_contention_fraction * capacity_cpu[:, None]),
            axis=1)
        mem_violations = np.count_nonzero(
            occupancy & (mem_demand > (backing + MEMORY_EPSILON)[:, None]), axis=1)
        occupied = occupancy.sum(axis=1)

        observed: Dict[str, int] = {}
        cpu_counts: Dict[str, int] = {}
        mem_counts: Dict[str, int] = {}
        for row, server in enumerate(active):
            if occupied[row] == 0:
                continue
            observed[server.server_id] = int(occupied[row])
            cpu_counts[server.server_id] = int(cpu_violations[row])
            mem_counts[server.server_id] = int(mem_violations[row])
        return ViolationStats.from_counts(observed, cpu_counts, mem_counts)


#: Registry of the available replay engines (``SimulationConfig.violation_meter``).
VIOLATION_METERS = {
    "vectorized": VectorizedViolationMeter,
    "reference": ReferenceViolationMeter,
}


def get_violation_meter(name: str):
    """Instantiate a violation meter by registry name."""
    try:
        return VIOLATION_METERS[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown violation meter {name!r}; expected one of "
            f"{sorted(VIOLATION_METERS)}") from exc
