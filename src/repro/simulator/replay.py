"""Violation replay engines (Section 4.1, "Simulator").

After a cluster's arrivals have been replayed through the scheduler, the
evaluation replays each placed VM's 5-minute utilization against the physical
resources the scheduler committed on its server and counts CPU and memory
violations.  Two interchangeable meters implement that accounting:

* :class:`ReferenceViolationMeter` -- the seed per-server, per-VM loop, kept
  verbatim as the differential-testing and benchmarking reference (the same
  pattern as ``ReferenceLoopScheduler`` on the placement side).
* :class:`VectorizedViolationMeter` -- the dense formulation: every placed
  VM's CPU/memory demand segments are materialized once and scatter-added
  into ``(n_servers, n_slots)`` demand matrices via a single ``bincount``
  over flat ``server * n_slots + slot`` indices; occupancy uses the
  interval difference-array trick; violations for all servers fall out of
  one broadcasted comparison against the per-server capacity vectors.

The vectorized meter also has a **chunked streaming mode**
(``VectorizedViolationMeter(chunk_slots=...)``, wired to
``SimulationConfig.replay_chunk_slots``): the slot axis is tiled into
bounded ``(n_servers, chunk_slots)`` blocks and each VM demand segment is
clipped to the chunk it lands in, so peak replay memory is
``O(n_servers * chunk_slots)`` instead of ``O(n_servers * n_slots)`` --
the difference between a day and a multi-week production trace.  Violation
*counts* are exact integers per chunk, and the per-slot float demand sums
are accumulated in the same segment order inside every chunk, so the
chunked mode is bitwise identical to the dense one (and therefore to the
reference), not merely close.

The meters never copy telemetry during the gather pass: each segment is a
*view* of the VM's ``UtilizationSeries`` buffer.  When the placed VMs are
row views over a columnar :class:`~repro.trace.store.TraceStore`, those
segments are slices of the store's flat per-resource buffer -- and when the
store was opened with ``mmap=True``, slices of the on-disk file.  Combined
with the chunked mode, that means a chunk only faults in the pages of the
slot range it is accumulating: a trace whose utilization buffer exceeds the
in-RAM budget replays end to end (size the tile with
:func:`chunk_slots_for_budget`).

The vectorized meter is arranged to be *bitwise* identical to the reference,
not merely close: segments are emitted in the same (server, VM) iteration
order the reference uses, and ``np.bincount`` accumulates its weights
sequentially in input order, so every per-slot float addition happens in the
same order as the reference loop's ``demand[lo:hi] += series * allocated``.
The differential tests (``tests/test_violation_equivalence.py`` and
``tests/test_chunked_replay.py``) assert exact equality of the resulting
:class:`ViolationStats` across meters and chunk sizes.
"""

# repro: hot-path  -- REP003: demand segments are gathered as views, never
# copied; justified exceptions are listed in analysis_baseline.json.

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import Resource
from repro.core.scheduler import ServerAccount, bulk_cpu_capacity_and_memory_backing
from repro.simulator.metrics import ViolationStats
from repro.trace.vm import VMRecord

#: Absolute tolerance on the memory-backing comparison (seed value).
MEMORY_EPSILON = 1e-6


class ReferenceViolationMeter:
    """The seed per-server, per-VM replay loop.

    Iterates every server, accumulates each placed VM's absolute CPU/memory
    demand into per-server slot arrays, and counts the occupied slots whose
    demand exceeds the committed capacity.  Kept alive for differential
    testing and benchmarking of :class:`VectorizedViolationMeter`.
    """

    def measure(self, servers: Iterable[ServerAccount],
                placed: Dict[str, VMRecord],
                start: int, end: int,
                cpu_contention_fraction: float) -> ViolationStats:
        n_slots = end - start
        observed: Dict[str, int] = {}
        cpu_counts: Dict[str, int] = {}
        mem_counts: Dict[str, int] = {}
        if n_slots <= 0:
            return ViolationStats.from_counts(observed, cpu_counts, mem_counts)

        for server in servers:
            if not server.plans:
                continue
            capacity_cpu = server.capacity[Resource.CPU]
            capacity_mem_backing = server.committed_memory_backing_gb
            cpu_demand = np.zeros(n_slots)
            mem_demand = np.zeros(n_slots)
            occupancy = np.zeros(n_slots, dtype=bool)
            for vm_id in server.plans:
                vm = placed.get(vm_id)
                if vm is None:
                    continue
                lo = max(vm.start_slot, start)
                hi = min(vm.end_slot, end)
                if hi <= lo:
                    continue
                # A series may cover less than [start_slot, end_slot), so the
                # destination slice must be clamped to the samples actually
                # returned, not to the VM lifetime.
                for series, demand, allocated in (
                        (vm.series(Resource.CPU), cpu_demand, vm.allocated(Resource.CPU)),
                        (vm.series(Resource.MEMORY), mem_demand, vm.allocated(Resource.MEMORY))):
                    seg_lo = max(lo, series.start_slot)
                    seg_hi = min(hi, series.end_slot)
                    if seg_hi > seg_lo:
                        demand[seg_lo - start:seg_hi - start] += (
                            series.slice_absolute(seg_lo, seg_hi) * allocated)
                occupancy[lo - start:hi - start] = True

            occupied = int(occupancy.sum())
            if occupied == 0:
                continue
            observed[server.server_id] = occupied
            cpu_counts[server.server_id] = int(np.count_nonzero(
                occupancy & (cpu_demand > cpu_contention_fraction * capacity_cpu)))
            # Memory contention: actual demand exceeds the physical memory the
            # scheduler committed for these VMs (PA pools plus the multiplexed
            # oversubscribed pool), i.e. accesses would fault to disk.
            mem_counts[server.server_id] = int(np.count_nonzero(
                occupancy & (mem_demand > capacity_mem_backing + MEMORY_EPSILON)))
        return ViolationStats.from_counts(observed, cpu_counts, mem_counts)


def _scatter_add(chunks: Sequence[np.ndarray], dest_starts: Sequence[int],
                 chunk_lengths: Sequence[int], allocations: Sequence[float],
                 size: int) -> np.ndarray:
    """Scatter-add variable-length demand segments into a flat accumulator.

    ``chunks[i]`` (fractional utilization samples, ``chunk_lengths[i]`` of
    them) is scaled by ``allocations[i]`` and added at flat indices
    ``dest_starts[i] .. dest_starts[i] + chunk_lengths[i]``.  ``np.bincount``
    adds its weights in input order, so keeping the segments in reference
    iteration order keeps the per-slot accumulation order -- and therefore
    the float results -- bitwise identical to the reference loop.
    """
    if not len(chunks):
        return np.zeros(size)
    lengths = np.asarray(chunk_lengths, dtype=np.intp)
    total = int(lengths.sum())
    values = np.concatenate(chunks) * np.repeat(
        np.asarray(allocations, dtype=np.float64), lengths)
    # Flat index of sample j of chunk i is dest_starts[i] + j.  Fold the
    # per-chunk base into one repeat: repeat(dest_start - chunk_offset) +
    # arange(total) where chunk_offset is the chunk's position in the
    # concatenated sample array.
    starts = np.asarray(dest_starts, dtype=np.intp)
    chunk_offsets = np.cumsum(lengths) - lengths
    indices = np.repeat(starts - chunk_offsets, lengths) + np.arange(total)
    return np.bincount(indices, weights=values, minlength=size)


class _SegmentTable:
    """Demand segments for one resource, in reference iteration order.

    ``values[i]`` is a *view* into VM ``i``'s utilization series (no copy);
    ``rows[i]``/``lo[i]``/``hi[i]`` give the segment's server row and its
    absolute slot range, and ``alloc[i]`` the VM's allocated resource.  The
    table is built once per measurement and then sliced per slot-chunk, so
    gathering cost is paid once regardless of the chunk count.
    """

    __slots__ = ("values", "rows", "lo", "hi", "alloc",
                 "_rows", "_lo", "_hi", "_alloc", "_min_lo", "_max_hi")

    def __init__(self) -> None:
        self.values: List[np.ndarray] = []
        self.rows: List[int] = []
        self.lo: List[int] = []
        self.hi: List[int] = []
        self.alloc: List[float] = []

    def freeze(self) -> None:
        """Convert the metadata lists to arrays once gathering is done."""
        self._rows = np.asarray(self.rows, dtype=np.intp)
        self._lo = np.asarray(self.lo, dtype=np.intp)
        self._hi = np.asarray(self.hi, dtype=np.intp)
        self._alloc = np.asarray(self.alloc, dtype=np.float64)
        self._min_lo = int(self._lo.min()) if self._lo.size else 0
        self._max_hi = int(self._hi.max()) if self._hi.size else 0

    def demand(self, chunk_lo: int, chunk_hi: int, n_rows: int) -> np.ndarray:
        """(n_rows, chunk_width) demand accumulated over ``[chunk_lo, chunk_hi)``.

        Segments are clipped to the chunk; within the chunk they keep their
        gathering order, so each slot's float accumulation order -- and
        therefore its sum -- is identical to the dense single-chunk pass.
        """
        width = chunk_hi - chunk_lo
        size = n_rows * width
        if not self.values:
            return np.zeros((n_rows, width))
        if chunk_lo <= self._min_lo and chunk_hi >= self._max_hi:
            # Fast path (the dense mode): no segment needs clipping.
            dest = self._rows * width + (self._lo - chunk_lo)
            flat = _scatter_add(self.values, dest, self._hi - self._lo,
                                self._alloc, size)
            return flat.reshape(n_rows, width)
        inside = np.nonzero((self._lo < chunk_hi) & (self._hi > chunk_lo))[0]
        if inside.size == 0:
            return np.zeros((n_rows, width))
        clip_lo = np.maximum(self._lo[inside], chunk_lo)
        clip_hi = np.minimum(self._hi[inside], chunk_hi)
        dest = self._rows[inside] * width + (clip_lo - chunk_lo)
        values = self.values
        seg_lo = self._lo
        chunks = [values[i][cl - seg_lo[i]:ch - seg_lo[i]]
                  for i, cl, ch in zip(inside.tolist(), clip_lo.tolist(),
                                       clip_hi.tolist())]
        flat = _scatter_add(chunks, dest, clip_hi - clip_lo,
                            self._alloc[inside], size)
        return flat.reshape(n_rows, width)


def _chunk_ranges(start: int, end: int,
                  chunk_slots: Optional[int]) -> Iterator[Tuple[int, int]]:
    """Tile ``[start, end)`` into ``chunk_slots``-wide ranges (one tile when
    ``chunk_slots`` is None -- the dense mode)."""
    if chunk_slots is None:
        yield start, end
        return
    lo = start
    while lo < end:
        yield lo, min(lo + chunk_slots, end)
        lo += chunk_slots


class VectorizedViolationMeter:
    """Dense scatter-add violation replay, optionally chunked over slots.

    One Python pass gathers each placed VM's demand segments (raw views of
    the utilization series plus server-row/slot-range metadata); everything
    after that -- scaling, accumulation, occupancy, and the capacity
    comparisons for every server -- is a handful of whole-array numpy
    operations per slot-chunk.  With ``chunk_slots=None`` (the default) a
    single chunk covers the whole evaluation window: the dense mode.  With
    a bound, peak memory is ``O(n_servers * chunk_slots)`` while the counts
    stay bitwise identical (violations are integer counts per chunk, and
    per-slot demand sums keep their accumulation order inside each chunk).
    """

    def __init__(self, chunk_slots: Optional[int] = None):
        if chunk_slots is not None and chunk_slots < 1:
            raise ValueError(
                f"chunk_slots must be a positive slot count, got {chunk_slots}")
        self.chunk_slots = chunk_slots

    def measure(self, servers: Iterable[ServerAccount],
                placed: Dict[str, VMRecord],
                start: int, end: int,
                cpu_contention_fraction: float) -> ViolationStats:
        n_slots = end - start
        if n_slots <= 0:
            return ViolationStats.from_counts({}, {}, {})
        active = [server for server in servers if server.plans]
        if not active:
            return ViolationStats.from_counts({}, {}, {})

        capacity_cpu, backing = bulk_cpu_capacity_and_memory_backing(active)

        # One lean Python pass over the placed VMs gathers raw series slices
        # plus (row, slot-range) metadata; everything numeric happens
        # afterwards in whole-array operations.  The loop deliberately avoids
        # the per-call conveniences of the reference (``vm.series()``
        # lookups, ``vm.allocated()`` building a ResourceVector per call,
        # numpy scalar indexing): at 5k VMs those dominate the replay cost.
        cpu_table = _SegmentTable()
        mem_table = _SegmentTable()
        # Occupancy intervals (server row, absolute [lo, hi) slot range);
        # each chunk turns its clipped intervals into a difference array.
        occ_rows: List[int] = []
        occ_lo: List[int] = []
        occ_hi: List[int] = []

        cpu_resource, mem_resource = Resource.CPU, Resource.MEMORY
        placed_get = placed.get
        cpu_values_append = cpu_table.values.append
        cpu_rows_append = cpu_table.rows.append
        cpu_lo_append = cpu_table.lo.append
        cpu_hi_append = cpu_table.hi.append
        cpu_alloc_append = cpu_table.alloc.append
        mem_values_append = mem_table.values.append
        mem_rows_append = mem_table.rows.append
        mem_lo_append = mem_table.lo.append
        mem_hi_append = mem_table.hi.append
        mem_alloc_append = mem_table.alloc.append
        occ_rows_append = occ_rows.append
        occ_lo_append = occ_lo.append
        occ_hi_append = occ_hi.append
        for row, server in enumerate(active):
            for vm_id in server.plans:
                vm = placed_get(vm_id)
                if vm is None:
                    continue
                vm_start = vm.start_slot
                vm_end = vm.end_slot
                lo = vm_start if vm_start > start else start
                hi = vm_end if vm_end < end else end
                if hi <= lo:
                    continue
                utilization = vm.utilization
                config = vm.config
                try:
                    series = utilization[cpu_resource]
                    mem_series = utilization[mem_resource]
                except KeyError as exc:
                    raise KeyError(
                        f"VM {vm_id} has no utilization series for {exc.args[0]}"
                    ) from exc
                values = series.values
                series_start = series.start_slot
                series_end = series_start + values.size
                seg_lo = lo if lo > series_start else series_start
                seg_hi = hi if hi < series_end else series_end
                if seg_hi > seg_lo:
                    cpu_values_append(values[seg_lo - series_start:
                                             seg_hi - series_start])
                    cpu_rows_append(row)
                    cpu_lo_append(seg_lo)
                    cpu_hi_append(seg_hi)
                    cpu_alloc_append(config.cores)
                mem_values = mem_series.values
                mem_start = mem_series.start_slot
                if mem_start != series_start or mem_values.size != values.size:
                    # Memory telemetry covers a different window: recompute.
                    series_end = mem_start + mem_values.size
                    seg_lo = lo if lo > mem_start else mem_start
                    seg_hi = hi if hi < series_end else series_end
                if seg_hi > seg_lo:
                    mem_values_append(mem_values[seg_lo - mem_start:
                                                 seg_hi - mem_start])
                    mem_rows_append(row)
                    mem_lo_append(seg_lo)
                    mem_hi_append(seg_hi)
                    mem_alloc_append(config.memory_gb)
                occ_rows_append(row)
                occ_lo_append(lo)
                occ_hi_append(hi)

        if not occ_rows:
            # Servers hold plans but none of the placed VMs overlap the
            # evaluation period -- every row is unoccupied, as in the
            # reference loop's ``occupied == 0`` skip.
            return ViolationStats.from_counts({}, {}, {})

        cpu_table.freeze()
        mem_table.freeze()
        n_rows = len(active)
        occ_rows_arr = np.asarray(occ_rows, dtype=np.intp)
        occ_lo_arr = np.asarray(occ_lo, dtype=np.intp)
        occ_hi_arr = np.asarray(occ_hi, dtype=np.intp)

        cpu_threshold = cpu_contention_fraction * capacity_cpu
        mem_threshold = backing + MEMORY_EPSILON
        occupied_total = np.zeros(n_rows, dtype=np.int64)
        cpu_total = np.zeros(n_rows, dtype=np.int64)
        mem_total = np.zeros(n_rows, dtype=np.int64)

        for chunk_lo, chunk_hi in _chunk_ranges(start, end, self.chunk_slots):
            inside = np.nonzero((occ_lo_arr < chunk_hi)
                                & (occ_hi_arr > chunk_lo))[0]
            if inside.size == 0:
                # No VM occupies any slot of this chunk: demand may not be
                # inspected (the reference only counts occupied slots).
                continue
            width = chunk_hi - chunk_lo
            # Occupancy difference indices: +1 at interval start, -1 one
            # past the end; the running sum > 0 marks occupied slots.  Rows
            # are padded by one column to absorb intervals ending at the
            # chunk boundary.
            plus = (occ_rows_arr[inside] * (width + 1)
                    + np.maximum(occ_lo_arr[inside], chunk_lo) - chunk_lo)
            minus = (occ_rows_arr[inside] * (width + 1)
                     + np.minimum(occ_hi_arr[inside], chunk_hi) - chunk_lo)
            occ_size = n_rows * (width + 1)
            occ_delta = (np.bincount(plus, minlength=occ_size)
                         - np.bincount(minus, minlength=occ_size))
            occupancy = np.cumsum(
                occ_delta.reshape(n_rows, width + 1), axis=1)[:, :width] > 0

            cpu_demand = cpu_table.demand(chunk_lo, chunk_hi, n_rows)
            mem_demand = mem_table.demand(chunk_lo, chunk_hi, n_rows)
            cpu_total += np.count_nonzero(
                occupancy & (cpu_demand > cpu_threshold[:, None]), axis=1)
            mem_total += np.count_nonzero(
                occupancy & (mem_demand > mem_threshold[:, None]), axis=1)
            occupied_total += occupancy.sum(axis=1)

        observed: Dict[str, int] = {}
        cpu_counts: Dict[str, int] = {}
        mem_counts: Dict[str, int] = {}
        for row, server in enumerate(active):
            if occupied_total[row] == 0:
                continue
            observed[server.server_id] = int(occupied_total[row])
            cpu_counts[server.server_id] = int(cpu_total[row])
            mem_counts[server.server_id] = int(mem_total[row])
        return ViolationStats.from_counts(observed, cpu_counts, mem_counts)


#: Approximate transient bytes the chunked meter allocates per server-slot
#: of one tile: two float64 demand matrices, the int64 occupancy difference
#: array and its cumsum, plus the boolean masks of the threshold
#: comparisons.  Deliberately rounded *up* so a budget computed from it
#: holds with headroom.
CHUNK_BYTES_PER_SERVER_SLOT = 64


def chunk_slots_for_budget(n_servers: int, budget_bytes: int) -> int:
    """Widest chunk whose transient replay allocations fit *budget_bytes*.

    The chunked meter's peak scales with ``n_servers * chunk_slots`` (see
    :data:`CHUNK_BYTES_PER_SERVER_SLOT`); this inverts that relation so a
    caller with a RAM budget -- e.g. streaming an mmap-backed trace store
    much larger than memory -- can pick ``SimulationConfig.replay_chunk_slots``
    instead of guessing.  Always at least 1 (a one-slot tile is valid, just
    slow).
    """
    if n_servers <= 0:
        raise ValueError(f"n_servers must be positive, got {n_servers}")
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
    return max(1, int(budget_bytes // (n_servers * CHUNK_BYTES_PER_SERVER_SLOT)))


#: Registry of the available replay engines (``SimulationConfig.violation_meter``).
VIOLATION_METERS = {
    "vectorized": VectorizedViolationMeter,
    "reference": ReferenceViolationMeter,
}


def get_violation_meter(name: str, chunk_slots: Optional[int] = None):
    """Instantiate a violation meter by registry name.

    *chunk_slots* selects the chunked streaming mode and is only supported
    by the vectorized meter (the reference loop is deliberately kept
    verbatim as the seed implementation).
    """
    try:
        meter_cls = VIOLATION_METERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown violation meter {name!r}; expected one of "
            f"{sorted(VIOLATION_METERS)}") from exc
    if chunk_slots is not None:
        if meter_cls is not VectorizedViolationMeter:
            raise ValueError(
                f"violation meter {name!r} does not support chunked replay; "
                f"use 'vectorized' with chunk_slots or unset replay_chunk_slots")
        return meter_cls(chunk_slots=chunk_slots)
    return meter_cls()
