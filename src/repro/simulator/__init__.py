"""Cluster and server simulation substrate."""

from repro.simulator.engine import (
    ClusterRunResult,
    ClusterSimulation,
    SimulationConfig,
    evaluate_policies,
    simulate_policy,
)
from repro.simulator.memory import (
    PAGING_BANDWIDTH_GBPS,
    DemandOutcome,
    ServerMemoryModel,
)
from repro.simulator.metrics import (
    MitigationTimeline,
    PolicyEvaluation,
    PredictionAccuracy,
    ViolationStats,
    compare_policies,
)

__all__ = [
    "ClusterRunResult",
    "ClusterSimulation",
    "DemandOutcome",
    "MitigationTimeline",
    "PAGING_BANDWIDTH_GBPS",
    "PolicyEvaluation",
    "PredictionAccuracy",
    "ServerMemoryModel",
    "SimulationConfig",
    "ViolationStats",
    "compare_policies",
    "evaluate_policies",
    "simulate_policy",
]
