"""Cluster and server simulation substrate."""

from repro.simulator.engine import (
    ClusterRunResult,
    ClusterSimulation,
    FailureEvent,
    SimulationConfig,
    evaluate_policies,
    simulate_policy,
)
from repro.simulator.memory import (
    PAGING_BANDWIDTH_GBPS,
    DemandOutcome,
    ServerMemoryModel,
)
from repro.simulator.metrics import (
    MitigationTimeline,
    PolicyEvaluation,
    PredictionAccuracy,
    ViolationStats,
    compare_policies,
)
from repro.simulator.replay import (
    VIOLATION_METERS,
    ReferenceViolationMeter,
    VectorizedViolationMeter,
    chunk_slots_for_budget,
    get_violation_meter,
)
from repro.simulator.sweep import (
    PolicySweepError,
    SweepTask,
    sweep_policies,
)

__all__ = [
    "ClusterRunResult",
    "ClusterSimulation",
    "DemandOutcome",
    "FailureEvent",
    "MitigationTimeline",
    "PAGING_BANDWIDTH_GBPS",
    "PolicyEvaluation",
    "PolicySweepError",
    "PredictionAccuracy",
    "ReferenceViolationMeter",
    "ServerMemoryModel",
    "SimulationConfig",
    "SweepTask",
    "VIOLATION_METERS",
    "VectorizedViolationMeter",
    "ViolationStats",
    "chunk_slots_for_budget",
    "compare_policies",
    "evaluate_policies",
    "get_violation_meter",
    "simulate_policy",
    "sweep_policies",
]
