"""Synthetic placed-replay workloads for differential tests and benchmarks.

Both the meter-equivalence tests and the replay-scale benchmark need the
same thing: a scheduler with randomized VM plans committed to it, plus the
matching :class:`VMRecord` telemetry that :class:`ClusterSimulation` would
hand to a violation meter.  Keeping the builder in one place guarantees the
at-scale benchmark and the differential tests exercise the same workload
shape (truncated series, stale plan entries, commit/release churn), so a
change to the plan or telemetry schema cannot silently drift between them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import ClusterScheduler, ServerAccount
from repro.core.windows import plan_vm
from repro.prediction.utilization_model import WindowUtilizationPrediction
from repro.trace.generator import TraceGenerator, TraceGeneratorConfig
from repro.trace.hardware import ClusterConfig
from repro.trace.store import TraceStore
from repro.trace.timeseries import SLOTS_PER_DAY, TimeWindowConfig, UtilizationSeries
from repro.trace.trace import Trace
from repro.trace.vm import VM_CATALOG, VMRecord

#: Small shapes, so even a modest cluster genuinely hosts most arrivals.
DEFAULT_CONFIG_NAMES: Tuple[str, ...] = ("D1_v5", "D2_v5", "D4_v5", "F2_v2", "E2_v5")

#: Window configuration shared by every benchmark workload below.
BENCH_WINDOWS = TimeWindowConfig(4)

#: 200-server cluster timed by the placement/replay scale benchmarks AND
#: ``scripts/run_benchmarks.py`` -- one definition, so the tracked plans/s
#: and server-slots/s trajectories cannot silently diverge between the two.
SCALE_BENCH_CLUSTER = ClusterConfig(
    "SCALE", "bench",
    (("gen4-intel", 60), ("gen5-intel", 50), ("gen6-amd", 50), ("gen7-amd", 40)))

#: Fleet sizes of the scheduler scaling-curve benchmark (full mode).  The
#: smallest matches :data:`SCALE_BENCH_CLUSTER` so the curve's first point
#: stays comparable with the single-size placement benchmark.
SCHEDULER_SCALING_SIZES: Tuple[int, ...] = (200, 1000, 5000, 20000, 100000)

#: Reduced fleet sizes under ``REPRO_BENCH_SMOKE=1``.  The largest still
#: exceeds the tiered-index dispatch threshold
#: (``scheduler._TIERED_MIN_SERVERS``), so even the smoke curve checks
#: decision identity on the band-descent path, not just the screened one.
SCHEDULER_SCALING_SIZES_SMOKE: Tuple[int, ...] = (100, 400, 10000)


def scheduler_scaling_sizes(*, smoke: bool = False) -> Tuple[int, ...]:
    """Fleet sizes timed by the scheduler scaling curve (smoke-aware)."""
    return SCHEDULER_SCALING_SIZES_SMOKE if smoke else SCHEDULER_SCALING_SIZES


def scheduler_scaling_plan_count(*, smoke: bool = False) -> int:
    """Arrival-sequence length per fleet size of the scaling curve."""
    return 800 if smoke else 3000


def build_scaled_bench_cluster(n_servers: int) -> ClusterConfig:
    """A :data:`SCALE_BENCH_CLUSTER`-shaped cluster with *n_servers* servers.

    Keeps the four-generation mix (so capacity stays heterogeneous and the
    best-fit tie-breaking is exercised) while scaling the server count --
    the independent variable of the scaling-curve benchmark.
    """
    if n_servers < 4:
        raise ValueError(f"scaled bench cluster needs >= 4 servers, got {n_servers}")
    quarter = n_servers // 4
    return ClusterConfig(
        f"SCALE-{n_servers}", "bench",
        (("gen4-intel", n_servers - 3 * quarter), ("gen5-intel", quarter),
         ("gen6-amd", quarter), ("gen7-amd", quarter)))


#: 100-server cluster for the multi-week streaming-replay demonstrations.
MULTIWEEK_BENCH_CLUSTER = ClusterConfig(
    "SWEEP", "bench",
    (("gen4-intel", 40), ("gen5-intel", 30), ("gen6-amd", 30)))

#: Chunk width (one day of 5-minute slots) used by the bounded-memory
#: replay demonstrations.
BENCH_CHUNK_SLOTS = 288


def build_placed_replay_state(
    cluster: ClusterConfig,
    windows: TimeWindowConfig,
    n_vms: int,
    n_slots: int,
    *,
    seed: int = 7,
    lifetime_range: Tuple[int, int] = (24, 48),
    start_margin: int | None = None,
    max_end_overshoot: int = 0,
    config_names: Sequence[str] = DEFAULT_CONFIG_NAMES,
    util_max_range: Tuple[float, float] = (0.05, 0.5),
    util_pct_range: Tuple[float, float] = (0.02, 0.3),
    full_coverage_probability: float = 0.8,
    stale_plan_probability: float = 0.0,
    churn_probability: float = 0.0,
) -> Tuple[List[ServerAccount], Dict[str, VMRecord]]:
    """Commit randomized VM plans and attach randomized telemetry.

    Returns ``(servers, placed)`` mirroring what ``ClusterSimulation`` hands
    to a violation meter.  Depending on the probabilities, the workload
    includes series covering only part of the lifetime (truncated
    telemetry), committed plans whose VM never lands in ``placed`` (stale
    entries), and interleaved deallocations (churn).  Lifetimes may overrun
    the evaluation window by up to *max_end_overshoot* slots, which
    exercises the meters' end-clamping.
    """
    rng = np.random.default_rng(seed)
    scheduler = ClusterScheduler(cluster, windows)
    placed: Dict[str, VMRecord] = {}
    configs = [VM_CATALOG[name] for name in config_names]
    w = windows.windows_per_day
    if start_margin is None:
        start_margin = lifetime_range[0]
    for i in range(n_vms):
        maximum = {r: rng.uniform(*util_max_range, w) for r in ALL_RESOURCES}
        percentile = {r: np.minimum(maximum[r], rng.uniform(*util_pct_range, w))
                      for r in ALL_RESOURCES}
        prediction = WindowUtilizationPrediction(
            windows=windows, percentile=percentile, maximum=maximum)
        config = configs[rng.integers(len(configs))]
        allocation = {Resource.CPU: float(config.cores),
                      Resource.MEMORY: float(config.memory_gb),
                      Resource.NETWORK: config.network_gbps,
                      Resource.SSD: float(config.ssd_gb)}
        decision = scheduler.place(
            plan_vm(f"vm-{i}", allocation, prediction, oversubscribe=True))
        start_slot = int(rng.integers(0, n_slots - start_margin))
        end_slot = int(min(n_slots + max_end_overshoot,
                           start_slot + rng.integers(*lifetime_range)))
        if decision.accepted and not (stale_plan_probability
                                      and rng.random() < stale_plan_probability):
            vm = VMRecord(f"vm-{i}", "sub", config, cluster.cluster_id,
                          start_slot, end_slot)
            lifetime = end_slot - start_slot
            covered = (lifetime if rng.random() < full_coverage_probability
                       else int(rng.integers(1, lifetime + 1)))
            vm.utilization = {
                r: UtilizationSeries(rng.uniform(0.0, 1.0, covered), start_slot)
                for r in (Resource.CPU, Resource.MEMORY)}
            placed[vm.vm_id] = vm
        if churn_probability and placed and rng.random() < churn_probability:
            victim = next(iter(placed))
            scheduler.deallocate(victim)
            placed.pop(victim)
    return list(scheduler.servers.values()), placed


def build_placement_plans(
    n_plans: int,
    windows: TimeWindowConfig,
    *,
    seed: int = 7,
    core_choices: Sequence[float] = (1, 2, 2, 4, 4, 8),
) -> List[object]:
    """Randomized VM resource plans for placement-throughput measurements.

    The scheduler-scale benchmark and ``scripts/run_benchmarks.py`` must
    time the *same* workload shape or the tracked plans/s trajectory would
    silently drift, so the builder lives here rather than in either
    harness.
    """
    rng = np.random.default_rng(seed)
    w = windows.windows_per_day
    plans = []
    for i in range(n_plans):
        maximum = {r: rng.uniform(0.1, 0.9, w) for r in ALL_RESOURCES}
        percentile = {r: np.minimum(maximum[r], rng.uniform(0.05, 0.7, w))
                      for r in ALL_RESOURCES}
        prediction = WindowUtilizationPrediction(
            windows=windows, percentile=percentile, maximum=maximum)
        cores = float(rng.choice(core_choices))
        allocation = {Resource.CPU: cores, Resource.MEMORY: cores * 4.0,
                      Resource.NETWORK: min(0.5 * cores, 16.0),
                      Resource.SSD: 32.0 * cores}
        plans.append(plan_vm(f"vm-{i}", allocation, prediction, oversubscribe=True))
    return plans


def build_placement_bench_plans(*, smoke: bool = False, seed: int = 7) -> List[object]:
    """The placement-throughput workload (the plan count shrinks under the
    CI smoke knob, consistently for the pytest benchmark and the tracking
    script)."""
    return build_placement_plans(1500 if smoke else 5000, BENCH_WINDOWS, seed=seed)


def build_replay_scale_state(
    *,
    smoke: bool = False,
    seed: int = 7,
) -> Tuple[List[ServerAccount], Dict[str, VMRecord], int]:
    """The replay-throughput workload: one day of telemetry, short-lived VMs.

    Short lifetimes keep the per-VM bookkeeping (where the seed loop pays)
    dominant over raw sample volume; 20% of the VMs get truncated series so
    the clamping path is exercised.  Returns ``(servers, placed, n_slots)``.
    """
    n_slots = SLOTS_PER_DAY
    servers, placed = build_placed_replay_state(
        SCALE_BENCH_CLUSTER, BENCH_WINDOWS, 1500 if smoke else 5000, n_slots,
        seed=seed, lifetime_range=(8, 20), full_coverage_probability=0.8)
    return servers, placed, n_slots


def build_chunked_bench_state(
    *,
    smoke: bool = False,
    seed: int = 11,
) -> Tuple[List[ServerAccount], Dict[str, VMRecord], int]:
    """The bounded-memory demonstration workload: a multi-week replay state
    whose dense demand matrix is >= 10x the :data:`BENCH_CHUNK_SLOTS`
    budget (14x at the smoke size, 28x at full size)."""
    return build_multiweek_replay_state(
        MULTIWEEK_BENCH_CLUSTER, BENCH_WINDOWS,
        n_vms=1200 if smoke else 3000,
        n_days=14 if smoke else 28, seed=seed)


def generate_sweep_bench_trace(*, smoke: bool = False,
                               columnar: bool = False) -> Trace:
    """The multi-week trace swept by the sweep wall-clock measurements."""
    return generate_multiweek_trace(n_days=14 if smoke else 21,
                                    n_vms=300 if smoke else 500,
                                    columnar=columnar)


def generate_store_bench_trace(*, smoke: bool = False,
                               columnar: bool = False) -> Trace:
    """The trace behind the trace-store benchmarks (footprint, filters, mmap).

    Telemetry-dense on purpose: a long horizon with a moderate VM count, so
    the flat utilization buffer dwarfs the per-VM metadata the way a
    production trace does -- that is the regime where per-worker pickled
    copies and full in-RAM loads visibly hurt.  Shared by
    ``benchmarks/test_bench_trace_store.py`` and
    ``scripts/run_benchmarks.py`` so the tracked numbers agree.
    """
    return generate_multiweek_trace(n_days=42 if smoke else 84,
                                    n_vms=250 if smoke else 500,
                                    servers_per_cluster=2,
                                    columnar=columnar)


def build_multiweek_replay_state(
    cluster: ClusterConfig,
    windows: TimeWindowConfig,
    n_vms: int,
    n_days: int,
    *,
    seed: int = 11,
    min_lifetime_days: float = 0.5,
    max_lifetime_days: float = 7.0,
    **kwargs: object,
) -> Tuple[List[ServerAccount], Dict[str, VMRecord], int]:
    """Production-length replay state: ``n_days`` of 5-minute telemetry.

    A multi-week evaluation window is where the dense ``(n_servers,
    n_slots)`` demand matrix stops fitting in a sane budget, so this is the
    workload the chunked streaming meter exists for.  Lifetimes span from
    *min_lifetime_days* to *max_lifetime_days* (long-running VMs straddle
    many slot chunks, guaranteeing chunk boundaries split demand segments).
    Returns ``(servers, placed, n_slots)``.
    """
    if n_days < 8:
        raise ValueError(f"a multi-week state needs n_days >= 8, got {n_days}")
    n_slots = n_days * SLOTS_PER_DAY
    lifetime_range = (max(1, int(min_lifetime_days * SLOTS_PER_DAY)),
                      max(2, int(max_lifetime_days * SLOTS_PER_DAY)))
    servers, placed = build_placed_replay_state(
        cluster, windows, n_vms, n_slots, seed=seed,
        lifetime_range=lifetime_range, **kwargs)
    return servers, placed, n_slots


def streaming_ingest_config(*, smoke: bool = False) -> TraceGeneratorConfig:
    """The month-scale workload of the streaming-ingest benchmark.

    Sized so the eager path (object trace + concatenated buffers, all in
    RAM at once) visibly dwarfs the streaming builder's bounded batches --
    the regime ``generate_to_store`` exists for.  Shared by
    ``benchmarks/test_bench_streaming_ingest.py`` and
    ``scripts/run_benchmarks.py``; ingests of the ~1M-VM scale documented
    in ``docs/trace_store.md`` use the same code path with a larger
    ``n_vms``, they are just too slow to regenerate per benchmark run.
    """
    return TraceGeneratorConfig(
        n_vms=1200 if smoke else 6000,
        n_days=14 if smoke else 30,
        seed=2026,
        n_subscriptions=40 if smoke else 80,
        servers_per_cluster=2)


def streaming_ingest_batch_vms(*, smoke: bool = False) -> int:
    """Builder batch size of the streaming-ingest benchmark (bounds the
    number of in-flight ``VMRecord`` objects on the streaming side)."""
    return 256 if smoke else 512


def generate_multiweek_trace(
    n_days: int = 28,
    n_vms: int = 600,
    seed: int = 2025,
    n_subscriptions: int = 40,
    servers_per_cluster: int = 1,
    columnar: bool = False,
) -> Trace:
    """A multi-week synthetic trace for sweep benchmarks and scale tests.

    Thin, intention-revealing front-end to :class:`TraceGenerator`: the
    sweep benchmark and the streaming-replay demonstrations need the *same*
    long trace so their numbers are comparable PR over PR, which is why the
    parameter set lives here instead of inline in each benchmark.

    With ``columnar=True`` the trace comes back store-backed
    (:class:`~repro.trace.store.TraceStore` columns with zero-copy row
    views); the VM population and every telemetry value are identical
    either way.
    """
    if n_days < 14:
        raise ValueError(f"a multi-week trace needs n_days >= 14, got {n_days}")
    config = TraceGeneratorConfig(
        n_vms=n_vms, n_days=n_days, seed=seed,
        n_subscriptions=n_subscriptions,
        servers_per_cluster=servers_per_cluster)
    trace = TraceGenerator(config).generate()
    if columnar:
        return TraceStore.from_trace(trace).as_trace()
    return trace
