"""Synthetic placed-replay workloads for differential tests and benchmarks.

Both the meter-equivalence tests and the replay-scale benchmark need the
same thing: a scheduler with randomized VM plans committed to it, plus the
matching :class:`VMRecord` telemetry that :class:`ClusterSimulation` would
hand to a violation meter.  Keeping the builder in one place guarantees the
at-scale benchmark and the differential tests exercise the same workload
shape (truncated series, stale plan entries, commit/release churn), so a
change to the plan or telemetry schema cannot silently drift between them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import ClusterScheduler, ServerAccount
from repro.core.windows import plan_vm
from repro.prediction.utilization_model import WindowUtilizationPrediction
from repro.trace.hardware import ClusterConfig
from repro.trace.timeseries import TimeWindowConfig, UtilizationSeries
from repro.trace.vm import VM_CATALOG, VMRecord

#: Small shapes, so even a modest cluster genuinely hosts most arrivals.
DEFAULT_CONFIG_NAMES: Tuple[str, ...] = ("D1_v5", "D2_v5", "D4_v5", "F2_v2", "E2_v5")


def build_placed_replay_state(
    cluster: ClusterConfig,
    windows: TimeWindowConfig,
    n_vms: int,
    n_slots: int,
    *,
    seed: int = 7,
    lifetime_range: Tuple[int, int] = (24, 48),
    start_margin: int | None = None,
    max_end_overshoot: int = 0,
    config_names: Sequence[str] = DEFAULT_CONFIG_NAMES,
    util_max_range: Tuple[float, float] = (0.05, 0.5),
    util_pct_range: Tuple[float, float] = (0.02, 0.3),
    full_coverage_probability: float = 0.8,
    stale_plan_probability: float = 0.0,
    churn_probability: float = 0.0,
) -> Tuple[List[ServerAccount], Dict[str, VMRecord]]:
    """Commit randomized VM plans and attach randomized telemetry.

    Returns ``(servers, placed)`` mirroring what ``ClusterSimulation`` hands
    to a violation meter.  Depending on the probabilities, the workload
    includes series covering only part of the lifetime (truncated
    telemetry), committed plans whose VM never lands in ``placed`` (stale
    entries), and interleaved deallocations (churn).  Lifetimes may overrun
    the evaluation window by up to *max_end_overshoot* slots, which
    exercises the meters' end-clamping.
    """
    rng = np.random.default_rng(seed)
    scheduler = ClusterScheduler(cluster, windows)
    placed: Dict[str, VMRecord] = {}
    configs = [VM_CATALOG[name] for name in config_names]
    w = windows.windows_per_day
    if start_margin is None:
        start_margin = lifetime_range[0]
    for i in range(n_vms):
        maximum = {r: rng.uniform(*util_max_range, w) for r in ALL_RESOURCES}
        percentile = {r: np.minimum(maximum[r], rng.uniform(*util_pct_range, w))
                      for r in ALL_RESOURCES}
        prediction = WindowUtilizationPrediction(
            windows=windows, percentile=percentile, maximum=maximum)
        config = configs[rng.integers(len(configs))]
        allocation = {Resource.CPU: float(config.cores),
                      Resource.MEMORY: float(config.memory_gb),
                      Resource.NETWORK: config.network_gbps,
                      Resource.SSD: float(config.ssd_gb)}
        decision = scheduler.place(
            plan_vm(f"vm-{i}", allocation, prediction, oversubscribe=True))
        start_slot = int(rng.integers(0, n_slots - start_margin))
        end_slot = int(min(n_slots + max_end_overshoot,
                           start_slot + rng.integers(*lifetime_range)))
        if decision.accepted and not (stale_plan_probability
                                      and rng.random() < stale_plan_probability):
            vm = VMRecord(f"vm-{i}", "sub", config, cluster.cluster_id,
                          start_slot, end_slot)
            lifetime = end_slot - start_slot
            covered = (lifetime if rng.random() < full_coverage_probability
                       else int(rng.integers(1, lifetime + 1)))
            vm.utilization = {
                r: UtilizationSeries(rng.uniform(0.0, 1.0, covered), start_slot)
                for r in (Resource.CPU, Resource.MEMORY)}
            placed[vm.vm_id] = vm
        if churn_probability and placed and rng.random() < churn_probability:
            victim = next(iter(placed))
            scheduler.deallocate(victim)
            placed.pop(victim)
    return list(scheduler.servers.values()), placed
