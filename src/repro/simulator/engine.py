"""Cluster-scale replay simulation (Section 4.1, "Simulator").

The paper evaluates Coach's scheduling policy by running the production VM
allocator on production traces and replaying the 5-minute utilization data to
estimate contention.  This engine does the same against the synthetic trace:

1. split the trace into a history week (training) and an evaluation week;
2. train the policy's prediction model on the history;
3. replay the evaluation VMs' arrivals and departures through a per-cluster
   :class:`ClusterManager` (which plans and places CoachVMs);
4. replay the actual utilization of the placed VMs against each server's
   committed physical resources to count CPU and memory violations (see
   :mod:`repro.simulator.replay` for the vectorized and reference engines).

Clusters are fully independent (each has its own manager, scheduler, and
ledger), so :func:`simulate_policy` can fan them out across a
``concurrent.futures`` thread pool (``SimulationConfig.parallelism``).
Results are aggregated in cluster-id order regardless of completion order,
so the evaluation is bitwise identical for any parallelism level.  Whole
*policies* are fanned out across worker processes by
:mod:`repro.simulator.sweep` (``SimulationConfig.sweep_parallelism``),
which :func:`evaluate_policies` delegates to.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cluster_manager import ClusterManager, build_prediction_model
from repro.core.policy import PolicyConfig
from repro.core.resources import Resource
from repro.simulator.metrics import PolicyEvaluation, ViolationStats
from repro.simulator.replay import get_violation_meter
from repro.trace.timeseries import SLOTS_PER_DAY
from repro.trace.trace import Trace
from repro.trace.vm import VMRecord


@dataclass(frozen=True)
class FailureEvent:
    """One injected server failure (repro.scenarios failure axis).

    ``kind`` is ``"drain"`` (residents are evacuated and re-requested
    through the normal admission path, modelling a planned decommission)
    or ``"crash"`` (residents are lost: released and dropped from the
    replay, modelling an abrupt hardware failure).  Either way the server
    is disabled first, so evacuated demand can never land back on it.
    """

    slot: int
    cluster_id: str
    server_index: int
    kind: str = "drain"

    def __post_init__(self) -> None:
        if self.kind not in ("drain", "crash"):
            raise ValueError(f"unknown failure kind: {self.kind!r}")


@dataclass
class SimulationConfig:
    """Knobs of the cluster-scale replay."""

    #: Slot at which the evaluation period starts (history before it).
    history_end_slot: int = 7 * SLOTS_PER_DAY
    #: Slot from which VM arrivals are replayed through the scheduler.  The
    #: default (0) places every VM in the trace, which models the platform
    #: steady state: long-running VMs admitted earlier are still occupying
    #: capacity when new arrivals show up.
    placement_start_slot: int = 0
    #: CPU contention threshold: demand above this fraction of server capacity
    #: counts as contention (Section 4.3 uses 50%).
    cpu_contention_fraction: float = 0.5
    #: Only clusters listed here are simulated (``None`` = all).
    clusters: Optional[Sequence[str]] = None
    #: Use the conservative (physical backing) admission check.
    conservative_admission: bool = True
    #: Forest size for the learned prediction model.
    n_estimators: int = 10
    #: Use the oracle predictor instead of the learned one (ablation).
    oracle_predictions: bool = False
    #: Violation replay engine: ``"vectorized"`` (default) or ``"reference"``
    #: (the seed per-server loop, kept for differential testing).
    violation_meter: str = "vectorized"
    #: Slot-axis tile width for the vectorized meter's chunked streaming
    #: mode (``None`` = dense, the full evaluation window in one tile).
    #: Bounds peak replay memory at ``O(n_servers * replay_chunk_slots)``
    #: for multi-week traces; any value yields bitwise-identical results.
    replay_chunk_slots: Optional[int] = None
    #: Number of clusters simulated concurrently by :func:`simulate_policy`
    #: (1 = strictly serial).  Any value yields bitwise-identical results.
    parallelism: int = 1
    #: Number of worker *processes* used by :func:`evaluate_policies` to fan
    #: out whole policies (1 = serial).  Processes sidestep the GIL for the
    #: forest-training phase threads cannot speed up; any value yields
    #: bitwise-identical results (see :mod:`repro.simulator.sweep`).
    sweep_parallelism: int = 1
    #: How the trace reaches sweep worker processes: ``"auto"`` ships a
    #: zero-copy shared-memory handle whenever the trace columnarizes (and
    #: falls back to pickling otherwise), ``"shared"`` requires the
    #: shared-memory path, ``"pickle"`` forces the seed behaviour of
    #: unpickling a private trace copy per worker.  Workers read the same
    #: float buffers either way, so results are bitwise identical across
    #: transports (see :mod:`repro.simulator.sweep`).
    sweep_trace_transport: str = "auto"
    #: Injected server failures, applied by :class:`ClusterSimulation` in
    #: deterministic ``(slot, listing order)`` order as the replay crosses
    #: each failure's slot.  Empty (the default) leaves the replay
    #: bitwise-identical to a failure-free run.
    failure_events: Tuple[FailureEvent, ...] = ()
    #: Thread VM allocation classes into admission: reserved arrivals may
    #: preempt spot VMs (see :meth:`ClusterScheduler.place`).  Off by
    #: default; the classic class-blind path stays bitwise-identical.
    class_aware_admission: bool = False


@dataclass
class ClusterRunResult:
    cluster_id: str
    manager: ClusterManager
    placed_vms: Dict[str, VMRecord] = field(default_factory=dict)
    violations: ViolationStats = field(default_factory=ViolationStats)


class ClusterSimulation:
    """Replays one cluster's arrivals through a ClusterManager."""

    def __init__(self, trace: Trace, cluster_id: str, policy: PolicyConfig,
                 prediction_model: object, config: SimulationConfig):
        self.trace = trace
        self.cluster_id = cluster_id
        self.policy = policy
        self.config = config
        # Resolve the replay engine up front so a mistyped meter name or a
        # bad chunk size fails before any (expensive) arrival replay runs.
        self._violation_meter = get_violation_meter(
            config.violation_meter, chunk_slots=config.replay_chunk_slots)
        self.manager = ClusterManager(
            trace.fleet.get(cluster_id), policy, prediction_model,
            conservative_admission=config.conservative_admission,
            class_aware=config.class_aware_admission)
        self.placed: Dict[str, VMRecord] = {}
        self.requested = 0
        # Stable (slot, listing order) firing order for this cluster's
        # injected failures; sorted() is stable, so ties on the slot fire
        # in config order.
        self._failures: List[FailureEvent] = sorted(
            (event for event in config.failure_events
             if event.cluster_id == cluster_id),
            key=lambda event: event.slot)
        self.preempted = 0
        self.evacuated = 0
        self.crashed_vms = 0

    def run(self) -> ClusterRunResult:
        store = self.trace.store
        if store is not None:
            # Columnar fast path: one whole-column comparison instead of a
            # Python attribute walk over every VM in the trace.
            vms = self.trace.vms
            eval_vms = [vms[i] for i in store.arrivals_for(
                self.cluster_id, self.config.placement_start_slot)]
        else:
            eval_vms = [vm for vm in self.trace.vms
                        if vm.cluster_id == self.cluster_id
                        and vm.start_slot >= self.config.placement_start_slot]
        eval_vms.sort(key=lambda vm: (vm.start_slot, vm.vm_id))

        # Event-driven replay: before each arrival batch, release VMs that
        # ended.  Departures sit in a min-heap keyed by end slot, so each
        # batch pops only the VMs that actually depart instead of rescanning
        # the whole pending list.  Arrivals sharing a start slot are admitted
        # as one ClusterManager.request_batch call; this is equivalent to the
        # per-VM loop because a VM's end slot is strictly greater than its
        # start slot (VMRecord.validate), so no departure can become due
        # between two same-slot arrivals.
        pending_departures: List[Tuple[int, str]] = []
        failure_index = 0
        index = 0
        while index < len(eval_vms):
            start_slot = eval_vms[index].start_slot
            upper = index
            while upper < len(eval_vms) and eval_vms[upper].start_slot == start_slot:
                upper += 1
            batch = eval_vms[index:upper]
            index = upper
            self.requested += len(batch)
            # Failures due by this batch's slot fire first (each drains the
            # departures due by its own slot before evacuating), so arrivals
            # always see the post-failure fleet -- deterministically, since
            # failures, departures, and arrivals are each totally ordered.
            while (failure_index < len(self._failures)
                   and self._failures[failure_index].slot <= start_slot):
                self._apply_failure(self._failures[failure_index],
                                    pending_departures)
                failure_index += 1
            while pending_departures and pending_departures[0][0] <= start_slot:
                _end_slot, vm_id = heapq.heappop(pending_departures)
                self.manager.deallocate(vm_id)

            for vm, result in zip(batch, self.manager.request_batch(batch)):
                if result.accepted:
                    self.placed[vm.vm_id] = vm
                    heapq.heappush(pending_departures, (vm.end_slot, vm.vm_id))
                self.preempted += len(result.preempted)

        while failure_index < len(self._failures):
            self._apply_failure(self._failures[failure_index],
                                pending_departures)
            failure_index += 1

        violations = self._measure_violations()
        return ClusterRunResult(self.cluster_id, self.manager, dict(self.placed),
                                violations)

    def _apply_failure(self, event: FailureEvent,
                       pending_departures: List[Tuple[int, str]]) -> None:
        """Disable one server and evacuate (drain) or drop (crash) residents.

        Departures due by the failure's slot are released first so only VMs
        actually alive at the failure are touched.  Residents leave in
        acceptance order (the manager's per-server index preserves it); a
        drain then re-requests the still-alive ones as one batch through
        normal admission -- re-placements count as new requests, may preempt
        spot VMs under class-aware admission, and land on other servers or
        get rejected (a rejected evacuee is lost, like a crash victim).
        """
        while pending_departures and pending_departures[0][0] <= event.slot:
            _end_slot, vm_id = heapq.heappop(pending_departures)
            self.manager.deallocate(vm_id)
        cluster = self.trace.fleet.get(self.cluster_id)
        server_id = f"{cluster.cluster_id}-s{event.server_index:03d}"
        residents = [coach_vm.vm_id
                     for coach_vm in self.manager.vms_on_server(server_id)]
        for vm_id in residents:
            self.manager.deallocate(vm_id)
        self.manager.disable_server(server_id)
        if event.kind == "crash":
            for vm_id in residents:
                self.placed.pop(vm_id, None)
            self.crashed_vms += len(residents)
            return
        evacuees = [self.placed[vm_id] for vm_id in residents
                    if vm_id in self.placed
                    and self.placed[vm_id].end_slot > event.slot]
        self.evacuated += len(evacuees)
        for vm, result in zip(evacuees,
                              self.manager.request_batch(evacuees)):
            if not result.accepted:
                self.placed.pop(vm.vm_id, None)
            self.preempted += len(result.preempted)

    # ------------------------------------------------------------------ #
    # Contention accounting
    # ------------------------------------------------------------------ #
    def _measure_violations(self) -> ViolationStats:
        """Replay utilization of placed VMs against each server's commitments."""
        return self._violation_meter.measure(
            self.manager.scheduler.servers.values(), self.placed,
            self.config.placement_start_slot, self.trace.n_slots,
            self.config.cpu_contention_fraction)


def _run_cluster(trace: Trace, cluster_id: str, policy: PolicyConfig,
                 prediction_model: object,
                 config: SimulationConfig) -> ClusterRunResult:
    return ClusterSimulation(trace, cluster_id, policy, prediction_model,
                             config).run()


def simulate_policy(trace: Trace, policy: PolicyConfig,
                    config: Optional[SimulationConfig] = None,
                    prediction_model: Optional[object] = None,
                    parallelism: Optional[int] = None) -> PolicyEvaluation:
    """Run the full replay for one policy and aggregate across clusters.

    *parallelism* overrides ``config.parallelism`` when given.  Clusters are
    simulated on independent ledgers (the prediction model is shared
    read-only), and the aggregation below walks the results in cluster-id
    order, so the returned :class:`PolicyEvaluation` is bitwise identical
    for every parallelism level.
    """
    config = config or SimulationConfig()
    cluster_ids = list(config.clusters) if config.clusters else trace.cluster_ids()
    if parallelism is None:
        parallelism = config.parallelism
    # Fail fast on a mistyped meter name, before model training and replay.
    get_violation_meter(config.violation_meter,
                        chunk_slots=config.replay_chunk_slots)

    if prediction_model is None:
        history, _future = trace.split_at(config.history_end_slot)
        history_vms = history.long_running().vms
        prediction_model = build_prediction_model(
            policy, history_vms, oracle=config.oracle_predictions,
            n_estimators=config.n_estimators)

    requested = accepted = rejected = servers_in_use = servers_total = 0
    accepted_cores = accepted_memory = 0.0
    accepted_vm_slots = 0.0
    accepted_core_slots = 0.0
    accepted_memory_slots = 0.0
    violation_parts: List[ViolationStats] = []
    eval_slots = max(1, trace.n_slots - config.placement_start_slot)

    def _aggregate(result: ClusterRunResult) -> None:
        """Fold one cluster into the running totals (cluster-id order), so
        completed ClusterRunResults -- manager, ledger, placed map -- can be
        dropped instead of all being held until the end."""
        nonlocal requested, accepted, rejected, servers_in_use, servers_total
        nonlocal accepted_cores, accepted_memory, accepted_vm_slots
        nonlocal accepted_core_slots, accepted_memory_slots
        manager = result.manager
        requested += manager.stats.requests
        accepted += manager.stats.accepted
        rejected += manager.stats.rejected
        servers_in_use += manager.scheduler.servers_in_use()
        servers_total += len(manager.scheduler.servers)
        for vm in result.placed_vms.values():
            accepted_cores += vm.allocated(Resource.CPU)
            accepted_memory += vm.allocated(Resource.MEMORY)
            overlap_slots = min(vm.end_slot, trace.n_slots) - max(
                vm.start_slot, config.placement_start_slot)
            accepted_vm_slots += overlap_slots
            accepted_core_slots += overlap_slots * vm.allocated(Resource.CPU)
            accepted_memory_slots += overlap_slots * vm.allocated(Resource.MEMORY)
        violation_parts.append(result.violations)

    n_workers = min(max(1, parallelism), max(1, len(cluster_ids)))
    if n_workers <= 1 or len(cluster_ids) <= 1:
        for cluster_id in cluster_ids:
            _aggregate(_run_cluster(trace, cluster_id, policy, prediction_model,
                                    config))
    else:
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            futures = [pool.submit(_run_cluster, trace, cluster_id, policy,
                                   prediction_model, config)
                       for cluster_id in cluster_ids]
            for future in futures:
                _aggregate(future.result())

    violations = ViolationStats.merge(violation_parts)
    return PolicyEvaluation(
        policy_name=policy.name,
        requested_vms=requested,
        accepted_vms=accepted,
        rejected_vms=rejected,
        servers_in_use=servers_in_use,
        servers_total=servers_total,
        accepted_core_requests=accepted_cores,
        accepted_memory_requests_gb=accepted_memory,
        average_concurrent_vms=accepted_vm_slots / eval_slots,
        average_concurrent_cores=accepted_core_slots / eval_slots,
        average_concurrent_memory_gb=accepted_memory_slots / eval_slots,
        violations=violations,
    )


def evaluate_policies(trace: Trace,
                      policies: Optional[Dict[str, PolicyConfig]] = None,
                      config: Optional[SimulationConfig] = None) -> Dict[str, PolicyEvaluation]:
    """Evaluate several policies on the same trace (Figure 20).

    Returns a mapping from policy name to its evaluation, with additional
    capacity computed relative to the ``none`` policy when present.  The
    sweep fans one policy per worker process when
    ``config.sweep_parallelism > 1`` and is bitwise identical to the serial
    walk for any worker count; see :mod:`repro.simulator.sweep` for the
    orchestration (the import is deferred because sweep builds on this
    module's :func:`simulate_policy`).
    """
    from repro.simulator.sweep import sweep_policies

    return sweep_policies(trace, policies, config)
