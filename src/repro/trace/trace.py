"""The :class:`Trace` container: a set of VM records plus the fleet they ran on.

A trace is the common currency of the library: the characterization module
computes Section-2 statistics from it, the prediction module trains on it,
and the simulator replays it through the Coach scheduler.

A trace comes in two physical layouts:

* **Object-backed** (the seed representation): ``vms`` is a plain list of
  self-contained :class:`VMRecord` objects and every filter walks it.
* **Store-backed**: the trace was materialized from a columnar
  :class:`~repro.trace.store.TraceStore` (``trace.store`` is set), each
  ``vms[i]`` is a zero-copy view over store row ``i``, and the hot filters
  (:meth:`filter`, :meth:`alive_at`, :meth:`arriving_in`, :meth:`in_cluster`,
  :meth:`long_running`, :meth:`split_at`) evaluate whole-column comparisons
  instead of Python loops.  Both layouts expose the same API and return the
  same VMs in the same order, so callers never need to know which one they
  hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.resources import Resource
from repro.trace.hardware import Fleet
from repro.trace.timeseries import SLOTS_PER_DAY
from repro.trace.vm import Subscription, VMRecord


@dataclass
class Trace:
    """A collection of VM records observed over ``n_slots`` 5-minute slots."""

    vms: List[VMRecord]
    fleet: Fleet
    n_slots: int
    subscriptions: Dict[str, Subscription] = field(default_factory=dict)
    #: Columnar backing (:class:`repro.trace.store.TraceStore`) when this
    #: trace was materialized from one; ``None`` for object-backed traces.
    #: Invariant: ``vms[i]`` describes the same VM as store row ``i``.
    store: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_slots <= 0:
            raise ValueError("trace must span at least one slot")
        # The id index makes vm_by_id O(1) and doubles as duplicate-id
        # validation at construction time (a duplicate would otherwise hide
        # one of the two records from every id-based lookup).  Store-backed
        # traces skip the eager build: every store entry point
        # (from_trace / open / attach) already validated uniqueness, row
        # selections cannot introduce duplicates, and the store keeps its
        # own lazily-built index -- so filters stay free of O(n) dict
        # rebuilds.
        if self.store is not None:
            self._id_index: Optional[Dict[str, int]] = None
            # min_days -> the selected sub-trace.  Every characterization
            # statistic starts from ``trace.long_running(...)`` of the same
            # top-level trace; memoizing the selection means they all share
            # one sub-store object, which is what lets the per-store
            # window-entry cache in ``repro.characterization.columnar`` hit
            # across statistics.
            self._long_running_cache: Dict[float, "Trace"] = {}
            return
        index: Dict[str, int] = {}
        for i, vm in enumerate(self.vms):
            if vm.vm_id in index:
                raise ValueError(f"duplicate VM id {vm.vm_id!r}")
            index[vm.vm_id] = i
        self._id_index = index

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.vms)

    def __iter__(self) -> Iterator[VMRecord]:
        return iter(self.vms)

    @property
    def n_days(self) -> float:
        return self.n_slots / SLOTS_PER_DAY

    def vm_by_id(self, vm_id: str) -> VMRecord:
        if self._id_index is None:
            return self.vms[self.store.index_of(vm_id)]
        try:
            return self.vms[self._id_index[vm_id]]
        except KeyError as exc:
            raise KeyError(f"no VM with id {vm_id!r}") from exc

    def cluster_ids(self) -> List[str]:
        return self.fleet.cluster_ids()

    def without_store(self) -> "Trace":
        """This trace with the columnar backing detached (self if none).

        Pickling a store-backed trace ships its telemetry twice -- the flat
        store buffers plus an independent copy of every row-view slice --
        so anything that pickles a whole trace (the sweep's pickle
        transport, its benchmark baseline) strips the store first to get
        the plain object-trace payload.
        """
        if self.store is None:
            return self
        return Trace(vms=self.vms, fleet=self.fleet, n_slots=self.n_slots,
                     subscriptions=self.subscriptions)

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def _select(self, indices) -> "Trace":
        """A new trace over the given row indices (store kept in lockstep)."""
        vms = self.vms
        store = self.store
        return Trace(
            vms=[vms[i] for i in indices],
            fleet=self.fleet,
            n_slots=self.n_slots,
            subscriptions=self.subscriptions,
            store=store.select(indices) if store is not None else None,
        )

    def filter(self, predicate: Callable[[VMRecord], bool]) -> "Trace":
        """A new trace containing only the VMs matching *predicate*.

        A black-box predicate must visit every record, but on a store-backed
        trace the result still carries a (zero-copy) store selection so the
        *next* filter stays vectorized.
        """
        return self._select([i for i, vm in enumerate(self.vms) if predicate(vm)])

    def in_cluster(self, cluster_id: str) -> "Trace":
        if self.store is not None:
            return self._select(self.store.in_cluster_indices(cluster_id))
        return self.filter(lambda vm: vm.cluster_id == cluster_id)

    def long_running(self, min_days: float = 1.0) -> "Trace":
        """VMs lasting more than *min_days* -- the oversubscription targets."""
        if self.store is not None:
            cached = self._long_running_cache.get(min_days)
            if cached is None:
                cached = self._select(np.nonzero(
                    self.store.long_running_mask(min_days))[0])
                self._long_running_cache[min_days] = cached
            return cached
        return self.filter(lambda vm: vm.is_long_running(min_days))

    def alive_at(self, slot: int) -> List[VMRecord]:
        if self.store is not None:
            vms = self.vms
            return [vms[i] for i in self.store.alive_at_indices(slot)]
        return [vm for vm in self.vms if vm.alive_at(slot)]

    def arriving_in(self, start_slot: int, end_slot: int) -> List[VMRecord]:
        """VMs whose allocation time falls in ``[start_slot, end_slot)``."""
        if self.store is not None:
            vms = self.vms
            return [vms[i] for i in
                    self.store.arriving_in_indices(start_slot, end_slot)]
        return [vm for vm in self.vms if start_slot <= vm.start_slot < end_slot]

    def split_at(self, slot: int) -> tuple["Trace", "Trace"]:
        """Split into (VMs starting before *slot*, VMs starting at/after *slot*).

        Used for history-based prediction: train on week one, evaluate on the
        VMs created during week two (Figure 12 and Section 3.3).
        """
        if self.store is not None:
            mask = self.store.start_slot < slot
            return (self._select(np.nonzero(mask)[0]),
                    self._select(np.nonzero(~mask)[0]))
        before = self.filter(lambda vm: vm.start_slot < slot)
        after = self.filter(lambda vm: vm.start_slot >= slot)
        return before, after

    def by_subscription(self) -> Dict[str, List[VMRecord]]:
        groups: Dict[str, List[VMRecord]] = {}
        for vm in self.vms:
            groups.setdefault(vm.subscription_id, []).append(vm)
        return groups

    def by_config(self) -> Dict[str, List[VMRecord]]:
        groups: Dict[str, List[VMRecord]] = {}
        for vm in self.vms:
            groups.setdefault(vm.config.name, []).append(vm)
        return groups

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #
    def total_resource_hours(self, resource: Resource) -> float:
        return float(sum(vm.resource_hours(resource) for vm in self.vms))

    def utilization_matrix(self, resource: Resource, cluster_id: Optional[str] = None,
                           absolute: bool = True) -> np.ndarray:
        """Dense (n_vms, n_slots) demand matrix for one resource.

        Entries outside a VM's lifetime are zero.  When ``absolute`` is true,
        values are in resource units (cores / GB / ...), otherwise fractions.

        Store-backed traces scatter the flat telemetry buffer straight into
        the matrix (:meth:`TraceStore.utilization_matrix`); the per-VM loop
        below is the reference twin and produces bitwise-identical output.
        """
        if self.store is not None:
            rows = (None if cluster_id is None
                    else self.store.in_cluster_indices(cluster_id))
            return self.store.utilization_matrix(
                resource, self.n_slots, rows=rows, absolute=absolute)
        vms = self.vms if cluster_id is None else [
            vm for vm in self.vms if vm.cluster_id == cluster_id]
        matrix = np.zeros((len(vms), self.n_slots))
        for row, vm in enumerate(vms):
            series = vm.series(resource)
            scale = vm.allocated(resource) if absolute else 1.0
            end = min(series.end_slot, self.n_slots)
            matrix[row, series.start_slot:end] = series.values[: end - series.start_slot] * scale
        return matrix

    def aggregate_demand(self, resource: Resource, cluster_id: Optional[str] = None) -> np.ndarray:
        """Total demand for *resource* per slot across the (cluster's) VMs."""
        return self.utilization_matrix(resource, cluster_id).sum(axis=0)

    def validate(self) -> None:
        """Validate every VM record; raises on the first inconsistency.

        (Duplicate VM ids are already rejected at construction time; the
        check here stays so a caller who mutated ``vms`` in place still gets
        a loud failure.)
        """
        seen: set[str] = set()
        for vm in self.vms:
            if vm.vm_id in seen:
                raise ValueError(f"duplicate VM id {vm.vm_id!r}")
            seen.add(vm.vm_id)
            if vm.end_slot > self.n_slots:
                raise ValueError(
                    f"VM {vm.vm_id} ends at slot {vm.end_slot}, beyond trace "
                    f"length {self.n_slots}"
                )
            if vm.cluster_id not in self.fleet.cluster_ids():
                raise ValueError(f"VM {vm.vm_id} references unknown cluster {vm.cluster_id}")
            vm.validate()

    def summary(self) -> Dict[str, float]:
        """Headline statistics used by the README / examples."""
        long_running = [vm for vm in self.vms if vm.is_long_running()]
        core_hours = self.total_resource_hours(Resource.CPU)
        long_core_hours = sum(vm.resource_hours(Resource.CPU) for vm in long_running)
        return {
            "n_vms": float(len(self.vms)),
            "n_clusters": float(len(self.fleet.clusters)),
            "n_days": self.n_days,
            "fraction_long_running": len(long_running) / max(len(self.vms), 1),
            "core_hours": core_hours,
            "fraction_core_hours_long_running": long_core_hours / max(core_hours, 1e-9),
        }


def merge_traces(traces: Sequence[Trace]) -> Trace:
    """Concatenate traces that share a fleet and horizon (e.g. per-cluster shards).

    The merged trace is object-backed even when the inputs are store-backed
    (their stores may live over unrelated buffers); columnarize the result
    with ``TraceStore.from_trace`` when the dense layout is needed again.
    """
    if not traces:
        raise ValueError("need at least one trace to merge")
    first = traces[0]
    vms: List[VMRecord] = []
    subscriptions: Dict[str, Subscription] = {}
    for trace in traces:
        if trace.n_slots != first.n_slots:
            raise ValueError("cannot merge traces with different horizons")
        vms.extend(trace.vms)
        subscriptions.update(trace.subscriptions)
    return Trace(vms=vms, fleet=first.fleet, n_slots=first.n_slots,
                 subscriptions=subscriptions)
