"""VM records, VM configurations (sizes), and customer subscriptions.

The trace schema mirrors the paper's methodology (Section 2): for every VM
we record allocation/deallocation times, the resource allocation, the server
it runs on, and the maximum utilization of CPU, memory, network and storage
in every 5-minute interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.core.resources import ALL_RESOURCES, Resource, ResourceVector
from repro.trace.timeseries import SLOTS_PER_DAY, UtilizationSeries


class Offering(str, Enum):
    """Whether a VM backs a PaaS service or is sold directly as IaaS."""

    IAAS = "iaas"
    PAAS = "paas"


class SubscriptionType(str, Enum):
    """Coarse customer classification used as a prediction feature."""

    EXTERNAL_PRODUCTION = "external-production"
    EXTERNAL_TEST = "external-test"
    INTERNAL_PRODUCTION = "internal-production"
    INTERNAL_TEST = "internal-test"


class AllocationClass(str, Enum):
    """Commercial allocation class of a VM, ordered by eviction priority.

    ``RESERVED`` capacity may preempt ``SPOT`` VMs under class-aware
    admission (see :meth:`repro.core.scheduler.ClusterScheduler.place`);
    ``ON_DEMAND`` and ``BURSTABLE`` neither preempt nor get preempted.
    """

    RESERVED = "reserved"
    ON_DEMAND = "on-demand"
    SPOT = "spot"
    BURSTABLE = "burstable"


@dataclass(frozen=True)
class VMConfig:
    """A sellable VM size (e.g. ``D4_v5``: 4 cores, 16 GB)."""

    name: str
    cores: int
    memory_gb: int
    network_gbps: float
    ssd_gb: int
    family: str = "general-purpose"

    def allocation_vector(self) -> ResourceVector:
        return ResourceVector.of(
            cpu=float(self.cores),
            memory=float(self.memory_gb),
            network=float(self.network_gbps),
            ssd=float(self.ssd_gb),
        )

    @property
    def gb_per_core(self) -> float:
        return self.memory_gb / self.cores


def _general(cores: int) -> VMConfig:
    return VMConfig(
        name=f"D{cores}_v5",
        cores=cores,
        memory_gb=cores * 4,
        network_gbps=min(0.5 * cores, 16.0),
        ssd_gb=32 * cores,
        family="general-purpose",
    )


def _memory_optimized(cores: int) -> VMConfig:
    return VMConfig(
        name=f"E{cores}_v5",
        cores=cores,
        memory_gb=cores * 8,
        network_gbps=min(0.5 * cores, 16.0),
        ssd_gb=48 * cores,
        family="memory-optimized",
    )


def _compute_optimized(cores: int) -> VMConfig:
    return VMConfig(
        name=f"F{cores}_v2",
        cores=cores,
        memory_gb=cores * 2,
        network_gbps=min(0.75 * cores, 16.0),
        ssd_gb=16 * cores,
        family="compute-optimized",
    )


#: The VM size catalogue used by the trace generator.  The general-purpose
#: D-series (4 GB/core) is the paper's "most typical VM configuration" and is
#: the shape used for the hypothetical stranding fill (Section 2.2).
VM_CATALOG: Dict[str, VMConfig] = {
    cfg.name: cfg
    for cfg in (
        [_general(c) for c in (1, 2, 4, 8, 16, 32, 40)]
        + [_memory_optimized(c) for c in (2, 4, 8, 16, 32)]
        + [_compute_optimized(c) for c in (2, 4, 8, 16, 32)]
    )
}

#: The canonical fill shape used when measuring stranding.
TYPICAL_VM_CONFIG = VM_CATALOG["D4_v5"]


@dataclass(frozen=True)
class Subscription:
    """A customer subscription: the unit of history-based prediction."""

    subscription_id: str
    subscription_type: SubscriptionType
    #: Temporal archetype name shared by the subscription's workloads
    #: (see :mod:`repro.trace.patterns`).
    archetype: str
    offering: Offering


@dataclass
class VMRecord:
    """One VM in a trace: allocation, placement, and utilization history."""

    vm_id: str
    subscription_id: str
    config: VMConfig
    cluster_id: str
    start_slot: int
    end_slot: int
    offering: Offering = Offering.IAAS
    subscription_type: SubscriptionType = SubscriptionType.EXTERNAL_PRODUCTION
    allocation_class: AllocationClass = AllocationClass.ON_DEMAND
    server_id: Optional[str] = None
    utilization: Dict[Resource, UtilizationSeries] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_slot <= self.start_slot:
            raise ValueError("VM must live for at least one slot")

    # ------------------------------------------------------------------ #
    # Lifetime
    # ------------------------------------------------------------------ #
    @property
    def lifetime_slots(self) -> int:
        return self.end_slot - self.start_slot

    @property
    def lifetime_hours(self) -> float:
        return self.lifetime_slots / (SLOTS_PER_DAY / 24)

    @property
    def lifetime_days(self) -> float:
        return self.lifetime_slots / SLOTS_PER_DAY

    def is_long_running(self, min_days: float = 1.0) -> bool:
        """VMs lasting more than one day are the paper's oversubscription focus."""
        return self.lifetime_days > min_days

    def alive_at(self, slot: int) -> bool:
        return self.start_slot <= slot < self.end_slot

    @property
    def creation_weekday(self) -> int:
        """Weekday of allocation (0 = Monday), assuming the trace starts on Monday."""
        return (self.start_slot // SLOTS_PER_DAY) % 7

    # ------------------------------------------------------------------ #
    # Allocation / utilization
    # ------------------------------------------------------------------ #
    def allocation_vector(self) -> ResourceVector:
        return self.config.allocation_vector()

    def allocated(self, resource: Resource) -> float:
        return self.allocation_vector()[resource]

    def resource_hours(self, resource: Resource) -> float:
        """Allocated amount weighted by lifetime, in unit-hours."""
        return self.allocated(resource) * self.lifetime_hours

    def series(self, resource: Resource) -> UtilizationSeries:
        try:
            return self.utilization[resource]
        except KeyError as exc:
            raise KeyError(
                f"VM {self.vm_id} has no utilization series for {resource}"
            ) from exc

    def has_utilization(self) -> bool:
        return all(r in self.utilization for r in ALL_RESOURCES)

    def mean_utilization(self, resource: Resource) -> float:
        return self.series(resource).mean()

    def max_utilization(self, resource: Resource) -> float:
        return self.series(resource).maximum()

    def demand_at(self, resource: Resource, slot: int) -> float:
        """Absolute demand (allocated * utilization fraction) at a slot."""
        series = self.series(resource)
        if not series.covers_slot(slot):
            return 0.0
        return series.value_at(slot) * self.allocated(resource)

    def demand_vector_at(self, slot: int) -> ResourceVector:
        return ResourceVector(
            {r: self.demand_at(r, slot) for r in ALL_RESOURCES}
        )

    def validate(self) -> None:
        """Raise ``ValueError`` if the utilization series disagree with the lifetime."""
        for resource, series in self.utilization.items():
            if series.start_slot != self.start_slot:
                raise ValueError(
                    f"VM {self.vm_id}: {resource} series starts at {series.start_slot}, "
                    f"expected {self.start_slot}"
                )
            if len(series) != self.lifetime_slots:
                raise ValueError(
                    f"VM {self.vm_id}: {resource} series has {len(series)} slots, "
                    f"expected {self.lifetime_slots}"
                )

    def __repr__(self) -> str:
        return (
            f"VMRecord({self.vm_id}, {self.config.name}, cluster={self.cluster_id}, "
            f"slots=[{self.start_slot}, {self.end_slot}))"
        )
