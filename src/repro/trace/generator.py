"""Synthetic Azure-like trace generation.

The paper characterizes two weeks of production telemetry from over one
million opaque VMs.  That trace is proprietary, so this generator produces a
synthetic trace with the same *statistical structure* (see DESIGN.md):

* duration mix -- most VMs are short-lived, but the ~28% lasting longer than
  a day consume ~96% of core-hours (Figure 2);
* size mix -- median VM around 4 cores / 16 GB, with large VMs consuming a
  disproportionate share of GB-hours (Figure 3);
* per-cluster hardware heterogeneity driving different bottleneck resources
  (Figures 4 and 5);
* low average CPU utilization with wide ranges, diverse but stable memory
  utilization (Figure 6);
* recurring daily peaks and valleys that are consistent day over day and
  complementary across subscriptions (Figures 7-11);
* subscription-level similarity, so grouping by subscription + VM
  configuration predicts future utilization (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.hardware import ClusterConfig, Fleet, default_clusters
from repro.trace.patterns import (
    SubscriptionProfile,
    SurgeConfig,
    generate_resource_patterns,
    generate_series,
    make_subscription_profile,
    surge_overlay,
    vm_cpu_parameters,
)
from repro.trace.timeseries import (
    SLOTS_PER_DAY,
    SLOTS_PER_HOUR,
    UtilizationSeries,
    slots_for_days,
)
from repro.trace.trace import Trace
from repro.trace.vm import (
    VM_CATALOG,
    AllocationClass,
    Offering,
    Subscription,
    SubscriptionType,
    VMConfig,
    VMRecord,
)


@dataclass
class TraceGeneratorConfig:
    """Knobs of the synthetic trace generator."""

    n_vms: int = 2000
    n_days: int = 14
    n_subscriptions: int = 120
    seed: int = 2024
    #: Fraction of VMs lasting longer than one day (the paper reports 28%).
    long_running_fraction: float = 0.28
    #: Servers per cluster (scales the fleet to the number of VMs).
    servers_per_cluster: int = 20
    #: Mix of archetypes across subscriptions.  Diurnal/nocturnal dominate so
    #: complementary placement has something to exploit.
    archetype_weights: Dict[str, float] = field(default_factory=lambda: {
        "diurnal": 0.32,
        "nocturnal": 0.20,
        "evening-peak": 0.14,
        "constant": 0.16,
        "weekly-batch": 0.10,
        "bursty": 0.08,
    })
    #: Mix of VM configurations for long-running VMs (name -> weight).
    #: Median ends up at 4 cores / 16 GB.
    long_running_config_weights: Dict[str, float] = field(default_factory=lambda: {
        "D2_v5": 0.16, "D4_v5": 0.26, "D8_v5": 0.16, "D16_v5": 0.08,
        "D32_v5": 0.05, "D40_v5": 0.02,
        "E4_v5": 0.06, "E8_v5": 0.06, "E16_v5": 0.04, "E32_v5": 0.02,
        "F4_v2": 0.04, "F8_v2": 0.03, "F16_v2": 0.02,
    })
    #: Mix of VM configurations for short-lived VMs (smaller sizes dominate).
    short_lived_config_weights: Dict[str, float] = field(default_factory=lambda: {
        "D1_v5": 0.22, "D2_v5": 0.30, "D4_v5": 0.24, "D8_v5": 0.10,
        "F2_v2": 0.08, "E2_v5": 0.06,
    })
    #: Fraction of subscriptions that are internal (first-party).
    internal_fraction: float = 0.25
    #: Fraction of VMs backing PaaS offerings.
    paas_fraction: float = 0.3

    # ------------------------------------------------------------------ #
    # Scenario hooks (repro.scenarios).  Every hook below is opt-in and
    # draws RNG only when enabled, so the default configuration's random
    # stream -- and every golden-trace pin built on it -- is unchanged.
    # ------------------------------------------------------------------ #
    #: Explicit fleet shape; ``None`` means the default C1-C10 mix scaled
    #: by ``servers_per_cluster`` (no RNG either way).
    clusters: Optional[List[ClusterConfig]] = None
    #: Allocation-class mix (class value -> weight).  ``None`` leaves every
    #: VM at the :class:`AllocationClass` default without drawing.
    allocation_class_weights: Optional[Dict[str, float]] = None
    #: Correlated diurnal+weekly surge overlay.  Deterministic in the slot
    #: index (see :func:`repro.trace.patterns.surge_overlay`): enabling it
    #: never shifts the random stream.
    surge: Optional[SurgeConfig] = None
    #: Arrival slots of flash-crowd bursts; with ``flash_crowd_fraction``
    #: of VMs redirected (one extra uniform draw + one choice per VM, only
    #: when both are set) to arrive within ``flash_crowd_spread_slots`` of
    #: a burst.
    flash_crowd_slots: Tuple[int, ...] = ()
    flash_crowd_fraction: float = 0.0
    flash_crowd_spread_slots: int = 12

    @property
    def n_slots(self) -> int:
        return slots_for_days(self.n_days)


class TraceGenerator:
    """Generates a reproducible synthetic trace from a configuration."""

    def __init__(self, config: Optional[TraceGeneratorConfig] = None):
        self.config = config or TraceGeneratorConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    # Subscriptions
    # ------------------------------------------------------------------ #
    def _make_subscriptions(self) -> Dict[str, tuple[Subscription, SubscriptionProfile,
                                                     List[str]]]:
        """Create subscriptions with a behaviour profile and preferred configs."""
        cfg = self.config
        rng = self._rng
        archetype_names = list(cfg.archetype_weights)
        archetype_probs = np.array([cfg.archetype_weights[a] for a in archetype_names])
        archetype_probs = archetype_probs / archetype_probs.sum()

        subscriptions: Dict[str, tuple[Subscription, SubscriptionProfile, List[str]]] = {}
        long_names = list(cfg.long_running_config_weights)
        long_probs = np.array([cfg.long_running_config_weights[n] for n in long_names])
        long_probs = long_probs / long_probs.sum()

        for index in range(cfg.n_subscriptions):
            sub_id = f"sub-{index:04d}"
            archetype = str(rng.choice(archetype_names, p=archetype_probs))
            internal = rng.random() < cfg.internal_fraction
            test = rng.random() < 0.3
            if internal:
                sub_type = (SubscriptionType.INTERNAL_TEST if test
                            else SubscriptionType.INTERNAL_PRODUCTION)
            else:
                sub_type = (SubscriptionType.EXTERNAL_TEST if test
                            else SubscriptionType.EXTERNAL_PRODUCTION)
            offering = Offering.PAAS if rng.random() < cfg.paas_fraction else Offering.IAAS
            profile = make_subscription_profile(archetype, rng)
            # Each subscription uses a small set of preferred VM configurations,
            # which is what makes the subscription+config grouping predictive.
            n_preferred = int(rng.integers(1, 4))
            preferred = list(rng.choice(long_names, size=n_preferred, replace=False,
                                        p=long_probs))
            subscriptions[sub_id] = (
                Subscription(sub_id, sub_type, archetype, offering), profile, preferred)
        return subscriptions

    # ------------------------------------------------------------------ #
    # Durations and sizes
    # ------------------------------------------------------------------ #
    def _sample_duration_slots(self, long_running: bool) -> int:
        rng = self._rng
        if long_running:
            # 1 to n_days days, biased towards the full horizon so that
            # long-running VMs dominate resource-hours.
            days = float(rng.uniform(1.0, self.config.n_days))
            if rng.random() < 0.45:
                days = float(self.config.n_days)  # runs for the whole trace
            return max(SLOTS_PER_DAY + 1, int(days * SLOTS_PER_DAY))
        # Short-lived: log-uniform between 5 minutes and 1 day.
        log_lo, log_hi = np.log(1), np.log(SLOTS_PER_DAY)
        return max(1, int(np.exp(rng.uniform(log_lo, log_hi))))

    def _sample_config(self, long_running: bool, preferred: Sequence[str]) -> VMConfig:
        rng = self._rng
        cfg = self.config
        if long_running:
            if preferred and rng.random() < 0.8:
                return VM_CATALOG[str(rng.choice(list(preferred)))]
            names = list(cfg.long_running_config_weights)
            probs = np.array([cfg.long_running_config_weights[n] for n in names])
        else:
            names = list(cfg.short_lived_config_weights)
            probs = np.array([cfg.short_lived_config_weights[n] for n in names])
        probs = probs / probs.sum()
        return VM_CATALOG[str(rng.choice(names, p=probs))]

    def _sample_start_slot(self, duration_slots: int) -> int:
        """Arrival slot, biased towards working hours on weekdays."""
        rng = self._rng
        n_slots = self.config.n_slots
        latest = max(0, n_slots - duration_slots)
        if latest == 0:
            return 0
        # Mixture: 70% arrive during the first half of the trace (so that
        # long-running VMs are observable for several days), arrival hour
        # biased towards business hours.
        day = int(rng.integers(0, max(1, min(self.config.n_days,
                                             latest // SLOTS_PER_DAY + 1))))
        hour = float(np.clip(rng.normal(11.0, 5.0), 0.0, 23.9))
        slot = day * SLOTS_PER_DAY + int(hour * SLOTS_PER_HOUR)
        return min(slot, latest)

    # ------------------------------------------------------------------ #
    # Main entry points
    # ------------------------------------------------------------------ #
    def _population(self) -> tuple[Fleet,
                                   Dict[str, tuple[Subscription, SubscriptionProfile,
                                                   List[str]]],
                                   Dict[str, List[str]]]:
        """The trace-wide state drawn *before* the per-VM loop.

        Both :meth:`generate` and :meth:`generate_to_store` consume the RNG
        here first and then call :meth:`_sample_vm` once per index, so the
        two paths draw the identical random stream and produce the same VMs.
        """
        cfg = self.config
        rng = self._rng
        fleet = Fleet(clusters=list(cfg.clusters) if cfg.clusters is not None
                      else default_clusters(cfg.servers_per_cluster))

        subscriptions = self._make_subscriptions()
        cluster_ids = fleet.cluster_ids()
        cluster_probs = np.array(fleet.arrival_weights())
        cluster_probs = cluster_probs / cluster_probs.sum()

        # Subscriptions are sticky to a handful of clusters.  The draw is
        # clamped to the fleet size so explicit small fleets (scenario
        # hook) work; the default fleet has >= 3 clusters, so the clamp
        # never binds there and the stream is unchanged.
        sub_clusters: Dict[str, List[str]] = {}
        for sub_id in subscriptions:
            count = min(int(rng.integers(1, 4)), len(cluster_ids))
            sub_clusters[sub_id] = list(rng.choice(cluster_ids, size=count, replace=False,
                                                   p=cluster_probs))
        return fleet, subscriptions, sub_clusters

    def _sample_vm(self, index: int, sub_ids: List[str],
                   subscriptions: Dict[str, tuple[Subscription, SubscriptionProfile,
                                                  List[str]]],
                   sub_clusters: Dict[str, List[str]]) -> VMRecord:
        """Draw one VM (the body of the per-VM loop; RNG order is the spec)."""
        cfg = self.config
        rng = self._rng
        sub_id = str(rng.choice(sub_ids))
        subscription, profile, preferred = subscriptions[sub_id]
        long_running = rng.random() < cfg.long_running_fraction
        duration = self._sample_duration_slots(long_running)
        start = self._sample_start_slot(duration)
        if cfg.flash_crowd_slots and cfg.flash_crowd_fraction > 0.0:
            # Opt-in draws: redirect a fraction of arrivals to cluster
            # tightly around the configured burst slots.
            if rng.random() < cfg.flash_crowd_fraction:
                burst = int(rng.choice(np.asarray(cfg.flash_crowd_slots)))
                jitter = int(rng.integers(0, max(1, cfg.flash_crowd_spread_slots)))
                start = min(max(0, burst + jitter), cfg.n_slots - 1)
        end = min(start + duration, cfg.n_slots)
        config = self._sample_config(long_running, preferred)
        cluster_id = str(rng.choice(sub_clusters[sub_id]))
        allocation_class = AllocationClass.ON_DEMAND
        if cfg.allocation_class_weights:
            class_names = list(cfg.allocation_class_weights)
            class_probs = np.array([cfg.allocation_class_weights[name]
                                    for name in class_names], dtype=np.float64)
            class_probs = class_probs / class_probs.sum()
            allocation_class = AllocationClass(
                str(rng.choice(class_names, p=class_probs)))

        # Large VMs tend to be somewhat better utilized.
        config_scale = 1.0 + 0.1 * np.log2(max(config.cores, 1)) / 5.0
        cpu_params = vm_cpu_parameters(profile, rng, config_scale=config_scale)
        per_resource = generate_resource_patterns(cpu_params, rng)

        overlay = None
        if cfg.surge is not None:
            overlay = surge_overlay(cfg.surge, end - start, start)
        utilization = {}
        for resource, params in per_resource.items():
            values = generate_series(params, end - start, start, rng)
            if overlay is not None:
                values = np.clip(values * overlay, 0.005, 1.0)
            utilization[resource] = UtilizationSeries(values, start_slot=start)

        return VMRecord(
            vm_id=f"vm-{index:06d}",
            subscription_id=sub_id,
            config=config,
            cluster_id=cluster_id,
            start_slot=start,
            end_slot=end,
            offering=subscription.offering,
            subscription_type=subscription.subscription_type,
            allocation_class=allocation_class,
            utilization=utilization,
        )

    def generate(self) -> Trace:
        cfg = self.config
        fleet, subscriptions, sub_clusters = self._population()
        sub_ids = list(subscriptions)

        vms: List[VMRecord] = [
            self._sample_vm(index, sub_ids, subscriptions, sub_clusters)
            for index in range(cfg.n_vms)
        ]

        trace = Trace(
            vms=vms,
            fleet=fleet,
            n_slots=cfg.n_slots,
            subscriptions={sid: sub for sid, (sub, _p, _c) in subscriptions.items()},
        )
        trace.validate()
        return trace

    def generate_to_store(self, path, *, batch_vms: int = 1024,
                          util_dtype=None) -> Path:
        """Generate straight into an on-disk :class:`TraceStore` layout.

        The eager path (``generate()`` then ``TraceStore.from_trace(...)
        .save(...)``) holds every :class:`VMRecord` and the concatenated
        telemetry buffers in RAM at once; this path streams VMs through a
        :class:`~repro.trace.store.TraceStoreBuilder` in batches of at most
        *batch_vms* records, so peak memory is bounded by the batch --
        month-scale / million-VM traces ingest under a fixed budget.

        Exactness: both paths consume the identical RNG stream
        (``_population`` then ``_sample_vm`` per index), and the builder is
        byte-identical to ``from_trace + save`` for any chunking, so the
        store written here equals the eager store bit for bit regardless of
        *batch_vms* -- ``tests/test_trace_store_builder.py`` pins this.

        Returns *path*; open the result with ``TraceStore.open(path,
        mmap=True)``.
        """
        # Local import: repro.trace.store imports Trace from this package's
        # sibling module, and the generator is importable without the store.
        from repro.trace.store import TraceStoreBuilder

        if batch_vms < 1:
            raise ValueError(f"batch_vms must be >= 1, got {batch_vms}")
        cfg = self.config
        fleet, subscriptions, sub_clusters = self._population()
        sub_ids = list(subscriptions)
        known_clusters = set(fleet.cluster_ids())

        with TraceStoreBuilder(
                path, fleet=fleet, n_slots=cfg.n_slots,
                subscriptions={sid: sub for sid, (sub, _p, _c)
                               in subscriptions.items()},
                util_dtype=util_dtype) as builder:
            batch: List[VMRecord] = []
            for index in range(cfg.n_vms):
                vm = self._sample_vm(index, sub_ids, subscriptions, sub_clusters)
                # Per-VM twin of Trace.validate() (the whole trace never
                # exists here): record invariants, horizon, known cluster.
                vm.validate()
                if vm.end_slot > cfg.n_slots:
                    raise ValueError(
                        f"VM {vm.vm_id} ends at slot {vm.end_slot}, beyond "
                        f"the {cfg.n_slots}-slot horizon")
                if vm.cluster_id not in known_clusters:
                    raise ValueError(
                        f"VM {vm.vm_id} references unknown cluster "
                        f"{vm.cluster_id!r}")
                batch.append(vm)
                if len(batch) >= batch_vms:
                    builder.append_many(batch)
                    batch = []
            builder.append_many(batch)
        return Path(path)


def generate_trace(n_vms: int = 2000, n_days: int = 14, seed: int = 2024,
                   **kwargs: object) -> Trace:
    """Convenience wrapper: generate a trace with the default configuration."""
    config = TraceGeneratorConfig(n_vms=n_vms, n_days=n_days, seed=seed, **kwargs)  # type: ignore[arg-type]
    return TraceGenerator(config).generate()


def generate_trace_to_store(path, n_vms: int = 2000, n_days: int = 14,
                            seed: int = 2024, batch_vms: int = 1024,
                            **kwargs: object) -> Path:
    """Convenience wrapper: stream a generated trace straight to disk.

    Byte-identical to ``TraceStore.from_trace(generate_trace(...)).save(path)``
    for the same parameters, but holds at most *batch_vms* VM records in
    memory at a time.
    """
    config = TraceGeneratorConfig(n_vms=n_vms, n_days=n_days, seed=seed, **kwargs)  # type: ignore[arg-type]
    return TraceGenerator(config).generate_to_store(path, batch_vms=batch_vms)


def small_trace(seed: int = 7) -> Trace:
    """A small trace for unit tests and quick examples."""
    return generate_trace(n_vms=200, n_days=7, seed=seed, n_subscriptions=30,
                          servers_per_cluster=4)
