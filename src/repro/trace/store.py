"""Columnar trace storage: struct-of-arrays VM metadata plus flat telemetry.

The object representation of a trace -- a ``List[VMRecord]``, each holding a
``Dict[Resource, UtilizationSeries]`` -- is convenient for per-VM callers but
expensive at scale: filtering walks Python objects, every sweep worker
unpickles its own full copy of the telemetry, and the whole trace must live
in RAM to be replayed.  :class:`TraceStore` is the dense formulation (the
same move :class:`~repro.core.scheduler.ClusterLedger` made for scheduling
state and :class:`~repro.simulator.replay.VectorizedViolationMeter` for
contention accounting):

* all VM metadata lives in parallel numpy columns (``start_slot``,
  ``end_slot``, per-resource allocations, cluster/config indices,
  long-running flags), so ``Trace.filter`` / ``alive_at`` / ``arriving_in``
  become whole-column comparisons instead of Python loops;
* all telemetry for one resource lives in a single contiguous flat buffer,
  with an ``(n_vms + 1,)`` offsets array mapping VM ``i`` to its samples
  ``buffer[offsets[i]:offsets[i + 1]]``.

Per-VM callers keep working unchanged: :meth:`TraceStore.as_trace`
materializes ordinary :class:`VMRecord` objects whose ``UtilizationSeries``
*views* slice the shared buffer without copying (the ``ServerAccount``-over-
``ClusterLedger`` pattern).  A store-backed :class:`Trace` carries its store
in ``Trace.store`` and routes the hot filters through the columns.

Two backends sit on top of the columns:

* **Shared memory** (:meth:`export_shared` / :class:`SharedTraceHandle`):
  the buffers are copied once into ``multiprocessing.shared_memory``
  segments and workers attach zero-copy, so a process-pool sweep ships a
  handle of a few kilobytes instead of pickling megabytes of telemetry per
  worker (see :mod:`repro.simulator.sweep`).
* **On-disk store** (:meth:`save` / :meth:`open`): columns land in an
  ``.npz`` plus one raw ``.npy`` buffer per resource.  Opening with
  ``mmap=True`` memory-maps the buffers, so the chunked replay meter reads
  only the slot-chunk it is accumulating -- a trace whose telemetry exceeds
  RAM stays replayable end to end.

The write side has a streaming counterpart: :class:`TraceStoreBuilder`
appends VM metadata rows and telemetry chunks directly to the on-disk
layout, so a trace larger than RAM can be *ingested* without ever holding
an object trace (or the flat buffers) in memory.  Builder output is
byte-identical to ``from_trace(...).save(...)`` for any append chunking --
both paths share the deterministic writers below -- so ``open(mmap=True)``
reads it unchanged.

Exactness contract
------------------
``from_trace`` preserves the source dtype by default (float64 for generated
traces), so a store-backed replay is *bitwise* identical to the object-based
path -- ``tests/test_trace_store.py`` and the golden-trace pins assert this.
Passing ``util_dtype=np.float32`` halves the buffer for storage and
shared-memory fan-out at a documented precision cost; both paths over the
*same* store always agree bitwise because they read the same buffer.
"""

# repro: hot-path  -- REP003: telemetry buffers must stay zero-copy here;
# justified metadata-only copies are listed in analysis_baseline.json.

from __future__ import annotations

import io
import json
import os
import shutil
import zipfile
from dataclasses import asdict
from multiprocessing import shared_memory
from pathlib import Path
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource
from repro.trace.hardware import ClusterConfig, Fleet
from repro.trace.timeseries import SLOTS_PER_DAY, UtilizationSeries
from repro.trace.trace import Trace
from repro.trace.vm import (
    AllocationClass,
    Offering,
    Subscription,
    SubscriptionType,
    VMConfig,
    VMRecord,
)

#: On-disk format version (bumped on incompatible layout changes).
#: Version 2 added the ``alloc_class_code`` column (allocation classes).
STORE_FORMAT_VERSION = 2


# --------------------------------------------------------------------------- #
# Segment-reduce kernels over flat telemetry buffers
#
# A "segment" is one VM's samples for one resource: ``buffer[start:start+len]``.
# The kernels below evaluate a per-segment statistic for *every* VM in a small,
# fixed number of numpy calls instead of one Python-level call per VM -- the
# characterization layer (``repro.characterization.columnar``) is built on
# them.  Exactness contract: each kernel is bitwise-identical to applying the
# corresponding numpy reduction to every ``buffer[start:start+len]`` slice
# individually (the per-VM reference path), on any buffer dtype for the
# order-independent reductions (max/min) and on float64 for mean/percentile.
# --------------------------------------------------------------------------- #
def segment_reduce(ufunc: np.ufunc, buffer: np.ndarray, starts: np.ndarray,
                   lengths: np.ndarray) -> np.ndarray:
    """Per-segment ``ufunc.reduce`` in one ``reduceat`` call.

    Segments must be non-empty and in ascending buffer order (every store
    row selection produced by the ``Trace`` filters satisfies both).  The
    segment bounds are interleaved into one index array; ``reduceat``
    evaluates every ``[start, end)`` slice at the even positions and the
    (discarded) inter-segment gaps at the odd ones.
    """
    n = int(starts.size)
    if n == 0:
        return np.empty(0, dtype=buffer.dtype)
    ends = starts + lengths
    # A bound beyond the buffer means a corrupted (start, length) pair; the
    # edge-trim below must never silently absorb it into the wrong slice.
    overshoot = int(ends.max(initial=0))
    if overshoot > buffer.size:
        raise ValueError(
            f"segment bound {overshoot} overruns the telemetry buffer "
            f"({buffer.size} samples): corrupted segment starts/lengths")
    idx = np.empty(2 * n, dtype=np.int64)
    idx[0::2] = starts
    idx[1::2] = ends
    # reduceat indices must be < buffer.size.  Segments are non-empty and
    # ascending, so only the final end can sit exactly at the buffer edge:
    # drop it and let the last slice run to the end of the buffer.
    if idx[-1] == buffer.size:
        idx = idx[:-1]
    if idx.size > 1 and np.any(idx[:-1] >= buffer.size):
        # Out-of-order selections (never produced by the Trace filters) fall
        # back to the per-segment loop rather than mis-slicing.
        return np.array([ufunc.reduce(buffer[s:s + l])
                         for s, l in zip(starts, lengths)])
    return ufunc.reduceat(buffer, idx)[0::2]


def segment_sort(buffer: np.ndarray, starts: np.ndarray,
                 lengths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sort every segment independently in one pass.

    Returns ``(values, offsets)`` where ``values`` packs the segments
    contiguously (each one sorted ascending) and ``offsets`` is the
    canonical ``(n + 1,)`` boundary array of the packed layout.  One
    ``lexsort`` over (segment id, value) replaces one ``np.sort`` call per
    VM; sorted *values* are identical either way, which is all the
    percentile kernel below reads.
    """
    n = int(starts.size)
    offsets = np.zeros(n + 1, dtype=np.int64)
    if n == 0:
        return np.empty(0, dtype=buffer.dtype), offsets
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    ids = np.repeat(np.arange(n, dtype=np.int64), lengths)
    positions = np.repeat(starts, lengths) + (np.arange(total, dtype=np.int64)
                                              - np.repeat(offsets[:-1], lengths))
    packed = buffer[positions]
    order = np.lexsort((packed, ids))
    return packed[order], offsets


def segment_percentile(sorted_values: np.ndarray, offsets: np.ndarray,
                       pct: float) -> np.ndarray:
    """Per-segment percentile over pre-sorted packed segments.

    Replicates ``np.percentile(..., method="linear")`` step for step --
    ``virtual = (n - 1) * (pct / 100)``, neighbour clamping, and the
    two-branch linear interpolation (``a + diff * t`` below ``t = 0.5``,
    ``b - diff * (1 - t)`` at or above) -- so float64 results are bitwise
    identical to calling ``np.percentile`` on every segment.  float32
    segments agree to rounding (numpy's scalar path keeps intermediates in
    float32 where this vectorized path promotes to float64).
    """
    lengths = np.diff(offsets)
    n = int(lengths.size)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    quantile = np.true_divide(pct, 100)
    virtual = (lengths - 1) * quantile
    previous = np.floor(virtual)
    nxt = previous + 1
    above = virtual >= lengths - 1
    previous[above] = lengths[above] - 1
    nxt[above] = lengths[above] - 1
    below = virtual < 0
    previous[below] = 0
    nxt[below] = 0
    previous = previous.astype(np.intp)
    nxt = nxt.astype(np.intp)
    gamma = virtual - previous
    left = sorted_values[offsets[:-1] + previous]
    right = sorted_values[offsets[:-1] + nxt]
    diff = right - left
    result = left + diff * gamma
    high = gamma >= 0.5
    result[high] = right[high] - diff[high] * (1 - gamma[high])
    return result


def segment_percentiles(buffer: np.ndarray, starts: np.ndarray,
                        lengths: np.ndarray,
                        pcts: Sequence[float]) -> Dict[float, np.ndarray]:
    """Per-segment percentiles without sorting whole segments.

    Segments of equal length share their interpolation ranks, so they are
    gathered into one matrix and *partitioned* (O(n) selection) at exactly
    the neighbour ranks every requested percentile reads -- the values at
    those ranks match a full sort, so results equal
    :func:`segment_percentile` (and therefore per-VM ``np.percentile``)
    bitwise on float64 while doing a fraction of the comparisons.
    """
    n = int(starts.size)
    out = {pct: np.empty(n, dtype=np.float64) for pct in pcts}
    if n == 0 or not pcts:
        return out
    order = np.argsort(lengths, kind="stable")
    sorted_lengths = lengths[order]
    group_bounds = np.flatnonzero(np.diff(sorted_lengths)) + 1
    for group in np.split(order, group_bounds):
        length = int(lengths[group[0]])
        matrix = buffer[starts[group][:, None]
                        + np.arange(length, dtype=np.int64)[None, :]]
        plan = []
        ranks = set()
        for pct in pcts:
            quantile = np.true_divide(pct, 100)
            virtual = (length - 1) * quantile
            if virtual >= length - 1:
                previous = nxt = length - 1
            elif virtual < 0:
                previous = nxt = 0
            else:
                previous = int(np.floor(virtual))
                nxt = previous + 1
            gamma = virtual - previous
            plan.append((pct, previous, nxt, gamma))
            ranks.update((previous, nxt))
        matrix.partition(sorted(ranks), axis=1)
        for pct, previous, nxt, gamma in plan:
            left = matrix[:, previous]
            right = matrix[:, nxt]
            diff = right - left
            if gamma >= 0.5:
                out[pct][group] = right - diff * (1 - gamma)
            else:
                out[pct][group] = left + diff * gamma
    return out


def rowwise_mean(buffer: np.ndarray, starts: np.ndarray, lengths: np.ndarray,
                 minuend: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-segment mean of ``segment`` (or ``minuend[i] - segment``).

    Mean is order-*dependent* in floating point (numpy uses blocked pairwise
    summation), so a plain ``add.reduceat`` would drift from the per-VM
    reference by rounding.  Instead, segments of equal length are gathered
    into one C-contiguous matrix and reduced with ``mean(axis=1)``: numpy
    applies the identical per-row pairwise reduction it would apply to each
    1-D slice, so results are bitwise-identical to calling ``np.mean`` per
    segment while still batching one numpy call per *distinct length*
    rather than per VM.
    """
    n = int(starts.size)
    out = np.empty(n, dtype=np.float64 if minuend is not None
                   else np.dtype(buffer.dtype))
    if n == 0:
        return out
    order = np.argsort(lengths, kind="stable")
    sorted_lengths = lengths[order]
    group_bounds = np.flatnonzero(np.diff(sorted_lengths)) + 1
    for group in np.split(order, group_bounds):
        length = int(lengths[group[0]])
        gathered = buffer[starts[group][:, None]
                          + np.arange(length, dtype=np.int64)[None, :]]
        if minuend is not None:
            gathered = minuend[group][:, None] - gathered
        out[group] = gathered.mean(axis=1)
    return out

#: File names of the on-disk layout.
_META_FILE = "meta.json"
_COLUMNS_FILE = "columns.npz"

#: Stable code tables for the enum columns (persisted in ``meta.json`` so a
#: reordering of the enums cannot silently re-label old stores).
_OFFERING_VALUES: Tuple[str, ...] = tuple(o.value for o in Offering)
_SUBTYPE_VALUES: Tuple[str, ...] = tuple(t.value for t in SubscriptionType)
_ALLOC_CLASS_VALUES: Tuple[str, ...] = tuple(c.value for c in AllocationClass)


# --------------------------------------------------------------------------- #
# Deterministic on-disk writers
#
# ``TraceStore.save`` and ``TraceStoreBuilder.finalize`` must emit
# byte-identical files for equal contents (the builder's differential
# contract), so both go through the helpers below instead of ``np.savez``,
# whose zip members carry wall-clock timestamps.
# --------------------------------------------------------------------------- #
def _write_npz(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    """``np.savez`` with deterministic bytes.

    Members are stored uncompressed in insertion order with a fixed zip
    timestamp (the DOS epoch), so two writes of equal arrays produce equal
    files.  ``np.load`` reads the result exactly like an ``np.savez`` file.
    """
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED, allowZip64=True) as archive:
        for name, array in arrays.items():
            member = io.BytesIO()
            np.lib.format.write_array(member, np.asarray(array))
            info = zipfile.ZipInfo(f"{name}.npy", date_time=(1980, 1, 1, 0, 0, 0))
            archive.writestr(info, member.getvalue())


def _npy_header_bytes(dtype: np.dtype, n_samples: int) -> bytes:
    """The exact ``.npy`` v1.0 header ``np.save`` writes for a flat array."""
    header = io.BytesIO()
    np.lib.format.write_array_header_1_0(header, {
        "descr": np.lib.format.dtype_to_descr(np.dtype(dtype)),
        "fortran_order": False,
        "shape": (int(n_samples),),
    })
    return header.getvalue()


def _meta_jsonable(*, n_vms: int, n_slots: int, util_dtype: np.dtype,
                   resources: Sequence[Resource], cluster_ids: Sequence[str],
                   configs: Sequence[VMConfig], fleet: Fleet,
                   subscriptions: Dict[str, Subscription]) -> Dict[str, object]:
    """The ``meta.json`` payload, shared by ``save`` and the builder."""
    return {
        "format_version": STORE_FORMAT_VERSION,
        "n_vms": int(n_vms),
        "n_slots": int(n_slots),
        "util_dtype": np.dtype(util_dtype).str,
        "resources": [r.value for r in resources],
        "offering_values": list(_OFFERING_VALUES),
        "subscription_type_values": list(_SUBTYPE_VALUES),
        "allocation_class_values": list(_ALLOC_CLASS_VALUES),
        "cluster_ids": list(cluster_ids),
        "configs": [asdict(cfg) for cfg in configs],
        "fleet": _fleet_to_jsonable(fleet),
        "subscriptions": [_subscription_to_jsonable(sub)
                          for sub in subscriptions.values()],
    }


class SharedTraceHandle:
    """A picklable, kilobyte-sized reference to an exported :class:`TraceStore`.

    Created by :meth:`TraceStore.export_shared` in the parent process; the
    handle travels to workers through pickle carrying only the small metadata
    columns and the *names* of the shared-memory segments holding the
    telemetry buffers.  Workers call :meth:`attach` to map the segments
    zero-copy and :meth:`TraceStore.close_shared` when done; the exporting
    process calls :meth:`unlink` exactly once after the pool has drained.
    """

    def __init__(self, state: Dict[str, object],
                 segments: List[Tuple[str, str, int]], util_dtype: str,
                 owned: Optional[List[shared_memory.SharedMemory]] = None):
        self._state = state
        self._segments = segments  # (resource value, segment name, n_samples)
        self._util_dtype = util_dtype
        self._owned = owned or []

    @property
    def segment_names(self) -> List[str]:
        return [name for _resource, name, _size in self._segments]

    def __getstate__(self) -> Dict[str, object]:
        # The owner's SharedMemory objects must not travel to workers: each
        # process manages its own mappings, and only the owner may unlink.
        return {"state": self._state, "segments": self._segments,
                "util_dtype": self._util_dtype}

    def __setstate__(self, payload: Dict[str, object]) -> None:
        self._state = payload["state"]
        self._segments = payload["segments"]
        self._util_dtype = payload["util_dtype"]
        self._owned = []

    def attach(self) -> "TraceStore":
        """Map the exported buffers and rebuild the store around them.

        The returned store's telemetry arrays are views of the shared pages
        (no copy); call :meth:`TraceStore.close_shared` on it once the work
        is done so the mapping is released promptly.
        """
        dtype = np.dtype(self._util_dtype)
        shms: List[shared_memory.SharedMemory] = []
        util: Dict[Resource, np.ndarray] = {}
        # Note on the resource tracker: spawned pool workers inherit the
        # exporting process's tracker, so the attach-side registration below
        # is a no-op and cleanup stays solely with the owner's unlink() --
        # including when a worker dies without running any cleanup.  (An
        # *unrelated* process attaching by name would bring its own tracker,
        # which unlinks registered segments at exit; handles are meant to
        # travel to children of the exporter.)
        try:
            for resource_value, name, n_samples in self._segments:
                shm = shared_memory.SharedMemory(name=name)
                shms.append(shm)
                util[Resource(resource_value)] = np.ndarray(
                    (n_samples,), dtype=dtype, buffer=shm.buf)
        except Exception:
            for shm in shms:
                shm.close()
            raise
        store = TraceStore._from_state(self._state, util)
        store._shared_segments = shms
        return store

    def unlink(self) -> None:
        """Release and destroy the segments (exporting process only)."""
        for shm in self._owned:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # already unlinked (idempotent)
                pass
        self._owned = []


class TraceStore:
    """Struct-of-arrays trace: metadata columns plus flat telemetry buffers.

    Build one with :meth:`from_trace` (from an object trace), :meth:`open`
    (from disk), or :meth:`SharedTraceHandle.attach` (from shared memory).
    Row ``i`` of every column describes the same VM, and a store-backed
    :class:`Trace` keeps ``trace.vms[i]`` in lockstep with row ``i``.
    """

    def __init__(self, *, vm_ids: np.ndarray, subscription_ids: np.ndarray,
                 server_ids: np.ndarray, configs: List[VMConfig],
                 config_index: np.ndarray, cluster_ids: List[str],
                 cluster_index: np.ndarray, start_slot: np.ndarray,
                 end_slot: np.ndarray, offering_code: np.ndarray,
                 subtype_code: np.ndarray, alloc_class_code: np.ndarray,
                 series_start: np.ndarray,
                 row_offset: np.ndarray, row_length: np.ndarray,
                 util: Dict[Resource, np.ndarray], n_slots: int,
                 fleet: Fleet, subscriptions: Dict[str, Subscription],
                 contiguous: bool, validate_ids: bool = True):
        self.vm_ids = vm_ids
        self.subscription_ids = subscription_ids
        self.server_ids = server_ids
        self.configs = configs
        self.config_index = config_index
        self.cluster_ids = cluster_ids
        self.cluster_index = cluster_index
        self.start_slot = start_slot
        self.end_slot = end_slot
        self.offering_code = offering_code
        self.subtype_code = subtype_code
        self.alloc_class_code = alloc_class_code
        self.series_start = series_start
        self.row_offset = row_offset
        self.row_length = row_length
        self.util = util
        self.n_slots = int(n_slots)
        self.fleet = fleet
        self.subscriptions = subscriptions
        self._contiguous = contiguous
        self._shared_segments: List[shared_memory.SharedMemory] = []
        self._id_index: Optional[Dict[str, int]] = None
        self._alloc: Optional[np.ndarray] = None
        # Row selections of an already-validated store stay duplicate-free,
        # so the (O(n) Python) check is skipped on the filter fast path.
        if validate_ids:
            self._validate_unique_ids()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trace(cls, trace: Trace,
                   util_dtype: Optional[np.dtype] = None) -> "TraceStore":
        """Columnarize an object trace.

        With ``util_dtype=None`` (the default) the telemetry buffers keep the
        source dtype, so every value -- and therefore every downstream
        replay/characterization result -- is bitwise identical to the object
        path.  Passing ``np.float32`` halves the buffers at a precision cost.

        Raises ``ValueError`` for non-uniform telemetry: every VM must carry
        the same resource set, and within one VM every resource's series must
        share one start slot and length (the single offsets array is what
        makes the flat layout sliceable).
        """
        vms = trace.vms
        n = len(vms)
        resources: Tuple[Resource, ...] = ()
        if n:
            present = set(vms[0].utilization)
            resources = tuple(r for r in ALL_RESOURCES if r in present)

        vm_ids = np.empty(n, dtype=object)
        subscription_ids = np.empty(n, dtype=object)
        server_ids = np.empty(n, dtype=object)
        config_table: Dict[VMConfig, int] = {}
        configs: List[VMConfig] = []
        config_index = np.zeros(n, dtype=np.int32)
        cluster_ids = list(trace.fleet.cluster_ids())
        cluster_table = {cid: i for i, cid in enumerate(cluster_ids)}
        cluster_index = np.zeros(n, dtype=np.int32)
        start_slot = np.zeros(n, dtype=np.int64)
        end_slot = np.zeros(n, dtype=np.int64)
        offering_code = np.zeros(n, dtype=np.int8)
        subtype_code = np.zeros(n, dtype=np.int8)
        alloc_class_code = np.zeros(n, dtype=np.int8)
        series_start = np.zeros(n, dtype=np.int64)
        row_length = np.zeros(n, dtype=np.int64)

        offering_codes = {value: i for i, value in enumerate(_OFFERING_VALUES)}
        subtype_codes = {value: i for i, value in enumerate(_SUBTYPE_VALUES)}
        alloc_class_codes = {value: i
                             for i, value in enumerate(_ALLOC_CLASS_VALUES)}

        chunks: Dict[Resource, List[np.ndarray]] = {r: [] for r in resources}
        for i, vm in enumerate(vms):
            if set(vm.utilization) != set(resources):
                raise ValueError(
                    f"VM {vm.vm_id} carries telemetry for "
                    f"{sorted(r.value for r in vm.utilization)}, expected "
                    f"{sorted(r.value for r in resources)}: a columnar store "
                    f"needs a uniform resource set")
            vm_ids[i] = vm.vm_id
            subscription_ids[i] = vm.subscription_id
            server_ids[i] = vm.server_id
            config = vm.config
            index = config_table.get(config)
            if index is None:
                index = config_table[config] = len(configs)
                configs.append(config)
            config_index[i] = index
            cluster = cluster_table.get(vm.cluster_id)
            if cluster is None:
                cluster = cluster_table[vm.cluster_id] = len(cluster_ids)
                cluster_ids.append(vm.cluster_id)
            cluster_index[i] = cluster
            start_slot[i] = vm.start_slot
            end_slot[i] = vm.end_slot
            offering_code[i] = offering_codes[vm.offering.value]
            subtype_code[i] = subtype_codes[vm.subscription_type.value]
            alloc_class_code[i] = alloc_class_codes[vm.allocation_class.value]
            first = None
            for resource in resources:
                series = vm.utilization[resource]
                if first is None:
                    first = series
                    series_start[i] = series.start_slot
                    row_length[i] = len(series)
                elif (series.start_slot != first.start_slot
                      or len(series) != len(first)):
                    raise ValueError(
                        f"VM {vm.vm_id}: {resource.value} series covers "
                        f"[{series.start_slot}, {series.start_slot + len(series)}) "
                        f"but {resources[0].value} covers "
                        f"[{first.start_slot}, {first.start_slot + len(first)}); "
                        f"a single offsets array needs equal coverage")
                chunks[resource].append(series.values)

        util: Dict[Resource, np.ndarray] = {}
        for resource in resources:
            if chunks[resource]:
                buffer = np.concatenate(chunks[resource])
            else:
                buffer = np.empty(0, dtype=np.float64)
            if util_dtype is not None:
                buffer = buffer.astype(util_dtype, copy=False)
            util[resource] = buffer

        row_offset = np.zeros(n, dtype=np.int64)
        if n:
            np.cumsum(row_length[:-1], out=row_offset[1:])
        return cls(
            vm_ids=vm_ids, subscription_ids=subscription_ids,
            server_ids=server_ids, configs=configs, config_index=config_index,
            cluster_ids=cluster_ids, cluster_index=cluster_index,
            start_slot=start_slot, end_slot=end_slot,
            offering_code=offering_code, subtype_code=subtype_code,
            alloc_class_code=alloc_class_code,
            series_start=series_start, row_offset=row_offset,
            row_length=row_length, util=util, n_slots=trace.n_slots,
            fleet=trace.fleet, subscriptions=dict(trace.subscriptions),
            contiguous=True)

    def _validate_unique_ids(self) -> None:
        if len(set(self.vm_ids.tolist())) != len(self.vm_ids):
            seen: set = set()
            for vm_id in self.vm_ids.tolist():
                if vm_id in seen:
                    raise ValueError(f"duplicate VM id {vm_id!r} in trace store")
                seen.add(vm_id)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.vm_ids.size)

    @property
    def n_vms(self) -> int:
        return len(self)

    @property
    def resources(self) -> Tuple[Resource, ...]:
        return tuple(self.util)

    @property
    def util_dtype(self) -> np.dtype:
        for buffer in self.util.values():
            return buffer.dtype
        return np.dtype(np.float64)

    @property
    def util_nbytes(self) -> int:
        """Total telemetry bytes across every resource buffer."""
        return int(sum(buffer.nbytes for buffer in self.util.values()))

    @property
    def contiguous(self) -> bool:
        """Whether rows map to one monotone ``(n_vms + 1,)`` offsets array."""
        return self._contiguous

    @property
    def offsets(self) -> np.ndarray:
        """The canonical ``(n_vms + 1,)`` offsets array (contiguous stores)."""
        if not self._contiguous:
            raise ValueError(
                "store is a non-contiguous selection; call compact() first")
        out = np.zeros(len(self) + 1, dtype=np.int64)
        np.cumsum(self.row_length, out=out[1:])
        return out

    @property
    def lifetime_slots(self) -> np.ndarray:
        return self.end_slot - self.start_slot

    @property
    def alloc(self) -> np.ndarray:
        """Per-VM allocations, shape ``(n_vms, len(ALL_RESOURCES))``."""
        if self._alloc is None:
            table = np.array(
                [[cfg.allocation_vector()[r] for r in ALL_RESOURCES]
                 for cfg in self.configs], dtype=np.float64)
            if not len(table):
                table = np.zeros((0, len(ALL_RESOURCES)))
            self._alloc = table[self.config_index]
        return self._alloc

    @property
    def lifetime_hours(self) -> np.ndarray:
        """Element-for-element :attr:`VMRecord.lifetime_hours`."""
        return self.lifetime_slots / (SLOTS_PER_DAY / 24)

    def resource_hours(self, resource: Resource) -> np.ndarray:
        """Element-for-element :meth:`VMRecord.resource_hours`."""
        return self.alloc[:, ALL_RESOURCES.index(resource)] * self.lifetime_hours

    @property
    def cores(self) -> np.ndarray:
        """Per-VM ``config.cores`` column."""
        table = np.array([cfg.cores for cfg in self.configs])
        return table[self.config_index] if len(self.configs) else \
            np.zeros(len(self), dtype=np.int64)

    @property
    def memory_gb(self) -> np.ndarray:
        """Per-VM ``config.memory_gb`` column."""
        table = np.array([cfg.memory_gb for cfg in self.configs])
        return table[self.config_index] if len(self.configs) else \
            np.zeros(len(self), dtype=np.int64)

    def config_names(self) -> np.ndarray:
        """Per-VM ``config.name`` column (object dtype)."""
        table = np.array([cfg.name for cfg in self.configs], dtype=object)
        return table[self.config_index] if len(self.configs) else \
            np.empty(len(self), dtype=object)

    # ------------------------------------------------------------------ #
    # Telemetry segment reductions (see the kernels at module level)
    # ------------------------------------------------------------------ #
    def segment_max(self, resource: Resource) -> np.ndarray:
        """Per-VM ``series.maximum()`` for one resource, in one reduceat."""
        return segment_reduce(np.maximum, self.util[resource],
                              self.row_offset, self.row_length)

    def segment_min(self, resource: Resource) -> np.ndarray:
        """Per-VM ``series.minimum()`` for one resource, in one reduceat."""
        return segment_reduce(np.minimum, self.util[resource],
                              self.row_offset, self.row_length)

    def segment_mean(self, resource: Resource) -> np.ndarray:
        """Per-VM ``series.mean()``, bitwise-identical (see rowwise_mean)."""
        return rowwise_mean(self.util[resource], self.row_offset,
                            self.row_length)

    def segment_percentiles(self, resource: Resource,
                            pcts: Sequence[float]) -> Dict[float, np.ndarray]:
        """Per-VM ``series.percentile(pct)`` for several percentiles at once.

        Length-bucketed rank partitioning plus the replicated linear
        interpolation -- bitwise identical to per-VM ``np.percentile`` on
        float64 buffers (see :func:`segment_percentiles`).
        """
        return segment_percentiles(self.util[resource], self.row_offset,
                                   self.row_length, pcts)

    def utilization_matrix(self, resource: Resource, n_slots: int,
                           rows: Optional[np.ndarray] = None,
                           absolute: bool = True) -> np.ndarray:
        """Dense ``(n_rows, n_slots)`` demand matrix via one flat scatter.

        The reference twin is the per-VM loop in
        :meth:`repro.trace.trace.Trace.utilization_matrix`; this kernel
        replaces it with a single fancy-indexed assignment into the
        flattened matrix.  Bitwise contract: the reference computes
        ``series.values[:k] * scale`` with ``scale`` a Python float, which
        numpy's weak-scalar promotion evaluates in the buffer dtype before
        the float64 matrix assignment widens it -- so the per-sample scale
        factors below are cast to the buffer dtype first, and both paths
        produce identical float64 entries on any buffer dtype.

        ``rows`` selects (ascending) store rows; ``None`` means every row.
        Series are clipped to the ``[0, n_slots)`` horizon exactly as the
        reference's ``end = min(series.end_slot, n_slots)`` slice.
        """
        if rows is None:
            rows = np.arange(len(self), dtype=np.intp)
        else:
            rows = np.asarray(rows, dtype=np.intp)
        buffer = self.util[resource]
        series_start = self.series_start[rows]
        eff_len = np.minimum(self.row_length[rows], n_slots - series_start)
        np.maximum(eff_len, 0, out=eff_len)
        matrix = np.zeros((rows.size, n_slots))
        total = int(eff_len.sum())
        if total == 0:
            return matrix
        bounds = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(eff_len, out=bounds[1:])
        # Position of every scattered sample inside its own segment.
        intra = np.arange(total, dtype=np.int64) - np.repeat(bounds[:-1],
                                                             eff_len)
        src = np.repeat(self.row_offset[rows], eff_len) + intra
        dst = (np.repeat(np.arange(rows.size, dtype=np.int64) * n_slots
                         + series_start, eff_len) + intra)
        samples = buffer[src]
        if absolute:
            scale = self.alloc[rows, ALL_RESOURCES.index(resource)]
            samples = samples * np.repeat(scale, eff_len).astype(
                buffer.dtype, copy=False)
        matrix.ravel()[dst] = samples
        return matrix

    def index_of(self, vm_id: str) -> int:
        """Row index of a VM id (maintained dict, O(1) after first use)."""
        if self._id_index is None:
            self._id_index = {vm_id: i for i, vm_id in
                              enumerate(self.vm_ids.tolist())}
        try:
            return self._id_index[vm_id]
        except KeyError as exc:
            raise KeyError(f"no VM with id {vm_id!r}") from exc

    # ------------------------------------------------------------------ #
    # Vectorized column predicates (the Trace fast paths)
    # ------------------------------------------------------------------ #
    def alive_at_indices(self, slot: int) -> np.ndarray:
        """Rows alive at *slot*, in row order."""
        return np.nonzero((self.start_slot <= slot) & (slot < self.end_slot))[0]

    def arriving_in_indices(self, start: int, end: int) -> np.ndarray:
        """Rows whose allocation slot falls in ``[start, end)``."""
        return np.nonzero((self.start_slot >= start) & (self.start_slot < end))[0]

    def long_running_mask(self, min_days: float = 1.0) -> np.ndarray:
        """Element-for-element the same comparison as
        :meth:`VMRecord.is_long_running` (``lifetime_days > min_days``)."""
        return self.lifetime_slots / SLOTS_PER_DAY > min_days

    def in_cluster_indices(self, cluster_id: str) -> np.ndarray:
        try:
            code = self.cluster_ids.index(cluster_id)
        except ValueError:
            return np.empty(0, dtype=np.intp)
        return np.nonzero(self.cluster_index == code)[0]

    def arrivals_for(self, cluster_id: str, min_start_slot: int) -> np.ndarray:
        """Rows replayed by one cluster simulation: in the cluster, arriving
        at or after *min_start_slot*."""
        try:
            code = self.cluster_ids.index(cluster_id)
        except ValueError:
            return np.empty(0, dtype=np.intp)
        return np.nonzero((self.cluster_index == code)
                          & (self.start_slot >= min_start_slot))[0]

    # ------------------------------------------------------------------ #
    # Row selection
    # ------------------------------------------------------------------ #
    def select(self, indices: Sequence[int]) -> "TraceStore":
        """A store over the given rows, sharing the telemetry buffers.

        Selection is zero-copy on the telemetry: the new store keeps the
        same flat buffers and simply re-points its per-row offset/length
        columns, so filtering a multi-gigabyte trace costs only the small
        metadata gathers.

        Accepts row indices or a boolean row mask (e.g. the output of
        :meth:`long_running_mask`).  Indices may reorder rows but must be
        unique -- a repeated index would duplicate a VM id, which every
        id-based lookup (and the skipped duplicate re-validation below)
        relies on being impossible.
        """
        idx = np.asarray(indices)
        if idx.dtype == np.bool_:
            if idx.shape != (len(self),):
                raise ValueError(
                    f"boolean selection mask has shape {idx.shape}, "
                    f"expected ({len(self)},)")
            idx = np.nonzero(idx)[0]
        idx = idx.astype(np.intp, copy=False)
        if idx.size > 1 and np.unique(idx).size != idx.size:
            raise ValueError("select() indices must be unique (a repeated "
                             "row would duplicate its VM id)")
        return TraceStore(
            vm_ids=self.vm_ids[idx], subscription_ids=self.subscription_ids[idx],
            server_ids=self.server_ids[idx], configs=self.configs,
            config_index=self.config_index[idx], cluster_ids=self.cluster_ids,
            cluster_index=self.cluster_index[idx],
            start_slot=self.start_slot[idx], end_slot=self.end_slot[idx],
            offering_code=self.offering_code[idx],
            subtype_code=self.subtype_code[idx],
            alloc_class_code=self.alloc_class_code[idx],
            series_start=self.series_start[idx],
            row_offset=self.row_offset[idx], row_length=self.row_length[idx],
            util=self.util, n_slots=self.n_slots, fleet=self.fleet,
            subscriptions=self.subscriptions, contiguous=False,
            validate_ids=False)

    def compact(self) -> "TraceStore":
        """A contiguous copy of a selection (no-op for contiguous stores)."""
        if self._contiguous:
            return self
        n = len(self)
        row_offset = np.zeros(n, dtype=np.int64)
        if n:
            np.cumsum(self.row_length[:-1], out=row_offset[1:])
        util: Dict[Resource, np.ndarray] = {}
        total = int(self.row_length.sum())
        for resource, buffer in self.util.items():
            packed = np.empty(total, dtype=buffer.dtype)
            for i in range(n):
                src = self.row_offset[i]
                dst = row_offset[i]
                length = self.row_length[i]
                packed[dst:dst + length] = buffer[src:src + length]
            util[resource] = packed
        return TraceStore(
            vm_ids=self.vm_ids.copy(), subscription_ids=self.subscription_ids.copy(),
            server_ids=self.server_ids.copy(), configs=list(self.configs),
            config_index=self.config_index.copy(), cluster_ids=list(self.cluster_ids),
            cluster_index=self.cluster_index.copy(),
            start_slot=self.start_slot.copy(), end_slot=self.end_slot.copy(),
            offering_code=self.offering_code.copy(),
            subtype_code=self.subtype_code.copy(),
            alloc_class_code=self.alloc_class_code.copy(),
            series_start=self.series_start.copy(), row_offset=row_offset,
            row_length=self.row_length.copy(), util=util, n_slots=self.n_slots,
            fleet=self.fleet, subscriptions=self.subscriptions, contiguous=True,
            validate_ids=False)

    # ------------------------------------------------------------------ #
    # Object views
    # ------------------------------------------------------------------ #
    def vm_view(self, i: int) -> VMRecord:
        """An ordinary :class:`VMRecord` over row *i* (telemetry not copied)."""
        utilization: Dict[Resource, UtilizationSeries] = {}
        offset = int(self.row_offset[i])
        length = int(self.row_length[i])
        start = int(self.series_start[i])
        for resource, buffer in self.util.items():
            utilization[resource] = UtilizationSeries.from_validated(
                buffer[offset:offset + length], start)
        return VMRecord(
            vm_id=self.vm_ids[i],
            subscription_id=self.subscription_ids[i],
            config=self.configs[int(self.config_index[i])],
            cluster_id=self.cluster_ids[int(self.cluster_index[i])],
            start_slot=int(self.start_slot[i]),
            end_slot=int(self.end_slot[i]),
            offering=Offering(_OFFERING_VALUES[self.offering_code[i]]),
            subscription_type=SubscriptionType(_SUBTYPE_VALUES[self.subtype_code[i]]),
            allocation_class=AllocationClass(
                _ALLOC_CLASS_VALUES[self.alloc_class_code[i]]),
            server_id=self.server_ids[i],
            utilization=utilization,
        )

    def as_trace(self) -> Trace:
        """A store-backed :class:`Trace`: row views plus vectorized filters."""
        return Trace(
            vms=[self.vm_view(i) for i in range(len(self))],
            fleet=self.fleet, n_slots=self.n_slots,
            subscriptions=self.subscriptions, store=self)

    # ------------------------------------------------------------------ #
    # On-disk backend
    # ------------------------------------------------------------------ #
    def save(self, path) -> Path:
        """Write the store to *path* (a directory; created if missing).

        Layout: ``meta.json`` (format version, shapes, configs, fleet,
        subscriptions, enum tables), ``columns.npz`` (every metadata column
        including the canonical offsets array), and one raw ``util_<r>.npy``
        buffer per resource -- raw so :meth:`open` can memory-map it.
        """
        store = self.compact()
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        meta = _meta_jsonable(
            n_vms=len(store), n_slots=store.n_slots,
            util_dtype=store.util_dtype, resources=store.resources,
            cluster_ids=store.cluster_ids, configs=store.configs,
            fleet=store.fleet, subscriptions=store.subscriptions)
        (path / _META_FILE).write_text(json.dumps(meta, indent=2) + "\n")
        _write_npz(path / _COLUMNS_FILE, {
            "vm_ids": np.asarray(store.vm_ids.tolist(), dtype=np.str_),
            "subscription_ids": np.asarray(store.subscription_ids.tolist(),
                                           dtype=np.str_),
            "server_ids": np.asarray(
                [sid if sid is not None else "" for sid in store.server_ids],
                dtype=np.str_),
            "has_server_id": np.asarray(
                [sid is not None for sid in store.server_ids], dtype=bool),
            "config_index": store.config_index,
            "cluster_index": store.cluster_index,
            "start_slot": store.start_slot,
            "end_slot": store.end_slot,
            "offering_code": store.offering_code,
            "subtype_code": store.subtype_code,
            "alloc_class_code": store.alloc_class_code,
            "series_start": store.series_start,
            "offsets": store.offsets,
        })
        for resource, buffer in store.util.items():
            np.save(path / f"util_{resource.value}.npy", buffer)
        return path

    @classmethod
    def open(cls, path, mmap: bool = False) -> "TraceStore":
        """Load a saved store; ``mmap=True`` memory-maps the telemetry.

        The metadata columns always load into RAM (they are a few bytes per
        VM); with ``mmap=True`` the per-resource buffers stay on disk and
        pages are only faulted in as slices are actually read -- which, with
        the chunked replay meter, bounds replay RAM to the slot-chunk.
        """
        path = Path(path)
        meta = json.loads((path / _META_FILE).read_text())
        if meta["format_version"] != STORE_FORMAT_VERSION:
            raise ValueError(
                f"trace store at {path} has format version "
                f"{meta['format_version']}; this build reads "
                f"{STORE_FORMAT_VERSION}")
        # The enum code columns are only meaningful against the tables they
        # were written with; a reordered or extended enum must fail loudly
        # instead of silently re-labelling every VM.
        for key, current in (("offering_values", _OFFERING_VALUES),
                             ("subscription_type_values", _SUBTYPE_VALUES),
                             ("allocation_class_values", _ALLOC_CLASS_VALUES)):
            persisted = tuple(meta[key])
            if persisted != current:
                raise ValueError(
                    f"trace store at {path} was written with {key} "
                    f"{list(persisted)}, but this build uses {list(current)}; "
                    f"refusing to re-label the persisted codes")
        columns = np.load(path / _COLUMNS_FILE)
        offsets = columns["offsets"]
        server_raw = columns["server_ids"].tolist()
        has_server = columns["has_server_id"].tolist()
        server_ids = np.empty(len(server_raw), dtype=object)
        for i, (sid, present) in enumerate(zip(server_raw, has_server)):
            server_ids[i] = sid if present else None
        util: Dict[Resource, np.ndarray] = {}
        for resource_value in meta["resources"]:
            util[Resource(resource_value)] = np.load(
                path / f"util_{resource_value}.npy",
                mmap_mode="r" if mmap else None)
        fleet = _fleet_from_jsonable(meta["fleet"])
        subscriptions = {
            sub["subscription_id"]: _subscription_from_jsonable(sub)
            for sub in meta["subscriptions"]}
        return cls(
            vm_ids=np.asarray(columns["vm_ids"].tolist(), dtype=object),
            subscription_ids=np.asarray(columns["subscription_ids"].tolist(),
                                        dtype=object),
            server_ids=server_ids,
            configs=[VMConfig(**cfg) for cfg in meta["configs"]],
            config_index=columns["config_index"],
            cluster_ids=list(meta["cluster_ids"]),
            cluster_index=columns["cluster_index"],
            start_slot=columns["start_slot"], end_slot=columns["end_slot"],
            offering_code=columns["offering_code"],
            subtype_code=columns["subtype_code"],
            alloc_class_code=columns["alloc_class_code"],
            series_start=columns["series_start"],
            row_offset=offsets[:-1].astype(np.int64, copy=True),
            row_length=np.diff(offsets).astype(np.int64, copy=False),
            util=util, n_slots=int(meta["n_slots"]), fleet=fleet,
            subscriptions=subscriptions, contiguous=True)

    # ------------------------------------------------------------------ #
    # Shared-memory backend
    # ------------------------------------------------------------------ #
    def export_shared(self) -> SharedTraceHandle:
        """Copy the telemetry buffers into shared-memory segments.

        Returns the :class:`SharedTraceHandle` to ship to workers.  The
        caller owns the segments and must call :meth:`SharedTraceHandle.unlink`
        exactly once after every worker is done (a ``finally`` around the
        pool is the right shape -- see ``repro.simulator.sweep``).
        """
        store = self.compact()
        owned: List[shared_memory.SharedMemory] = []
        segments: List[Tuple[str, str, int]] = []
        try:
            for resource, buffer in store.util.items():
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, buffer.nbytes))
                owned.append(shm)
                view = np.ndarray(buffer.shape, dtype=buffer.dtype,
                                  buffer=shm.buf)
                view[:] = buffer
                segments.append((resource.value, shm.name, int(buffer.size)))
        except Exception:
            for shm in owned:
                shm.close()
                shm.unlink()
            raise
        return SharedTraceHandle(store._meta_state(), segments,
                                 store.util_dtype.str, owned=owned)

    def close_shared(self) -> None:
        """Release this process's mapping of attached segments (workers)."""
        for shm in self._shared_segments:
            shm.close()
        self._shared_segments = []

    def _meta_state(self) -> Dict[str, object]:
        """Everything except the telemetry buffers, as a picklable dict."""
        return {
            "vm_ids": self.vm_ids, "subscription_ids": self.subscription_ids,
            "server_ids": self.server_ids, "configs": self.configs,
            "config_index": self.config_index, "cluster_ids": self.cluster_ids,
            "cluster_index": self.cluster_index, "start_slot": self.start_slot,
            "end_slot": self.end_slot, "offering_code": self.offering_code,
            "subtype_code": self.subtype_code,
            "alloc_class_code": self.alloc_class_code,
            "series_start": self.series_start,
            "row_offset": self.row_offset, "row_length": self.row_length,
            "n_slots": self.n_slots, "fleet": self.fleet,
            "subscriptions": self.subscriptions,
        }

    @classmethod
    def _from_state(cls, state: Dict[str, object],
                    util: Dict[Resource, np.ndarray]) -> "TraceStore":
        return cls(util=util, contiguous=True, **state)  # type: ignore[arg-type]


class _GrowableColumn:
    """An append-only numpy column with amortized-doubling growth."""

    def __init__(self, dtype):
        self._data = np.empty(16, dtype=dtype)
        self._size = 0

    def append(self, value) -> None:
        if self._size == self._data.size:
            grown = np.empty(2 * self._data.size, dtype=self._data.dtype)
            grown[:self._size] = self._data[:self._size]
            self._data = grown
        self._data[self._size] = value
        self._size += 1

    @property
    def values(self) -> np.ndarray:
        return self._data[:self._size]


class TraceStoreBuilder:
    """Stream VM records straight into the on-disk :class:`TraceStore` layout.

    ``from_trace(...).save(...)`` needs the whole object trace (and the
    concatenated flat buffers) in RAM at once; the builder needs only the
    per-VM metadata columns (a few bytes per VM) plus the one record being
    appended -- telemetry goes to the ``util_<resource>.npy`` buffers as it
    arrives, so month-scale traces ingest under a fixed memory budget.

    Byte-identity contract: for any append chunking, ``finalize()`` produces
    exactly the files ``TraceStore.from_trace(trace).save(path)`` would --
    same ``meta.json``, same ``columns.npz``, same raw buffers -- because
    both paths share :func:`_meta_jsonable` / :func:`_write_npz` and the
    ``.npy`` writer below patches the very header ``np.save`` emits.
    ``tests/test_trace_store_builder.py`` pins this differentially.

    Usage::

        with TraceStoreBuilder(path, fleet=fleet, n_slots=n_slots,
                               subscriptions=subs) as builder:
            for vm in vm_source():        # any bounded-memory iterator
                builder.append(vm)
        store = TraceStore.open(path, mmap=True)

    The context manager finalizes on clean exit and aborts (removing the
    partial staging directory) if the body raises.  Files are staged in a
    ``<path>.building`` sibling and moved into *path* only at the end, so a
    crashed ingest never leaves a half-written store behind at *path*.

    Streaming restrictions (vs ``from_trace``): the resource set and buffer
    dtypes are fixed by the first appended VM, and with ``util_dtype=None``
    every later VM must match the first VM's telemetry dtype exactly --
    the eager path would silently promote mixed dtypes at concatenation
    time, which a streaming writer cannot reproduce after the fact.
    """

    def __init__(self, path, *, fleet: Fleet, n_slots: int,
                 subscriptions: Optional[Dict[str, Subscription]] = None,
                 util_dtype: Optional[np.dtype] = None):
        self._path = Path(path)
        self._staging = self._path.parent / (self._path.name + ".building")
        if self._staging.exists():
            shutil.rmtree(self._staging)
        self._staging.mkdir(parents=True)
        self._fleet = fleet
        self._n_slots = int(n_slots)
        self._subscriptions: Dict[str, Subscription] = \
            dict(subscriptions) if subscriptions else {}
        self._util_dtype = None if util_dtype is None else np.dtype(util_dtype)
        # Discovered from the first appended VM (from_trace reads vms[0]).
        self._resources: Optional[Tuple[Resource, ...]] = None
        self._buffer_dtypes: Dict[Resource, np.dtype] = {}
        self._files: Dict[Resource, BinaryIO] = {}
        self._header_sizes: Dict[Resource, int] = {}
        self._n_samples = 0
        self._vm_ids: List[str] = []
        self._seen_ids: set = set()
        self._subscription_ids: List[str] = []
        self._server_ids: List[Optional[str]] = []
        self._config_table: Dict[VMConfig, int] = {}
        self._configs: List[VMConfig] = []
        self._cluster_ids: List[str] = list(fleet.cluster_ids())
        self._cluster_table = {cid: i for i, cid in enumerate(self._cluster_ids)}
        self._config_index = _GrowableColumn(np.int32)
        self._cluster_index = _GrowableColumn(np.int32)
        self._start_slot = _GrowableColumn(np.int64)
        self._end_slot = _GrowableColumn(np.int64)
        self._offering_code = _GrowableColumn(np.int8)
        self._subtype_code = _GrowableColumn(np.int8)
        self._alloc_class_code = _GrowableColumn(np.int8)
        self._series_start = _GrowableColumn(np.int64)
        self._row_length = _GrowableColumn(np.int64)
        self._offering_codes = {v: i for i, v in enumerate(_OFFERING_VALUES)}
        self._subtype_codes = {v: i for i, v in enumerate(_SUBTYPE_VALUES)}
        self._alloc_class_codes = {v: i
                                   for i, v in enumerate(_ALLOC_CLASS_VALUES)}
        self._closed = False

    @property
    def n_vms(self) -> int:
        return len(self._vm_ids)

    @property
    def n_samples(self) -> int:
        """Telemetry samples written so far (per resource)."""
        return self._n_samples

    def _open_buffers(self, vm: VMRecord) -> None:
        present = set(vm.utilization)
        self._resources = tuple(r for r in ALL_RESOURCES if r in present)
        for resource in self._resources:
            if self._util_dtype is not None:
                dtype = self._util_dtype
            else:
                dtype = np.dtype(vm.utilization[resource].values.dtype)
            self._buffer_dtypes[resource] = dtype
            handle = (self._staging / f"util_{resource.value}.npy").open("wb")
            self._files[resource] = handle
            # Placeholder header for shape (0,); patched in finalize() once
            # the sample count is known.  The header is padded to a fixed
            # 64-byte alignment, so the patched header almost always has the
            # same length (asserted there, with a rewrite fallback).
            header = _npy_header_bytes(dtype, 0)
            self._header_sizes[resource] = len(header)
            handle.write(header)

    def append(self, vm: VMRecord) -> None:
        """Append one VM's metadata row and telemetry samples.

        Mirrors ``from_trace`` validation exactly: uniform resource set
        across VMs, equal per-VM series coverage, unique VM ids.
        """
        if self._closed:
            raise RuntimeError(
                "TraceStoreBuilder is already finalized/aborted; "
                "create a new builder to write another store")
        if vm.vm_id in self._seen_ids:
            raise ValueError(f"duplicate VM id {vm.vm_id!r} in trace store")
        if self._resources is None:
            self._open_buffers(vm)
        resources = self._resources
        if set(vm.utilization) != set(resources):
            raise ValueError(
                f"VM {vm.vm_id} carries telemetry for "
                f"{sorted(r.value for r in vm.utilization)}, expected "
                f"{sorted(r.value for r in resources)}: a columnar store "
                f"needs a uniform resource set")
        self._vm_ids.append(vm.vm_id)
        self._seen_ids.add(vm.vm_id)
        self._subscription_ids.append(vm.subscription_id)
        self._server_ids.append(vm.server_id)
        config = vm.config
        index = self._config_table.get(config)
        if index is None:
            index = self._config_table[config] = len(self._configs)
            self._configs.append(config)
        self._config_index.append(index)
        cluster = self._cluster_table.get(vm.cluster_id)
        if cluster is None:
            cluster = self._cluster_table[vm.cluster_id] = len(self._cluster_ids)
            self._cluster_ids.append(vm.cluster_id)
        self._cluster_index.append(cluster)
        self._start_slot.append(vm.start_slot)
        self._end_slot.append(vm.end_slot)
        self._offering_code.append(self._offering_codes[vm.offering.value])
        self._subtype_code.append(self._subtype_codes[vm.subscription_type.value])
        self._alloc_class_code.append(
            self._alloc_class_codes[vm.allocation_class.value])
        first = None
        for resource in resources:
            series = vm.utilization[resource]
            if first is None:
                first = series
                self._series_start.append(series.start_slot)
                self._row_length.append(len(series))
            elif (series.start_slot != first.start_slot
                  or len(series) != len(first)):
                raise ValueError(
                    f"VM {vm.vm_id}: {resource.value} series covers "
                    f"[{series.start_slot}, {series.start_slot + len(series)}) "
                    f"but {resources[0].value} covers "
                    f"[{first.start_slot}, {first.start_slot + len(first)}); "
                    f"a single offsets array needs equal coverage")
            values = series.values
            dtype = self._buffer_dtypes[resource]
            if self._util_dtype is not None:
                values = values.astype(dtype, copy=False)
            elif values.dtype != dtype:
                raise ValueError(
                    f"VM {vm.vm_id}: {resource.value} series has dtype "
                    f"{values.dtype.str}, but this builder streams "
                    f"{dtype.str} (fixed by the first appended VM); pass "
                    f"util_dtype= to cast, or use TraceStore.from_trace "
                    f"for mixed-dtype sources")
            self._files[resource].write(values.tobytes())
        if first is None:
            self._series_start.append(0)
            self._row_length.append(0)
        else:
            self._n_samples += len(first)

    def append_many(self, vms: Sequence[VMRecord]) -> None:
        """Append a batch of VMs (chunking never changes the output bytes)."""
        for vm in vms:
            self.append(vm)

    def _rewrite_with_header(self, path: Path, header: bytes,
                             old_header_size: int) -> None:
        """Fallback when the final header outgrows the placeholder: stream
        the samples into a fresh file behind the new header."""
        temp = path.with_name(path.name + ".rewrite")
        with path.open("rb") as src, temp.open("wb") as dst:
            src.seek(old_header_size)
            dst.write(header)
            shutil.copyfileobj(src, dst, 1 << 20)
        os.replace(temp, path)

    def finalize(self) -> Path:
        """Patch headers, write ``meta.json``/``columns.npz``, move the
        staging directory's files into *path*, and return *path*."""
        if self._closed:
            raise RuntimeError(
                "TraceStoreBuilder is already finalized/aborted; "
                "create a new builder to write another store")
        self._closed = True
        resources = self._resources or ()
        for resource in resources:
            handle = self._files[resource]
            header = _npy_header_bytes(self._buffer_dtypes[resource],
                                       self._n_samples)
            if len(header) == self._header_sizes[resource]:
                handle.seek(0)
                handle.write(header)
                handle.close()
            else:  # pragma: no cover - needs a >10^15-sample buffer
                handle.close()
                self._rewrite_with_header(
                    self._staging / f"util_{resource.value}.npy", header,
                    self._header_sizes[resource])
        self._files = {}
        n = len(self._vm_ids)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._row_length.values, out=offsets[1:])
        if self._buffer_dtypes:
            util_dtype = next(iter(self._buffer_dtypes.values()))
        else:  # no telemetry: from_trace yields util={} -> float64 meta
            util_dtype = np.dtype(np.float64)
        meta = _meta_jsonable(
            n_vms=n, n_slots=self._n_slots, util_dtype=util_dtype,
            resources=resources, cluster_ids=self._cluster_ids,
            configs=self._configs, fleet=self._fleet,
            subscriptions=self._subscriptions)
        (self._staging / _META_FILE).write_text(json.dumps(meta, indent=2) + "\n")
        _write_npz(self._staging / _COLUMNS_FILE, {
            "vm_ids": np.asarray(self._vm_ids, dtype=np.str_),
            "subscription_ids": np.asarray(self._subscription_ids,
                                           dtype=np.str_),
            "server_ids": np.asarray(
                [sid if sid is not None else "" for sid in self._server_ids],
                dtype=np.str_),
            "has_server_id": np.asarray(
                [sid is not None for sid in self._server_ids], dtype=bool),
            "config_index": self._config_index.values,
            "cluster_index": self._cluster_index.values,
            "start_slot": self._start_slot.values,
            "end_slot": self._end_slot.values,
            "offering_code": self._offering_code.values,
            "subtype_code": self._subtype_code.values,
            "alloc_class_code": self._alloc_class_code.values,
            "series_start": self._series_start.values,
            "offsets": offsets,
        })
        self._path.mkdir(parents=True, exist_ok=True)
        for name in sorted(os.listdir(self._staging)):
            os.replace(self._staging / name, self._path / name)
        os.rmdir(self._staging)
        return self._path

    def abort(self) -> None:
        """Discard the partial store; idempotent, never touches *path*."""
        if self._closed:
            return
        self._closed = True
        for handle in self._files.values():
            handle.close()
        self._files = {}
        shutil.rmtree(self._staging, ignore_errors=True)

    def __enter__(self) -> "TraceStoreBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.abort()
        elif not self._closed:
            self.finalize()
        return False


# --------------------------------------------------------------------------- #
# JSON round-tripping of the carried objects
# --------------------------------------------------------------------------- #
def _fleet_to_jsonable(fleet: Fleet) -> Dict[str, object]:
    return {
        "clusters": [
            {
                "cluster_id": cluster.cluster_id,
                "region": cluster.region,
                "generation_counts": [[gen, count] for gen, count
                                      in cluster.generation_counts],
                "arrival_weight": cluster.arrival_weight,
            }
            for cluster in fleet.clusters
        ]
    }


def _fleet_from_jsonable(payload: Dict[str, object]) -> Fleet:
    clusters = [
        ClusterConfig(
            cluster_id=entry["cluster_id"],
            region=entry["region"],
            generation_counts=tuple(
                (gen, int(count)) for gen, count in entry["generation_counts"]),
            arrival_weight=float(entry["arrival_weight"]),
        )
        for entry in payload["clusters"]
    ]
    return Fleet(clusters=clusters)


def _subscription_to_jsonable(sub: Subscription) -> Dict[str, str]:
    return {
        "subscription_id": sub.subscription_id,
        "subscription_type": sub.subscription_type.value,
        "archetype": sub.archetype,
        "offering": sub.offering.value,
    }


def _subscription_from_jsonable(payload: Dict[str, str]) -> Subscription:
    return Subscription(
        subscription_id=payload["subscription_id"],
        subscription_type=SubscriptionType(payload["subscription_type"]),
        archetype=payload["archetype"],
        offering=Offering(payload["offering"]),
    )
