"""Utilization time series at 5-minute granularity.

The paper's telemetry records, for each VM and resource, the *maximum*
utilization observed in every 5-minute interval.  :class:`UtilizationSeries`
wraps such a series together with the helpers the characterization and
scheduling code need: percentiles, per-time-window maxima, per-day peaks and
valleys, and utilization ranges.

All utilization values are fractions of the VM's allocated amount for the
resource, in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

#: Telemetry interval used by the platform (the paper's long-term storage
#: default).
MINUTES_PER_SLOT = 5
SLOTS_PER_HOUR = 60 // MINUTES_PER_SLOT
SLOTS_PER_DAY = 24 * SLOTS_PER_HOUR
SLOTS_PER_WEEK = 7 * SLOTS_PER_DAY


def slots_for_hours(hours: float) -> int:
    """Number of 5-minute slots in *hours* (rounded to nearest slot)."""
    return int(round(hours * SLOTS_PER_HOUR))


def slots_for_days(days: float) -> int:
    """Number of 5-minute slots in *days*."""
    return int(round(days * SLOTS_PER_DAY))


def slot_to_hour_of_day(slot: int) -> float:
    """Hour-of-day (0-24) corresponding to the start of an absolute slot."""
    return (slot % SLOTS_PER_DAY) / SLOTS_PER_HOUR


def slot_to_day(slot: int) -> int:
    """Day index (0-based) of an absolute slot."""
    return slot // SLOTS_PER_DAY


@dataclass(frozen=True)
class TimeWindowConfig:
    """A division of the day into equal-length windows.

    The paper evaluates window lengths from 1 hour (24 windows/day) to
    24 hours (1 window/day); Coach's default is six 4-hour windows.
    """

    window_hours: int

    def __post_init__(self) -> None:
        if self.window_hours <= 0 or 24 % self.window_hours != 0:
            raise ValueError(
                f"window_hours must divide 24 evenly, got {self.window_hours}"
            )

    @property
    def windows_per_day(self) -> int:
        return 24 // self.window_hours

    @property
    def slots_per_window(self) -> int:
        return self.window_hours * SLOTS_PER_HOUR

    def window_of_slot(self, slot: int) -> int:
        """Window index (within the day) containing an absolute slot."""
        return (slot % SLOTS_PER_DAY) // self.slots_per_window

    def label(self, window_index: int) -> str:
        start = window_index * self.window_hours
        return f"{start}-{start + self.window_hours}hr"

    def labels(self) -> List[str]:
        return [self.label(i) for i in range(self.windows_per_day)]


#: Coach's default configuration: six 4-hour windows (Section 3.3).
DEFAULT_WINDOWS = TimeWindowConfig(window_hours=4)

#: Window lengths swept in Figures 9-11 and 17.
SWEEP_WINDOW_HOURS: Tuple[int, ...] = (1, 2, 3, 4, 6, 12, 24)


class UtilizationSeries:
    """Per-slot maximum utilization of one resource over a VM's lifetime.

    Parameters
    ----------
    values:
        Utilization fractions in ``[0, 1]``, one per 5-minute slot.
    start_slot:
        Absolute slot (since the beginning of the trace) at which the series
        starts.  Needed so windows align to wall-clock hours of the day.
    """

    __slots__ = ("values", "start_slot")

    def __init__(self, values: Sequence[float] | np.ndarray, start_slot: int = 0):
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("utilization series must be one-dimensional")
        if arr.size == 0:
            raise ValueError("utilization series must not be empty")
        if np.any(arr < -1e-9) or np.any(arr > 1.0 + 1e-9):
            raise ValueError("utilization values must lie in [0, 1]")
        self.values = np.clip(arr, 0.0, 1.0)
        self.start_slot = int(start_slot)

    @classmethod
    def from_validated(cls, values: np.ndarray, start_slot: int) -> "UtilizationSeries":
        """Wrap an already-validated array without copying or clipping.

        The trace store's row views go through here: ``values`` is a slice of
        the shared (possibly memory-mapped) telemetry buffer, and copying or
        clipping it would defeat the zero-copy layout.  Callers guarantee the
        array is one-dimensional, non-empty, and already in ``[0, 1]`` --
        which holds for any buffer built from ``UtilizationSeries`` objects,
        since ``__init__`` enforced it on the way in.
        """
        series = cls.__new__(cls)
        series.values = values
        series.start_slot = int(start_slot)
        return series

    # ------------------------------------------------------------------ #
    # Basic statistics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def end_slot(self) -> int:
        """Absolute slot one past the last sample."""
        return self.start_slot + len(self)

    @property
    def duration_hours(self) -> float:
        return len(self) / SLOTS_PER_HOUR

    @property
    def duration_days(self) -> float:
        return len(self) / SLOTS_PER_DAY

    def mean(self) -> float:
        return float(self.values.mean())

    def maximum(self) -> float:
        return float(self.values.max())

    def minimum(self) -> float:
        return float(self.values.min())

    def percentile(self, pct: float) -> float:
        """Percentile of the per-slot maxima (e.g. ``percentile(95)``)."""
        return float(np.percentile(self.values, pct))

    def utilization_range(self, upper: float = 95.0, lower: float = 5.0) -> float:
        """The paper's utilization range: P-upper minus P-lower."""
        return self.percentile(upper) - self.percentile(lower)

    def value_at(self, absolute_slot: int) -> float:
        """Utilization at an absolute trace slot (must be within lifetime)."""
        idx = absolute_slot - self.start_slot
        if idx < 0 or idx >= len(self):
            raise IndexError(
                f"slot {absolute_slot} outside series [{self.start_slot}, {self.end_slot})"
            )
        return float(self.values[idx])

    def covers_slot(self, absolute_slot: int) -> bool:
        return self.start_slot <= absolute_slot < self.end_slot

    def slice_absolute(self, start: int, stop: int) -> np.ndarray:
        """Values for absolute slots ``[start, stop)`` clipped to the lifetime."""
        lo = max(start, self.start_slot) - self.start_slot
        hi = min(stop, self.end_slot) - self.start_slot
        if hi <= lo:
            return np.empty(0, dtype=np.float64)
        return self.values[lo:hi]

    # ------------------------------------------------------------------ #
    # Time-window statistics
    # ------------------------------------------------------------------ #
    def _window_groups(self, config: TimeWindowConfig) -> Iterable[Tuple[int, int, np.ndarray]]:
        """Yield ``(day, window_index, samples)`` for every window overlapping
        the lifetime that has at least one sample."""
        slots_per_window = config.slots_per_window
        first_window_start = (self.start_slot // slots_per_window) * slots_per_window
        for window_start in range(first_window_start, self.end_slot, slots_per_window):
            samples = self.slice_absolute(window_start, window_start + slots_per_window)
            if samples.size == 0:
                continue
            yield slot_to_day(window_start), config.window_of_slot(window_start), samples

    def window_max_per_day(self, config: TimeWindowConfig) -> np.ndarray:
        """Maximum utilization per (day, window).

        Returns an array of shape ``(n_days, windows_per_day)`` covering the
        days the VM overlaps, with ``nan`` for windows without samples.
        """
        first_day = slot_to_day(self.start_slot)
        last_day = slot_to_day(self.end_slot - 1)
        n_days = last_day - first_day + 1
        out = np.full((n_days, config.windows_per_day), np.nan)
        for day, window, samples in self._window_groups(config):
            out[day - first_day, window] = samples.max()
        return out

    def window_percentile_per_day(self, config: TimeWindowConfig, pct: float) -> np.ndarray:
        """Per-(day, window) percentile of per-slot maxima (shape as above)."""
        first_day = slot_to_day(self.start_slot)
        last_day = slot_to_day(self.end_slot - 1)
        n_days = last_day - first_day + 1
        out = np.full((n_days, config.windows_per_day), np.nan)
        for day, window, samples in self._window_groups(config):
            out[day - first_day, window] = np.percentile(samples, pct)
        return out

    def lifetime_window_max(self, config: TimeWindowConfig) -> np.ndarray:
        """Maximum utilization per window-of-day across the whole lifetime.

        This is the "lifetime time window max" of Figure 7: for each of the
        day's windows, the largest utilization the VM ever reached in that
        window on any day.  Windows never observed are ``nan``.
        """
        per_day = self.window_max_per_day(config)
        # Windows the VM never observed are all-NaN columns and are meant to
        # stay NaN.  ``np.nanmax`` computes exactly that but emits a
        # RuntimeWarning per all-NaN slice (fatal under the suite's
        # ``filterwarnings = error``), so reduce through a -inf sentinel:
        # identical values, no warning machinery.
        missing = np.isnan(per_day)
        result = np.where(missing, -np.inf, per_day).max(axis=0)
        result[missing.all(axis=0)] = np.nan
        return result

    def lifetime_window_percentile(self, config: TimeWindowConfig, pct: float) -> np.ndarray:
        """Percentile of per-slot maxima per window-of-day over the lifetime."""
        out = np.full(config.windows_per_day, np.nan)
        buckets: List[List[np.ndarray]] = [[] for _ in range(config.windows_per_day)]
        for _day, window, samples in self._window_groups(config):
            buckets[window].append(samples)
        for window, chunks in enumerate(buckets):
            if chunks:
                out[window] = np.percentile(np.concatenate(chunks), pct)
        return out

    # ------------------------------------------------------------------ #
    # Peaks and valleys (Section 2.3)
    # ------------------------------------------------------------------ #
    def daily_peaks_and_valleys(
        self, config: TimeWindowConfig, threshold: float = 0.05
    ) -> List[Tuple[int, List[int], List[int]]]:
        """Identify peak and valley windows for each day of the lifetime.

        Following the paper: a VM has a peak (valley) on a day if the spread
        between window maxima that day is at least *threshold* (5%); every
        window whose maximum equals the day's maximum (minimum) is a peak
        (valley).  Maxima are compared after rounding to 5% buckets, matching
        the paper's bucketing.

        Returns a list of ``(day_index, peak_windows, valley_windows)``;
        days without a peak/valley report empty lists.
        """
        per_day = self.window_max_per_day(config)
        first_day = slot_to_day(self.start_slot)
        results: List[Tuple[int, List[int], List[int]]] = []
        for offset in range(per_day.shape[0]):
            row = per_day[offset]
            valid = ~np.isnan(row)
            if valid.sum() == 0:
                results.append((first_day + offset, [], []))
                continue
            bucketed = np.round(row[valid] / threshold) * threshold
            spread = bucketed.max() - bucketed.min()
            if spread < threshold - 1e-12:
                results.append((first_day + offset, [], []))
                continue
            indices = np.flatnonzero(valid)
            peaks = [int(i) for i in indices[np.isclose(
                np.round(row[indices] / threshold) * threshold, bucketed.max())]]
            valleys = [int(i) for i in indices[np.isclose(
                np.round(row[indices] / threshold) * threshold, bucketed.min())]]
            results.append((first_day + offset, peaks, valleys))
        return results

    def peak_consistency(self, config: TimeWindowConfig) -> np.ndarray:
        """Absolute day-over-day differences in per-window maxima.

        Used by Figure 9: for every window-of-day and every pair of
        consecutive days where both have samples, the absolute difference in
        the window's maximum utilization.  Returns a flat array (possibly
        empty for one-day VMs).
        """
        per_day = self.window_max_per_day(config)
        if per_day.shape[0] < 2:
            return np.empty(0)
        diffs = np.abs(np.diff(per_day, axis=0))
        return diffs[~np.isnan(diffs)]

    # ------------------------------------------------------------------ #
    # Transformation helpers
    # ------------------------------------------------------------------ #
    def to_absolute(self, allocated: float) -> np.ndarray:
        """Convert fractional utilization to absolute units (e.g. GB)."""
        return self.values * float(allocated)

    def downsample_max(self, factor: int) -> "UtilizationSeries":
        """Aggregate *factor* consecutive slots into their maximum.

        Groups are aligned to absolute slot boundaries (multiples of
        *factor*), so a series starting mid-group contributes its samples to
        the group that actually contains them instead of shifting every
        window by ``start_slot % factor`` slots.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        n = len(self)
        offset = self.start_slot % factor
        n_groups = (offset + n + factor - 1) // factor
        padded = np.full(n_groups * factor, -np.inf)
        padded[offset:offset + n] = self.values
        grouped = padded.reshape(n_groups, factor).max(axis=1)
        return UtilizationSeries(np.clip(grouped, 0.0, 1.0), self.start_slot // factor)

    def __repr__(self) -> str:
        return (
            f"UtilizationSeries(n={len(self)}, start_slot={self.start_slot}, "
            f"mean={self.mean():.3f}, max={self.maximum():.3f})"
        )
