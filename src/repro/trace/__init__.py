"""Trace substrate: VM records, hardware, temporal patterns, and generation."""

from repro.trace.generator import (
    TraceGenerator,
    TraceGeneratorConfig,
    generate_trace,
    generate_trace_to_store,
    small_trace,
)
from repro.trace.hardware import ClusterConfig, Fleet, HARDWARE_GENERATIONS, ServerConfig, default_clusters
from repro.trace.patterns import ARCHETYPES, PatternParameters, SubscriptionProfile
from repro.trace.timeseries import (
    DEFAULT_WINDOWS,
    MINUTES_PER_SLOT,
    SLOTS_PER_DAY,
    SLOTS_PER_HOUR,
    SWEEP_WINDOW_HOURS,
    TimeWindowConfig,
    UtilizationSeries,
    slots_for_days,
    slots_for_hours,
)
from repro.trace.store import SharedTraceHandle, TraceStore, TraceStoreBuilder
from repro.trace.trace import Trace, merge_traces
from repro.trace.vm import (
    TYPICAL_VM_CONFIG,
    VM_CATALOG,
    Offering,
    Subscription,
    SubscriptionType,
    VMConfig,
    VMRecord,
)

__all__ = [
    "ARCHETYPES",
    "ClusterConfig",
    "DEFAULT_WINDOWS",
    "Fleet",
    "HARDWARE_GENERATIONS",
    "MINUTES_PER_SLOT",
    "Offering",
    "PatternParameters",
    "SLOTS_PER_DAY",
    "SLOTS_PER_HOUR",
    "SWEEP_WINDOW_HOURS",
    "ServerConfig",
    "SharedTraceHandle",
    "Subscription",
    "SubscriptionProfile",
    "SubscriptionType",
    "TYPICAL_VM_CONFIG",
    "TimeWindowConfig",
    "Trace",
    "TraceGenerator",
    "TraceStore",
    "TraceStoreBuilder",
    "TraceGeneratorConfig",
    "UtilizationSeries",
    "VMConfig",
    "VMRecord",
    "VM_CATALOG",
    "default_clusters",
    "generate_trace",
    "generate_trace_to_store",
    "merge_traces",
    "slots_for_days",
    "slots_for_hours",
    "small_trace",
]
