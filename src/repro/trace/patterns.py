"""Temporal utilization pattern synthesis.

The characterization (Section 2.3) shows that VM utilization exhibits
recurring daily peaks and valleys: some VMs peak at noon, others at night,
many are flat, and a minority are unpredictable.  Subscriptions behave
consistently, which is what makes history-based prediction work (Figure 12).

This module generates per-slot utilization series with those properties.
Each *pattern archetype* describes how a VM's utilization moves over the day
and week; a :class:`PatternParameters` instance pins the archetype's free
parameters (base level, peak height, peak window, noise) so that VMs from
the same subscription draw near-identical parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.core.resources import Resource
from repro.trace.timeseries import SLOTS_PER_DAY, SLOTS_PER_HOUR

#: Names of the supported archetypes.
ARCHETYPES = (
    "diurnal",        # busy during working hours, quiet at night
    "nocturnal",      # batch work at night (complementary to diurnal)
    "evening-peak",   # interactive/consumer traffic peaking in the evening
    "constant",       # flat utilization
    "weekly-batch",   # busy on weekdays, idle on weekends
    "bursty",         # unpredictable spikes
)


@dataclass(frozen=True)
class PatternParameters:
    """Free parameters of a temporal pattern for one resource of one VM."""

    archetype: str
    #: Baseline utilization fraction outside the peak.
    base: float
    #: Peak utilization fraction reached inside the peak window.
    peak: float
    #: Hour of day at which the daily peak is centred.
    peak_hour: float
    #: Width of the daily peak in hours.
    peak_width_hours: float
    #: Multiplier applied on weekends (captures weekday/weekend asymmetry).
    weekend_factor: float
    #: Standard deviation of multiplicative noise.
    noise: float
    #: Probability per slot of an unpredictable burst (bursty archetype).
    burst_probability: float = 0.0
    #: Height of unpredictable bursts.
    burst_height: float = 0.0

    def clamp(self) -> "PatternParameters":
        """Return a copy with all fields clipped to sane ranges."""
        return replace(
            self,
            base=float(np.clip(self.base, 0.01, 0.98)),
            peak=float(np.clip(self.peak, 0.02, 1.0)),
            peak_hour=float(self.peak_hour % 24.0),
            peak_width_hours=float(np.clip(self.peak_width_hours, 0.5, 12.0)),
            weekend_factor=float(np.clip(self.weekend_factor, 0.05, 1.5)),
            noise=float(np.clip(self.noise, 0.0, 0.3)),
            burst_probability=float(np.clip(self.burst_probability, 0.0, 0.2)),
            burst_height=float(np.clip(self.burst_height, 0.0, 1.0)),
        )


def archetype_defaults(archetype: str) -> PatternParameters:
    """Typical parameters for each archetype (before per-subscription jitter)."""
    table: Dict[str, PatternParameters] = {
        "diurnal": PatternParameters(
            "diurnal", base=0.12, peak=0.55, peak_hour=13.0, peak_width_hours=6.0,
            weekend_factor=0.5, noise=0.05),
        "nocturnal": PatternParameters(
            "nocturnal", base=0.10, peak=0.60, peak_hour=2.0, peak_width_hours=5.0,
            weekend_factor=0.9, noise=0.05),
        "evening-peak": PatternParameters(
            "evening-peak", base=0.15, peak=0.50, peak_hour=20.0, peak_width_hours=4.0,
            weekend_factor=1.2, noise=0.05),
        "constant": PatternParameters(
            "constant", base=0.30, peak=0.32, peak_hour=12.0, peak_width_hours=24.0,
            weekend_factor=1.0, noise=0.03),
        "weekly-batch": PatternParameters(
            "weekly-batch", base=0.20, peak=0.55, peak_hour=10.0, peak_width_hours=8.0,
            weekend_factor=0.15, noise=0.06),
        "bursty": PatternParameters(
            "bursty", base=0.15, peak=0.30, peak_hour=12.0, peak_width_hours=6.0,
            weekend_factor=1.0, noise=0.10, burst_probability=0.02, burst_height=0.6),
    }
    try:
        return table[archetype]
    except KeyError as exc:
        raise ValueError(f"unknown archetype {archetype!r}") from exc


def jitter_parameters(
    params: PatternParameters, rng: np.random.Generator, scale: float = 1.0
) -> PatternParameters:
    """Perturb pattern parameters, e.g. to derive a subscription's profile
    from the archetype default or a VM's profile from its subscription."""
    return replace(
        params,
        base=params.base + rng.normal(0.0, 0.04 * scale),
        peak=params.peak + rng.normal(0.0, 0.07 * scale),
        peak_hour=params.peak_hour + rng.normal(0.0, 1.0 * scale),
        peak_width_hours=params.peak_width_hours * float(np.exp(rng.normal(0.0, 0.1 * scale))),
        weekend_factor=params.weekend_factor + rng.normal(0.0, 0.08 * scale),
        noise=params.noise * float(np.exp(rng.normal(0.0, 0.2 * scale))),
    ).clamp()


def memory_parameters_from_cpu(
    cpu_params: PatternParameters, rng: np.random.Generator
) -> PatternParameters:
    """Derive a memory pattern correlated with the CPU pattern.

    Section 2.3: memory utilization is more diverse in its mean but much less
    variable over time (P95-P5 range usually below 30%, and below 10% for half
    of the VMs); VMs with high CPU utilization tend to also use more memory.
    """
    base = 0.5 + 0.45 * cpu_params.base + rng.normal(0.0, 0.12)
    # Memory swings are a small fraction of the CPU swing.
    swing = max(0.0, (cpu_params.peak - cpu_params.base)) * float(rng.uniform(0.1, 0.45))
    return replace(
        cpu_params,
        base=base,
        peak=base + swing,
        noise=min(0.04, cpu_params.noise * 0.5),
        burst_probability=cpu_params.burst_probability * 0.3,
        burst_height=cpu_params.burst_height * 0.3,
    ).clamp()


def scaled_parameters(
    params: PatternParameters, rng: np.random.Generator, mean_scale: float, swing_scale: float
) -> PatternParameters:
    """Derive a pattern for a secondary resource (network, SSD) from CPU."""
    base = params.base * mean_scale + rng.normal(0.0, 0.03)
    swing = max(0.0, params.peak - params.base) * swing_scale
    return replace(params, base=base, peak=base + swing, noise=params.noise).clamp()


def _daily_shape(params: PatternParameters, n_slots: int, start_slot: int) -> np.ndarray:
    """Deterministic (noise-free) utilization for each slot of the lifetime."""
    slots = np.arange(start_slot, start_slot + n_slots)
    hour_of_day = (slots % SLOTS_PER_DAY) / SLOTS_PER_HOUR
    day = slots // SLOTS_PER_DAY
    weekday = day % 7
    is_weekend = weekday >= 5

    # Gaussian bump centred at peak_hour with wrap-around at midnight.
    delta = np.minimum(np.abs(hour_of_day - params.peak_hour),
                       24.0 - np.abs(hour_of_day - params.peak_hour))
    sigma = params.peak_width_hours / 2.355  # FWHM -> sigma
    bump = np.exp(-0.5 * (delta / max(sigma, 1e-6)) ** 2)
    shape = params.base + (params.peak - params.base) * bump

    weekend_scale = np.where(is_weekend, params.weekend_factor, 1.0)
    return shape * weekend_scale


def generate_series(
    params: PatternParameters,
    n_slots: int,
    start_slot: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a per-slot maximum-utilization series for one resource.

    The output is the *maximum* utilization within each 5-minute slot, so the
    noise model is multiplicative with a slight upward bias (maxima of noisy
    processes sit above their mean).
    """
    if n_slots <= 0:
        raise ValueError("n_slots must be positive")
    shape = _daily_shape(params, n_slots, start_slot)

    noise = rng.normal(0.0, params.noise, size=n_slots)
    series = shape * (1.0 + np.abs(noise) * 0.5 + noise * 0.5)

    if params.burst_probability > 0.0:
        bursts = rng.random(n_slots) < params.burst_probability
        series = np.where(bursts, np.maximum(series, params.burst_height *
                                             (0.7 + 0.3 * rng.random(n_slots))), series)

    return np.clip(series, 0.005, 1.0)


@dataclass(frozen=True)
class SurgeConfig:
    """Correlated fleet-wide demand surges layered over every VM's series.

    The overlay is a *deterministic* function of the slot index (no RNG
    draws), so enabling it never shifts the generator's random stream: two
    configs differing only in ``surge`` sample identical VM populations,
    lifetimes, and noise, and differ exactly by the multiplicative overlay.
    The diurnal term peaks once a day at ``peak_hour``; the weekly term
    scales whole days, peaking on ``peak_weekday``.  Amplitudes are
    fractions of the base level (0.3 -> +30% at the peak).
    """

    #: Amplitude of the shared daily surge (fraction of baseline).
    daily_amplitude: float = 0.0
    #: Hour of day at which the shared daily surge peaks.
    peak_hour: float = 14.0
    #: Width (FWHM, hours) of the shared daily surge.
    peak_width_hours: float = 5.0
    #: Amplitude of the weekly surge (fraction of baseline).
    weekly_amplitude: float = 0.0
    #: Weekday (0 = Monday) on which the weekly surge peaks.
    peak_weekday: int = 1


def surge_overlay(surge: SurgeConfig, n_slots: int, start_slot: int) -> np.ndarray:
    """Per-slot multiplicative surge factors (``>= 0``), deterministically.

    Shares the Gaussian-bump shape of :func:`_daily_shape` for the daily
    term; the weekly term is a cosine over the weekday distance to
    ``peak_weekday``.  A zero-amplitude config returns all-ones.
    """
    slots = np.arange(start_slot, start_slot + n_slots)
    hour_of_day = (slots % SLOTS_PER_DAY) / SLOTS_PER_HOUR
    weekday = (slots // SLOTS_PER_DAY) % 7

    delta = np.minimum(np.abs(hour_of_day - surge.peak_hour),
                       24.0 - np.abs(hour_of_day - surge.peak_hour))
    sigma = surge.peak_width_hours / 2.355
    daily = surge.daily_amplitude * np.exp(-0.5 * (delta / max(sigma, 1e-6)) ** 2)

    day_delta = np.minimum(np.abs(weekday - surge.peak_weekday),
                           7.0 - np.abs(weekday - surge.peak_weekday))
    weekly = surge.weekly_amplitude * 0.5 * (1.0 + np.cos(np.pi * day_delta / 3.5))

    return np.maximum(1.0 + daily + weekly, 0.0)


def generate_resource_patterns(
    cpu_params: PatternParameters, rng: np.random.Generator
) -> Dict[Resource, PatternParameters]:
    """Per-resource pattern parameters for one VM, derived from its CPU pattern."""
    return {
        Resource.CPU: cpu_params,
        Resource.MEMORY: memory_parameters_from_cpu(cpu_params, rng),
        # Network follows CPU's rhythm with a lower mean (Section 2.3 notes
        # network and storage resemble CPU in mean, memory in range).
        Resource.NETWORK: scaled_parameters(cpu_params, rng, mean_scale=0.6, swing_scale=0.5),
        Resource.SSD: scaled_parameters(cpu_params, rng, mean_scale=0.5, swing_scale=0.25),
    }


@dataclass(frozen=True)
class SubscriptionProfile:
    """The per-subscription behaviour from which its VMs are derived."""

    archetype: str
    cpu_params: PatternParameters
    #: How tightly the subscription's VMs cluster around the profile.  Small
    #: values make history-based prediction accurate (Figure 12).
    vm_jitter: float = 0.35


def make_subscription_profile(
    archetype: str, rng: np.random.Generator
) -> SubscriptionProfile:
    base = archetype_defaults(archetype)
    return SubscriptionProfile(
        archetype=archetype,
        cpu_params=jitter_parameters(base, rng, scale=1.0),
        vm_jitter=float(rng.uniform(0.2, 0.5)),
    )


def vm_cpu_parameters(
    profile: SubscriptionProfile, rng: np.random.Generator,
    config_scale: Optional[float] = None,
) -> PatternParameters:
    """Pattern parameters for one VM of a subscription.

    ``config_scale`` optionally shifts the mean utilization for particular VM
    configurations (e.g. very large VMs tend to be better utilized).
    """
    params = jitter_parameters(profile.cpu_params, rng, scale=profile.vm_jitter)
    if config_scale is not None:
        params = replace(
            params,
            base=params.base * config_scale,
            peak=params.peak * config_scale,
        ).clamp()
    return params
