"""Server hardware and cluster configurations.

The paper's traces cover thousands of servers from four hardware generations
(Intel and AMD) across ten clusters in seven regions.  Different clusters
have different core/memory/network ratios, which is why the bottleneck
resource differs per cluster (Figure 5: C1 is CPU-bound, C4 memory-bound,
C2 mixed).  This module provides the server-generation catalogue and the
ten-cluster layout used by the synthetic trace generator and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.resources import Resource, ResourceVector


@dataclass(frozen=True)
class ServerConfig:
    """Capacity of one physical server."""

    generation: str
    cores: int
    memory_gb: int
    network_gbps: float
    ssd_gb: int

    def capacity_vector(self) -> ResourceVector:
        return ResourceVector.of(
            cpu=float(self.cores),
            memory=float(self.memory_gb),
            network=float(self.network_gbps),
            ssd=float(self.ssd_gb),
        )

    @property
    def gb_per_core(self) -> float:
        return self.memory_gb / self.cores


#: Four hardware generations, roughly mirroring the mix of general-purpose
#: Azure fleets: newer generations have more cores and memory.  The ratios
#: differ so that stranding and bottleneck behaviour vary across clusters.
HARDWARE_GENERATIONS: Dict[str, ServerConfig] = {
    # Balanced general-purpose (about 4 GB/core, the typical VM ratio).
    "gen4-intel": ServerConfig("gen4-intel", cores=40, memory_gb=160, network_gbps=25.0, ssd_gb=3000),
    # Memory-rich generation: CPU becomes the bottleneck, memory strands.
    "gen5-intel": ServerConfig("gen5-intel", cores=48, memory_gb=384, network_gbps=40.0, ssd_gb=4000),
    # Core-rich AMD generation: memory becomes the bottleneck.
    "gen6-amd": ServerConfig("gen6-amd", cores=96, memory_gb=256, network_gbps=40.0, ssd_gb=6000),
    # Large balanced generation with constrained network.
    "gen7-amd": ServerConfig("gen7-amd", cores=80, memory_gb=320, network_gbps=20.0, ssd_gb=8000),
}


@dataclass(frozen=True)
class ClusterConfig:
    """A cluster: a homogeneous-ish pool of servers in one region."""

    cluster_id: str
    region: str
    generation_counts: Tuple[Tuple[str, int], ...]
    #: Relative share of trace VM arrivals targeted at this cluster.
    arrival_weight: float = 1.0

    def server_configs(self) -> List[ServerConfig]:
        """Expanded list with one entry per physical server."""
        servers: List[ServerConfig] = []
        for generation, count in self.generation_counts:
            config = HARDWARE_GENERATIONS[generation]
            servers.extend([config] * count)
        return servers

    @property
    def server_count(self) -> int:
        return sum(count for _gen, count in self.generation_counts)

    def total_capacity(self) -> ResourceVector:
        total = ResourceVector.zeros()
        for server in self.server_configs():
            total = total + server.capacity_vector()
        return total

    def dominant_gb_per_core(self) -> float:
        caps = self.total_capacity()
        return caps[Resource.MEMORY] / max(caps[Resource.CPU], 1e-9)


def default_clusters(servers_per_cluster: int = 20) -> List[ClusterConfig]:
    """The ten clusters (C1-C10) used throughout the characterization.

    The hardware mix is chosen so that the Figure 5 structure emerges:
    C1 is almost exclusively CPU-bottlenecked (memory-rich servers), C4 is
    memory-bottlenecked (core-rich servers), C2 is split between CPU, memory
    and network, and the rest fall in between.
    """
    n = servers_per_cluster

    def mix(*pairs: Tuple[str, float]) -> Tuple[Tuple[str, int], ...]:
        counts = []
        assigned = 0
        for generation, share in pairs[:-1]:
            count = max(1, int(round(share * n)))
            counts.append((generation, count))
            assigned += count
        last_gen, _ = pairs[-1]
        counts.append((last_gen, max(1, n - assigned)))
        return tuple(counts)

    regions = ["us-east", "us-west", "eu-west", "eu-north", "asia-east",
               "asia-south", "us-central"]
    clusters = [
        # C1: memory-rich -> CPU is exhausted first (CPU bottleneck).
        ClusterConfig("C1", regions[0], mix(("gen5-intel", 1.0)), arrival_weight=1.3),
        # C2: heterogeneous mix -> bottleneck split across resources.
        ClusterConfig("C2", regions[1], mix(("gen4-intel", 0.4), ("gen6-amd", 0.3),
                                            ("gen7-amd", 0.3)), arrival_weight=1.1),
        # C3: mostly balanced.
        ClusterConfig("C3", regions[2], mix(("gen4-intel", 0.7), ("gen5-intel", 0.3)),
                      arrival_weight=1.0),
        # C4: core-rich AMD -> memory bottleneck.
        ClusterConfig("C4", regions[3], mix(("gen6-amd", 1.0)), arrival_weight=1.2),
        # C5: balanced with some memory-rich.
        ClusterConfig("C5", regions[4], mix(("gen4-intel", 0.5), ("gen5-intel", 0.5)),
                      arrival_weight=0.9),
        # C6: network-constrained generation.
        ClusterConfig("C6", regions[5], mix(("gen7-amd", 0.8), ("gen4-intel", 0.2)),
                      arrival_weight=0.8),
        # C7: core-rich with some balance.
        ClusterConfig("C7", regions[6], mix(("gen6-amd", 0.6), ("gen4-intel", 0.4)),
                      arrival_weight=1.0),
        # C8: balanced.
        ClusterConfig("C8", regions[0], mix(("gen4-intel", 1.0)), arrival_weight=1.0),
        # C9: memory-rich and network-constrained.
        ClusterConfig("C9", regions[1], mix(("gen5-intel", 0.5), ("gen7-amd", 0.5)),
                      arrival_weight=0.9),
        # C10: broad mix.
        ClusterConfig("C10", regions[2], mix(("gen4-intel", 0.3), ("gen5-intel", 0.2),
                                             ("gen6-amd", 0.3), ("gen7-amd", 0.2)),
                      arrival_weight=1.1),
    ]
    return clusters


@dataclass
class Fleet:
    """All clusters participating in a trace or simulation."""

    clusters: List[ClusterConfig] = field(default_factory=default_clusters)

    def cluster_ids(self) -> List[str]:
        return [c.cluster_id for c in self.clusters]

    def get(self, cluster_id: str) -> ClusterConfig:
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise KeyError(f"unknown cluster {cluster_id!r}")

    def total_servers(self) -> int:
        return sum(c.server_count for c in self.clusters)

    def arrival_weights(self) -> List[float]:
        return [c.arrival_weight for c in self.clusters]
