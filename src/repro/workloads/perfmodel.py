"""Analytic performance model for workloads on oversubscribed memory.

The model converts a VM memory configuration -- PA portion, VA portion, how
much of the VA portion is physically backed -- plus the workload's working-set
and access characteristics into a slowdown of its key metric.  It reproduces
the qualitative behaviour the paper measures:

* With zNUMA funnelling, a VM whose PA portion covers its working set sees
  only a small overhead from being oversubscribed (Figure 15a bottom-right,
  Figure 18 CVM bars).
* Under-allocating the PA portion pushes part of the working set onto
  VA-backed memory; tail-latency workloads degrade sharply because even a
  small fraction of slow accesses dominates the P99 (CVM-Floor bars).
* Memory that is neither PA- nor VA-backed pages against the backing store,
  which is catastrophic (Figure 15a red region, Figure 21 ``None`` policy).
* Allocation churn (LLM fine-tuning) stresses on-demand VA allocation even
  when the working set fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import KeyMetric, WorkloadProfile, WorkloadResult

#: Relative cost of an access served from VA-backed memory (first-touch
#: faults, zNUMA remote-node penalty) versus PA-backed memory.
MINOR_ACCESS_AMPLIFICATION = 1.2
#: Relative cost of an access that must page against the backing store.
MAJOR_FAULT_AMPLIFICATION = 40.0
#: Multiplier applied to allocation-churn pressure on the VA portion.
CHURN_AMPLIFICATION = 3.0
#: Baseline overhead of running with an oversubscribed (VA) portion at all:
#: access tracking for trimming plus occasional zNUMA spill.
OVERSUBSCRIPTION_BASE_OVERHEAD = 0.1
#: A tail-latency metric saturates once this fraction of accesses is slow.
TAIL_SATURATION_FRACTION = 0.05


@dataclass(frozen=True)
class MemoryConfiguration:
    """The memory layout a workload runs on."""

    name: str
    pa_gb: float
    va_gb: float
    #: Fraction of the VA portion backed by physical memory.
    va_backing_fraction: float = 1.0

    @property
    def total_gb(self) -> float:
        return self.pa_gb + self.va_gb

    @property
    def va_backed_gb(self) -> float:
        return self.va_gb * self.va_backing_fraction

    def validate(self) -> None:
        if self.pa_gb < 0 or self.va_gb < 0:
            raise ValueError("memory portions cannot be negative")
        if not 0.0 <= self.va_backing_fraction <= 1.0:
            raise ValueError("backing fraction must be in [0, 1]")
        if self.total_gb <= 0:
            raise ValueError("the VM must have some memory")


def va_access_fraction(profile: WorkloadProfile, config: MemoryConfiguration) -> float:
    """Fraction of memory accesses that land on the VA (oversubscribed) portion.

    The guest's NUMA policy keeps hot pages on the PA portion, so spill first
    consumes the cold part of the working set; accesses only shift to VA in
    proportion to how cold the spilled pages are.
    """
    working_set = min(profile.working_set_gb, config.total_gb)
    if working_set <= 0:
        return 0.0
    spill = max(0.0, working_set - config.pa_gb)
    if spill <= 0:
        return 0.0
    hot_set = profile.hot_set_fraction * working_set
    cold_set = max(working_set - hot_set, 1e-9)
    cold_access = 1.0 - profile.hot_fraction
    if spill <= cold_set:
        return cold_access * spill / cold_set
    # Spill reaches into the hot set.
    hot_spill = spill - cold_set
    return cold_access + profile.hot_fraction * min(1.0, hot_spill / max(hot_set, 1e-9))


def _metric_transform(profile: WorkloadProfile, slow_fraction: float) -> float:
    """How a given fraction of slow accesses shows up in the key metric.

    Tail latency saturates quickly: once a few percent of requests touch slow
    memory, the P99 *is* the slow path.  Run time and throughput degrade in
    proportion to the slow fraction.
    """
    if profile.key_metric is KeyMetric.TAIL_LATENCY:
        return min(1.0, slow_fraction / TAIL_SATURATION_FRACTION)
    return slow_fraction


def slowdown(profile: WorkloadProfile, config: MemoryConfiguration,
             extra_fault_gb: float = 0.0) -> float:
    """Normalised slowdown of the workload's key metric (1.0 = baseline).

    ``extra_fault_gb`` lets the Figure 21 runner add paging activity caused by
    pool exhaustion on the server (beyond what the static layout implies).
    """
    config.validate()
    working_set = min(profile.working_set_gb, config.total_gb)
    spill = max(0.0, working_set - config.pa_gb)
    access_va = va_access_fraction(profile, config)

    backed_coverage = 1.0 if spill <= 0 else min(1.0, config.va_backed_gb / spill)
    minor_fraction = access_va * backed_coverage
    major_fraction = access_va * (1.0 - backed_coverage)

    # Memory the guest needs but the VM simply does not have (PA+VA < working
    # set) thrashes continuously inside the guest.
    guest_shortfall = max(0.0, profile.working_set_gb - config.total_gb)
    if profile.working_set_gb > 0:
        major_fraction += guest_shortfall / profile.working_set_gb

    # Additional paging injected by the server (pool exhaustion).
    if extra_fault_gb > 0 and profile.working_set_gb > 0:
        major_fraction += min(1.0, extra_fault_gb / profile.working_set_gb)

    minor_term = MINOR_ACCESS_AMPLIFICATION * _metric_transform(profile, minor_fraction)
    major_term = MAJOR_FAULT_AMPLIFICATION * major_fraction

    has_va = config.va_gb > 0
    base_overhead = (OVERSUBSCRIPTION_BASE_OVERHEAD
                     * min(1.0, config.va_gb / config.total_gb) if has_va else 0.0)
    churn_term = (CHURN_AMPLIFICATION * profile.allocation_churn
                  * min(1.0, config.va_gb / config.total_gb) if has_va else 0.0)

    return 1.0 + profile.memory_sensitivity * (
        minor_term + major_term + base_overhead + churn_term)


def page_fault_rate(profile: WorkloadProfile, config: MemoryConfiguration) -> float:
    """Fraction of accesses that fault to the backing store."""
    working_set = min(profile.working_set_gb, config.total_gb)
    spill = max(0.0, working_set - config.pa_gb)
    access_va = va_access_fraction(profile, config)
    backed_coverage = 1.0 if spill <= 0 else min(1.0, config.va_backed_gb / spill)
    faults = access_va * (1.0 - backed_coverage)
    shortfall = max(0.0, profile.working_set_gb - config.total_gb)
    if profile.working_set_gb > 0:
        faults += shortfall / profile.working_set_gb
    return min(1.0, faults)


def run_configuration(profile: WorkloadProfile,
                      config: MemoryConfiguration,
                      extra_fault_gb: float = 0.0) -> WorkloadResult:
    """Evaluate one (workload, memory configuration) pair."""
    factor = slowdown(profile, config, extra_fault_gb)
    if profile.lower_is_better:
        metric = profile.baseline_value * factor
    else:
        metric = profile.baseline_value / factor
    return WorkloadResult(
        workload=profile.name,
        configuration=config.name,
        metric_value=metric,
        slowdown=factor,
        page_fault_rate=page_fault_rate(profile, config),
        va_access_fraction=va_access_fraction(profile, config),
    )


def total_allocated_memory(config: MemoryConfiguration) -> float:
    """Physical memory consumed by the configuration (Figure 15b)."""
    return config.pa_gb + config.va_backed_gb
