"""Workload runners for the CoachVM performance experiments.

* :func:`figure18_configurations` / :func:`run_figure18` -- the four VM
  configurations of Section 4.2 (GPVM, CVM, CVM-Floor, OVM) applied to every
  Table-2 workload.
* :func:`pa_va_sweep` -- the Figure 15 PA/VA trade-off heat map.
* :func:`run_mitigation_scenario` -- the Figure 21 single-server contention
  scenario: Cache and KV-Store colocated with a Video-Conf CVM that uses more
  memory than predicted, under each mitigation policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.coachvm import CoachVM, MemorySplit
from repro.core.mitigation import MITIGATION_POLICIES, MitigationPolicy, mitigation_policy
from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.server_manager import OversubscriptionAgent
from repro.core.windows import ResourcePlan, VMResourcePlan
from repro.prediction.buckets import bucketize, round_memory_up
from repro.simulator.memory import ServerMemoryModel
from repro.simulator.metrics import MitigationTimeline
from repro.trace.timeseries import DEFAULT_WINDOWS, UtilizationSeries
from repro.trace.vm import VM_CATALOG, VMRecord
from repro.workloads.base import WorkloadProfile, WorkloadResult
from repro.workloads.perfmodel import (
    MemoryConfiguration,
    run_configuration,
    slowdown,
    total_allocated_memory,
)
from repro.workloads.suite import WORKLOADS, all_workloads

#: Fraction of the VA portion backed with physical memory in the single-VM
#: experiments (the paper's Figure 15b backs 70%).
DEFAULT_VA_BACKING = 0.7


# --------------------------------------------------------------------------- #
# Figure 18: GPVM / CVM / CVM-Floor / OVM
# --------------------------------------------------------------------------- #
def figure18_configurations(profile: WorkloadProfile,
                            vm_memory_gb: float = 32.0,
                            va_backing: float = DEFAULT_VA_BACKING) -> List[MemoryConfiguration]:
    """The four VM configurations evaluated for one workload."""
    # Coach sizes the PA portion from the predicted P95 working set, rounded
    # up to 5% buckets and the 1 GB granularity.
    predicted_fraction = bucketize(profile.working_set_gb / vm_memory_gb)
    cvm_pa = min(vm_memory_gb, round_memory_up(predicted_fraction * vm_memory_gb))
    floor_pa = max(1.0, min(cvm_pa, round_memory_up(profile.working_set_gb)) - 1.0)
    return [
        MemoryConfiguration("gpvm", pa_gb=vm_memory_gb, va_gb=0.0),
        MemoryConfiguration("cvm", pa_gb=cvm_pa, va_gb=vm_memory_gb - cvm_pa,
                            va_backing_fraction=va_backing),
        MemoryConfiguration("cvm-floor", pa_gb=floor_pa, va_gb=vm_memory_gb - floor_pa,
                            va_backing_fraction=va_backing),
        MemoryConfiguration("ovm", pa_gb=0.0, va_gb=vm_memory_gb,
                            va_backing_fraction=va_backing),
    ]


def run_figure18(vm_memory_gb: float = 32.0,
                 workloads: Optional[Sequence[WorkloadProfile]] = None) -> List[WorkloadResult]:
    """Run every workload under every VM configuration (Figure 18)."""
    results: List[WorkloadResult] = []
    for profile in (workloads or all_workloads()):
        for config in figure18_configurations(profile, vm_memory_gb):
            results.append(run_configuration(profile, config))
    return results


# --------------------------------------------------------------------------- #
# Figure 15: PA/VA trade-off
# --------------------------------------------------------------------------- #
@dataclass
class SweepPoint:
    pa_gb: float
    va_gb: float
    slowdown: float
    allocated_gb: float


def pa_va_sweep(profile: Optional[WorkloadProfile] = None,
                vm_memory_gb: float = 32.0,
                step_gb: float = 4.0,
                va_backing: float = DEFAULT_VA_BACKING) -> List[SweepPoint]:
    """Sweep PA/VA splits for a 32 GB VM (Figure 15).

    Only valid configurations (positive memory, at most the VM size) are
    returned; the default workload mirrors the paper's memory-sensitive
    application with an 18 GB working set.
    """
    if profile is None:
        profile = WorkloadProfile(
            name="memory-sensitive", description="Figure 15 subject",
            key_metric=WORKLOADS["cache"].key_metric, baseline_value=1.0,
            metric_unit="x", working_set_gb=18.0, hot_fraction=0.8,
            memory_sensitivity=0.9, allocation_churn=0.02, hot_set_fraction=0.5)
    points: List[SweepPoint] = []
    steps = int(vm_memory_gb / step_gb) + 1
    for pa_index in range(steps):
        for va_index in range(steps):
            pa = pa_index * step_gb
            va = va_index * step_gb
            total = pa + va
            if total <= 0 or total > vm_memory_gb + 1e-9:
                continue
            config = MemoryConfiguration("sweep", pa_gb=pa, va_gb=va,
                                         va_backing_fraction=va_backing)
            points.append(SweepPoint(
                pa_gb=pa, va_gb=va,
                slowdown=slowdown(profile, config),
                allocated_gb=total_allocated_memory(config)))
    return points


# --------------------------------------------------------------------------- #
# Figure 21: mitigation scenario
# --------------------------------------------------------------------------- #
def _static_coachvm(vm_id: str, memory_gb: float, pa_gb: float,
                    config_name: str = "D2_v5") -> CoachVM:
    """Build a CoachVM with a fixed PA/VA split for single-server scenarios."""
    vm_config = VM_CATALOG[config_name]
    record = VMRecord(
        vm_id=vm_id,
        subscription_id="scenario",
        config=vm_config,
        cluster_id="C1",
        start_slot=0,
        end_slot=1,
        utilization={r: UtilizationSeries([0.5], 0) for r in ALL_RESOURCES},
    )
    n_windows = DEFAULT_WINDOWS.windows_per_day
    plans = {}
    for resource in ALL_RESOURCES:
        requested = memory_gb if resource is Resource.MEMORY else record.allocated(resource)
        guaranteed = pa_gb if resource is Resource.MEMORY else requested
        plans[resource] = ResourcePlan(
            resource=resource, requested=float(requested), guaranteed=float(guaranteed),
            window_demand=np.full(n_windows, float(requested)),
            window_oversubscribed=np.full(n_windows, float(requested - guaranteed)))
    plan = VMResourcePlan(vm_id=vm_id, windows=DEFAULT_WINDOWS, plans=plans,
                          oversubscribed=pa_gb < memory_gb)
    split = MemorySplit(pa_gb=float(pa_gb), va_gb=float(memory_gb - pa_gb), va_backed_gb=0.0)
    return CoachVM(vm=record, plan=plan, memory=split)


@dataclass
class ScenarioVM:
    """One VM participating in the Figure 21 scenario."""

    vm_id: str
    workload: WorkloadProfile
    memory_gb: float
    pa_gb: float
    #: Demand in GB as a function of time in seconds.
    demand_schedule: Dict[float, float]

    def demand_at(self, time_seconds: float) -> float:
        demand = 0.0
        for start, value in sorted(self.demand_schedule.items()):
            if time_seconds >= start:
                demand = value
        return demand


def default_scenario_vms() -> List[ScenarioVM]:
    """The Cache + KV-Store + Video-Conf colocation of Section 4.4.

    Cache and KV-Store have ~4 GB working sets on 8 GB CVMs with 3 GB PA;
    Video Conf has a 5 GB working set on an 8 GB CVM with only 1 GB PA and
    consumes more memory than predicted twice (at 135 s and 255 s).
    """
    cache = ScenarioVM(
        vm_id="cache", workload=WORKLOADS["cache"].__class__(**{
            **WORKLOADS["cache"].__dict__, "working_set_gb": 4.0,
            "default_vm_memory_gb": 8.0}),
        memory_gb=8.0, pa_gb=3.0,
        demand_schedule={0.0: 2.0, 30.0: 4.2, 90.0: 3.6})
    kvstore = ScenarioVM(
        vm_id="kvstore", workload=WORKLOADS["kvstore"].__class__(**{
            **WORKLOADS["kvstore"].__dict__, "working_set_gb": 4.0,
            "default_vm_memory_gb": 8.0}),
        memory_gb=8.0, pa_gb=3.0,
        demand_schedule={0.0: 2.0, 30.0: 4.2, 90.0: 3.6})
    videoconf = ScenarioVM(
        vm_id="videoconf", workload=WORKLOADS["videoconf"].__class__(**{
            **WORKLOADS["videoconf"].__dict__, "working_set_gb": 5.0,
            "default_vm_memory_gb": 8.0}),
        memory_gb=8.0, pa_gb=1.0,
        demand_schedule={0.0: 2.0, 135.0: 5.0, 255.0: 7.5})
    return [cache, kvstore, videoconf]


def run_mitigation_scenario(policy: str | MitigationPolicy,
                            duration_seconds: float = 330.0,
                            interval_seconds: float = 15.0,
                            server_memory_gb: float = 32.0,
                            oversub_pool_gb: float = 6.0,
                            scenario_vms: Optional[List[ScenarioVM]] = None,
                            contention_spillover: float = 0.25) -> MitigationTimeline:
    """Run the Figure 21 contention scenario under one mitigation policy."""
    if isinstance(policy, str):
        policy = mitigation_policy(policy)
    vms = scenario_vms or default_scenario_vms()

    memory = ServerMemoryModel(capacity_gb=server_memory_gb, host_reserved_gb=2.0,
                               oversub_pool_gb=oversub_pool_gb)
    coach_vms: Dict[str, CoachVM] = {}
    for scenario_vm in vms:
        coach_vm = _static_coachvm(scenario_vm.vm_id, scenario_vm.memory_gb,
                                   scenario_vm.pa_gb)
        memory.add_vm(coach_vm)
        coach_vms[scenario_vm.vm_id] = coach_vm

    agent = OversubscriptionAgent(memory, policy, interval_seconds=interval_seconds)
    timeline = MitigationTimeline(policy_name=policy.name)
    for vm in vms:
        timeline.slowdown[vm.vm_id] = []

    steps = int(duration_seconds / interval_seconds)
    for step in range(steps):
        now = step * interval_seconds
        demands = {vm.vm_id: vm.demand_at(now) for vm in vms}
        report = agent.tick(now, demands, cpu_utilization=0.35)

        timeline.times_seconds.append(now)
        timeline.available_oversub_gb.append(report.oversub_available_gb)
        timeline.page_fault_gb.append(report.page_fault_gb)

        total_faults = report.page_fault_gb
        total_backed = max(1e-9, memory.oversub_used_gb)
        outcome_unbacked = {vm_id: 0.0 for vm_id in coach_vms}
        if agent.reports:
            # The last tick's per-VM unbacked demand lives in the memory model.
            outcome_unbacked = {vm_id: memory._last_unbacked.get(vm_id, 0.0)
                                for vm_id in coach_vms}

        for vm in vms:
            coach_vm = coach_vms[vm.vm_id]
            if coach_vm.vm_id not in memory.vms:
                # Migrated away: its workload continues unaffected elsewhere.
                timeline.slowdown[vm.vm_id].append(1.0)
                continue
            demand = demands[vm.vm_id]
            va = coach_vm.memory.va_gb
            backing_fraction = (coach_vm.memory.va_backed_gb / va) if va > 0 else 1.0
            config = MemoryConfiguration(
                policy.name, pa_gb=coach_vm.memory.pa_gb, va_gb=va,
                va_backing_fraction=backing_fraction)
            own_unbacked = outcome_unbacked.get(vm.vm_id, 0.0)
            spillover = (contention_spillover * total_faults
                         * coach_vm.memory.va_backed_gb / total_backed)
            profile = vm.workload
            effective = profile.__class__(**{**profile.__dict__,
                                             "working_set_gb": min(demand, profile.working_set_gb)
                                             if demand > 0 else profile.working_set_gb})
            timeline.slowdown[vm.vm_id].append(
                slowdown(effective, config, extra_fault_gb=own_unbacked + spillover))

    return timeline


def run_all_mitigation_policies(duration_seconds: float = 330.0,
                                interval_seconds: float = 15.0) -> Dict[str, MitigationTimeline]:
    """Run the Figure 21 scenario under every mitigation policy."""
    return {name: run_mitigation_scenario(name, duration_seconds, interval_seconds)
            for name in MITIGATION_POLICIES}
