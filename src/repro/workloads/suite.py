"""The nine evaluated cloud workloads (Table 2) with their model parameters.

Baseline key-metric values come from the numbers quoted in Section 4.2
(e.g. KV-Store 0.41 ms P99, Database 40 ms, Cache 6.32 ms, Microservices
2.71 ms, LLM fine-tuning 3.7 minutes).  Working sets and sensitivities are
set so that the Figure 18 ordering is reproduced: the tail-latency services
(KV-Store, Cache, Microservices) degrade the most under full
oversubscription, LLM fine-tuning suffers from allocation churn, and the
batch/throughput workloads tolerate oversubscription well.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import KeyMetric, WorkloadProfile

WORKLOADS: Dict[str, WorkloadProfile] = {
    "cache": WorkloadProfile(
        name="cache",
        description="Memcached read/write requests",
        key_metric=KeyMetric.TAIL_LATENCY,
        baseline_value=6.32,
        metric_unit="ms",
        working_set_gb=8.0,
        hot_fraction=0.85,
        memory_sensitivity=0.9,
        allocation_churn=0.02,
    ),
    "database": WorkloadProfile(
        name="database",
        description="Queries on a SQL database",
        key_metric=KeyMetric.TAIL_LATENCY,
        baseline_value=40.0,
        metric_unit="ms",
        working_set_gb=20.0,
        hot_fraction=0.6,
        memory_sensitivity=0.35,
        allocation_churn=0.05,
    ),
    "bigdata": WorkloadProfile(
        name="bigdata",
        description="TeraSort batch sorting",
        key_metric=KeyMetric.RUN_TIME,
        baseline_value=12.0,
        metric_unit="min",
        working_set_gb=24.0,
        hot_fraction=0.4,
        memory_sensitivity=0.25,
        allocation_churn=0.15,
    ),
    "web": WorkloadProfile(
        name="web",
        description="Three-tier web application (SpecJBB)",
        key_metric=KeyMetric.THROUGHPUT,
        baseline_value=25000.0,
        metric_unit="ops/s",
        working_set_gb=16.0,
        hot_fraction=0.7,
        memory_sensitivity=0.3,
        allocation_churn=0.05,
    ),
    "kvstore": WorkloadProfile(
        name="kvstore",
        description="Key-value store point queries",
        key_metric=KeyMetric.TAIL_LATENCY,
        baseline_value=0.41,
        metric_unit="ms",
        working_set_gb=6.0,
        hot_fraction=0.9,
        memory_sensitivity=1.0,
        allocation_churn=0.02,
    ),
    "graph": WorkloadProfile(
        name="graph",
        description="PageRank graph analytics",
        key_metric=KeyMetric.RUN_TIME,
        baseline_value=18.0,
        metric_unit="min",
        working_set_gb=22.0,
        hot_fraction=0.45,
        memory_sensitivity=0.3,
        allocation_churn=0.08,
    ),
    "microservices": WorkloadProfile(
        name="microservices",
        description="Social-network microservice graph",
        key_metric=KeyMetric.TAIL_LATENCY,
        baseline_value=2.71,
        metric_unit="ms",
        working_set_gb=14.0,
        hot_fraction=0.8,
        memory_sensitivity=0.85,
        allocation_churn=0.04,
    ),
    "llm-ft": WorkloadProfile(
        name="llm-ft",
        description="BERT fine-tuning",
        key_metric=KeyMetric.RUN_TIME,
        baseline_value=3.7,
        metric_unit="min",
        working_set_gb=26.0,
        hot_fraction=0.5,
        memory_sensitivity=0.45,
        allocation_churn=0.5,
    ),
    "videoconf": WorkloadProfile(
        name="videoconf",
        description="Video conference media processing",
        key_metric=KeyMetric.THROUGHPUT,
        baseline_value=120.0,
        metric_unit="streams",
        working_set_gb=20.0,
        hot_fraction=0.6,
        memory_sensitivity=0.35,
        allocation_churn=0.1,
    ),
}

#: Workloads whose key metric is P99 tail latency (real-time requirements).
REALTIME_WORKLOADS = tuple(
    name for name, profile in WORKLOADS.items()
    if profile.key_metric is KeyMetric.TAIL_LATENCY)


def workload(name: str) -> WorkloadProfile:
    """Look up a workload profile by name (case-insensitive)."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}") from exc


def all_workloads() -> List[WorkloadProfile]:
    return list(WORKLOADS.values())
