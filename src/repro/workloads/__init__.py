"""Workload models and runners for the CoachVM performance experiments."""

from repro.workloads.base import KeyMetric, WorkloadProfile, WorkloadResult, summarize_results
from repro.workloads.perfmodel import (
    MemoryConfiguration,
    page_fault_rate,
    run_configuration,
    slowdown,
    total_allocated_memory,
    va_access_fraction,
)
from repro.workloads.runner import (
    DEFAULT_VA_BACKING,
    ScenarioVM,
    SweepPoint,
    default_scenario_vms,
    figure18_configurations,
    pa_va_sweep,
    run_all_mitigation_policies,
    run_figure18,
    run_mitigation_scenario,
)
from repro.workloads.suite import REALTIME_WORKLOADS, WORKLOADS, all_workloads, workload

__all__ = [
    "DEFAULT_VA_BACKING",
    "KeyMetric",
    "MemoryConfiguration",
    "REALTIME_WORKLOADS",
    "ScenarioVM",
    "SweepPoint",
    "WORKLOADS",
    "WorkloadProfile",
    "WorkloadResult",
    "all_workloads",
    "default_scenario_vms",
    "figure18_configurations",
    "pa_va_sweep",
    "page_fault_rate",
    "run_all_mitigation_policies",
    "run_configuration",
    "run_figure18",
    "run_mitigation_scenario",
    "slowdown",
    "summarize_results",
    "total_allocated_memory",
    "va_access_fraction",
    "workload",
]
