"""Cloud workload models (Table 2).

The paper evaluates CoachVM performance with nine unmodified applications on
a production server.  We cannot run memcached, SQL Server, TeraSort, SpecJBB,
DeathStarBench, BERT fine-tuning, or a video-conference stack inside this
reproduction, so each workload is modelled by the characteristics that
determine its sensitivity to memory oversubscription:

* the size of its working set relative to the VM memory;
* how concentrated its accesses are on the hot portion of the working set;
* whether memory accesses sit on the critical path of its key metric
  (tail-latency workloads are the most sensitive);
* how much memory it allocates/deallocates per unit of work (allocation churn
  stresses on-demand VA backing, which is why LLM fine-tuning suffers).

The performance model in :mod:`repro.workloads.perfmodel` converts these
characteristics plus a PA/VA configuration into a slowdown of the key metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List


class KeyMetric(str, Enum):
    """The metric each workload reports (Table 2)."""

    TAIL_LATENCY = "p99-latency"
    RUN_TIME = "run-time"
    THROUGHPUT = "throughput"


@dataclass(frozen=True)
class WorkloadProfile:
    """Static description of one cloud workload."""

    name: str
    description: str
    key_metric: KeyMetric
    #: Baseline value of the key metric on a fully PA-backed VM (ms for
    #: latency, minutes for run time, ops/s for throughput).
    baseline_value: float
    #: Unit of the key metric, for reporting.
    metric_unit: str
    #: Working set in GB on the default (32 GB) evaluation VM.
    working_set_gb: float
    #: Fraction of accesses that fall on the hot subset of the working set.
    hot_fraction: float
    #: How strongly page faults translate into key-metric degradation
    #: (tail-latency workloads have the highest sensitivity).
    memory_sensitivity: float
    #: Fraction of the working set re-allocated per measurement interval
    #: (allocation churn; high for LLM fine-tuning).
    allocation_churn: float
    #: Fraction of the working set that constitutes the hot subset.
    hot_set_fraction: float = 0.5
    #: Default VM memory size used in the Figure 18 experiments, GB.
    default_vm_memory_gb: float = 32.0

    @property
    def lower_is_better(self) -> bool:
        return self.key_metric in (KeyMetric.TAIL_LATENCY, KeyMetric.RUN_TIME)

    def working_set_fraction(self, vm_memory_gb: float | None = None) -> float:
        total = vm_memory_gb if vm_memory_gb is not None else self.default_vm_memory_gb
        return min(1.0, self.working_set_gb / total)


@dataclass
class WorkloadResult:
    """Outcome of running one workload under a VM memory configuration."""

    workload: str
    configuration: str
    metric_value: float
    slowdown: float
    page_fault_rate: float
    va_access_fraction: float

    def normalised(self) -> float:
        """Normalised slowdown (>= 1.0 means worse than the baseline)."""
        return self.slowdown


def summarize_results(results: List[WorkloadResult]) -> Dict[str, Dict[str, float]]:
    """Group slowdowns by workload then configuration (Figure 18 layout)."""
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        table.setdefault(result.workload, {})[result.configuration] = result.slowdown
    return table
