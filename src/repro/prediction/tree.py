"""From-scratch CART regression tree.

scikit-learn is not a dependency of this reproduction, so the random forest
regressor the paper relies on (Section 3.3) is built from first principles:
a binary regression tree grown by variance reduction with the usual
``max_depth`` / ``min_samples_leaf`` / ``max_features`` knobs, vectorised
with numpy so that training on tens of thousands of VM feature rows stays
fast enough for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    """One node of the tree.  Leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0
    n_samples: int = 0


def _best_split(
    x: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Find the split minimising weighted child variance.

    Returns ``(feature, threshold, score)``; ``feature`` is -1 when no valid
    split exists.  The score is the total sum of squared errors after the
    split (lower is better).
    """
    n = y.shape[0]
    best_feature = -1
    best_threshold = 0.0
    best_score = np.inf

    for feature in feature_indices:
        column = x[:, feature]
        order = np.argsort(column, kind="stable")
        sorted_x = column[order]
        sorted_y = y[order]

        # Cumulative statistics allow evaluating every split point in O(n).
        csum = np.cumsum(sorted_y)
        csum_sq = np.cumsum(sorted_y ** 2)
        total_sum = csum[-1]
        total_sq = csum_sq[-1]

        # Candidate split after position i puts i+1 samples left.
        counts_left = np.arange(1, n)
        counts_right = n - counts_left
        sum_left = csum[:-1]
        sum_right = total_sum - sum_left
        sq_left = csum_sq[:-1]
        sq_right = total_sq - sq_left

        sse_left = sq_left - sum_left ** 2 / counts_left
        sse_right = sq_right - sum_right ** 2 / counts_right
        scores = sse_left + sse_right

        # A split is only valid between distinct feature values and when both
        # children satisfy the minimum leaf size.
        distinct = sorted_x[1:] != sorted_x[:-1]
        valid = distinct & (counts_left >= min_samples_leaf) & (counts_right >= min_samples_leaf)
        if not np.any(valid):
            continue
        scores = np.where(valid, scores, np.inf)
        idx = int(np.argmin(scores))
        if scores[idx] < best_score:
            best_score = float(scores[idx])
            best_feature = int(feature)
            best_threshold = float((sorted_x[idx] + sorted_x[idx + 1]) / 2.0)

    return best_feature, best_threshold, best_score


class DecisionTreeRegressor:
    """A CART regression tree minimising squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or smaller
        than ``min_samples_split``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child.
    max_features:
        Number of features considered per split (``None`` = all,
        ``"sqrt"`` = square root of the feature count, or an int/float
        fraction).  Randomised per node when a random state is supplied,
        which is what the forest uses for decorrelation.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: Optional[int | np.random.Generator] = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = max(2, int(min_samples_split))
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.max_features = max_features
        self._rng = (random_state if isinstance(random_state, np.random.Generator)
                     else np.random.default_rng(random_state))
        self._nodes: List[_Node] = []
        self.n_features_: int = 0

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(self.max_features, float):
            return max(1, int(self.max_features * n_features))
        return max(1, min(n_features, int(self.max_features)))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D array of shape (n_samples, n_features)")
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise ValueError("y must be a 1-D array aligned with x")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        self.n_features_ = x.shape[1]
        n_candidate_features = self._resolve_max_features(self.n_features_)
        self._nodes = []

        # Iterative construction with an explicit stack keeps recursion depth
        # bounded regardless of tree shape.
        root_index = self._new_leaf(y)
        stack: List[tuple[int, np.ndarray, int]] = [(root_index, np.arange(x.shape[0]), 0)]
        while stack:
            node_index, sample_indices, depth = stack.pop()
            node = self._nodes[node_index]
            targets = y[sample_indices]
            node.value = float(targets.mean())
            node.n_samples = int(sample_indices.shape[0])

            if (self.max_depth is not None and depth >= self.max_depth) or \
               sample_indices.shape[0] < self.min_samples_split or \
               np.all(targets == targets[0]):
                continue

            if n_candidate_features < self.n_features_:
                features = self._rng.choice(self.n_features_, size=n_candidate_features,
                                            replace=False)
            else:
                features = np.arange(self.n_features_)

            feature, threshold, _score = _best_split(
                x[sample_indices], targets, features, self.min_samples_leaf)
            if feature < 0:
                continue

            mask = x[sample_indices, feature] <= threshold
            left_indices = sample_indices[mask]
            right_indices = sample_indices[~mask]
            if left_indices.size == 0 or right_indices.size == 0:
                continue

            node.feature = feature
            node.threshold = threshold
            node.left = self._new_leaf(y[left_indices])
            node.right = self._new_leaf(y[right_indices])
            stack.append((node.left, left_indices, depth + 1))
            stack.append((node.right, right_indices, depth + 1))
        return self

    def _new_leaf(self, targets: np.ndarray) -> int:
        self._nodes.append(_Node(value=float(targets.mean()), n_samples=int(targets.shape[0])))
        return len(self._nodes) - 1

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._nodes:
            raise RuntimeError("tree has not been fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {x.shape[1]}")

        out = np.empty(x.shape[0])
        for row in range(x.shape[0]):
            index = 0
            node = self._nodes[0]
            while node.feature >= 0:
                index = node.left if x[row, node.feature] <= node.threshold else node.right
                node = self._nodes[index]
            out[row] = node.value
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self._nodes:
            return 0
        depths = {0: 0}
        max_depth = 0
        stack = [0]
        while stack:
            index = stack.pop()
            node = self._nodes[index]
            if node.feature >= 0:
                for child in (node.left, node.right):
                    depths[child] = depths[index] + 1
                    max_depth = max(max_depth, depths[child])
                    stack.append(child)
        return max_depth

    def feature_importances(self) -> np.ndarray:
        """Importance of each feature as the number of samples it splits."""
        importances = np.zeros(self.n_features_)
        for node in self._nodes:
            if node.feature >= 0:
                importances[node.feature] += node.n_samples
        total = importances.sum()
        return importances / total if total > 0 else importances
