"""Feature engineering for the long-term utilization model.

Coach's prediction model uses VM-specific features (VM configuration, weekday
of allocation, offering) and customer-specific features (subscription type
and the resource-utilization history of previous VMs in the subscription) --
all of which the platform already collects without user input (Section 3.3).

Features are encoded as a flat numeric vector so the from-scratch random
forest can consume them.  History features are computed per
``(subscription, VM configuration)`` group, the grouping that Figure 12
shows is the most predictive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource
from repro.trace.timeseries import TimeWindowConfig
from repro.trace.vm import Offering, SubscriptionType, VMRecord

#: VM families given a stable ordinal encoding.
_FAMILIES = ("general-purpose", "memory-optimized", "compute-optimized")


@dataclass
class GroupHistory:
    """Aggregated utilization history of one (subscription, config) group."""

    n_vms: int = 0
    #: Mean of the member VMs' lifetime peak utilization, per resource.
    mean_peak: Dict[Resource, float] = field(default_factory=dict)
    #: Spread (max - min) of the member VMs' lifetime peaks, per resource.
    peak_range: Dict[Resource, float] = field(default_factory=dict)
    #: Mean per-window-of-day maximum utilization, per resource
    #: (array of length ``windows_per_day``).
    window_mean_peak: Dict[Resource, np.ndarray] = field(default_factory=dict)
    #: Mean lifetime-percentile (e.g. P95) utilization, per resource.
    mean_percentile: Dict[Resource, float] = field(default_factory=dict)


class HistoryIndex:
    """Index of historical VM utilization keyed by subscription and config.

    Built once from the training (history) portion of a trace; queried when
    featurizing new VMs.  Lookups fall back from ``(subscription, config)`` to
    ``subscription`` alone and finally to the global aggregate, recording
    which level matched (a feature in itself).
    """

    def __init__(self, windows: TimeWindowConfig, percentile: float = 95.0):
        self.windows = windows
        self.percentile = percentile
        self._by_sub_config: Dict[Tuple[str, str], GroupHistory] = {}
        self._by_sub: Dict[str, GroupHistory] = {}
        self._global = GroupHistory()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _accumulate(groups: Dict, key, vm: VMRecord, windows: TimeWindowConfig,
                    percentile: float, scratch: Dict) -> None:
        entry = scratch.setdefault(key, {r: {"peaks": [], "percentiles": [],
                                             "window_peaks": []}
                                         for r in ALL_RESOURCES})
        for resource in ALL_RESOURCES:
            series = vm.series(resource)
            stats = entry[resource]
            stats["peaks"].append(series.maximum())
            stats["percentiles"].append(series.percentile(percentile))
            stats["window_peaks"].append(series.lifetime_window_max(windows))

    @staticmethod
    def _finalize(scratch_entry: Dict, windows: TimeWindowConfig) -> GroupHistory:
        history = GroupHistory()
        any_resource = next(iter(scratch_entry.values()))
        history.n_vms = len(any_resource["peaks"])
        for resource, stats in scratch_entry.items():
            peaks = np.asarray(stats["peaks"])
            history.mean_peak[resource] = float(peaks.mean())
            history.peak_range[resource] = float(peaks.max() - peaks.min())
            history.mean_percentile[resource] = float(np.mean(stats["percentiles"]))
            window_stack = np.vstack(stats["window_peaks"])
            with np.errstate(all="ignore"):
                mean_windows = np.nanmean(window_stack, axis=0)
            # Windows never observed fall back to the overall mean peak.
            mean_windows = np.where(np.isnan(mean_windows), peaks.mean(), mean_windows)
            history.window_mean_peak[resource] = mean_windows
        return history

    @classmethod
    def build(cls, history_vms: Sequence[VMRecord], windows: TimeWindowConfig,
              percentile: float = 95.0, min_lifetime_days: float = 1.0) -> "HistoryIndex":
        """Build the index from VMs observed in the history window.

        Only VMs lasting at least ``min_lifetime_days`` contribute: short VMs
        carry little temporal signal and the paper's oversubscription targets
        are the long-running ones.
        """
        index = cls(windows, percentile)
        scratch_sub_config: Dict = {}
        scratch_sub: Dict = {}
        scratch_global: Dict = {}
        for vm in history_vms:
            if vm.lifetime_days < min_lifetime_days or not vm.has_utilization():
                continue
            cls._accumulate(index._by_sub_config, (vm.subscription_id, vm.config.name),
                            vm, windows, percentile, scratch_sub_config)
            cls._accumulate(index._by_sub, vm.subscription_id, vm, windows,
                            percentile, scratch_sub)
            cls._accumulate({}, "__global__", vm, windows, percentile, scratch_global)

        index._by_sub_config = {key: cls._finalize(val, windows)
                                for key, val in scratch_sub_config.items()}
        index._by_sub = {key: cls._finalize(val, windows)
                         for key, val in scratch_sub.items()}
        if scratch_global:
            index._global = cls._finalize(scratch_global["__global__"], windows)
        return index

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(self, vm: VMRecord) -> Tuple[GroupHistory, int]:
        """History for a VM and the match level (2 = sub+config, 1 = sub, 0 = global)."""
        key = (vm.subscription_id, vm.config.name)
        if key in self._by_sub_config:
            return self._by_sub_config[key], 2
        if vm.subscription_id in self._by_sub:
            return self._by_sub[vm.subscription_id], 1
        return self._global, 0

    def has_history(self, vm: VMRecord, min_vms: int = 1) -> bool:
        """Whether the VM has enough subscription history to be oversubscribed."""
        history, level = self.lookup(vm)
        return level >= 1 and history.n_vms >= min_vms

    @property
    def global_history(self) -> GroupHistory:
        return self._global


class FeatureEncoder:
    """Encodes a VM (plus its history) into a flat numeric feature vector.

    One row is produced per (VM, time window); the window index and its
    centre hour are part of the features, which lets a single forest predict
    all windows.
    """

    def __init__(self, windows: TimeWindowConfig, resource: Resource):
        self.windows = windows
        self.resource = resource

    def feature_names(self) -> List[str]:
        return [
            "cores",
            "memory_gb",
            "gb_per_core",
            "family_ordinal",
            "is_paas",
            "is_internal",
            "is_test",
            "creation_weekday",
            "is_weekend_creation",
            "window_index",
            "window_center_sin",
            "window_center_cos",
            "history_level",
            "history_n_vms",
            "history_mean_peak",
            "history_peak_range",
            "history_mean_percentile",
            "history_window_mean_peak",
        ]

    @property
    def n_features(self) -> int:
        return len(self.feature_names())

    def encode(self, vm: VMRecord, window_index: int,
               history: Optional[HistoryIndex]) -> np.ndarray:
        config = vm.config
        family_ordinal = float(_FAMILIES.index(config.family)) if config.family in _FAMILIES else -1.0
        center_hour = (window_index + 0.5) * self.windows.window_hours
        angle = 2.0 * np.pi * center_hour / 24.0

        if history is not None:
            group, level = history.lookup(vm)
            n_vms = float(group.n_vms)
            mean_peak = group.mean_peak.get(self.resource, 0.5)
            peak_range = group.peak_range.get(self.resource, 1.0)
            mean_percentile = group.mean_percentile.get(self.resource, 0.5)
            window_peaks = group.window_mean_peak.get(self.resource)
            window_mean_peak = (float(window_peaks[window_index])
                                if window_peaks is not None and window_peaks.size > window_index
                                else mean_peak)
        else:
            level, n_vms = 0, 0.0
            mean_peak, peak_range, mean_percentile, window_mean_peak = 0.5, 1.0, 0.5, 0.5

        return np.array([
            float(config.cores),
            float(config.memory_gb),
            float(config.gb_per_core),
            family_ordinal,
            1.0 if vm.offering is Offering.PAAS else 0.0,
            1.0 if vm.subscription_type in (SubscriptionType.INTERNAL_PRODUCTION,
                                            SubscriptionType.INTERNAL_TEST) else 0.0,
            1.0 if vm.subscription_type in (SubscriptionType.EXTERNAL_TEST,
                                            SubscriptionType.INTERNAL_TEST) else 0.0,
            float(vm.creation_weekday),
            1.0 if vm.creation_weekday >= 5 else 0.0,
            float(window_index),
            float(np.sin(angle)),
            float(np.cos(angle)),
            float(level),
            n_vms,
            float(mean_peak),
            float(peak_range),
            float(mean_percentile),
            float(window_mean_peak),
        ])

    def encode_all_windows(self, vm: VMRecord,
                           history: Optional[HistoryIndex]) -> np.ndarray:
        """Feature matrix with one row per window of the day."""
        return np.vstack([self.encode(vm, w, history)
                          for w in range(self.windows.windows_per_day)])
