"""From-scratch numpy LSTM for short-horizon utilization forecasting.

Coach's local prediction component uses an LSTM to predict utilization five
minutes ahead from the maximum and average utilization of the five preceding
5-minute windows (Section 3.6).  This module implements a small single-layer
LSTM with a linear head, trained with truncated BPTT and Adam, entirely in
numpy -- no deep-learning framework is required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class LSTMConfig:
    """Hyper-parameters of the utilization LSTM."""

    input_size: int = 2          # (max, mean) utilization per 5-minute window
    hidden_size: int = 16
    sequence_length: int = 5     # five preceding 5-minute windows
    learning_rate: float = 0.01
    epochs: int = 60
    clip_norm: float = 5.0
    seed: int = 0


class LSTMPredictor:
    """Single-layer LSTM regressor with a scalar output in ``[0, 1]``."""

    def __init__(self, config: Optional[LSTMConfig] = None):
        self.config = config or LSTMConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        scale = 1.0 / np.sqrt(cfg.hidden_size)
        concat = cfg.input_size + cfg.hidden_size
        # Gate weight matrices: input, forget, cell, output.
        self.weights: Dict[str, np.ndarray] = {
            name: rng.normal(0.0, scale, size=(concat, cfg.hidden_size))
            for name in ("Wi", "Wf", "Wg", "Wo")
        }
        self.biases: Dict[str, np.ndarray] = {
            name: np.zeros(cfg.hidden_size) for name in ("bi", "bf", "bg", "bo")
        }
        # Forget-gate bias initialised positive: standard trick for stability.
        self.biases["bf"] += 1.0
        self.head_w = rng.normal(0.0, scale, size=(cfg.hidden_size, 1))
        self.head_b = np.zeros(1)
        self._adam_m: Dict[str, np.ndarray] = {}
        self._adam_v: Dict[str, np.ndarray] = {}
        self._adam_t = 0
        self.training_loss_: List[float] = []

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def _forward(self, batch: np.ndarray) -> Tuple[np.ndarray, List[Dict[str, np.ndarray]]]:
        """Run the LSTM over a batch of sequences.

        ``batch`` has shape ``(n, sequence_length, input_size)``.  Returns the
        scalar predictions and the per-step cache needed for backprop.
        """
        cfg = self.config
        n = batch.shape[0]
        h = np.zeros((n, cfg.hidden_size))
        c = np.zeros((n, cfg.hidden_size))
        caches: List[Dict[str, np.ndarray]] = []
        for t in range(cfg.sequence_length):
            x_t = batch[:, t, :]
            z = np.concatenate([x_t, h], axis=1)
            i = _sigmoid(z @ self.weights["Wi"] + self.biases["bi"])
            f = _sigmoid(z @ self.weights["Wf"] + self.biases["bf"])
            g = np.tanh(z @ self.weights["Wg"] + self.biases["bg"])
            o = _sigmoid(z @ self.weights["Wo"] + self.biases["bo"])
            c_new = f * c + i * g
            h_new = o * np.tanh(c_new)
            caches.append({"z": z, "i": i, "f": f, "g": g, "o": o,
                           "c_prev": c, "c": c_new})
            h, c = h_new, c_new
        logits = h @ self.head_w + self.head_b
        prediction = _sigmoid(logits).reshape(-1)
        caches.append({"h_last": h, "logits": logits})
        return prediction, caches

    def _backward(self, batch: np.ndarray, targets: np.ndarray,
                  prediction: np.ndarray,
                  caches: List[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
        cfg = self.config
        n = batch.shape[0]
        grads = {key: np.zeros_like(val) for key, val in self.weights.items()}
        grads.update({key: np.zeros_like(val) for key, val in self.biases.items()})
        grads["head_w"] = np.zeros_like(self.head_w)
        grads["head_b"] = np.zeros_like(self.head_b)

        head_cache = caches[-1]
        h_last = head_cache["h_last"]
        # d(MSE)/d(prediction) with sigmoid output.
        d_pred = 2.0 * (prediction - targets) / n
        d_logits = (d_pred * prediction * (1.0 - prediction)).reshape(-1, 1)
        grads["head_w"] += h_last.T @ d_logits
        grads["head_b"] += d_logits.sum(axis=0)

        dh = d_logits @ self.head_w.T
        dc = np.zeros((n, cfg.hidden_size))
        for t in range(cfg.sequence_length - 1, -1, -1):
            cache = caches[t]
            i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
            c, c_prev, z = cache["c"], cache["c_prev"], cache["z"]
            tanh_c = np.tanh(c)

            do = dh * tanh_c
            dc = dc + dh * o * (1.0 - tanh_c ** 2)
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_prev = dc * f

            d_ai = di * i * (1.0 - i)
            d_af = df * f * (1.0 - f)
            d_ag = dg * (1.0 - g ** 2)
            d_ao = do * o * (1.0 - o)

            grads["Wi"] += z.T @ d_ai
            grads["Wf"] += z.T @ d_af
            grads["Wg"] += z.T @ d_ag
            grads["Wo"] += z.T @ d_ao
            grads["bi"] += d_ai.sum(axis=0)
            grads["bf"] += d_af.sum(axis=0)
            grads["bg"] += d_ag.sum(axis=0)
            grads["bo"] += d_ao.sum(axis=0)

            dz = (d_ai @ self.weights["Wi"].T + d_af @ self.weights["Wf"].T
                  + d_ag @ self.weights["Wg"].T + d_ao @ self.weights["Wo"].T)
            dh = dz[:, cfg.input_size:]
            dc = dc_prev
        return grads

    def _adam_step(self, grads: Dict[str, np.ndarray]) -> None:
        cfg = self.config
        params: Dict[str, np.ndarray] = {**self.weights, **self.biases,
                                         "head_w": self.head_w, "head_b": self.head_b}
        # Global norm clipping.
        total_norm = np.sqrt(sum(float((g ** 2).sum()) for g in grads.values()))
        scale = min(1.0, cfg.clip_norm / (total_norm + 1e-12))

        self._adam_t += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for key, param in params.items():
            grad = grads[key] * scale
            m = self._adam_m.setdefault(key, np.zeros_like(param))
            v = self._adam_v.setdefault(key, np.zeros_like(param))
            m[:] = beta1 * m + (1 - beta1) * grad
            v[:] = beta2 * v + (1 - beta2) * grad ** 2
            m_hat = m / (1 - beta1 ** self._adam_t)
            v_hat = v / (1 - beta2 ** self._adam_t)
            param -= cfg.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def fit(self, sequences: np.ndarray, targets: np.ndarray,
            epochs: Optional[int] = None) -> "LSTMPredictor":
        """Train on ``(n, sequence_length, input_size)`` sequences."""
        sequences = np.asarray(sequences, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if sequences.ndim != 3:
            raise ValueError("sequences must be 3-D (n, seq_len, input_size)")
        if sequences.shape[1] != self.config.sequence_length:
            raise ValueError("sequence length mismatch")
        if sequences.shape[2] != self.config.input_size:
            raise ValueError("input size mismatch")
        if targets.shape[0] != sequences.shape[0]:
            raise ValueError("targets must align with sequences")

        self.training_loss_ = []
        for _ in range(epochs if epochs is not None else self.config.epochs):
            prediction, caches = self._forward(sequences)
            loss = float(np.mean((prediction - targets) ** 2))
            self.training_loss_.append(loss)
            grads = self._backward(sequences, targets, prediction, caches)
            self._adam_step(grads)
        return self

    def partial_fit(self, sequences: np.ndarray, targets: np.ndarray) -> float:
        """Single online update (the agent retrains every 5 minutes)."""
        self.fit(sequences, targets, epochs=1)
        return self.training_loss_[-1]

    def predict(self, sequences: np.ndarray) -> np.ndarray:
        sequences = np.asarray(sequences, dtype=np.float64)
        if sequences.ndim == 2:
            sequences = sequences[np.newaxis, ...]
        prediction, _ = self._forward(sequences)
        return prediction

    def parameter_count(self) -> int:
        count = sum(w.size for w in self.weights.values())
        count += sum(b.size for b in self.biases.values())
        count += self.head_w.size + self.head_b.size
        return int(count)

    def memory_bytes(self) -> int:
        """Approximate in-memory model size (Section 4.5 reports ~25 KB)."""
        return self.parameter_count() * 8


def build_sequences(series: np.ndarray, sequence_length: int = 5,
                    window: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """Build (max, mean) training sequences from a per-slot utilization series.

    Consecutive groups of ``window`` slots are aggregated into (max, mean)
    pairs; each training example is ``sequence_length`` consecutive pairs and
    the target is the maximum utilization of the following group.
    """
    series = np.asarray(series, dtype=np.float64)
    if window > 1:
        n_groups = series.size // window
        trimmed = series[: n_groups * window].reshape(n_groups, window)
        maxima = trimmed.max(axis=1)
        means = trimmed.mean(axis=1)
    else:
        maxima = series
        means = series
    features = np.stack([maxima, means], axis=1)
    n_examples = features.shape[0] - sequence_length
    if n_examples <= 0:
        return (np.empty((0, sequence_length, 2)), np.empty(0))
    sequences = np.stack([features[i:i + sequence_length] for i in range(n_examples)])
    targets = maxima[sequence_length:]
    return sequences, targets
