"""Long-term per-time-window utilization prediction (Resource Central extension).

The cluster manager converts a VM request into per-resource, per-time-window
oversubscription rates using a random-forest model trained on historical
telemetry (Section 3.3).  For every resource and time window the model
predicts two quantities, quantized to 5% buckets:

* the *PX percentile* of utilization (e.g. P95) -- used to size the
  guaranteed (PA) portion;
* the *maximum* utilization -- used to size the oversubscribed (VA) portion.

When a VM has insufficient history, Coach conservatively does not
oversubscribe it; the model reports this via ``oversubscribable``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource
from repro.prediction.buckets import bucketize_array
from repro.prediction.features import FeatureEncoder, HistoryIndex
from repro.prediction.forest import RandomForestRegressor
from repro.trace.timeseries import DEFAULT_WINDOWS, TimeWindowConfig
from repro.trace.vm import VMRecord


@dataclass
class WindowUtilizationPrediction:
    """Per-window utilization prediction for one VM."""

    windows: TimeWindowConfig
    #: Per resource: predicted PX utilization per window-of-day (fractions).
    percentile: Dict[Resource, np.ndarray]
    #: Per resource: predicted maximum utilization per window-of-day.
    maximum: Dict[Resource, np.ndarray]
    #: Whether the VM had enough history to be oversubscribed at all.
    oversubscribable: bool = True

    def clipped(self) -> "WindowUtilizationPrediction":
        """Ensure the maximum dominates the percentile in every window."""
        maximum = {r: np.maximum(self.maximum[r], self.percentile[r])
                   for r in self.maximum}
        return WindowUtilizationPrediction(self.windows, dict(self.percentile),
                                           maximum, self.oversubscribable)


@dataclass
class TrainingReport:
    """Bookkeeping for the Section 4.5 overhead analysis."""

    n_training_vms: int = 0
    n_training_rows: int = 0
    training_seconds: float = 0.0
    model_size_bytes: int = 0
    training_data_bytes: int = 0
    oob_error: Dict[str, float] = field(default_factory=dict)


class LongTermUtilizationModel:
    """Random-forest model predicting per-window utilization for new VMs."""

    def __init__(
        self,
        windows: TimeWindowConfig = DEFAULT_WINDOWS,
        percentile: float = 95.0,
        n_estimators: int = 20,
        max_depth: int = 10,
        min_samples_leaf: int = 3,
        random_state: int = 0,
        min_history_vms: int = 1,
    ):
        self.windows = windows
        self.percentile = percentile
        self.min_history_vms = min_history_vms
        self._forest_params = dict(
            n_estimators=n_estimators, max_depth=max_depth,
            min_samples_leaf=min_samples_leaf, random_state=random_state)
        self._encoders: Dict[Resource, FeatureEncoder] = {
            r: FeatureEncoder(windows, r) for r in ALL_RESOURCES}
        self._percentile_models: Dict[Resource, RandomForestRegressor] = {}
        self._maximum_models: Dict[Resource, RandomForestRegressor] = {}
        self._history: Optional[HistoryIndex] = None
        self.report = TrainingReport()

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, history_vms: Sequence[VMRecord],
            min_lifetime_days: float = 1.0) -> "LongTermUtilizationModel":
        """Train on the VMs observed during the history window."""
        start = time.perf_counter()
        self._history = HistoryIndex.build(history_vms, self.windows,
                                           self.percentile, min_lifetime_days)
        training_vms = [vm for vm in history_vms
                        if vm.lifetime_days >= min_lifetime_days and vm.has_utilization()]
        if not training_vms:
            raise ValueError("no long-running VMs with utilization to train on")

        n_windows = self.windows.windows_per_day
        rows_per_vm = n_windows
        total_rows = len(training_vms) * rows_per_vm

        for resource in ALL_RESOURCES:
            encoder = self._encoders[resource]
            features = np.zeros((total_rows, encoder.n_features))
            target_percentile = np.zeros(total_rows)
            target_maximum = np.zeros(total_rows)
            row = 0
            for vm in training_vms:
                series = vm.series(resource)
                window_pct = series.lifetime_window_percentile(self.windows, self.percentile)
                window_max = series.lifetime_window_max(self.windows)
                overall_pct = series.percentile(self.percentile)
                overall_max = series.maximum()
                vm_features = encoder.encode_all_windows(vm, self._history)
                for window in range(n_windows):
                    features[row] = vm_features[window]
                    pct = window_pct[window]
                    mx = window_max[window]
                    target_percentile[row] = overall_pct if np.isnan(pct) else pct
                    target_maximum[row] = overall_max if np.isnan(mx) else mx
                    row += 1

            pct_model = RandomForestRegressor(**self._forest_params)
            max_model = RandomForestRegressor(**self._forest_params)
            pct_model.fit(features, target_percentile)
            max_model.fit(features, target_maximum)
            self._percentile_models[resource] = pct_model
            self._maximum_models[resource] = max_model
            if pct_model.oob_error_ is not None:
                self.report.oob_error[f"{resource.value}:percentile"] = pct_model.oob_error_
            if max_model.oob_error_ is not None:
                self.report.oob_error[f"{resource.value}:maximum"] = max_model.oob_error_
            self.report.training_data_bytes += int(features.nbytes + target_percentile.nbytes
                                                   + target_maximum.nbytes)
            self.report.model_size_bytes += (pct_model.estimate_model_size_bytes()
                                             + max_model.estimate_model_size_bytes())

        self.report.n_training_vms = len(training_vms)
        self.report.n_training_rows = total_rows * len(ALL_RESOURCES)
        self.report.training_seconds = time.perf_counter() - start
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._percentile_models)

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, vm: VMRecord) -> WindowUtilizationPrediction:
        """Predict per-window utilization for a (new) VM."""
        if not self.is_fitted or self._history is None:
            raise RuntimeError("model must be fitted before prediction")
        oversubscribable = self._history.has_history(vm, self.min_history_vms)
        percentile: Dict[Resource, np.ndarray] = {}
        maximum: Dict[Resource, np.ndarray] = {}
        for resource in ALL_RESOURCES:
            features = self._encoders[resource].encode_all_windows(vm, self._history)
            pct = self._percentile_models[resource].predict(features)
            mx = self._maximum_models[resource].predict(features)
            percentile[resource] = bucketize_array(np.clip(pct, 0.0, 1.0))
            maximum[resource] = bucketize_array(np.clip(mx, 0.0, 1.0))
        return WindowUtilizationPrediction(
            self.windows, percentile, maximum, oversubscribable).clipped()

    def predict_many(self, vms: Sequence[VMRecord]) -> List[WindowUtilizationPrediction]:
        return [self.predict(vm) for vm in vms]


class OracleUtilizationModel:
    """Perfect-knowledge predictor computed from the VM's actual future telemetry.

    Used to compute the *ideal allocation* against which Figure 19 measures
    over- and under-allocation, and as an upper bound in ablations.
    """

    def __init__(self, windows: TimeWindowConfig = DEFAULT_WINDOWS, percentile: float = 95.0):
        self.windows = windows
        self.percentile = percentile

    def predict(self, vm: VMRecord) -> WindowUtilizationPrediction:
        percentile: Dict[Resource, np.ndarray] = {}
        maximum: Dict[Resource, np.ndarray] = {}
        for resource in ALL_RESOURCES:
            series = vm.series(resource)
            pct = series.lifetime_window_percentile(self.windows, self.percentile)
            mx = series.lifetime_window_max(self.windows)
            overall_pct = series.percentile(self.percentile)
            overall_max = series.maximum()
            pct = np.where(np.isnan(pct), overall_pct, pct)
            mx = np.where(np.isnan(mx), overall_max, mx)
            percentile[resource] = np.clip(pct, 0.0, 1.0)
            maximum[resource] = np.clip(mx, 0.0, 1.0)
        return WindowUtilizationPrediction(self.windows, percentile, maximum, True).clipped()

    def predict_many(self, vms: Sequence[VMRecord]) -> List[WindowUtilizationPrediction]:
        return [self.predict(vm) for vm in vms]


class NoOversubscriptionModel:
    """Baseline "predictor" that always requests the full allocation.

    Corresponds to the ``None`` policy of Figure 20: the predicted percentile
    and maximum are 100% in every window, so nothing is oversubscribed.
    """

    def __init__(self, windows: TimeWindowConfig = DEFAULT_WINDOWS):
        self.windows = windows

    def predict(self, vm: VMRecord) -> WindowUtilizationPrediction:
        ones = np.ones(self.windows.windows_per_day)
        return WindowUtilizationPrediction(
            self.windows,
            {r: ones.copy() for r in ALL_RESOURCES},
            {r: ones.copy() for r in ALL_RESOURCES},
            oversubscribable=False,
        )

    def predict_many(self, vms: Sequence[VMRecord]) -> List[WindowUtilizationPrediction]:
        return [self.predict(vm) for vm in vms]
