"""Prediction substrate: trees, forests, EWMA, LSTM, and the Coach predictors."""

from repro.prediction.buckets import (
    BUCKET_WIDTH,
    MEMORY_GRANULARITY_GB,
    bucket_centers,
    bucketize,
    bucketize_array,
    round_memory_up,
)
from repro.prediction.contention import ContentionForecast, TwoLevelContentionPredictor
from repro.prediction.ewma import EWMAPredictor, ewma_series, one_step_errors
from repro.prediction.features import FeatureEncoder, GroupHistory, HistoryIndex
from repro.prediction.forest import RandomForestRegressor
from repro.prediction.lstm import LSTMConfig, LSTMPredictor, build_sequences
from repro.prediction.tree import DecisionTreeRegressor
from repro.prediction.utilization_model import (
    LongTermUtilizationModel,
    NoOversubscriptionModel,
    OracleUtilizationModel,
    TrainingReport,
    WindowUtilizationPrediction,
)

__all__ = [
    "BUCKET_WIDTH",
    "ContentionForecast",
    "DecisionTreeRegressor",
    "EWMAPredictor",
    "FeatureEncoder",
    "GroupHistory",
    "HistoryIndex",
    "LSTMConfig",
    "LSTMPredictor",
    "LongTermUtilizationModel",
    "MEMORY_GRANULARITY_GB",
    "NoOversubscriptionModel",
    "OracleUtilizationModel",
    "RandomForestRegressor",
    "TrainingReport",
    "TwoLevelContentionPredictor",
    "WindowUtilizationPrediction",
    "bucket_centers",
    "bucketize",
    "bucketize_array",
    "build_sequences",
    "ewma_series",
    "one_step_errors",
    "round_memory_up",
]
