"""Exponentially weighted moving average (EWMA) short-term predictor.

Coach's local prediction component uses a two-level scheme: an EWMA predicts
the next 20-second monitoring interval, while an LSTM predicts the next five
minutes (Section 3.4).  The EWMA works well because resource behaviour tends
to be stable over short periods.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np


class EWMAPredictor:
    """Online EWMA over utilization samples.

    ``alpha`` is the weight of the newest observation (the paper uses 0.5,
    updated every 20-second monitoring interval).
    """

    def __init__(self, alpha: float = 0.5, initial: Optional[float] = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._level: Optional[float] = initial
        self._history: List[float] = []

    @property
    def level(self) -> Optional[float]:
        """Current smoothed estimate (``None`` before the first update)."""
        return self._level

    def update(self, observation: float) -> float:
        """Fold in one observation and return the updated estimate."""
        value = float(observation)
        if self._level is None:
            self._level = value
        else:
            self._level = self.alpha * value + (1.0 - self.alpha) * self._level
        self._history.append(value)
        return self._level

    def update_many(self, observations: Iterable[float]) -> float:
        last = self._level if self._level is not None else 0.0
        for obs in observations:
            last = self.update(obs)
        return last

    def predict(self, horizon: int = 1) -> float:
        """Predict the utilization *horizon* steps ahead.

        An EWMA is a level-only model, so the forecast is flat; the horizon
        argument exists for interface parity with the LSTM predictor.
        """
        if self._level is None:
            raise RuntimeError("predict() called before any update")
        return self._level

    def reset(self) -> None:
        self._level = None
        self._history.clear()

    def error_history(self) -> np.ndarray:
        """One-step-ahead absolute errors over the observed history."""
        if len(self._history) < 2:
            return np.empty(0)
        values = np.asarray(self._history)
        estimates = np.empty(len(values))
        level = values[0]
        estimates[0] = level
        for i in range(1, len(values)):
            estimates[i] = level  # prediction for step i is the level before it
            level = self.alpha * values[i] + (1.0 - self.alpha) * level
        return np.abs(values[1:] - estimates[1:])


def ewma_series(values: np.ndarray, alpha: float = 0.5) -> np.ndarray:
    """Vectorised EWMA of a whole series (offline helper for the evaluation)."""
    values = np.asarray(values, dtype=np.float64)
    out = np.empty_like(values)
    if values.size == 0:
        return out
    level = values[0]
    out[0] = level
    for i in range(1, values.size):
        level = alpha * values[i] + (1.0 - alpha) * level
        out[i] = level
    return out


def one_step_errors(values: np.ndarray, alpha: float = 0.5) -> np.ndarray:
    """Absolute one-step-ahead EWMA prediction errors for a series."""
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        return np.empty(0)
    smoothed = ewma_series(values, alpha)
    return np.abs(values[1:] - smoothed[:-1])
