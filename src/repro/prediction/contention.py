"""Two-level local contention prediction (EWMA + LSTM).

The oversubscription agent on every server predicts near-future utilization
so that mitigations can be triggered *before* contention materialises
(Section 3.4): an EWMA forecasts the next 20-second monitoring interval and a
small LSTM forecasts the next five minutes from the maximum and average
utilization of the five preceding 5-minute windows.  The LSTM is trained
online and only consulted after a warm-up period (the paper trains it for
24 hours before use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.prediction.ewma import EWMAPredictor
from repro.prediction.lstm import LSTMConfig, LSTMPredictor, build_sequences


@dataclass
class ContentionForecast:
    """Joint output of the two predictors for one prediction cycle."""

    #: Utilization forecast for the next monitoring interval (~20 s).
    short_term: float
    #: Utilization forecast for the next five minutes (``None`` during warm-up).
    long_term: Optional[float]

    def exceeds(self, threshold: float) -> bool:
        """Whether either horizon predicts utilization above *threshold*."""
        if self.short_term > threshold:
            return True
        return self.long_term is not None and self.long_term > threshold


class TwoLevelContentionPredictor:
    """Combines the EWMA and LSTM predictors as the server agent does.

    Parameters
    ----------
    samples_per_window:
        Number of monitoring samples per 5-minute window.  With the paper's
        20-second monitoring interval this is 15.
    warmup_windows:
        Number of complete 5-minute windows to observe before trusting the
        LSTM (the paper warms up for 24 hours = 288 windows; tests use less).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        samples_per_window: int = 15,
        warmup_windows: int = 288,
        lstm_config: Optional[LSTMConfig] = None,
        online_epochs: int = 2,
    ):
        if samples_per_window <= 0:
            raise ValueError("samples_per_window must be positive")
        self.ewma = EWMAPredictor(alpha=alpha)
        self.lstm = LSTMPredictor(lstm_config or LSTMConfig(epochs=online_epochs))
        self.samples_per_window = samples_per_window
        self.warmup_windows = warmup_windows
        self.online_epochs = online_epochs
        self._current_window: List[float] = []
        self._window_max: List[float] = []
        self._window_mean: List[float] = []
        self._lstm_trained_windows = 0

    # ------------------------------------------------------------------ #
    # Online updates
    # ------------------------------------------------------------------ #
    def observe(self, utilization: float) -> None:
        """Feed one monitoring sample (every ~20 seconds)."""
        value = float(np.clip(utilization, 0.0, 1.0))
        self.ewma.update(value)
        self._current_window.append(value)
        if len(self._current_window) >= self.samples_per_window:
            self._close_window()

    def _close_window(self) -> None:
        window = np.asarray(self._current_window)
        self._window_max.append(float(window.max()))
        self._window_mean.append(float(window.mean()))
        self._current_window = []
        self._maybe_train_lstm()

    def _maybe_train_lstm(self) -> None:
        seq_len = self.lstm.config.sequence_length
        if len(self._window_max) <= seq_len:
            return
        maxima = np.asarray(self._window_max)
        means = np.asarray(self._window_mean)
        features = np.stack([maxima, means], axis=1)
        # Train on the most recent examples only: online fine-tuning.
        n_examples = features.shape[0] - seq_len
        start = max(0, n_examples - 32)
        sequences = np.stack([features[i:i + seq_len] for i in range(start, n_examples)])
        targets = maxima[start + seq_len:]
        self.lstm.fit(sequences, targets, epochs=self.online_epochs)
        self._lstm_trained_windows = len(self._window_max)

    # ------------------------------------------------------------------ #
    # Forecasting
    # ------------------------------------------------------------------ #
    @property
    def lstm_ready(self) -> bool:
        return (self._lstm_trained_windows >= self.warmup_windows
                and len(self._window_max) >= self.lstm.config.sequence_length)

    def forecast(self) -> ContentionForecast:
        """Forecast for the next monitoring interval and the next five minutes."""
        short_term = self.ewma.level if self.ewma.level is not None else 0.0
        long_term: Optional[float] = None
        if self.lstm_ready:
            seq_len = self.lstm.config.sequence_length
            maxima = np.asarray(self._window_max[-seq_len:])
            means = np.asarray(self._window_mean[-seq_len:])
            sequence = np.stack([maxima, means], axis=1)
            long_term = float(self.lstm.predict(sequence)[0])
        return ContentionForecast(short_term=float(short_term), long_term=long_term)

    # ------------------------------------------------------------------ #
    # Offline evaluation helpers (Section 4.4)
    # ------------------------------------------------------------------ #
    @staticmethod
    def evaluate_ewma_error(series: np.ndarray, alpha: float = 0.5) -> float:
        """Mean absolute one-step error of the EWMA on a utilization series."""
        from repro.prediction.ewma import one_step_errors

        errors = one_step_errors(series, alpha)
        return float(errors.mean()) if errors.size else 0.0

    @staticmethod
    def evaluate_lstm_error(series: np.ndarray, config: Optional[LSTMConfig] = None,
                            train_fraction: float = 0.7) -> float:
        """Mean absolute hold-out error of the LSTM on a utilization series."""
        cfg = config or LSTMConfig(epochs=40)
        sequences, targets = build_sequences(series, cfg.sequence_length)
        if sequences.shape[0] < 10:
            return 0.0
        split = max(1, int(train_fraction * sequences.shape[0]))
        model = LSTMPredictor(cfg)
        model.fit(sequences[:split], targets[:split])
        predictions = model.predict(sequences[split:])
        return float(np.mean(np.abs(predictions - targets[split:])))
