"""Bagged random-forest regressor built on the from-scratch CART tree.

Coach uses a random forest to predict per-time-window utilization percentiles
because it handles categorical features well and is less prone to overfitting
than boosted alternatives, which reduces the chance of under-predictions
(Section 3.3).  This implementation supports the subset of the scikit-learn
interface the rest of the library needs: ``fit``, ``predict``,
``feature_importances_`` and out-of-bag error for quick validation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.prediction.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """An ensemble of decorrelated CART trees averaged at prediction time."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: Optional[int] = 12,
        min_samples_leaf: int = 2,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ):
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: List[DecisionTreeRegressor] = []
        self.oob_prediction_: Optional[np.ndarray] = None
        self.oob_error_: Optional[float] = None
        self.n_features_: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n_samples, n_features) aligned with 1-D y")
        n_samples = x.shape[0]
        if n_samples == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = x.shape[1]

        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        oob_sum = np.zeros(n_samples)
        oob_count = np.zeros(n_samples)

        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=np.random.default_rng(rng.integers(0, 2 ** 32)),
            )
            if self.bootstrap:
                sample_idx = rng.integers(0, n_samples, size=n_samples)
            else:
                sample_idx = np.arange(n_samples)
            tree.fit(x[sample_idx], y[sample_idx])
            self.trees_.append(tree)

            if self.bootstrap:
                out_of_bag = np.setdiff1d(np.arange(n_samples), np.unique(sample_idx),
                                          assume_unique=True)
                if out_of_bag.size:
                    oob_sum[out_of_bag] += tree.predict(x[out_of_bag])
                    oob_count[out_of_bag] += 1

        if self.bootstrap and np.any(oob_count > 0):
            covered = oob_count > 0
            oob = np.full(n_samples, np.nan)
            oob[covered] = oob_sum[covered] / oob_count[covered]
            self.oob_prediction_ = oob
            self.oob_error_ = float(np.mean(np.abs(oob[covered] - y[covered])))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest has not been fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        predictions = np.zeros(x.shape[0])
        for tree in self.trees_:
            predictions += tree.predict(x)
        return predictions / len(self.trees_)

    def predict_quantile(self, x: np.ndarray, quantile: float) -> np.ndarray:
        """Quantile of the per-tree predictions.

        Using an upper quantile of the ensemble (rather than the mean) gives
        conservative predictions, which Coach prefers because under-predicting
        the guaranteed portion risks contention (G2).
        """
        if not self.trees_:
            raise RuntimeError("forest has not been fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        per_tree = np.stack([tree.predict(x) for tree in self.trees_], axis=0)
        return np.percentile(per_tree, quantile * 100.0, axis=0)

    @property
    def feature_importances_(self) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest has not been fitted")
        importances = np.zeros(self.n_features_)
        for tree in self.trees_:
            importances += tree.feature_importances()
        return importances / len(self.trees_)

    def estimate_model_size_bytes(self) -> int:
        """Rough in-memory footprint, used by the Section 4.5 overhead report."""
        node_bytes = 8 * 6  # feature, threshold, left, right, value, n_samples
        return sum(tree.node_count for tree in self.trees_) * node_bytes
