"""Quantization of utilization predictions into 5% buckets.

Coach rounds predicted utilizations *up* to 5% buckets (e.g. 17.3% -> 20%)
and rounds memory allocations up to the 1 GB management granularity
(Section 3.3).  Rounding up is deliberately conservative: it can only reduce
the chance of under-allocating the guaranteed portion.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

#: Utilization bucket width used throughout the paper.
BUCKET_WIDTH = 0.05

#: Memory management granularity in GB (1 GB huge pages).
MEMORY_GRANULARITY_GB = 1.0


def bucketize(value: float, width: float = BUCKET_WIDTH) -> float:
    """Round a utilization fraction up to the next bucket boundary.

    Values are clipped to ``[0, 1]`` after rounding; tiny floating point
    overshoot (e.g. 0.2000000001) does not push the value into the next
    bucket.
    """
    if width <= 0:
        raise ValueError("bucket width must be positive")
    value = float(value)
    if value <= 0.0:
        return 0.0
    buckets = value / width
    rounded = math.ceil(buckets - 1e-9)
    return float(min(1.0, rounded * width))


def bucketize_array(values: Iterable[float] | np.ndarray,
                    width: float = BUCKET_WIDTH) -> np.ndarray:
    """Vectorised :func:`bucketize`."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=np.float64)
    buckets = np.ceil(arr / width - 1e-9)
    return np.clip(np.maximum(buckets, 0.0) * width, 0.0, 1.0)


def round_memory_up(gb: float, granularity: float = MEMORY_GRANULARITY_GB) -> float:
    """Round a memory amount up to the management granularity (1 GB)."""
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    if gb <= 0:
        return 0.0
    return float(math.ceil(gb / granularity - 1e-9) * granularity)


def bucket_centers(width: float = BUCKET_WIDTH) -> List[float]:
    """All bucket boundaries in ``(0, 1]``, useful for plotting/validation."""
    count = int(round(1.0 / width))
    return [round((i + 1) * width, 10) for i in range(count)]
