"""REP007: the tiered candidate index is only written by the row mutators.

:class:`~repro.core.scheduler.ClusterLedger` maintains a tiered candidate
index alongside the incremental caches REP006 protects: used rows bucketed
by ``score_base`` band (``_row_band`` / ``_band_members``) and one
min-heap of empty rows per capacity kind (``_empty_heaps``).  The index
contract (``docs/architecture.md``) is that every structure is maintained
inside the sanctioned mutators -- ``_refresh_row_caches`` moves the
touched row between bands/heaps via ``_index_update_row`` in the same call
that refreshes the caches, and ``rebuild_candidate_index`` is the
from-scratch bootstrap.  A write anywhere else -- in particular from the
read path of ``best_fit_row`` -- desynchronizes the index from the rows it
summarizes, and nothing fails until a placement quietly diverges from the
dense reference.

Unlike the REP006 arrays, the index mixes numpy state with Python
containers, so the rule flags three write shapes outside the sanctioned
functions:

* assignments (plain or augmented, including subscripted element writes)
  whose target is an attribute named after an index structure;
* mutating method calls (``add``/``discard``/``pop``/``append``/...) whose
  receiver expression mentions an index structure;
* ``heapq`` calls (``heappush``/``heappop``/``heapify``/...) with an index
  structure anywhere in their arguments.

Matching is by attribute name, which is exactly as strong as the
convention: nothing else in the tree uses these names, and a new collision
should either pick a different name or justify itself with a baseline
entry.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import Rule, register_rule
from repro.analysis.engine import ModuleContext

#: The tiered-index structures: band id per row, band membership sets, and
#: the per-capacity-kind empty-row heaps.
_INDEX_STRUCTURES = frozenset({
    "_row_band", "_band_members", "_empty_heaps",
})

#: Mutating container methods: set/dict/list mutation entry points.
_MUTATING_METHODS = frozenset({
    "add", "remove", "discard", "pop", "popitem", "clear", "update",
    "append", "extend", "insert", "setdefault", "fill", "sort",
})

#: heapq entry points that reorder or mutate the heap list in place.
_HEAP_FUNCTIONS = frozenset({
    "heappush", "heappop", "heapify", "heapreplace", "heappushpop",
})

#: The sanctioned maintainers: construction, the from-scratch rebuild, the
#: row mutators (which all funnel through the cache refresher), and the
#: index mover the refresher delegates to.
_ALLOWED_FUNCTIONS = frozenset({
    "__init__", "rebuild_candidate_index", "commit_row", "commit_rows",
    "release_row", "assert_row_empty", "_refresh_row_caches",
    "_index_update_row",
})


def _attribute_targets(target: ast.AST) -> Iterator[ast.Attribute]:
    """Attribute nodes written by *target*, peeling subscripts and tuples."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _attribute_targets(element)
        return
    while isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        yield target


def _index_name_in(node: ast.AST) -> Optional[str]:
    """The first index-structure attribute referenced anywhere in *node*."""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr in _INDEX_STRUCTURES:
            return child.attr
    return None


@register_rule
class CandidateIndexWriteRule(Rule):
    rule_id = "REP007"
    title = "candidate-index-direct-write"
    rationale = ("writes to the ClusterLedger tiered candidate index outside "
                 "the sanctioned mutators desynchronize the band/heap "
                 "structures from the rows they summarize")
    interests = (ast.Assign, ast.AugAssign, ast.Call)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.module.is_test:
            return
        if ctx.current_function_name() in _ALLOWED_FUNCTIONS:
            return
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for attribute in _attribute_targets(target):
                    if attribute.attr in _INDEX_STRUCTURES:
                        self._flag(node, ctx, attribute.attr, "assignment to")
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            name = _index_name_in(func.value)
            if name is not None:
                self._flag(node, ctx, name, f"`.{func.attr}()` call on")
            return
        callee = (func.id if isinstance(func, ast.Name)
                  else func.attr if isinstance(func, ast.Attribute) else None)
        if callee in _HEAP_FUNCTIONS:
            for argument in node.args:
                name = _index_name_in(argument)
                if name is not None:
                    self._flag(node, ctx, name, f"`{callee}` on")
                    return

    def _flag(self, node: ast.AST, ctx: ModuleContext, attr: str,
              verb: str) -> None:
        ctx.report(self, node,
                   f"{verb} candidate-index structure `.{attr}` in "
                   f"`{ctx.current_function_name()}`; the tiered index is "
                   f"maintained only by the sanctioned ledger mutators")
