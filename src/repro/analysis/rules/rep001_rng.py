"""REP001: unseeded RNG use -- the golden-trace-pin killer.

Every stochastic path in the repo (trace generation, forest bootstrap, LSTM
init, synthetic workloads) takes an explicit ``np.random.default_rng(seed)``
so golden-trace pins and the bitwise equivalence suites are reproducible.
One call into the *global* numpy generator -- ``np.random.normal(...)``,
``np.random.seed(...)`` -- or a ``default_rng()`` with no seed argument
reintroduces cross-run nondeterminism that no equality test can pin down.

Flagged:

* ``np.random.<anything>(...)`` attribute calls on the global generator
  (every function except the seeded-constructor allowlist below);
* ``np.random.default_rng()`` / a directly-imported ``default_rng()``
  called with no seed argument at all;
* ``np.random.RandomState()`` with no seed.

Not flagged: seeded constructors (``default_rng(seed)``, ``Generator(...)``,
``SeedSequence(...)``, bit generators), and anything in test modules -- the
repo-root ``conftest.py`` deliberately reseeds the global state as a test
safety net.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Rule, register_rule
from repro.analysis.engine import ModuleContext

_NUMPY_NAMES = {"np", "numpy"}

#: ``np.random`` members that *construct* generators (seeded at the call
#: site or wrapping an explicit bit generator) rather than drawing from the
#: global stream.
_CONSTRUCTORS = {
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}


def _is_np_random(node: ast.AST) -> bool:
    """True for the ``np.random`` / ``numpy.random`` attribute chain."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in _NUMPY_NAMES)


@register_rule
class UnseededRngRule(Rule):
    rule_id = "REP001"
    title = "unseeded-rng"
    rationale = ("global/unseeded numpy RNG breaks golden-trace pins and "
                 "bitwise equivalence suites")
    interests = (ast.Call, ast.ImportFrom)

    def begin_module(self, ctx: ModuleContext) -> None:
        # Local aliases of `from numpy.random import default_rng [as x]`.
        self._default_rng_aliases: set = set()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.module.is_test:
            return
        if isinstance(node, ast.ImportFrom):
            if node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        self._default_rng_aliases.add(alias.asname or alias.name)
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute) and _is_np_random(func.value):
            name = func.attr
            if name in ("default_rng", "RandomState"):
                if not node.args and not node.keywords:
                    ctx.report(self, node,
                               f"`np.random.{name}()` without a seed argument "
                               f"(in `{ctx.current_function_name()}`)")
            elif name not in _CONSTRUCTORS:
                ctx.report(self, node,
                           f"`np.random.{name}(...)` draws from the unseeded "
                           f"global generator "
                           f"(in `{ctx.current_function_name()}`)")
        elif isinstance(func, ast.Name) and func.id in self._default_rng_aliases:
            if not node.args and not node.keywords:
                ctx.report(self, node,
                           "`default_rng()` without a seed argument "
                           f"(in `{ctx.current_function_name()}`)")
