"""REP008: scenario randomness must derive from the scenario seed.

The scenario layer (:mod:`repro.scenarios`) promises that every random
draw in a scenario derives from the scenario's single ``seed`` through
:func:`repro.scenarios.axes.derive_rng`, which hashes ``(seed, label)``
into an independent sub-stream per axis.  That is what makes scenarios
(a) reproducible -- the golden-scenario suite pins fingerprints byte for
byte -- and (b) composable: toggling one axis cannot shift another axis's
stream, because they never share a generator.

A ``np.random.default_rng(1234)`` anywhere in the package would pass
REP001 (it is seeded!) while silently breaking both properties: its
stream is anchored to a literal instead of the scenario seed.  So inside
``repro.scenarios`` this rule flags *every* numpy RNG constructor call --
``np.random.default_rng`` / ``Generator`` / ``RandomState`` / the bit
generators, or a directly-imported ``default_rng`` -- unless it occurs
inside the sanctioned ``derive_rng`` helper itself.  Test modules are
exempt, as everywhere else in the analysis suite.

Modules outside ``repro.scenarios`` are not this rule's business: the
trace generator and simulator legitimately take raw seeds (REP001 already
polices unseeded use there).
"""

from __future__ import annotations

import ast

from repro.analysis.base import Rule, register_rule
from repro.analysis.engine import ModuleContext

_NUMPY_NAMES = {"np", "numpy"}

#: Every ``np.random`` member that constructs a generator or bit generator.
_CONSTRUCTORS = {
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

#: The one function allowed to construct a generator in the package.
_SANCTIONED_FUNCTION = "derive_rng"


def _is_np_random(node: ast.AST) -> bool:
    """True for the ``np.random`` / ``numpy.random`` attribute chain."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in _NUMPY_NAMES)


@register_rule
class ScenarioRngRule(Rule):
    rule_id = "REP008"
    title = "scenario-rng-not-derived"
    rationale = ("RNG constructed outside derive_rng anchors a scenario "
                 "axis to a literal seed, breaking golden-scenario pins "
                 "and axis composability")
    interests = (ast.Call, ast.ImportFrom)

    def begin_module(self, ctx: ModuleContext) -> None:
        # Local aliases of `from numpy.random import default_rng [as x]`.
        self._constructor_aliases: set = set()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.module.is_test:
            return
        if not ctx.module.module.startswith("repro.scenarios"):
            return
        if isinstance(node, ast.ImportFrom):
            if node.module == "numpy.random":
                for alias in node.names:
                    if alias.name in _CONSTRUCTORS:
                        self._constructor_aliases.add(alias.asname or alias.name)
            return
        assert isinstance(node, ast.Call)
        if ctx.current_function_name() == _SANCTIONED_FUNCTION:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and _is_np_random(func.value):
            if func.attr in _CONSTRUCTORS:
                ctx.report(self, node,
                           f"`np.random.{func.attr}(...)` in the scenario "
                           f"layer bypasses derive_rng(seed, label) "
                           f"(in `{ctx.current_function_name()}`)")
        elif isinstance(func, ast.Name) and func.id in self._constructor_aliases:
            ctx.report(self, node,
                       f"`{func.id}(...)` in the scenario layer bypasses "
                       f"derive_rng(seed, label) "
                       f"(in `{ctx.current_function_name()}`)")
