"""REP006: ledger demand/cache arrays are only written by the row mutators.

:class:`~repro.core.scheduler.ClusterLedger` keeps incremental caches
(``demand_sum``, ``demand_peak``, ``va_peak``, ``score_base``, ``row_used``,
``row_available``) alongside the raw accounting arrays (``demand``,
``pa_memory``, ``va_demand``).  The incremental-scoring contract
(``docs/architecture.md``) is that every mutation flows through
``commit_row`` / ``release_row`` / ``assert_row_empty`` / ``disable_row``,
which refresh the caches for the touched row in the
same method -- a direct write anywhere else desynchronizes the caches from
the arrays they summarize, and nothing fails until a placement quietly
diverges from the dense reference.

The rule flags any assignment (plain or augmented, including subscripted
element writes) whose target is an attribute named after one of those
arrays, unless the enclosing function is one of the sanctioned mutators
(or ``__init__`` / the private cache refresher).  Matching is by attribute
name, which is exactly as strong as the convention: nothing else in the
tree uses these names, and a new collision should either pick a different
name or justify itself with a baseline entry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, register_rule
from repro.analysis.engine import ModuleContext

#: Raw accounting arrays plus the incremental caches derived from them.
_LEDGER_ARRAYS = frozenset({
    "demand", "pa_memory", "va_demand",
    "demand_sum", "demand_peak", "va_peak", "score_base", "row_used",
    "row_available",
})

#: The sanctioned mutators: construction, the row mutators (single-row and
#: the batched scatter), the teardown check, the failure-injection flip,
#: and the cache refresher they all delegate to.
_ALLOWED_FUNCTIONS = frozenset({
    "__init__", "commit_row", "commit_rows", "release_row",
    "assert_row_empty", "disable_row", "_refresh_row_caches",
})


def _attribute_targets(target: ast.AST) -> Iterator[ast.Attribute]:
    """Attribute nodes written by *target*, peeling subscripts and tuples."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _attribute_targets(element)
        return
    while isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        yield target


@register_rule
class LedgerWriteRule(Rule):
    rule_id = "REP006"
    title = "ledger-direct-write"
    rationale = ("writes to ClusterLedger demand/cache arrays outside the "
                 "row mutators desynchronize the incremental score caches")
    interests = (ast.Assign, ast.AugAssign)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.module.is_test:
            return
        if ctx.current_function_name() in _ALLOWED_FUNCTIONS:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            for attribute in _attribute_targets(target):
                if attribute.attr in _LEDGER_ARRAYS:
                    ctx.report(self, node,
                               f"write to ledger array `.{attribute.attr}` in "
                               f"`{ctx.current_function_name()}`; mutate via "
                               f"commit_row/release_row so the incremental "
                               f"caches stay in sync")
