"""REP005: every columnar ``maybe_*`` twin must keep its reference loop alive.

The reference-vs-vectorized convention (``docs/architecture.md``) says a
vectorized kernel never *replaces* its seed loop -- the loop survives as
the differential-testing reference.  In ``repro.characterization`` that
contract is structural: ``columnar.py`` exports ``maybe_<stat>`` twins that
return ``None`` when a trace cannot take the columnar path, and each figure
module dispatches::

    result = columnar.maybe_<stat>(...)
    if result is not None:
        return result
    ...  # the seed per-VM loop, still the reference implementation

This cross-file rule checks that shape mechanically.  For every top-level
``maybe_*`` function defined in a ``characterization.columnar`` module it
requires, somewhere in a sibling module of the same package:

* at least one call to that twin (a twin nobody dispatches is dead code
  masquerading as coverage), and
* at least one call site whose enclosing function continues past the
  dispatch statement -- i.e. the reference fallback still exists.  A bare
  ``return columnar.maybe_x(...)`` would mean the reference loop was
  deleted and the "twin" is now the only implementation.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from repro.analysis.base import FinishReporter, Rule, register_rule
from repro.analysis.engine import ModuleInfo, Project

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_columnar_module(module: ModuleInfo) -> bool:
    parts = module.module.split(".")
    return len(parts) >= 2 and parts[-1] == "columnar" \
        and "characterization" in parts


def _called_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dispatch_sites(sibling: ModuleInfo, twin: str) -> List[bool]:
    """For each call of *twin* in *sibling*: does its enclosing function
    keep any statements after the dispatch statement (the fallback)?"""
    sites: List[bool] = []
    for func in ast.walk(sibling.tree):
        if not isinstance(func, _FUNCTION_NODES):
            continue
        for index, stmt in enumerate(func.body):
            calls_twin = any(isinstance(sub, ast.Call)
                             and _called_name(sub) == twin
                             for sub in ast.walk(stmt))
            if calls_twin:
                sites.append(index < len(func.body) - 1)
    return sites


@register_rule
class DispatchTwinRule(Rule):
    rule_id = "REP005"
    title = "dispatch-twin"
    rationale = ("a `maybe_*` columnar twin without a live reference "
                 "fallback silently retires the differential-testing loop")

    def finish(self, project: Project, report: FinishReporter) -> None:
        for columnar in project.modules:
            if not _is_columnar_module(columnar) or columnar.is_test:
                continue
            package = columnar.module.rsplit(".", 1)[0]
            siblings = [m for m in project.in_package(package)
                        if m is not columnar and not m.is_test]
            twins: Dict[str, ast.AST] = {
                stmt.name: stmt for stmt in columnar.tree.body
                if isinstance(stmt, _FUNCTION_NODES)
                and stmt.name.startswith("maybe_")}
            for name, node in twins.items():
                sites: List[bool] = []
                for sibling in siblings:
                    sites.extend(_dispatch_sites(sibling, name))
                if not sites:
                    report(columnar, node,
                           f"columnar twin `{name}` is never dispatched from "
                           f"a reference module in `{package}`")
                elif not any(sites):
                    report(columnar, node,
                           f"every dispatch of `{name}` lacks a reference "
                           "fallback after the columnar attempt")
