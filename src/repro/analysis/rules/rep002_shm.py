"""REP002: shared-memory hygiene -- segments must not outlive their owner.

``TraceStore.export_shared`` copies telemetry into POSIX shared-memory
segments that survive process exit: a leaked segment is leaked RAM until
reboot.  The repo's ownership convention (``docs/trace_store.md``) is that
the *exporting* function either cleans up in a ``finally`` (the
``simulator/sweep.py`` shape) or transfers ownership by returning the
handle to a caller who does.

Within one function, a *creation event* is either a
``SharedMemory(..., create=True)`` call or an ``<expr>.export_shared()``
call.  A function containing a creation event is clean when:

* some ``try``/``finally`` in the same function calls ``.unlink()`` or
  ``.close()`` in its ``finally`` body, or
* the created value is (part of) a ``return`` expression, or the name it
  was assigned to appears in one -- ownership transfer to the caller.

Nested function definitions are analyzed on their own, not as part of the
enclosing function.  Cleanup placed only in an ``except`` handler does not
count: the success path would still leak, so such factories must either
restructure or carry a justified baseline entry (``TraceStore.export_shared``
itself is the canonical baselined example -- its segments intentionally
outlive the call, owned by the returned handle).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.base import Rule, register_rule
from repro.analysis.engine import ModuleContext

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _walk_own(func: ast.AST) -> Iterator[ast.AST]:
    """Walk *func*'s body, not descending into nested function definitions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _FUNCTION_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _is_creation(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "export_shared":
        return True
    name = func.attr if isinstance(func, ast.Attribute) else \
        func.id if isinstance(func, ast.Name) else None
    if name != "SharedMemory":
        return False
    return any(kw.arg == "create" and isinstance(kw.value, ast.Constant)
               and kw.value.value is True for kw in node.keywords)


def _finally_cleans_up(func: ast.AST) -> bool:
    """A try/finally in *func* whose finally body unlinks or closes."""
    for node in _walk_own(func):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) \
                            and isinstance(sub.func, ast.Attribute) \
                            and sub.func.attr in ("unlink", "close"):
                        return True
    return False


@register_rule
class ShmHygieneRule(Rule):
    rule_id = "REP002"
    title = "shm-hygiene"
    rationale = ("shared-memory segments leak past process exit unless the "
                 "owner unlinks in a finally or transfers ownership")
    interests = _FUNCTION_NODES

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.module.is_test:
            return
        creation_calls: List[ast.Call] = []
        bound_to: dict = {}  # id(creation call) -> assigned name
        returned_names: set = set()
        returned_calls: set = set()
        for sub in _walk_own(node):
            if _is_creation(sub):
                creation_calls.append(sub)
            if isinstance(sub, ast.Assign) and _is_creation(sub.value) \
                    and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name):
                bound_to[id(sub.value)] = sub.targets[0].id
            elif isinstance(sub, ast.Return) and sub.value is not None:
                for ret_sub in ast.walk(sub.value):
                    if isinstance(ret_sub, ast.Name):
                        returned_names.add(ret_sub.id)
                    elif _is_creation(ret_sub):
                        returned_calls.add(id(ret_sub))
        if not creation_calls:
            return
        if _finally_cleans_up(node):
            return
        creations: List[Tuple[ast.Call, Optional[str]]] = \
            [(call, bound_to.get(id(call))) for call in creation_calls]
        for call, bound_name in creations:
            if id(call) in returned_calls:
                continue  # ownership transfer: `return ....export_shared()`
            if bound_name is not None and bound_name in returned_names:
                continue  # ownership transfer via the bound name
            kind = "export_shared()" \
                if isinstance(call.func, ast.Attribute) \
                and call.func.attr == "export_shared" else \
                "SharedMemory(create=True)"
            ctx.report(self, call,
                       f"`{kind}` in `{getattr(node, 'name', '<lambda>')}` "
                       "has no `finally` unlink/close and does not return "
                       "the created handle")
