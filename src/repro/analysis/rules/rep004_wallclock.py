"""REP004: no wall-clock reads outside the benchmarking harness.

Simulation results, sweep evaluations, and characterization statistics are
compared bitwise across meters, transports, and worker counts.  A result
that embeds ``time.time()`` / ``datetime.now()`` (or any other clock read)
can never satisfy those equality pins, and worse, fails only occasionally.
All timing therefore lives in ``repro.simulator.benchmarking``, whose
measurement dicts are reporting-only and excluded from equivalence checks;
``scripts/`` (outside the package) may also stamp records freely.

Flagged anywhere else in ``src/repro``: ``time.time/_ns``,
``time.perf_counter/_ns``, ``time.monotonic/_ns``, ``time.process_time/_ns``,
``time.localtime``, ``time.ctime``, ``datetime.now/utcnow/today``,
``date.today`` (on the ``datetime``/``date`` classes or the module).
Legitimate measurement code outside the harness (e.g. the Section-6
overhead experiments) is baselined with a justification rather than
allowlisted in the rule.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Rule, register_rule
from repro.analysis.engine import ModuleContext

#: Modules where clock reads are the whole point.
_ALLOWED_MODULES = {"repro.simulator.benchmarking"}

_TIME_FUNCS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "localtime", "ctime",
}
_DATETIME_METHODS = {"now", "utcnow", "today"}
_DATETIME_OWNERS = {"datetime", "date"}


def _datetime_owner(node: ast.AST) -> bool:
    """``datetime`` / ``date`` / ``datetime.datetime`` / ``datetime.date``."""
    if isinstance(node, ast.Name):
        return node.id in _DATETIME_OWNERS
    return (isinstance(node, ast.Attribute) and node.attr in _DATETIME_OWNERS
            and isinstance(node.value, ast.Name)
            and node.value.id == "datetime")


@register_rule
class WallClockRule(Rule):
    rule_id = "REP004"
    title = "wall-clock-in-results"
    rationale = ("clock reads outside the benchmarking harness poison "
                 "bitwise equivalence suites with nondeterminism")
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.module.is_test or ctx.module.module in _ALLOWED_MODULES:
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if isinstance(func.value, ast.Name) and func.value.id == "time" \
                and func.attr in _TIME_FUNCS:
            ctx.report(self, node,
                       f"wall-clock read `time.{func.attr}()` outside the "
                       f"benchmarking harness "
                       f"(in `{ctx.current_function_name()}`)")
        elif func.attr in _DATETIME_METHODS and _datetime_owner(func.value):
            owner = func.value.attr if isinstance(func.value, ast.Attribute) \
                else func.value.id
            ctx.report(self, node,
                       f"wall-clock read `{owner}.{func.attr}()` outside the "
                       f"benchmarking harness "
                       f"(in `{ctx.current_function_name()}`)")
