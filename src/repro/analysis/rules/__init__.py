"""Rule plugins: importing this package registers every built-in rule.

Each module holds one ``REPNNN`` rule.  Adding a rule is: write the module,
import it here, document it in ``docs/static_analysis.md``.
"""

from repro.analysis.rules import (  # noqa: F401
    rep001_rng,
    rep002_shm,
    rep003_hotpath,
    rep004_wallclock,
    rep005_twins,
    rep006_ledger,
    rep007_index,
    rep008_scenario_rng,
)
