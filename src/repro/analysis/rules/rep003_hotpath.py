"""REP003: no buffer materialization in declared hot-path modules.

Modules carrying a ``# repro: hot-path`` pragma (the scheduler ledger, the
replay meter, the trace store, the columnar characterization kernels) earn
their throughput by never copying telemetry: views slice the shared flat
buffer, workers attach shared memory zero-copy, and mmap replay streams
pages on demand.  A stray ``.copy()`` / ``.tolist()`` /
``np.ascontiguousarray`` on one of those paths silently turns an O(1) view
into an O(n) materialization -- no test fails, the perf trajectory just
bends.

The pragma is opt-in per module; within a pragma'd module every flagged
call must either be removed or carry a baseline entry explaining why the
materialization is intentional (e.g. metadata-column copies in
``TraceStore.select``, which never touch the telemetry buffer).
"""

from __future__ import annotations

import ast

from repro.analysis.base import Rule, register_rule
from repro.analysis.engine import ModuleContext

_NUMPY_NAMES = {"np", "numpy"}
_MATERIALIZING_METHODS = {"copy", "tolist"}
_MATERIALIZING_FUNCS = {"ascontiguousarray", "asfortranarray"}

#: The module-level pragma tag that opts a module into this rule.
HOT_PATH_PRAGMA = "hot-path"


@register_rule
class HotPathCopyRule(Rule):
    rule_id = "REP003"
    title = "hot-path-copy"
    rationale = ("copies in `# repro: hot-path` modules turn zero-copy views "
                 "into O(n) materializations without failing any test")
    interests = (ast.Call,)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._hot = HOT_PATH_PRAGMA in ctx.module.pragmas

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if not self._hot or ctx.module.is_test:
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _MATERIALIZING_METHODS \
                and not node.args and not node.keywords:
            ctx.report(self, node,
                       f"`.{func.attr}()` call in hot-path module "
                       f"(in `{ctx.current_function_name()}`)")
        elif isinstance(func, ast.Attribute) \
                and func.attr in _MATERIALIZING_FUNCS \
                and isinstance(func.value, ast.Name) \
                and func.value.id in _NUMPY_NAMES:
            ctx.report(self, node,
                       f"`np.{func.attr}(...)` call in hot-path module "
                       f"(in `{ctx.current_function_name()}`)")
