"""Finding model for the invariant analyzer.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: they sort by location (stable CLI/report ordering) and
expose a :meth:`key` that deliberately excludes the line number, so baseline
entries keep matching when unrelated edits shift code up or down a file
(see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    """Repo-relative POSIX path of the offending module."""

    line: int
    col: int

    rule_id: str
    """``REPNNN`` identifier of the rule that fired."""

    message: str
    """Human-readable description; stable, so baselines can match on it."""

    def key(self) -> Tuple[str, str, str]:
        """Baseline-matching key: everything except the (drifting) location."""
        return (self.rule_id, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
