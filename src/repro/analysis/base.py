"""Rule plugin interface and registry for the invariant analyzer.

A rule is a small class that inspects AST nodes (and, for cross-file rules,
the whole project) and reports findings.  Rules register themselves with
:func:`register_rule` at import time; the engine instantiates every
registered rule per run, so rule instances may keep per-run state but must
reset per-module state in :meth:`Rule.begin_module`.

The dispatch contract mirrors the repo's other plugin seams (policy configs,
workload suites): the engine walks each module's AST exactly once and hands
each node to every rule whose :attr:`Rule.interests` names that node type.
Cross-file rules (REP005) do their work in :meth:`Rule.finish`, after every
module has been parsed.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.engine import ModuleContext, Project, ModuleInfo

#: Signature of the reporting callback handed to :meth:`Rule.finish`.
FinishReporter = Callable[["ModuleInfo", ast.AST, str], None]


class Rule:
    """Base class for one mechanically-checked repo invariant."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    #: AST node types this rule wants to see during the single engine walk.
    interests: Tuple[type, ...] = ()

    def begin_module(self, ctx: "ModuleContext") -> None:
        """Reset per-module state before *ctx*'s module is walked."""

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> None:
        """Inspect one node of the current module (types from ``interests``)."""

    def finish(self, project: "Project", report: FinishReporter) -> None:
        """Cross-file pass, called once after every module has been walked."""


#: ``rule_id`` -> rule class, populated by :func:`register_rule` at import.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *cls* to :data:`RULE_REGISTRY`."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULE_REGISTRY and RULE_REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in rule-id order."""
    # Importing the rules package is what populates the registry; done here
    # (not at module import) so `repro.analysis.base` has no import cycle.
    import repro.analysis.rules  # noqa: F401

    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]
