"""Baseline file: explicit, justified suppression of pre-existing findings.

The analyzer must be able to land on a tree with known, *intentional*
violations (a factory that transfers shared-memory ownership, a measurement
harness that reads the wall clock) without either failing forever or the
rules growing ad-hoc escape hatches.  The baseline is that pressure valve:
a checked-in JSON file where every suppressed finding carries a one-line
justification, so each exemption is visible in review rather than silent in
rule code.

Matching is by :meth:`repro.analysis.findings.Finding.key` -- ``(rule,
file, message)``, no line numbers -- so unrelated edits that shift code do
not invalidate entries.  One entry suppresses *every* matching finding in
that file (messages embed the enclosing function name, which keeps the
blast radius to one function).  Entries that no longer match anything are
reported as unused so the file cannot silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: (rule, file, message) -> justification
BaselineKey = Tuple[str, str, str]


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a finding list."""

    active: List[Finding]
    suppressed: List[Finding]
    unused_entries: List[Dict[str, str]]


def load_baseline(path: Path) -> Dict[BaselineKey, str]:
    """Load ``analysis_baseline.json``; raises ``ValueError`` on bad shape."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}")
    entries: Dict[BaselineKey, str] = {}
    for entry in payload.get("entries", []):
        missing = {"rule", "file", "message", "justification"} - entry.keys()
        if missing:
            raise ValueError(f"baseline entry missing {sorted(missing)}: {entry}")
        entries[(entry["rule"], entry["file"], entry["message"])] = \
            entry["justification"]
    return entries


def apply_baseline(findings: Sequence[Finding],
                   baseline: Dict[BaselineKey, str]) -> BaselineResult:
    """Split *findings* into active vs. baseline-suppressed."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    used: set = set()
    for finding in findings:
        if finding.key() in baseline:
            used.add(finding.key())
            suppressed.append(finding)
        else:
            active.append(finding)
    unused = [{"rule": rule, "file": file, "message": message,
               "justification": baseline[(rule, file, message)]}
              for rule, file, message in sorted(baseline)
              if (rule, file, message) not in used]
    return BaselineResult(active=active, suppressed=suppressed,
                          unused_entries=unused)


def write_baseline(findings: Sequence[Finding], path: Path,
                   justifications: Dict[BaselineKey, str] | None = None) -> None:
    """Write a baseline covering *findings* (deduplicated by key).

    New entries get a ``TODO`` justification; pass *justifications* (e.g.
    the previously-loaded baseline) to carry real ones forward.
    """
    justifications = justifications or {}
    seen: Dict[BaselineKey, Dict[str, str]] = {}
    for finding in findings:
        key = finding.key()
        if key not in seen:
            seen[key] = {
                "rule": finding.rule_id,
                "file": finding.path,
                "message": finding.message,
                "justification": justifications.get(
                    key, "TODO: justify or fix this finding"),
            }
    payload = {"version": BASELINE_VERSION,
               "entries": [seen[key] for key in sorted(seen)]}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
