"""Visitor-driven analysis engine: one AST walk per module, rule dispatch.

The engine parses every ``*.py`` file under the target roots once, extracts
``# repro: <tag>`` pragmas from the raw source (the AST does not carry
comments), and walks each tree with a single :class:`ast.NodeVisitor` that
dispatches nodes to the rules interested in them.  Rules therefore pay no
per-rule traversal cost, and the walk keeps an enclosing-function stack so
rules can attribute findings to the function they occur in (which is also
what makes baseline keys stable across line drift).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.analysis.base import Rule, default_rules
from repro.analysis.findings import Finding

#: ``# repro: hot-path`` style pragma lines.  Tags are comma-separated
#: kebab-case words; anything after the tag list (e.g. a ``--`` note) is
#: commentary and deliberately not captured.
_PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<tags>[\w-]+(?:\s*,\s*[\w-]+)*)")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _module_name_for(path: Path) -> str:
    """Dotted module name inferred from *path* (anchored at ``src/`` if present)."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ModuleInfo:
    """One parsed source module plus the metadata rules key on."""

    path: str
    module: str
    source: str
    tree: ast.Module
    pragmas: FrozenSet[str]
    is_test: bool

    @classmethod
    def from_source(cls, source: str, *, path: str = "<memory>",
                    module: str = "mod") -> "ModuleInfo":
        """Build from an in-memory snippet (the unit-test entry point)."""
        tags: List[str] = []
        for match in _PRAGMA_RE.finditer(source):
            tags.extend(t.strip() for t in match.group("tags").split(","))
        name = module.rsplit(".", 1)[-1]
        is_test = name.startswith("test_") or name == "conftest" \
            or ".tests." in f".{module}."
        return cls(path=path, module=module, source=source,
                   tree=ast.parse(source, filename=path),
                   pragmas=frozenset(t for t in tags if t), is_test=is_test)

    @classmethod
    def from_path(cls, path: Path, rel_root: Optional[Path] = None) -> "ModuleInfo":
        resolved = path.resolve()
        rel_root = (rel_root or Path.cwd()).resolve()
        try:
            display = resolved.relative_to(rel_root).as_posix()
        except ValueError:
            display = resolved.as_posix()
        info = cls.from_source(path.read_text(encoding="utf-8"), path=display,
                               module=_module_name_for(Path(display)))
        parts = Path(display).parts
        if "tests" in parts:
            info.is_test = True
        return info


@dataclass
class Project:
    """Every module of one analysis run (cross-file rules see all of them)."""

    modules: List[ModuleInfo] = field(default_factory=list)

    def in_package(self, prefix: str) -> List[ModuleInfo]:
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return [m for m in self.modules
                if m.module.startswith(dotted) or m.module == prefix]


class ModuleContext:
    """Per-module state handed to rules: the module plus the function stack."""

    def __init__(self, module: ModuleInfo, sink: List[Finding]):
        self.module = module
        self._sink = sink
        self.function_stack: List[ast.AST] = []

    @property
    def current_function(self) -> Optional[ast.AST]:
        return self.function_stack[-1] if self.function_stack else None

    def current_function_name(self) -> str:
        node = self.current_function
        return getattr(node, "name", "<module>") if node else "<module>"

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        self._sink.append(Finding(
            path=self.module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=rule.rule_id,
            message=message,
        ))


class _Dispatcher(ast.NodeVisitor):
    """The single walk: pushes function scopes, fans nodes out to rules."""

    def __init__(self, interest_map: Dict[type, List[Rule]], ctx: ModuleContext):
        self._interest_map = interest_map
        self._ctx = ctx

    def visit(self, node: ast.AST) -> None:
        for rule in self._interest_map.get(type(node), ()):
            rule.visit(node, self._ctx)
        if isinstance(node, _FUNCTION_NODES):
            self._ctx.function_stack.append(node)
            self.generic_visit(node)
            self._ctx.function_stack.pop()
        else:
            self.generic_visit(node)


class AnalysisEngine:
    """Walks a project once and dispatches to the registered rules."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        self.rules: List[Rule] = list(rules) if rules is not None else default_rules()

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def analyze_paths(self, roots: Iterable[Path],
                      rel_root: Optional[Path] = None) -> List[Finding]:
        """Analyze every ``*.py`` file under *roots* (files or directories)."""
        files: List[Path] = []
        for root in roots:
            root = Path(root)
            if root.is_dir():
                files.extend(sorted(root.rglob("*.py")))
            else:
                files.append(root)
        project = Project([ModuleInfo.from_path(f, rel_root) for f in files])
        return self.analyze_project(project)

    def analyze_project(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        interest_map = self._interest_map()
        for module in project.modules:
            ctx = ModuleContext(module, findings)
            for rule in self.rules:
                rule.begin_module(ctx)
            _Dispatcher(interest_map, ctx).visit(module.tree)

        for rule in self.rules:
            def report(module: ModuleInfo, node: ast.AST, message: str,
                       _rule: Rule = rule) -> None:
                findings.append(Finding(
                    path=module.path, line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0), rule_id=_rule.rule_id,
                    message=message))

            rule.finish(project, report)
        return sorted(findings)

    def _interest_map(self) -> Dict[type, List[Rule]]:
        mapping: Dict[type, List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.interests:
                mapping.setdefault(node_type, []).append(rule)
        return mapping


def analyze_source(source: str, *, module: str = "mod", path: str = "<memory>",
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Analyze one in-memory module (convenience wrapper for rule tests)."""
    info = ModuleInfo.from_source(source, path=path, module=module)
    return AnalysisEngine(rules).analyze_project(Project([info]))
