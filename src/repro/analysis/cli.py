"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (no findings outside the baseline), 1 = active
findings, 2 = usage or I/O error.  ``--format json`` emits the full report
(findings, suppressions, unused baseline entries, rule catalog) on stdout;
``--output`` writes the same JSON to a file regardless of the stdout format,
which is what the CI job uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.base import Rule, default_rules
from repro.analysis.baseline import (
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import AnalysisEngine
from repro.analysis.findings import Finding

DEFAULT_BASELINE = "analysis_baseline.json"


def _report_payload(result: BaselineResult, rules: List[Rule],
                    paths: List[str]) -> Dict[str, object]:
    return {
        "paths": paths,
        "rules": {rule.rule_id: {"title": rule.title,
                                 "rationale": rule.rationale}
                  for rule in rules},
        "findings": [finding.to_dict() for finding in result.active],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "unused_baseline_entries": result.unused_entries,
        "counts": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "unused_baseline_entries": len(result.unused_entries),
        },
    }


def _print_text(result: BaselineResult) -> None:
    for finding in result.active:
        print(finding.format())
    for entry in result.unused_entries:
        print(f"warning: unused baseline entry {entry['rule']} "
              f"{entry['file']}: {entry['message']!r}")
    print(f"{len(result.active)} finding(s), "
          f"{len(result.suppressed)} suppressed by baseline, "
          f"{len(result.unused_entries)} unused baseline entr(ies)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro conventions "
                    "(determinism, zero-copy, shm hygiene).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="stdout format (default: text)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline JSON path (default: "
                             f"{DEFAULT_BASELINE} if it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write a baseline covering the current findings "
                             "(carrying forward existing justifications) and "
                             "exit 0")
    parser.add_argument("--output", metavar="PATH",
                        help="also write the JSON report to PATH")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    engine = AnalysisEngine(default_rules())
    if args.list_rules:
        for rule in engine.rules:
            print(f"{rule.rule_id} {rule.title}: {rule.rationale}")
        return 0

    roots = [Path(p) for p in args.paths]
    for root in roots:
        if not root.exists():
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2
    findings: List[Finding] = engine.analyze_paths(roots)

    baseline: Dict = {}
    if not args.no_baseline:
        baseline_path = Path(args.baseline) if args.baseline \
            else Path(DEFAULT_BASELINE)
        if baseline_path.exists():
            try:
                baseline = load_baseline(baseline_path)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        elif args.baseline:
            print(f"error: baseline not found: {baseline_path}",
                  file=sys.stderr)
            return 2

    if args.write_baseline:
        write_baseline(findings, Path(args.write_baseline),
                       justifications=baseline)
        print(f"wrote {len(set(f.key() for f in findings))} baseline "
              f"entr(ies) to {args.write_baseline}")
        return 0

    result = apply_baseline(findings, baseline)
    payload = _report_payload(result, engine.rules, [str(p) for p in roots])
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n",
                                     encoding="utf-8")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        _print_text(result)
    return 1 if result.active else 0
