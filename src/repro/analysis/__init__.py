"""AST-based invariant linter for the repo's own conventions.

PRs 1-5 built correctness on conventions that lived only in docs and
reviewer memory: seeded determinism end to end (golden-trace pins),
zero-copy hot paths, single-owner shared-memory cleanup, and the
reference-vs-vectorized twin contract.  This package turns those
conventions into machine-checked rules over the repo's own source --
plain :mod:`ast`, no third-party dependencies:

* :mod:`repro.analysis.engine` -- one AST walk per module, dispatching
  nodes to registered rules; ``# repro: <tag>`` pragma extraction.
* :mod:`repro.analysis.rules` -- the rule catalog (REP001 unseeded-rng,
  REP002 shm-hygiene, REP003 hot-path-copy, REP004 wall-clock-in-results,
  REP005 dispatch-twin).
* :mod:`repro.analysis.baseline` -- justified suppression of intentional
  violations (``analysis_baseline.json`` at the repo root).
* :mod:`repro.analysis.cli` -- ``python -m repro.analysis`` with text and
  JSON output; the CI job fails on any non-baselined finding.

See ``docs/static_analysis.md`` for the rule catalog and the
add-a-rule / baseline workflows.
"""

from repro.analysis.base import RULE_REGISTRY, Rule, default_rules, register_rule
from repro.analysis.baseline import (
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    AnalysisEngine,
    ModuleContext,
    ModuleInfo,
    Project,
    analyze_source,
)
from repro.analysis.findings import Finding

__all__ = [
    "AnalysisEngine",
    "BaselineResult",
    "Finding",
    "ModuleContext",
    "ModuleInfo",
    "Project",
    "RULE_REGISTRY",
    "Rule",
    "analyze_source",
    "apply_baseline",
    "default_rules",
    "load_baseline",
    "register_rule",
    "write_baseline",
]
