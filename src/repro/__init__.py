"""repro: a reproduction of Coach (ASPLOS 2025).

Coach oversubscribes all VM resources in a cloud platform by exploiting
temporal utilization patterns.  This package provides:

* ``repro.trace`` -- an Azure-like synthetic trace substrate;
* ``repro.prediction`` -- from-scratch random forests, EWMA, and LSTM
  predictors used for long-term and local utilization prediction;
* ``repro.core`` -- CoachVMs, the time-window demand formulation,
  oversubscription policies, the cluster scheduler, and the server agent;
* ``repro.simulator`` -- the server memory model and the cluster-scale
  replay engine;
* ``repro.workloads`` -- Table-2 workload models and performance experiments;
* ``repro.characterization`` -- the Section-2 analyses;
* ``repro.experiments`` -- one harness per paper figure/table.
"""

from repro.core.policy import (
    AGGR_COACH_POLICY,
    COACH_POLICY,
    NO_OVERSUBSCRIPTION_POLICY,
    SINGLE_RATE_POLICY,
    STANDARD_POLICIES,
)
from repro.core.resources import Resource, ResourceVector
from repro.trace.generator import generate_trace, small_trace
from repro.trace.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "AGGR_COACH_POLICY",
    "COACH_POLICY",
    "NO_OVERSUBSCRIPTION_POLICY",
    "Resource",
    "ResourceVector",
    "SINGLE_RATE_POLICY",
    "STANDARD_POLICIES",
    "Trace",
    "__version__",
    "generate_trace",
    "small_trace",
]
