"""Execute a scenario and reduce it to a pinnable fingerprint.

The runner replays every cluster of the scenario's trace through
:class:`~repro.simulator.engine.ClusterSimulation` (cluster-id order, the
same deterministic walk as :func:`~repro.simulator.engine.simulate_policy`)
under the no-oversubscription policy -- scenarios stress *admission*
(classes, failures, dynamics), so the prediction model is kept trivial and
training-free.  The result is a flat fingerprint dict of integer counters
plus a SHA-256 over the decision rings, which the golden-scenario suite
(``tests/test_golden_scenarios.py``) pins verbatim, and the scenario's
expected invariants are checked against the live managers and ledgers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.core.cluster_manager import build_prediction_model
from repro.core.policy import NO_OVERSUBSCRIPTION_POLICY
from repro.simulator.engine import ClusterSimulation, SimulationConfig
from repro.simulator.metrics import ViolationStats
from repro.trace.generator import TraceGenerator
from repro.scenarios.registry import Scenario, get_scenario

__all__ = ["ScenarioResult", "run_scenario", "INVARIANTS"]


@dataclass
class ScenarioResult:
    """Everything a test or the CLI needs from one scenario run."""

    scenario: Scenario
    #: Flat, pinnable counters + the decision-ring hash.
    fingerprint: Dict[str, object]
    #: Human-readable failure messages; empty when every expected
    #: invariant held.
    invariant_failures: List[str]
    #: The per-cluster simulations, in cluster-id order (live managers,
    #: ledgers and decision rings -- for tests that dig deeper).
    simulations: List[ClusterSimulation]

    @property
    def ok(self) -> bool:
        return not self.invariant_failures


def _decision_ring_hash(simulations: List[ClusterSimulation]) -> str:
    """SHA-256 over every cluster's decision ring, in cluster-id order."""
    digest = hashlib.sha256()
    for sim in simulations:
        for decision in sim.manager.scheduler.decisions:
            line = ":".join((
                sim.cluster_id,
                decision.vm_id,
                "1" if decision.accepted else "0",
                decision.server_id or "-",
                ",".join(decision.preempted),
            ))
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
    return digest.hexdigest()


# ---------------------------------------------------------------------- #
# Invariants
# ---------------------------------------------------------------------- #
def _counts_consistent(scenario: Scenario, config: SimulationConfig,
                       simulations: List[ClusterSimulation]) -> Optional[str]:
    for sim in simulations:
        stats = sim.manager.stats
        if stats.requests != stats.accepted + stats.rejected:
            return (f"{sim.cluster_id}: requests ({stats.requests}) != "
                    f"accepted ({stats.accepted}) + rejected "
                    f"({stats.rejected})")
    return None


def _ledger_nonnegative(scenario: Scenario, config: SimulationConfig,
                        simulations: List[ClusterSimulation]) -> Optional[str]:
    for sim in simulations:
        ledger = sim.manager.scheduler.ledger
        for label, array in (("demand", ledger.demand),
                             ("pa_memory", ledger.pa_memory),
                             ("va_demand", ledger.va_demand)):
            lowest = float(array.min(initial=0.0))
            if lowest < 0.0:
                return (f"{sim.cluster_id}: ledger {label} went negative "
                        f"({lowest:g}) -- release residue leak")
    return None


def _failed_servers_empty(scenario: Scenario, config: SimulationConfig,
                          simulations: List[ClusterSimulation]) -> Optional[str]:
    by_cluster = {sim.cluster_id: sim for sim in simulations}
    for event in config.failure_events:
        sim = by_cluster.get(event.cluster_id)
        if sim is None:
            continue
        server_id = f"{event.cluster_id}-s{event.server_index:03d}"
        account = sim.manager.scheduler.servers[server_id]
        if account.plans:
            return (f"{server_id} failed ({event.kind}@{event.slot}) but "
                    f"still carries {len(account.plans)} plans")
    return None


def _no_preemptions(scenario: Scenario, config: SimulationConfig,
                    simulations: List[ClusterSimulation]) -> Optional[str]:
    total = sum(sim.manager.stats.preempted for sim in simulations)
    if total:
        return f"{total} preemptions in a scenario that allows none"
    return None


#: Invariant name -> checker.  Checkers return a failure message or None.
INVARIANTS: Dict[str, Callable] = {
    "counts-consistent": _counts_consistent,
    "ledger-nonnegative": _ledger_nonnegative,
    "failed-servers-empty": _failed_servers_empty,
    "no-preemptions": _no_preemptions,
}


# ---------------------------------------------------------------------- #
# Execution
# ---------------------------------------------------------------------- #
def run_scenario(scenario: Union[str, Scenario]) -> ScenarioResult:
    """Generate the scenario's trace, replay it, fingerprint, and check."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    unknown = [name for name in scenario.expected_invariants
               if name not in INVARIANTS]
    if unknown:
        raise KeyError(f"scenario {scenario.name!r} expects unknown "
                       f"invariants: {unknown}")
    trace = TraceGenerator(scenario.generator_config()).generate()
    config = scenario.simulation_config()
    policy = NO_OVERSUBSCRIPTION_POLICY
    model = build_prediction_model(policy, [])
    simulations: List[ClusterSimulation] = []
    violation_parts: List[ViolationStats] = []
    for cluster_id in sorted(trace.cluster_ids()):
        sim = ClusterSimulation(trace, cluster_id, policy, model, config)
        violation_parts.append(sim.run().violations)
        simulations.append(sim)
    violations = ViolationStats.merge(violation_parts)
    fingerprint: Dict[str, object] = {
        "scenario": scenario.name,
        "requested": sum(sim.manager.stats.requests for sim in simulations),
        "accepted": sum(sim.manager.stats.accepted for sim in simulations),
        "rejected": sum(sim.manager.stats.rejected for sim in simulations),
        "preempted": sum(sim.manager.stats.preempted for sim in simulations),
        "evacuated": sum(sim.evacuated for sim in simulations),
        "crashed_vms": sum(sim.crashed_vms for sim in simulations),
        "failure_events": len(config.failure_events),
        "observed_server_slots": violations.observed_server_slots,
        "cpu_violation_slots": violations.cpu_violation_slots,
        "memory_violation_slots": violations.memory_violation_slots,
        "decision_ring_sha256": _decision_ring_hash(simulations),
    }
    failures = []
    for name in scenario.expected_invariants:
        message = INVARIANTS[name](scenario, config, simulations)
        if message is not None:
            failures.append(f"{name}: {message}")
    return ScenarioResult(scenario, fingerprint, failures, simulations)
