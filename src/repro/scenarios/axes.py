"""Orthogonal scenario axes: fleet shape, failures, and seed derivation.

A scenario (:mod:`repro.scenarios.registry`) composes four independent
axes on top of the trace generator and the replay engine:

* **fleet shape** -- explicit :class:`~repro.trace.hardware.ClusterConfig`
  lists built here (heterogeneous generation mixes, capacity skew);
* **workload mix** -- allocation-class weights threaded through
  :class:`~repro.trace.generator.TraceGeneratorConfig`;
* **demand dynamics** -- :class:`~repro.trace.patterns.SurgeConfig`
  overlays and flash-crowd arrival bursts (generator hooks);
* **failure injection** -- a :class:`FailurePlan` materialized into
  :class:`~repro.simulator.engine.FailureEvent` tuples.

Every random draw in this package derives from the *scenario seed* through
:func:`derive_rng` (one sub-stream per axis label), so two runs of the same
scenario are bitwise-identical and axes can be toggled without shifting
each other's streams.  REP008 (``repro.analysis``) enforces exactly that:
:func:`derive_rng` is the only sanctioned RNG constructor in this package.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.engine import FailureEvent
from repro.trace.hardware import ClusterConfig

__all__ = [
    "derive_seed", "derive_rng", "FailurePlan",
    "skewed_fleet", "memory_rich_fleet",
]


def derive_seed(seed: int, label: str) -> int:
    """Derive a labelled 64-bit sub-seed from the scenario seed.

    SHA-256 over ``"{seed}:{label}"`` keeps sub-streams independent of each
    other and stable across Python/numpy versions (unlike ``hash()``, which
    is salted per process).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """The one sanctioned RNG constructor of the scenario layer (REP008)."""
    return np.random.default_rng(derive_seed(seed, label))


# ---------------------------------------------------------------------- #
# Fleet-shape axis
# ---------------------------------------------------------------------- #
def skewed_fleet(servers_per_cluster: int = 8) -> List[ClusterConfig]:
    """Three heterogeneous clusters with deliberately skewed capacity.

    ``het-a`` mixes all four hardware generations, ``het-b`` is core-rich
    (memory strands first), and ``het-c`` is a small memory-rich cluster
    with triple the arrival share of its size -- so placement pressure and
    the bottleneck resource differ per cluster.
    """
    n = max(4, servers_per_cluster)
    quarter = max(1, n // 4)
    return [
        ClusterConfig("het-a", "region-x", (
            ("gen4-intel", quarter), ("gen5-intel", quarter),
            ("gen6-amd", quarter), ("gen7-amd", max(1, n - 3 * quarter)),
        ), arrival_weight=1.0),
        ClusterConfig("het-b", "region-x", (
            ("gen6-amd", max(1, n - quarter)), ("gen4-intel", quarter),
        ), arrival_weight=1.0),
        ClusterConfig("het-c", "region-y", (
            ("gen5-intel", max(2, n // 2)),
        ), arrival_weight=1.5),
    ]


def memory_rich_fleet(servers_per_cluster: int = 8) -> List[ClusterConfig]:
    """Two memory-rich clusters: CPU bottlenecks, memory strands."""
    n = max(2, servers_per_cluster)
    return [
        ClusterConfig("mem-a", "region-x", (("gen5-intel", n),)),
        ClusterConfig("mem-b", "region-y", (("gen5-intel", n),),
                      arrival_weight=0.8),
    ]


# ---------------------------------------------------------------------- #
# Failure-injection axis
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FailurePlan:
    """Seeded recipe for injected server failures.

    Materialization draws every event from the ``"failures"`` sub-stream of
    the scenario seed, so the same scenario always injects the same
    failures, and changing another axis (e.g. the workload mix) never moves
    them.  Drains are emitted before crashes; within a kind, events are
    drawn in order, and the engine fires slot ties in this listing order.
    """

    n_drains: int = 0
    n_crashes: int = 0
    #: Earliest slot (inclusive) at which a failure may fire.
    start_slot: int = 0
    #: Latest slot (exclusive); ``None`` means the end of the trace.
    end_slot: Optional[int] = None

    def materialize(self, seed: int, clusters: Sequence[ClusterConfig],
                    n_slots: int) -> Tuple[FailureEvent, ...]:
        if not (self.n_drains or self.n_crashes):
            return ()
        rng = derive_rng(seed, "failures")
        end = n_slots if self.end_slot is None else min(self.end_slot, n_slots)
        if end <= self.start_slot:
            raise ValueError("failure window is empty")
        events: List[FailureEvent] = []
        for kind, count in (("drain", self.n_drains),
                            ("crash", self.n_crashes)):
            for _ in range(count):
                cluster = clusters[int(rng.integers(0, len(clusters)))]
                events.append(FailureEvent(
                    slot=int(rng.integers(self.start_slot, end)),
                    cluster_id=cluster.cluster_id,
                    server_index=int(rng.integers(0, cluster.server_count)),
                    kind=kind,
                ))
        return tuple(events)
