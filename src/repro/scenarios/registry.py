"""Named, seeded scenarios composed from the orthogonal axes.

A :class:`Scenario` is pure configuration: it yields a generator config
(:meth:`Scenario.generator_config`), a simulation config
(:meth:`Scenario.simulation_config`), and the set of invariants the run is
expected to satisfy -- :mod:`repro.scenarios.runner` executes it and
:mod:`tests.test_golden_scenarios` pins its fingerprint.  Scenarios are
sized to finish in seconds so the whole registry can run in one test
session and in the ``scenario_matrix`` bench section.

All randomness derives from ``seed`` via :func:`repro.scenarios.axes.derive_seed`
(REP008): the trace uses the ``"trace"`` sub-stream, failure injection the
``"failures"`` sub-stream, so axes toggle independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.scenarios.axes import FailurePlan, derive_seed, memory_rich_fleet, skewed_fleet
from repro.simulator.engine import SimulationConfig
from repro.trace.generator import TraceGeneratorConfig
from repro.trace.hardware import ClusterConfig, default_clusters
from repro.trace.patterns import SurgeConfig
from repro.trace.timeseries import slots_for_days

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "scenario_names"]

#: Invariants every scenario must satisfy (see runner.INVARIANTS).
_BASE_INVARIANTS = ("counts-consistent", "ledger-nonnegative")


@dataclass(frozen=True)
class Scenario:
    """One named replay experiment: trace shape + dynamics + failures."""

    name: str
    description: str
    seed: int = 727
    n_vms: int = 400
    n_days: int = 7
    n_subscriptions: int = 40
    servers_per_cluster: int = 6
    #: Explicit fleet (fleet-shape axis); ``None`` = the default C1-C10 mix.
    fleet: Optional[Tuple[ClusterConfig, ...]] = None
    #: Allocation-class mix (workload-mix axis); ``None`` = all on-demand.
    allocation_class_weights: Optional[Dict[str, float]] = None
    #: Thread allocation classes into admission (reserved preempts spot).
    class_aware: bool = False
    #: Demand-dynamics axis: deterministic surge overlay + arrival bursts.
    surge: Optional[SurgeConfig] = None
    flash_crowd_slots: Tuple[int, ...] = ()
    flash_crowd_fraction: float = 0.0
    #: Failure-injection axis.
    failures: FailurePlan = field(default_factory=FailurePlan)
    #: Invariant names (runner.INVARIANTS keys) this scenario must satisfy.
    expected_invariants: Tuple[str, ...] = _BASE_INVARIANTS

    @property
    def n_slots(self) -> int:
        return slots_for_days(self.n_days)

    def clusters(self) -> List[ClusterConfig]:
        """The fleet this scenario simulates (explicit or default)."""
        if self.fleet is not None:
            return list(self.fleet)
        return default_clusters(self.servers_per_cluster)

    def generator_config(self) -> TraceGeneratorConfig:
        return TraceGeneratorConfig(
            n_vms=self.n_vms,
            n_days=self.n_days,
            n_subscriptions=self.n_subscriptions,
            seed=derive_seed(self.seed, "trace"),
            servers_per_cluster=self.servers_per_cluster,
            clusters=list(self.fleet) if self.fleet is not None else None,
            allocation_class_weights=(
                dict(self.allocation_class_weights)
                if self.allocation_class_weights is not None else None),
            surge=self.surge,
            flash_crowd_slots=self.flash_crowd_slots,
            flash_crowd_fraction=self.flash_crowd_fraction,
        )

    def simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            placement_start_slot=0,
            failure_events=self.failures.materialize(
                self.seed, self.clusters(), self.n_slots),
            class_aware_admission=self.class_aware,
        )


_CLASS_BLIND_INVARIANTS = _BASE_INVARIANTS + ("no-preemptions",)
_FAILURE_INVARIANTS = _BASE_INVARIANTS + ("failed-servers-empty",)

_SPOT_HEAVY_MIX = {
    "reserved": 0.15, "on-demand": 0.25, "spot": 0.5, "burstable": 0.1,
}
_RESERVED_HEAVY_MIX = {
    "reserved": 0.5, "on-demand": 0.3, "spot": 0.15, "burstable": 0.05,
}

#: The scenario registry, keyed by name.  Keep ``baseline`` first: it is
#: the axes-all-off reference the other fingerprints are read against.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="baseline",
            description="All axes off: default fleet, on-demand only, "
                        "no dynamics, no failures.",
            expected_invariants=_CLASS_BLIND_INVARIANTS,
        ),
        Scenario(
            name="heterogeneous-fleet",
            description="Skewed three-cluster fleet mixing all hardware "
                        "generations (fleet-shape axis only).",
            fleet=tuple(skewed_fleet(8)),
            expected_invariants=_CLASS_BLIND_INVARIANTS,
        ),
        Scenario(
            name="reserved-heavy",
            description="Class-aware admission with a reserved-dominated "
                        "mix: preemption pressure without churn.",
            n_vms=500,
            allocation_class_weights=_RESERVED_HEAVY_MIX,
            class_aware=True,
        ),
        Scenario(
            name="spot-market",
            description="Class-aware admission with a spot-dominated mix "
                        "on a small memory-rich fleet: reserved arrivals "
                        "must preempt to land.",
            n_vms=600,
            fleet=tuple(memory_rich_fleet(4)),
            allocation_class_weights=_SPOT_HEAVY_MIX,
            class_aware=True,
        ),
        Scenario(
            name="diurnal-surge",
            description="Correlated diurnal + weekly demand surge overlay "
                        "(demand-dynamics axis, deterministic in the slot).",
            surge=SurgeConfig(daily_amplitude=0.6, peak_hour=14.0,
                              weekly_amplitude=0.3, peak_weekday=1),
            expected_invariants=_CLASS_BLIND_INVARIANTS,
        ),
        Scenario(
            name="flash-crowd",
            description="A third of arrivals collapse onto two burst "
                        "instants (demand-dynamics axis).",
            flash_crowd_slots=(2 * 288 + 150, 5 * 288 + 60),
            flash_crowd_fraction=0.35,
            expected_invariants=_CLASS_BLIND_INVARIANTS,
        ),
        Scenario(
            name="drain-storm",
            description="Six seeded server drains force mass re-placement "
                        "through the batch path (failure axis).",
            failures=FailurePlan(n_drains=6, start_slot=288),
            expected_invariants=_FAILURE_INVARIANTS + ("no-preemptions",),
        ),
        Scenario(
            name="crash-heavy",
            description="Five seeded crashes: residents are lost and their "
                        "servers leave the pool (failure axis).",
            failures=FailurePlan(n_crashes=5, start_slot=288),
            expected_invariants=_FAILURE_INVARIANTS + ("no-preemptions",),
        ),
        Scenario(
            name="spot-churn-with-crashes",
            description="Everything on: spot-heavy class-aware admission, "
                        "surge + flash crowd, drains and crashes on a "
                        "skewed fleet.",
            n_vms=600,
            fleet=tuple(skewed_fleet(6)),
            allocation_class_weights=_SPOT_HEAVY_MIX,
            class_aware=True,
            surge=SurgeConfig(daily_amplitude=0.5, peak_hour=13.0,
                              weekly_amplitude=0.25, peak_weekday=2),
            flash_crowd_slots=(3 * 288 + 96,),
            flash_crowd_fraction=0.25,
            failures=FailurePlan(n_drains=3, n_crashes=2, start_slot=288),
            expected_invariants=_FAILURE_INVARIANTS,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_names() -> List[str]:
    return list(SCENARIOS)
