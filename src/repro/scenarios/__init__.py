"""Composable scenario engine over the trace generator and replay engine.

``python -m repro.scenarios <name>`` runs one registered scenario end to
end; ``python -m repro.scenarios --list`` enumerates the registry.  See
:mod:`repro.scenarios.registry` for the scenario catalogue and
:mod:`repro.scenarios.axes` for the orthogonal axes they compose.
"""

from repro.scenarios.axes import FailurePlan, derive_rng, derive_seed
from repro.scenarios.registry import SCENARIOS, Scenario, get_scenario, scenario_names
from repro.scenarios.runner import INVARIANTS, ScenarioResult, run_scenario

__all__ = [
    "FailurePlan", "derive_rng", "derive_seed",
    "SCENARIOS", "Scenario", "get_scenario", "scenario_names",
    "INVARIANTS", "ScenarioResult", "run_scenario",
]
