"""CLI: run one scenario end to end and print its fingerprint.

Exit status is 0 when every expected invariant held, 1 otherwise (and 2
for an unknown scenario name), so the command slots into shell checks:

    python -m repro.scenarios --list
    python -m repro.scenarios spot-churn-with-crashes
    python -m repro.scenarios baseline --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.scenarios.registry import SCENARIOS, scenario_names
from repro.scenarios.runner import run_scenario


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run a registered scenario and print its fingerprint.")
    parser.add_argument("name", nargs="?", help="scenario name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--json", action="store_true",
                        help="print the fingerprint as JSON")
    args = parser.parse_args(argv)

    if args.list or args.name is None:
        width = max(len(name) for name in SCENARIOS)
        for name in scenario_names():
            print(f"{name:<{width}}  {SCENARIOS[name].description}")
        return 0

    if args.name not in SCENARIOS:
        known = ", ".join(scenario_names())
        print(f"unknown scenario {args.name!r} (known: {known})",
              file=sys.stderr)
        return 2

    result = run_scenario(args.name)
    if args.json:
        print(json.dumps(result.fingerprint, indent=2, sort_keys=True))
    else:
        for key, value in result.fingerprint.items():
            print(f"{key}: {value}")
    for name in result.scenario.expected_invariants:
        print(f"invariant {name}: "
              + ("FAIL" if any(failure.startswith(f"{name}:")
                               for failure in result.invariant_failures)
                 else "ok"))
    for failure in result.invariant_failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
