"""Underutilization characterization (Section 2.3, Figure 6)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.characterization import columnar
from repro.core.resources import Resource
from repro.trace.trace import Trace


def utilization_scatter(trace: Trace, min_days: float = 1.0) -> Dict[str, List[float]]:
    """Figure 6: mean utilization and P95-P5 range for CPU and memory per VM.

    Store-backed traces take the columnar path (segment means plus one
    sorted-segment percentile pass); the per-VM loop below is the reference
    implementation and stays bitwise-identical on float64 stores.
    """
    result = columnar.maybe_utilization_scatter(trace, min_days)
    if result is not None:
        return result
    rows: Dict[str, List[float]] = {
        "vm_id": [], "cpu_mean": [], "memory_mean": [],
        "cpu_range": [], "memory_range": [],
        "network_mean": [], "ssd_mean": [],
    }
    for vm in trace.long_running(min_days):
        rows["vm_id"].append(vm.vm_id)
        rows["cpu_mean"].append(vm.mean_utilization(Resource.CPU))
        rows["memory_mean"].append(vm.mean_utilization(Resource.MEMORY))
        rows["cpu_range"].append(vm.series(Resource.CPU).utilization_range())
        rows["memory_range"].append(vm.series(Resource.MEMORY).utilization_range())
        rows["network_mean"].append(vm.mean_utilization(Resource.NETWORK))
        rows["ssd_mean"].append(vm.mean_utilization(Resource.SSD))
    return rows


def utilization_summary(trace: Trace, min_days: float = 1.0) -> Dict[str, float]:
    """Headline statistics quoted in the Section 2.3 text."""
    scatter = utilization_scatter(trace, min_days)
    cpu_mean = np.asarray(scatter["cpu_mean"])
    mem_range = np.asarray(scatter["memory_range"])
    cpu_range = np.asarray(scatter["cpu_range"])
    if cpu_mean.size == 0:
        return {"n_vms": 0.0}
    return {
        "n_vms": float(cpu_mean.size),
        "fraction_cpu_mean_below_50": float(np.mean(cpu_mean < 0.5)),
        "median_cpu_range": float(np.median(cpu_range)),
        "median_memory_range": float(np.median(mem_range)),
        "fraction_memory_range_below_10": float(np.mean(mem_range < 0.10)),
        "fraction_memory_range_above_50": float(np.mean(mem_range > 0.50)),
        "cpu_memory_mean_correlation": float(np.corrcoef(
            scatter["cpu_mean"], scatter["memory_mean"])[0, 1])
        if cpu_mean.size > 1 else 0.0,
    }
