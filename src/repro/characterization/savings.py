"""Potential savings from time-window packing (Section 2.3, Figures 10 and 11).

The savings of a VM in a time window is the difference between its lifetime
maximum utilization (what a pattern-oblivious oversubscriber must reserve) and
its maximum utilization within that window (what a time-window-aware packer
reserves).  ``ideal`` multiplexes every 5-minute slot individually.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.characterization import columnar
from repro.core.resources import Resource
from repro.trace.timeseries import SLOTS_PER_DAY, SWEEP_WINDOW_HOURS, TimeWindowConfig
from repro.trace.trace import Trace
from repro.trace.vm import VMRecord


def vm_window_savings(vm: VMRecord, resource: Resource,
                      window_hours: Optional[int]) -> float:
    """Average savings fraction for one VM.

    ``window_hours=None`` computes the ideal (per-slot) savings.  The result
    is the mean over time of ``lifetime_max - window_max``, as a fraction of
    the allocated resource.
    """
    series = vm.series(resource)
    lifetime_max = series.maximum()
    if window_hours is None:
        return float(np.mean(lifetime_max - series.values))
    config = TimeWindowConfig(window_hours)
    per_day = series.window_max_per_day(config)
    valid = ~np.isnan(per_day)
    if not valid.any():
        return 0.0
    return float(np.mean(lifetime_max - per_day[valid]))


def cluster_savings(trace: Trace, cluster_id: Optional[str] = None,
                    window_hours_sweep: Sequence[Optional[int]] = SWEEP_WINDOW_HOURS,
                    include_ideal: bool = True, min_days: float = 1.0
                    ) -> Dict[str, Dict[str, float]]:
    """Figure 10/11 input: mean savings per window length for one cluster.

    Returns ``{window_label: {"cpu": pct, "memory": pct}}`` where the label is
    e.g. ``"4x6hr"`` or ``"ideal"`` and values are percentages of allocated
    resources saved, averaged across VMs.
    """
    result = columnar.maybe_cluster_savings(trace, cluster_id, window_hours_sweep,
                                            include_ideal, min_days)
    if result is not None:
        return result
    vms = trace.long_running(min_days).vms
    if cluster_id is not None:
        vms = [vm for vm in vms if vm.cluster_id == cluster_id]
    sweep: List[Optional[int]] = list(window_hours_sweep)
    if include_ideal:
        sweep.append(None)

    results: Dict[str, Dict[str, float]] = {}
    for window_hours in sweep:
        label = "ideal" if window_hours is None else f"{24 // window_hours}x{window_hours}hr"
        cpu = [vm_window_savings(vm, Resource.CPU, window_hours) for vm in vms]
        mem = [vm_window_savings(vm, Resource.MEMORY, window_hours) for vm in vms]
        results[label] = {
            "cpu": 100.0 * float(np.mean(cpu)) if cpu else 0.0,
            "memory": 100.0 * float(np.mean(mem)) if mem else 0.0,
        }
    return results


def weekly_savings_profile(trace: Trace, cluster_id: Optional[str] = None,
                           window_hours_sweep: Sequence[int] = SWEEP_WINDOW_HOURS,
                           min_days: float = 1.0) -> Dict[str, Dict[str, List[float]]]:
    """Figure 10: per-day savings for one cluster across window lengths.

    Returns ``{label: {"cpu": [pct per day], "memory": [...]}}``.
    """
    result = columnar.maybe_weekly_savings_profile(trace, cluster_id,
                                                   window_hours_sweep, min_days)
    if result is not None:
        return result
    vms = trace.long_running(min_days).vms
    if cluster_id is not None:
        vms = [vm for vm in vms if vm.cluster_id == cluster_id]
    n_days = int(np.ceil(trace.n_days))

    results: Dict[str, Dict[str, List[float]]] = {}
    for window_hours in window_hours_sweep:
        config = TimeWindowConfig(window_hours)
        cpu_by_day = [[] for _ in range(n_days)]
        mem_by_day = [[] for _ in range(n_days)]
        for vm in vms:
            for resource, target in ((Resource.CPU, cpu_by_day), (Resource.MEMORY, mem_by_day)):
                series = vm.series(resource)
                lifetime_max = series.maximum()
                per_day = series.window_max_per_day(config)
                first_day = vm.start_slot // SLOTS_PER_DAY
                for offset in range(per_day.shape[0]):
                    day = first_day + offset
                    if day >= n_days:
                        continue
                    row = per_day[offset]
                    valid = row[~np.isnan(row)]
                    if valid.size:
                        target[day].append(float(np.mean(lifetime_max - valid)))
        label = f"{24 // window_hours}x{window_hours}hr"
        results[label] = {
            "cpu": [100.0 * float(np.mean(day)) if day else 0.0 for day in cpu_by_day],
            "memory": [100.0 * float(np.mean(day)) if day else 0.0 for day in mem_by_day],
        }
    return results


def savings_distribution(trace: Trace,
                         window_hours_sweep: Sequence[Optional[int]] = SWEEP_WINDOW_HOURS,
                         include_ideal: bool = True, min_days: float = 1.0
                         ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 11: distribution of per-cluster savings across all clusters.

    Returns ``{label: {"cpu": stats, "memory": stats}}`` where stats contains
    the min/P25/median/P75/max of the per-cluster mean savings -- the numbers
    a violin plot would display.
    """
    per_cluster = {cluster_id: cluster_savings(trace, cluster_id, window_hours_sweep,
                                               include_ideal, min_days)
                   for cluster_id in trace.cluster_ids()}
    labels = next(iter(per_cluster.values())).keys() if per_cluster else []

    def stats(values: List[float]) -> Dict[str, float]:
        if not values:
            return {k: 0.0 for k in ("min", "p25", "median", "p75", "max")}
        arr = np.asarray(values)
        return {
            "min": float(arr.min()),
            "p25": float(np.percentile(arr, 25)),
            "median": float(np.median(arr)),
            "p75": float(np.percentile(arr, 75)),
            "max": float(arr.max()),
        }

    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for label in labels:
        cpu_values = [per_cluster[c][label]["cpu"] for c in per_cluster]
        mem_values = [per_cluster[c][label]["memory"] for c in per_cluster]
        result[label] = {"cpu": stats(cpu_values), "memory": stats(mem_values)}
    return result
