"""History-based predictability of new VMs (Section 2.3, Figure 12).

For every VM created in the second week of the trace, prior VMs from the same
group (subscription, VM configuration, or both) observed in the first week
are collected; the number of matches and the spread of their peak utilization
measure how predictive the grouping is, and comparing each VM's actual peak
with the group's average peak measures accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.resources import Resource
from repro.trace.timeseries import SLOTS_PER_DAY
from repro.trace.trace import Trace
from repro.trace.vm import VMRecord

#: The three groupings compared in Figure 12.
GROUPINGS = ("subscription", "configuration", "subscription+configuration")


def _group_key(vm: VMRecord, grouping: str) -> Tuple[str, ...]:
    if grouping == "subscription":
        return (vm.subscription_id,)
    if grouping == "configuration":
        return (vm.config.name,)
    if grouping == "subscription+configuration":
        return (vm.subscription_id, vm.config.name)
    raise ValueError(f"unknown grouping {grouping!r}; expected one of {GROUPINGS}")


def group_predictability(trace: Trace, resource: Resource = Resource.MEMORY,
                         split_slot: int | None = None,
                         min_lifetime_days: float = 0.25
                         ) -> Dict[str, Dict[str, List[float]]]:
    """Figure 12: per-VM history size, utilization range, and prediction error.

    Returns, per grouping, parallel lists with one entry per second-week VM:
    the number of matching prior VMs, the range (max - min, in percent) of
    their peak utilization, and the absolute difference (in percent) between
    the VM's actual peak and the group's mean peak.
    """
    split = split_slot if split_slot is not None else 7 * SLOTS_PER_DAY
    history, future = trace.split_at(split)
    history_vms = [vm for vm in history.vms
                   if vm.lifetime_days >= min_lifetime_days and vm.has_utilization()]
    future_vms = [vm for vm in future.vms
                  if vm.lifetime_days >= min_lifetime_days and vm.has_utilization()]

    results: Dict[str, Dict[str, List[float]]] = {}
    for grouping in GROUPINGS:
        groups: Dict[Tuple[str, ...], List[float]] = {}
        for vm in history_vms:
            groups.setdefault(_group_key(vm, grouping), []).append(
                vm.max_utilization(resource))

        match_counts: List[float] = []
        ranges: List[float] = []
        errors: List[float] = []
        for vm in future_vms:
            peaks = groups.get(_group_key(vm, grouping), [])
            match_counts.append(float(len(peaks)))
            if peaks:
                arr = np.asarray(peaks)
                ranges.append(100.0 * float(arr.max() - arr.min()))
                errors.append(100.0 * abs(vm.max_utilization(resource) - float(arr.mean())))
            else:
                ranges.append(100.0)
                errors.append(100.0)
        results[grouping] = {
            "matching_vms": match_counts,
            "peak_range_pct": ranges,
            "prediction_error_pct": errors,
        }
    return results


def predictability_summary(trace: Trace, resource: Resource = Resource.MEMORY,
                           tolerance_pct: float = 10.0,
                           **kwargs) -> Dict[str, Dict[str, float]]:
    """Headline numbers from Figure 12: median match count, median range, and
    the fraction of VMs predicted within ``tolerance_pct`` of their peak."""
    detail = group_predictability(trace, resource, **kwargs)
    summary: Dict[str, Dict[str, float]] = {}
    for grouping, rows in detail.items():
        matches = np.asarray(rows["matching_vms"])
        ranges = np.asarray(rows["peak_range_pct"])
        errors = np.asarray(rows["prediction_error_pct"])
        matched = matches > 0
        summary[grouping] = {
            "median_matching_vms": float(np.median(matches)) if matches.size else 0.0,
            "median_peak_range_pct": float(np.median(ranges[matched]))
            if matched.any() else 100.0,
            "fraction_within_tolerance": float(np.mean(errors[matched] <= tolerance_pct))
            if matched.any() else 0.0,
            "fraction_with_history": float(np.mean(matched)) if matches.size else 0.0,
        }
    return summary
