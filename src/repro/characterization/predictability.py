"""History-based predictability of new VMs (Section 2.3, Figure 12).

For every VM created in the second week of the trace, prior VMs from the same
group (subscription, VM configuration, or both) observed in the first week
are collected; the number of matches and the spread of their peak utilization
measure how predictive the grouping is, and comparing each VM's actual peak
with the group's average peak measures accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.characterization import columnar
from repro.core.resources import Resource
from repro.trace.timeseries import SLOTS_PER_DAY
from repro.trace.trace import Trace
from repro.trace.vm import VMRecord

#: The three groupings compared in Figure 12.
GROUPINGS = ("subscription", "configuration", "subscription+configuration")


def _group_key(vm: VMRecord, grouping: str) -> Tuple[str, ...]:
    if grouping == "subscription":
        return (vm.subscription_id,)
    if grouping == "configuration":
        return (vm.config.name,)
    if grouping == "subscription+configuration":
        return (vm.subscription_id, vm.config.name)
    raise ValueError(f"unknown grouping {grouping!r}; expected one of {GROUPINGS}")


def _column_keys(subscriptions: np.ndarray, config_names: np.ndarray,
                 grouping: str) -> List[Tuple[str, ...]]:
    """Per-row group keys from the store's metadata columns."""
    if grouping == "subscription":
        return [(sid,) for sid in subscriptions]
    if grouping == "configuration":
        return [(name,) for name in config_names]
    if grouping == "subscription+configuration":
        return list(zip(subscriptions, config_names))
    raise ValueError(f"unknown grouping {grouping!r}; expected one of {GROUPINGS}")


def _columnar_detail(history_store, history_peaks: np.ndarray, future_store,
                     future_peaks: np.ndarray) -> Dict[str, Dict[str, List[float]]]:
    """The grouping statistics over columnar feature extraction.

    The telemetry-heavy step (per-VM peak utilization) arrives precomputed
    as one segment-max column per side; what remains is metadata grouping.
    Each group's range/mean is computed once instead of once per matching
    future VM, which changes nothing numerically (same array every time).
    """
    history_columns = (history_store.subscription_ids,
                       history_store.config_names())
    future_columns = (future_store.subscription_ids, future_store.config_names())
    results: Dict[str, Dict[str, List[float]]] = {}
    for grouping in GROUPINGS:
        groups: Dict[Tuple[str, ...], List[float]] = {}
        for key, peak in zip(_column_keys(*history_columns, grouping),
                             history_peaks):
            groups.setdefault(key, []).append(float(peak))
        group_stats: Dict[Tuple[str, ...], Tuple[float, float, float]] = {}
        for key, peaks in groups.items():
            arr = np.asarray(peaks)
            group_stats[key] = (float(len(peaks)),
                                100.0 * float(arr.max() - arr.min()),
                                float(arr.mean()))
        match_counts: List[float] = []
        ranges: List[float] = []
        errors: List[float] = []
        for key, peak in zip(_column_keys(*future_columns, grouping),
                             future_peaks):
            stats = group_stats.get(key)
            if stats is None:
                match_counts.append(0.0)
                ranges.append(100.0)
                errors.append(100.0)
            else:
                count, peak_range, mean = stats
                match_counts.append(count)
                ranges.append(peak_range)
                errors.append(100.0 * abs(float(peak) - mean))
        results[grouping] = {
            "matching_vms": match_counts,
            "peak_range_pct": ranges,
            "prediction_error_pct": errors,
        }
    return results


def group_predictability(trace: Trace, resource: Resource = Resource.MEMORY,
                         split_slot: int | None = None,
                         min_lifetime_days: float = 0.25
                         ) -> Dict[str, Dict[str, List[float]]]:
    """Figure 12: per-VM history size, utilization range, and prediction error.

    Returns, per grouping, parallel lists with one entry per second-week VM:
    the number of matching prior VMs, the range (max - min, in percent) of
    their peak utilization, and the absolute difference (in percent) between
    the VM's actual peak and the group's mean peak.
    """
    split = split_slot if split_slot is not None else 7 * SLOTS_PER_DAY
    features = columnar.maybe_predictability_features(trace, resource, split,
                                                      min_lifetime_days)
    if features is not None:
        return _columnar_detail(*features)
    history, future = trace.split_at(split)
    history_vms = [vm for vm in history.vms
                   if vm.lifetime_days >= min_lifetime_days and vm.has_utilization()]
    future_vms = [vm for vm in future.vms
                  if vm.lifetime_days >= min_lifetime_days and vm.has_utilization()]

    results: Dict[str, Dict[str, List[float]]] = {}
    for grouping in GROUPINGS:
        groups: Dict[Tuple[str, ...], List[float]] = {}
        for vm in history_vms:
            groups.setdefault(_group_key(vm, grouping), []).append(
                vm.max_utilization(resource))

        match_counts: List[float] = []
        ranges: List[float] = []
        errors: List[float] = []
        for vm in future_vms:
            peaks = groups.get(_group_key(vm, grouping), [])
            match_counts.append(float(len(peaks)))
            if peaks:
                arr = np.asarray(peaks)
                ranges.append(100.0 * float(arr.max() - arr.min()))
                errors.append(100.0 * abs(vm.max_utilization(resource) - float(arr.mean())))
            else:
                ranges.append(100.0)
                errors.append(100.0)
        results[grouping] = {
            "matching_vms": match_counts,
            "peak_range_pct": ranges,
            "prediction_error_pct": errors,
        }
    return results


def predictability_summary(trace: Trace, resource: Resource = Resource.MEMORY,
                           tolerance_pct: float = 10.0,
                           **kwargs) -> Dict[str, Dict[str, float]]:
    """Headline numbers from Figure 12: median match count, median range, and
    the fraction of VMs predicted within ``tolerance_pct`` of their peak."""
    detail = group_predictability(trace, resource, **kwargs)
    summary: Dict[str, Dict[str, float]] = {}
    for grouping, rows in detail.items():
        matches = np.asarray(rows["matching_vms"])
        ranges = np.asarray(rows["peak_range_pct"])
        errors = np.asarray(rows["prediction_error_pct"])
        matched = matches > 0
        summary[grouping] = {
            "median_matching_vms": float(np.median(matches)) if matches.size else 0.0,
            "median_peak_range_pct": float(np.median(ranges[matched]))
            if matched.any() else 100.0,
            "fraction_within_tolerance": float(np.mean(errors[matched] <= tolerance_pct))
            if matched.any() else 0.0,
            "fraction_with_history": float(np.mean(matched)) if matches.size else 0.0,
        }
    return summary
