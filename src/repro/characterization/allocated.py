"""Characterization of allocated resources (Section 2.1, Figures 2 and 3)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.characterization import columnar
from repro.core.resources import Resource
from repro.trace.trace import Trace

#: Duration thresholds of Figure 2, in hours.
DURATION_THRESHOLDS_HOURS: Sequence[float] = (
    5 / 60, 0.5, 1, 2, 6, 12, 24, 48, 96, 168)

#: Size thresholds of Figure 3.
CORE_THRESHOLDS: Sequence[int] = (1, 2, 4, 8, 16, 32, 40)
MEMORY_THRESHOLDS_GB: Sequence[int] = (4, 8, 16, 32, 64, 128, 256, 512)


def resource_hours_by_duration(trace: Trace,
                               thresholds_hours: Sequence[float] = DURATION_THRESHOLDS_HOURS,
                               ) -> Dict[str, List[float]]:
    """Figure 2: share of resource-hours and of VMs from VMs lasting longer
    than each duration threshold."""
    columns = columnar.duration_columns(trace)
    if columns is not None:
        durations, cpu_hours, mem_hours = columns
    else:
        durations = np.array([vm.lifetime_hours for vm in trace.vms])
        cpu_hours = np.array([vm.resource_hours(Resource.CPU) for vm in trace.vms])
        mem_hours = np.array([vm.resource_hours(Resource.MEMORY) for vm in trace.vms])
    total_cpu = max(cpu_hours.sum(), 1e-9)
    total_mem = max(mem_hours.sum(), 1e-9)
    n_vms = max(len(trace.vms), 1)

    rows: Dict[str, List[float]] = {"threshold_hours": [], "cpu_hours_pct": [],
                                    "memory_hours_pct": [], "vms_pct": []}
    for threshold in thresholds_hours:
        mask = durations > threshold
        rows["threshold_hours"].append(float(threshold))
        rows["cpu_hours_pct"].append(100.0 * float(cpu_hours[mask].sum()) / total_cpu)
        rows["memory_hours_pct"].append(100.0 * float(mem_hours[mask].sum()) / total_mem)
        rows["vms_pct"].append(100.0 * float(mask.sum()) / n_vms)
    return rows


def resource_hours_by_size(trace: Trace,
                           core_thresholds: Sequence[int] = CORE_THRESHOLDS,
                           memory_thresholds: Sequence[int] = MEMORY_THRESHOLDS_GB,
                           ) -> Dict[str, Dict[str, List[float]]]:
    """Figure 3: share of resource-hours and of VMs from VMs at least as large
    as each size threshold (cores on the left, memory on the right)."""
    columns = columnar.size_columns(trace)
    if columns is not None:
        cores, memory, cpu_hours, mem_hours = columns
    else:
        cores = np.array([vm.config.cores for vm in trace.vms])
        memory = np.array([vm.config.memory_gb for vm in trace.vms])
        cpu_hours = np.array([vm.resource_hours(Resource.CPU) for vm in trace.vms])
        mem_hours = np.array([vm.resource_hours(Resource.MEMORY) for vm in trace.vms])
    total_cpu = max(cpu_hours.sum(), 1e-9)
    total_mem = max(mem_hours.sum(), 1e-9)
    n_vms = max(len(trace.vms), 1)

    by_cores: Dict[str, List[float]] = {"threshold": [], "resource_hours_pct": [], "vms_pct": []}
    for threshold in core_thresholds:
        mask = cores >= threshold
        by_cores["threshold"].append(float(threshold))
        by_cores["resource_hours_pct"].append(100.0 * float(cpu_hours[mask].sum()) / total_cpu)
        by_cores["vms_pct"].append(100.0 * float(mask.sum()) / n_vms)

    by_memory: Dict[str, List[float]] = {"threshold": [], "resource_hours_pct": [], "vms_pct": []}
    for threshold in memory_thresholds:
        mask = memory >= threshold
        by_memory["threshold"].append(float(threshold))
        by_memory["resource_hours_pct"].append(100.0 * float(mem_hours[mask].sum()) / total_mem)
        by_memory["vms_pct"].append(100.0 * float(mask.sum()) / n_vms)

    return {"cores": by_cores, "memory": by_memory}


def median_vm_shape(trace: Trace) -> Dict[str, float]:
    """Median VM size statistics quoted in Section 2.1."""
    result = columnar.maybe_median_vm_shape(trace)
    if result is not None:
        return result
    cores = sorted(vm.config.cores for vm in trace.vms)
    memory = sorted(vm.config.memory_gb for vm in trace.vms)
    mid = len(cores) // 2
    return {
        "median_cores": float(cores[mid]) if cores else 0.0,
        "median_memory_gb": float(memory[mid]) if memory else 0.0,
        "n_vms": float(len(cores)),
    }
