"""Stranded-resource characterization (Section 2.2, Figures 4 and 5).

To measure stranding, hypothetical VMs of the most typical configuration
(4 GB/core D-series) are packed onto each server until one resource is
exhausted; whatever remains unallocated is stranded, and the exhausted
resource is the server's bottleneck.  Oversubscribing CPU (or CPU and memory)
lets the hypothetical fill also use underutilized allocated resources,
shifting both stranding and the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.characterization import columnar
from repro.core.resources import ALL_RESOURCES, Resource
from repro.trace.timeseries import SLOTS_PER_DAY
from repro.trace.trace import Trace
from repro.trace.vm import TYPICAL_VM_CONFIG, VMConfig

#: The three oversubscription scenarios of Figures 4 and 5.
OVERSUBSCRIPTION_SCENARIOS = ("no-oversub", "cpu-only", "cpu+memory")


@dataclass
class StrandingResult:
    """Aggregated stranding statistics for one scenario."""

    scenario: str
    #: Mean stranded fraction per resource (over servers and sampled slots).
    stranded_fraction: Dict[Resource, float]
    #: Fraction of (server, slot) samples where each resource is the
    #: bottleneck for new allocations.
    bottleneck_fraction: Dict[Resource, float]
    #: Per-cluster bottleneck fractions (cluster -> resource -> fraction).
    per_cluster_bottleneck: Dict[str, Dict[Resource, float]]


def _oversubscribable(scenario: str) -> Dict[Resource, bool]:
    if scenario == "no-oversub":
        return {r: False for r in ALL_RESOURCES}
    if scenario == "cpu-only":
        return {r: r is Resource.CPU for r in ALL_RESOURCES}
    if scenario == "cpu+memory":
        return {r: r in (Resource.CPU, Resource.MEMORY) for r in ALL_RESOURCES}
    raise ValueError(f"unknown scenario {scenario!r}; expected one of "
                     f"{OVERSUBSCRIPTION_SCENARIOS}")


def _fill_server(free: Dict[Resource, float], fill_vm: VMConfig) -> Resource:
    """Pack hypothetical VMs into the free vector; return the bottleneck resource."""
    demand = fill_vm.allocation_vector()
    fits = {r: (free[r] / demand[r] if demand[r] > 0 else np.inf) for r in ALL_RESOURCES}
    n_fit = int(max(0.0, min(fits.values())))
    for resource in ALL_RESOURCES:
        free[resource] -= n_fit * demand[resource]
    # After filling, the bottleneck is the resource that can fit the fewest
    # additional VMs (ties broken by canonical order).
    remaining = {r: (free[r] / demand[r] if demand[r] > 0 else np.inf) for r in ALL_RESOURCES}
    return min(ALL_RESOURCES, key=lambda r: remaining[r])


def measure_stranding(trace: Trace, scenario: str = "no-oversub",
                      fill_vm: VMConfig = TYPICAL_VM_CONFIG,
                      sample_every_slots: int = SLOTS_PER_DAY // 4,
                      clusters: Optional[Sequence[str]] = None) -> StrandingResult:
    """Measure stranding and bottlenecks for one oversubscription scenario.

    For every sampled slot and every server-equivalent of capacity in each
    cluster, VMs alive at that slot are assigned their requested allocation
    (or their utilized amount for oversubscribed resources), hypothetical fill
    VMs are packed into the remainder, and the leftovers are stranded.
    """
    oversub = _oversubscribable(scenario)
    cluster_ids = list(clusters) if clusters else trace.cluster_ids()
    slots = range(0, trace.n_slots, max(1, sample_every_slots))
    # Store-backed traces evaluate every cluster's per-slot free vector and
    # bottleneck in a handful of array passes; the totals below still
    # accumulate slot by slot in the seed loop's order, so the sequential
    # float additions (and every reported fraction) stay bitwise identical.
    columnar_inputs = columnar.maybe_stranding_inputs(
        trace, oversub, fill_vm, sample_every_slots, cluster_ids)

    stranded_totals = {r: 0.0 for r in ALL_RESOURCES}
    capacity_totals = {r: 0.0 for r in ALL_RESOURCES}
    bottleneck_counts = {r: 0 for r in ALL_RESOURCES}
    per_cluster_counts: Dict[str, Dict[Resource, int]] = {}
    samples = 0

    for cluster_id in cluster_ids:
        cluster = trace.fleet.get(cluster_id)
        capacity = cluster.total_capacity()
        cluster_counts = {r: 0 for r in ALL_RESOURCES}
        cluster_samples = 0

        if columnar_inputs is not None:
            free_matrix, bottleneck_index = columnar_inputs[cluster_id]
            for j, _slot in enumerate(slots):
                bottleneck = ALL_RESOURCES[bottleneck_index[j]]
                samples += 1
                cluster_samples += 1
                bottleneck_counts[bottleneck] += 1
                cluster_counts[bottleneck] += 1
                for r_index, resource in enumerate(ALL_RESOURCES):
                    stranded_totals[resource] += float(free_matrix[r_index, j])
                    capacity_totals[resource] += capacity[resource]
        else:
            cluster_vms = [vm for vm in trace.vms if vm.cluster_id == cluster_id]
            for slot in slots:
                alive = [vm for vm in cluster_vms if vm.alive_at(slot)]
                used = {r: 0.0 for r in ALL_RESOURCES}
                for vm in alive:
                    for resource in ALL_RESOURCES:
                        if oversub[resource]:
                            used[resource] += vm.demand_at(resource, slot)
                        else:
                            used[resource] += vm.allocated(resource)
                free = {r: max(0.0, capacity[r] - used[r]) for r in ALL_RESOURCES}
                bottleneck = _fill_server(free, fill_vm)

                samples += 1
                cluster_samples += 1
                bottleneck_counts[bottleneck] += 1
                cluster_counts[bottleneck] += 1
                for resource in ALL_RESOURCES:
                    stranded_totals[resource] += free[resource]
                    capacity_totals[resource] += capacity[resource]

        per_cluster_counts[cluster_id] = {
            r: (cluster_counts[r] / cluster_samples if cluster_samples else 0.0)
            for r in ALL_RESOURCES}

    stranded_fraction = {
        r: (stranded_totals[r] / capacity_totals[r] if capacity_totals[r] else 0.0)
        for r in ALL_RESOURCES}
    bottleneck_fraction = {
        r: (bottleneck_counts[r] / samples if samples else 0.0) for r in ALL_RESOURCES}
    return StrandingResult(scenario, stranded_fraction, bottleneck_fraction,
                           {cid: {r: float(v) for r, v in row.items()}
                            for cid, row in per_cluster_counts.items()})


def stranding_by_scenario(trace: Trace,
                          scenarios: Sequence[str] = OVERSUBSCRIPTION_SCENARIOS,
                          **kwargs) -> Dict[str, StrandingResult]:
    """Figures 4 and 5: stranding and bottlenecks for every scenario."""
    return {scenario: measure_stranding(trace, scenario, **kwargs)
            for scenario in scenarios}
