"""Temporal pattern characterization (Section 2.3, Figures 7, 8 and 9)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.characterization import columnar
from repro.core.resources import Resource
from repro.trace.timeseries import SWEEP_WINDOW_HOURS, TimeWindowConfig
from repro.trace.trace import Trace
from repro.trace.vm import VMRecord


def vm_week_profile(vm: VMRecord, resource: Resource = Resource.CPU,
                    window_hours: int = 8) -> Dict[str, np.ndarray]:
    """Figure 7: a VM's utilization with per-window current and lifetime maxima.

    The raw utilization comes back as a read-only view: for store-backed VMs
    ``series.values`` is already a zero-copy slice of the shared telemetry
    buffer, and copying it per figure would defeat that layout.
    """
    config = TimeWindowConfig(window_hours)
    series = vm.series(resource)
    utilization = series.values.view()
    utilization.flags.writeable = False
    return {
        "utilization": utilization,
        "current_window_max": series.window_max_per_day(config),
        "lifetime_window_max": series.lifetime_window_max(config),
    }


def peaks_and_valleys_by_window(trace: Trace, resource: Resource = Resource.CPU,
                                window_hours: int = 4, min_days: float = 1.0,
                                threshold: float = 0.05) -> Dict[str, np.ndarray]:
    """Figure 8: share of VMs with a peak/valley in each window-of-day, per weekday.

    Returns arrays of shape ``(7, windows_per_day)`` (peaks and valleys) plus a
    length-7 array with the fraction of VM-days without any peak.  Shares are
    normalised by the number of VM-days with a peak (valley) on that weekday,
    as the paper does.
    """
    result = columnar.maybe_peaks_and_valleys(trace, resource, window_hours,
                                              min_days, threshold)
    if result is not None:
        return result
    config = TimeWindowConfig(window_hours)
    peak_counts = np.zeros((7, config.windows_per_day))
    valley_counts = np.zeros((7, config.windows_per_day))
    days_with_peak = np.zeros(7)
    days_total = np.zeros(7)
    none_counts = np.zeros(7)

    for vm in trace.long_running(min_days):
        series = vm.series(resource)
        for day, peaks, valleys in series.daily_peaks_and_valleys(config, threshold):
            weekday = day % 7
            days_total[weekday] += 1
            if not peaks:
                none_counts[weekday] += 1
                continue
            days_with_peak[weekday] += 1
            for window in peaks:
                peak_counts[weekday, window] += 1
            for window in valleys:
                valley_counts[weekday, window] += 1

    with np.errstate(divide="ignore", invalid="ignore"):
        peak_share = np.where(days_with_peak[:, None] > 0,
                              peak_counts / np.maximum(days_with_peak[:, None], 1), 0.0)
        valley_share = np.where(days_with_peak[:, None] > 0,
                                valley_counts / np.maximum(days_with_peak[:, None], 1), 0.0)
        none_share = np.where(days_total > 0, none_counts / np.maximum(days_total, 1), 0.0)
    return {"peaks": peak_share, "valleys": valley_share, "none": none_share,
            "windows_per_day": np.array([config.windows_per_day])}


def peak_consistency_cdf(trace: Trace, resource: Resource = Resource.CPU,
                         window_hours_sweep: Sequence[int] = SWEEP_WINDOW_HOURS,
                         min_days: float = 2.0,
                         diff_grid: Optional[Sequence[float]] = None
                         ) -> Dict[int, Dict[str, List[float]]]:
    """Figure 9: CDF of day-over-day differences in window maxima.

    For each window length, returns the fraction of (VM, window, day-pair)
    samples whose absolute difference is at most each grid value.
    """
    grid = list(diff_grid) if diff_grid is not None else [x / 100 for x in range(0, 55, 5)]
    result = columnar.maybe_peak_consistency_cdf(trace, resource,
                                                 window_hours_sweep, min_days,
                                                 grid)
    if result is not None:
        return result
    results: Dict[int, Dict[str, List[float]]] = {}
    vms = trace.long_running(min_days).vms
    for window_hours in window_hours_sweep:
        config = TimeWindowConfig(window_hours)
        diffs: List[np.ndarray] = []
        for vm in vms:
            d = vm.series(resource).peak_consistency(config)
            if d.size:
                diffs.append(d)
        if diffs:
            all_diffs = np.concatenate(diffs)
            cdf = [float(np.mean(all_diffs <= g + 1e-12)) for g in grid]
        else:
            cdf = [0.0 for _ in grid]
        results[window_hours] = {"diff_threshold": [float(g) for g in grid], "cdf": cdf}
    return results


def fraction_consistent(trace: Trace, resource: Resource = Resource.CPU,
                        window_hours: int = 6, tolerance: float = 0.20,
                        min_days: float = 2.0) -> float:
    """Headline number from Figure 9 (e.g. 80% of CPU diffs within 20%)."""
    cdfs = peak_consistency_cdf(trace, resource, [window_hours], min_days)
    grid = cdfs[window_hours]["diff_threshold"]
    cdf = cdfs[window_hours]["cdf"]
    for threshold, value in zip(grid, cdf):
        if threshold >= tolerance - 1e-12:
            return value
    return cdf[-1] if cdf else 0.0
