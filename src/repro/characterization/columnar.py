"""Columnar Section-2 characterization: segment reductions over the TraceStore.

Every figure statistic in this package was seeded as a per-VM loop over
``UtilizationSeries`` views -- the last object-at-a-time subsystem after the
scheduler ledger (PR 1), the replay meter (PR 2), and the trace filters
(PR 4) went dense.  This module is the dense formulation: each statistic is
re-expressed as segment reductions over the store's flat telemetry buffer
(per-VM maxima/percentiles/means via the kernels in
:mod:`repro.trace.store`), windowed maxima as one ``maximum.reduceat`` over
vectorized window boundaries, and stranding as per-VM scatter adds over the
sampled slot axis.

Dispatch contract
-----------------
Each public function here is a ``maybe_*`` twin of one reference function:
it returns the full result when the trace is store-backed and the store
carries the telemetry the statistic needs, and ``None`` otherwise -- the
caller then falls through to the seed per-VM loop, which stays alive as the
reference implementation for differential testing (the
``ReferenceLoopScheduler`` / ``ReferenceViolationMeter`` pattern).

Exactness contract
------------------
On float64 store-backed traces every result is *bitwise* identical to the
per-VM path (``tests/test_characterization_columnar.py`` pins this on
dense, mmap and float32 backends).  The kernels earn that the same way the
replay meter did: order-independent reductions (max/min) vectorize freely;
order-dependent ones either preserve the reference's accumulation order
exactly (stranding's sequential per-VM adds, which mirror the seed's
``used[r] += ...`` loop) or reproduce numpy's own per-slice algorithm on
identical inputs (length-bucketed ``mean(axis=1)``, the replicated
``np.percentile`` linear interpolation).  float32 stores agree to rounding
on percentile-and-mean statistics (numpy's scalar path keeps float32
intermediates where the vectorized path promotes) and bitwise elsewhere.
"""

# repro: hot-path  -- REP003: statistics reduce over the store's flat
# buffers in place; materializing copies here defeats the columnar layout.

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.core.resources import ALL_RESOURCES, Resource
from repro.trace.store import TraceStore, rowwise_mean, segment_reduce
from repro.trace.timeseries import SLOTS_PER_DAY, TimeWindowConfig
from repro.trace.trace import Trace
from repro.trace.vm import VMConfig


def _store_with(trace: Trace, resources: Sequence[Resource]) -> Optional[TraceStore]:
    """The trace's store, if it carries telemetry for *resources*."""
    store = trace.store
    if store is None:
        return None
    if any(r not in store.util for r in resources):
        return None
    return store


# --------------------------------------------------------------------------- #
# Windowed maxima: the shared kernel behind Figures 7-11
# --------------------------------------------------------------------------- #
#: store -> {(resource value, window_hours): cached window-entry tuple}.
#: Keyed weakly so a discarded store (and its telemetry) is not pinned by
#: its cached statistics; keyed per *object* because two stores over the
#: same buffers may select different rows.
_WINDOW_ENTRY_CACHE: "WeakKeyDictionary[TraceStore, Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]]" = WeakKeyDictionary()


def window_entries(store: TraceStore, resource: Resource,
                   config: TimeWindowConfig
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-(VM, day, window) maxima for every window overlapping a lifetime.

    Returns ``(row, day, window_of_day, window_max)`` arrays, one entry per
    window with at least one sample, ordered row-major (VM, then day, then
    window-of-day) -- the exact traversal order of
    ``UtilizationSeries._window_groups``.  All windows for all VMs are
    reduced in a single ``maximum.reduceat`` over the flat buffer instead of
    one Python generator step per (VM, window).

    Results are cached per ``(store, resource, window length)``: several
    Section-2 statistics sweep the same window configurations over the same
    long-running selection (which :meth:`Trace.long_running` memoizes so
    they share one store object), and the entries only depend on the
    store's rows and buffer.  Cached arrays are marked read-only; callers
    must treat them as immutable.

    Maxima come back as float64 regardless of the buffer dtype: the
    reference path stores ``samples.max()`` into a float64 NaN matrix
    (``window_max_per_day``), so every downstream comparison runs in
    float64 there -- widening here keeps reduced-precision stores bitwise
    identical on the window statistics too.
    """
    per_store = _WINDOW_ENTRY_CACHE.get(store)
    if per_store is None:
        per_store = _WINDOW_ENTRY_CACHE.setdefault(store, {})
    key = (resource.value, config.window_hours)
    cached = per_store.get(key)
    if cached is None:
        cached = _compute_window_entries(store, resource, config)
        for array in cached:
            array.setflags(write=False)
        per_store[key] = cached
    return cached


def _compute_window_entries(store: TraceStore, resource: Resource,
                            config: TimeWindowConfig
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                       np.ndarray]:
    spw = config.slots_per_window
    n = len(store)
    series_start = store.series_start
    length = store.row_length
    offset = store.row_offset
    series_end = series_start + length
    first_window = (series_start // spw) * spw
    windows_per_row = (series_end - first_window + spw - 1) // spw
    total = int(windows_per_row.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, np.empty(0, dtype=np.float64)
    row = np.repeat(np.arange(n, dtype=np.int64), windows_per_row)
    bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(windows_per_row, out=bounds[1:])
    k = np.arange(total, dtype=np.int64) - np.repeat(bounds[:-1], windows_per_row)
    window_start = first_window[row] + k * spw
    lo = offset[row] + np.maximum(window_start, series_start[row]) - series_start[row]
    hi = offset[row] + np.minimum(window_start + spw, series_end[row]) - series_start[row]
    window_max = segment_reduce(np.maximum, store.util[resource], lo, hi - lo) \
        .astype(np.float64, copy=False)
    day = window_start // SLOTS_PER_DAY
    window_of_day = (window_start % SLOTS_PER_DAY) // spw
    return row, day, window_of_day, window_max


def _vmday_groups(row: np.ndarray, day: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Group boundaries of consecutive (VM, day) runs in window entries."""
    if row.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    changed = np.concatenate(([True], (row[1:] != row[:-1]) | (day[1:] != day[:-1])))
    starts = np.flatnonzero(changed).astype(np.int64)
    lengths = np.diff(np.concatenate((starts, [row.size]))).astype(np.int64)
    return starts, lengths


# --------------------------------------------------------------------------- #
# Figures 2-3: allocated resources (metadata columns only)
# --------------------------------------------------------------------------- #
def _resource_hour_columns(store: TraceStore) -> Tuple[np.ndarray, np.ndarray,
                                                       np.ndarray]:
    """``(lifetime_hours, cpu_hours, memory_hours)``, hours computed once."""
    hours = store.lifetime_hours
    alloc = store.alloc
    return (hours, alloc[:, ALL_RESOURCES.index(Resource.CPU)] * hours,
            alloc[:, ALL_RESOURCES.index(Resource.MEMORY)] * hours)


def duration_columns(trace: Trace) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """``(durations_hours, cpu_hours, memory_hours)`` from the store columns."""
    store = trace.store
    if store is None:
        return None
    return _resource_hour_columns(store)


def size_columns(trace: Trace) -> Optional[Tuple[np.ndarray, np.ndarray,
                                                 np.ndarray, np.ndarray]]:
    """``(cores, memory_gb, cpu_hours, memory_hours)`` from the store columns."""
    store = trace.store
    if store is None:
        return None
    _hours, cpu_hours, memory_hours = _resource_hour_columns(store)
    return store.cores, store.memory_gb, cpu_hours, memory_hours


def maybe_median_vm_shape(trace: Trace) -> Optional[Dict[str, float]]:
    store = trace.store
    if store is None:
        return None
    n = len(store)
    if n == 0:
        return {"median_cores": 0.0, "median_memory_gb": 0.0, "n_vms": 0.0}
    mid = n // 2
    return {
        "median_cores": float(np.sort(store.cores)[mid]),
        "median_memory_gb": float(np.sort(store.memory_gb)[mid]),
        "n_vms": float(n),
    }


# --------------------------------------------------------------------------- #
# Figure 6: per-VM means and percentile ranges
# --------------------------------------------------------------------------- #
_SCATTER_RESOURCES = (Resource.CPU, Resource.MEMORY, Resource.NETWORK, Resource.SSD)


def maybe_utilization_scatter(trace: Trace, min_days: float
                              ) -> Optional[Dict[str, List[float]]]:
    long_running = trace.long_running(min_days)
    store = _store_with(long_running, _SCATTER_RESOURCES)
    if store is None:
        return None
    means = {r: store.segment_mean(r) for r in _SCATTER_RESOURCES}
    ranges: Dict[Resource, np.ndarray] = {}
    for resource in (Resource.CPU, Resource.MEMORY):
        pcts = store.segment_percentiles(resource, (95.0, 5.0))
        ranges[resource] = pcts[95.0] - pcts[5.0]
    return {
        "vm_id": list(store.vm_ids),
        "cpu_mean": [float(x) for x in means[Resource.CPU]],
        "memory_mean": [float(x) for x in means[Resource.MEMORY]],
        "cpu_range": [float(x) for x in ranges[Resource.CPU]],
        "memory_range": [float(x) for x in ranges[Resource.MEMORY]],
        "network_mean": [float(x) for x in means[Resource.NETWORK]],
        "ssd_mean": [float(x) for x in means[Resource.SSD]],
    }


# --------------------------------------------------------------------------- #
# Figure 8: peaks and valleys per window-of-day
# --------------------------------------------------------------------------- #
def maybe_peaks_and_valleys(trace: Trace, resource: Resource, window_hours: int,
                            min_days: float, threshold: float
                            ) -> Optional[Dict[str, np.ndarray]]:
    long_running = trace.long_running(min_days)
    store = _store_with(long_running, (resource,))
    if store is None:
        return None
    config = TimeWindowConfig(window_hours)
    row, day, window_of_day, window_max = window_entries(store, resource, config)
    peak_counts = np.zeros((7, config.windows_per_day))
    valley_counts = np.zeros((7, config.windows_per_day))
    days_with_peak = np.zeros(7)
    days_total = np.zeros(7)
    none_counts = np.zeros(7)

    if row.size:
        bucketed = np.round(window_max / threshold) * threshold
        group_start, group_len = _vmday_groups(row, day)
        group_max = segment_reduce(np.maximum, bucketed, group_start, group_len)
        group_min = segment_reduce(np.minimum, bucketed, group_start, group_len)
        spread = group_max - group_min
        has_peak = ~(spread < threshold - 1e-12)
        weekday = day[group_start] % 7
        np.add.at(days_total, weekday, 1.0)
        np.add.at(none_counts, weekday[~has_peak], 1.0)
        np.add.at(days_with_peak, weekday[has_peak], 1.0)

        entry_group = np.repeat(np.arange(group_start.size), group_len)
        entry_weekday = weekday[entry_group]
        is_peak = has_peak[entry_group] & np.isclose(bucketed, group_max[entry_group])
        is_valley = has_peak[entry_group] & np.isclose(bucketed, group_min[entry_group])
        np.add.at(peak_counts, (entry_weekday[is_peak], window_of_day[is_peak]), 1.0)
        np.add.at(valley_counts, (entry_weekday[is_valley], window_of_day[is_valley]), 1.0)

    with np.errstate(divide="ignore", invalid="ignore"):
        peak_share = np.where(days_with_peak[:, None] > 0,
                              peak_counts / np.maximum(days_with_peak[:, None], 1), 0.0)
        valley_share = np.where(days_with_peak[:, None] > 0,
                                valley_counts / np.maximum(days_with_peak[:, None], 1), 0.0)
        none_share = np.where(days_total > 0, none_counts / np.maximum(days_total, 1), 0.0)
    return {"peaks": peak_share, "valleys": valley_share, "none": none_share,
            "windows_per_day": np.array([config.windows_per_day])}


# --------------------------------------------------------------------------- #
# Figure 9: day-over-day peak consistency
# --------------------------------------------------------------------------- #
def maybe_peak_consistency_cdf(trace: Trace, resource: Resource,
                               window_hours_sweep: Sequence[int], min_days: float,
                               grid: Sequence[float]
                               ) -> Optional[Dict[int, Dict[str, List[float]]]]:
    long_running = trace.long_running(min_days)
    store = _store_with(long_running, (resource,))
    if store is None:
        return None
    results: Dict[int, Dict[str, List[float]]] = {}
    for window_hours in window_hours_sweep:
        config = TimeWindowConfig(window_hours)
        row, day, window_of_day, window_max = window_entries(store, resource, config)
        if row.size:
            # Day-over-day pairs: sort by (VM, window-of-day, day); for a
            # contiguous lifetime the days carrying a given window-of-day are
            # consecutive, so adjacent sorted entries one day apart are
            # exactly the pairs `np.diff` pairs up in the reference.
            order = np.lexsort((day, window_of_day, row))
            vm_sorted = row[order]
            window_sorted = window_of_day[order]
            day_sorted = day[order]
            max_sorted = window_max[order]
            paired = ((vm_sorted[1:] == vm_sorted[:-1])
                      & (window_sorted[1:] == window_sorted[:-1])
                      & (day_sorted[1:] == day_sorted[:-1] + 1))
            diffs = np.abs(max_sorted[1:] - max_sorted[:-1])[paired]
        else:
            diffs = np.empty(0)
        if diffs.size:
            cdf = [float(np.mean(diffs <= g + 1e-12)) for g in grid]
        else:
            cdf = [0.0 for _ in grid]
        results[window_hours] = {"diff_threshold": [float(g) for g in grid],
                                 "cdf": cdf}
    return results


# --------------------------------------------------------------------------- #
# Figures 10-11: time-window packing savings
# --------------------------------------------------------------------------- #
def _select_cluster(store: TraceStore, cluster_id: Optional[str]) -> TraceStore:
    if cluster_id is None:
        return store
    return store.select(store.in_cluster_indices(cluster_id))


def _window_savings_per_vm(store: TraceStore, resource: Resource,
                           window_hours: Optional[int],
                           lifetime_max: np.ndarray) -> np.ndarray:
    """Per-VM mean savings fraction (the body of ``vm_window_savings``)."""
    if window_hours is None:
        return rowwise_mean(store.util[resource], store.row_offset,
                            store.row_length, minuend=lifetime_max)
    config = TimeWindowConfig(window_hours)
    row, _day, _window_of_day, window_max = window_entries(store, resource, config)
    bounds = np.zeros(len(store) + 1, dtype=np.int64)
    counts = np.bincount(row, minlength=len(store)).astype(np.int64)
    np.cumsum(counts, out=bounds[1:])
    return rowwise_mean(window_max, bounds[:-1], counts, minuend=lifetime_max)


def maybe_cluster_savings(trace: Trace, cluster_id: Optional[str],
                          window_hours_sweep: Sequence[Optional[int]],
                          include_ideal: bool, min_days: float
                          ) -> Optional[Dict[str, Dict[str, float]]]:
    long_running = trace.long_running(min_days)
    store = _store_with(long_running, (Resource.CPU, Resource.MEMORY))
    if store is None:
        return None
    store = _select_cluster(store, cluster_id)
    sweep: List[Optional[int]] = list(window_hours_sweep)
    if include_ideal:
        sweep.append(None)
    lifetime_max = {r: store.segment_max(r).astype(np.float64, copy=False)
                    for r in (Resource.CPU, Resource.MEMORY)}
    results: Dict[str, Dict[str, float]] = {}
    for window_hours in sweep:
        label = "ideal" if window_hours is None else f"{24 // window_hours}x{window_hours}hr"
        if len(store) == 0:
            results[label] = {"cpu": 0.0, "memory": 0.0}
            continue
        cpu = _window_savings_per_vm(store, Resource.CPU, window_hours,
                                     lifetime_max[Resource.CPU])
        memory = _window_savings_per_vm(store, Resource.MEMORY, window_hours,
                                        lifetime_max[Resource.MEMORY])
        results[label] = {
            "cpu": 100.0 * float(np.mean(cpu)),
            "memory": 100.0 * float(np.mean(memory)),
        }
    return results


def maybe_weekly_savings_profile(trace: Trace, cluster_id: Optional[str],
                                 window_hours_sweep: Sequence[int],
                                 min_days: float
                                 ) -> Optional[Dict[str, Dict[str, List[float]]]]:
    long_running = trace.long_running(min_days)
    store = _store_with(long_running, (Resource.CPU, Resource.MEMORY))
    if store is None:
        return None
    store = _select_cluster(store, cluster_id)
    n_days = int(np.ceil(trace.n_days))
    lifetime_max = {r: store.segment_max(r).astype(np.float64, copy=False)
                    for r in (Resource.CPU, Resource.MEMORY)}

    results: Dict[str, Dict[str, List[float]]] = {}
    for window_hours in window_hours_sweep:
        config = TimeWindowConfig(window_hours)
        label = f"{24 // window_hours}x{window_hours}hr"
        per_resource: Dict[str, List[float]] = {}
        for key, resource in (("cpu", Resource.CPU), ("memory", Resource.MEMORY)):
            row, day, _window_of_day, window_max = window_entries(store, resource, config)
            group_start, group_len = _vmday_groups(row, day)
            group_row = row[group_start] if group_start.size else group_start
            group_mean = rowwise_mean(window_max, group_start, group_len,
                                      minuend=lifetime_max[resource][group_row])
            # The reference maps per-day offsets through vm.start_slot; keep
            # that (rather than the series start) so truncated telemetry
            # lands on the same calendar day either way.
            if group_start.size:
                absolute_day = (store.start_slot[group_row] // SLOTS_PER_DAY
                                + (day[group_start]
                                   - store.series_start[group_row] // SLOTS_PER_DAY))
            else:
                absolute_day = group_start
            by_day: List[float] = []
            for target_day in range(n_days):
                selected = group_mean[absolute_day == target_day]
                by_day.append(100.0 * float(np.mean(selected))
                              if selected.size else 0.0)
            per_resource[key] = by_day
        results[label] = per_resource
    return results


# --------------------------------------------------------------------------- #
# Figures 4-5: stranding (sequential per-VM adds over the sampled slot axis)
# --------------------------------------------------------------------------- #
def maybe_stranding_inputs(trace: Trace, oversub: Dict[Resource, bool],
                           fill_vm: VMConfig, sample_every_slots: int,
                           cluster_ids: Sequence[str]
                           ) -> Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]]:
    """Per-cluster ``(free, bottleneck_index)`` over the sampled slots.

    ``free`` has shape ``(len(ALL_RESOURCES), n_samples)`` and holds the
    post-fill free vector for every sampled slot; ``bottleneck_index``
    indexes :data:`ALL_RESOURCES`.  The caller (``measure_stranding``)
    accumulates totals slot by slot in the reference's order, so the
    sequential float additions -- and therefore every reported fraction --
    are bitwise identical to the seed loop.
    """
    store = _store_with(trace, ALL_RESOURCES)
    if store is None:
        return None
    demand = np.array([fill_vm.allocation_vector()[r] for r in ALL_RESOURCES])
    if not np.any(demand > 0):
        return None  # the reference's int(inf) crash; not a columnar concern
    safe_demand = np.where(demand > 0, demand, 1.0)
    slots = np.arange(0, trace.n_slots, max(1, sample_every_slots))
    n_resources = len(ALL_RESOURCES)
    oversub_flags = np.array([oversub[r] for r in ALL_RESOURCES])
    start = store.start_slot
    end = store.end_slot
    series_start = store.series_start
    series_len = store.row_length
    offset = store.row_offset
    alloc = store.alloc

    per_cluster: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for cluster_id in cluster_ids:
        capacity = trace.fleet.get(cluster_id).total_capacity()
        cap = np.array([capacity[r] for r in ALL_RESOURCES])
        used = np.zeros((n_resources, slots.size))
        for i in store.in_cluster_indices(cluster_id):
            i = int(i)
            alive = (start[i] <= slots) & (slots < end[i])
            if not alive.any():
                continue
            # Sequential adds in row (== trace) order: exactly the seed's
            # ``used[r] += vm.demand_at(...)`` accumulation per slot.
            for r_index in range(n_resources):
                if oversub_flags[r_index]:
                    covered = alive & (series_start[i] <= slots) \
                        & (slots < series_start[i] + series_len[i])
                    if covered.any():
                        resource = ALL_RESOURCES[r_index]
                        values = store.util[resource][
                            offset[i] + slots[covered] - series_start[i]]
                        used[r_index, covered] += values * alloc[i, r_index]
                else:
                    used[r_index, alive] += alloc[i, r_index]
        free = np.maximum(0.0, cap[:, None] - used)
        fits = np.where(demand[:, None] > 0, free / safe_demand[:, None], np.inf)
        n_fit = np.floor(np.maximum(0.0, fits.min(axis=0)))
        free = free - n_fit[None, :] * demand[:, None]
        remaining = np.where(demand[:, None] > 0, free / safe_demand[:, None], np.inf)
        per_cluster[cluster_id] = (free, np.argmin(remaining, axis=0))
    return per_cluster


# --------------------------------------------------------------------------- #
# Figure 12: history-based predictability
# --------------------------------------------------------------------------- #
def maybe_predictability_features(trace: Trace, resource: Resource,
                                  split_slot: int, min_lifetime_days: float
                                  ) -> Optional[Tuple[TraceStore, np.ndarray,
                                                      TraceStore, np.ndarray]]:
    """Eligible (history, future) stores plus their per-VM peak columns.

    Eligibility mirrors the reference filter (lifetime >= minimum and a full
    utilization record); the per-VM peaks -- the only telemetry the grouping
    statistics read -- come from one segment-max per side instead of a
    ``series.maximum()`` call per VM.
    """
    store = _store_with(trace, ALL_RESOURCES)
    if store is None or resource not in store.util:
        return None
    history, future = trace.split_at(split_slot)

    def eligible(side: Trace) -> TraceStore:
        side_store = side.store
        mask = side_store.lifetime_slots / SLOTS_PER_DAY >= min_lifetime_days
        return side_store.select(np.nonzero(mask)[0])

    history_store = eligible(history)
    future_store = eligible(future)
    return (history_store, history_store.segment_max(resource),
            future_store, future_store.segment_max(resource))
