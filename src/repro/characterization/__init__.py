"""Section-2 characterization analyses (Figures 2-12)."""

from repro.characterization.allocated import (
    CORE_THRESHOLDS,
    DURATION_THRESHOLDS_HOURS,
    MEMORY_THRESHOLDS_GB,
    median_vm_shape,
    resource_hours_by_duration,
    resource_hours_by_size,
)
from repro.characterization.predictability import (
    GROUPINGS,
    group_predictability,
    predictability_summary,
)
from repro.characterization.savings import (
    cluster_savings,
    savings_distribution,
    vm_window_savings,
    weekly_savings_profile,
)
from repro.characterization.stranding import (
    OVERSUBSCRIPTION_SCENARIOS,
    StrandingResult,
    measure_stranding,
    stranding_by_scenario,
)
from repro.characterization.temporal import (
    fraction_consistent,
    peak_consistency_cdf,
    peaks_and_valleys_by_window,
    vm_week_profile,
)
from repro.characterization.underutilization import utilization_scatter, utilization_summary

__all__ = [
    "CORE_THRESHOLDS",
    "DURATION_THRESHOLDS_HOURS",
    "GROUPINGS",
    "MEMORY_THRESHOLDS_GB",
    "OVERSUBSCRIPTION_SCENARIOS",
    "StrandingResult",
    "cluster_savings",
    "fraction_consistent",
    "group_predictability",
    "measure_stranding",
    "median_vm_shape",
    "peak_consistency_cdf",
    "peaks_and_valleys_by_window",
    "predictability_summary",
    "resource_hours_by_duration",
    "resource_hours_by_size",
    "savings_distribution",
    "stranding_by_scenario",
    "utilization_scatter",
    "utilization_summary",
    "vm_week_profile",
    "vm_window_savings",
    "weekly_savings_profile",
]
