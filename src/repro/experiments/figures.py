"""Experiment harnesses: one function per paper figure/table.

Every function takes a trace (or generates one) plus the knobs the paper
sweeps, and returns plain dictionaries/lists with the same rows or series the
paper plots.  The benchmark suite calls these functions, and
``examples/reproduce_paper.py`` prints their output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.characterization import (
    group_predictability,
    peak_consistency_cdf,
    peaks_and_valleys_by_window,
    predictability_summary,
    resource_hours_by_duration,
    resource_hours_by_size,
    savings_distribution,
    stranding_by_scenario,
    utilization_scatter,
    utilization_summary,
    vm_week_profile,
    weekly_savings_profile,
)
from repro.core.policy import STANDARD_POLICIES, PolicyConfig
from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.windows import plan_vm
from repro.prediction.buckets import bucketize
from repro.prediction.utilization_model import (
    LongTermUtilizationModel,
    OracleUtilizationModel,
)
from repro.simulator.engine import SimulationConfig, evaluate_policies
from repro.simulator.metrics import PredictionAccuracy, ViolationStats
from repro.trace.timeseries import SLOTS_PER_DAY, SWEEP_WINDOW_HOURS, TimeWindowConfig
from repro.trace.trace import Trace
from repro.workloads.base import summarize_results
from repro.workloads.runner import pa_va_sweep, run_all_mitigation_policies, run_figure18


# --------------------------------------------------------------------------- #
# Section 2: characterization figures
# --------------------------------------------------------------------------- #
def figure02_duration(trace: Trace) -> Dict[str, List[float]]:
    """Resource-hours and VM share by VM duration."""
    return resource_hours_by_duration(trace)


def figure03_size(trace: Trace) -> Dict[str, Dict[str, List[float]]]:
    """Resource-hours and VM share by VM size."""
    return resource_hours_by_size(trace)


def figure04_stranding(trace: Trace, sample_every_slots: int = SLOTS_PER_DAY // 2
                       ) -> Dict[str, Dict[str, float]]:
    """Average stranding per resource for each oversubscription scenario."""
    results = stranding_by_scenario(trace, sample_every_slots=sample_every_slots)
    return {scenario: {r.value: 100.0 * frac for r, frac in res.stranded_fraction.items()}
            for scenario, res in results.items()}


def figure05_bottlenecks(trace: Trace, sample_every_slots: int = SLOTS_PER_DAY // 2
                         ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-cluster bottleneck-resource shares for each scenario."""
    results = stranding_by_scenario(trace, sample_every_slots=sample_every_slots)
    return {scenario: {cluster: {r.value: 100.0 * frac for r, frac in row.items()}
                       for cluster, row in res.per_cluster_bottleneck.items()}
            for scenario, res in results.items()}


def figure06_utilization(trace: Trace) -> Dict[str, object]:
    """CPU/memory utilization scatter plus headline summary."""
    return {"scatter": utilization_scatter(trace), "summary": utilization_summary(trace)}


def figure07_vm_profile(trace: Trace, vm_id: Optional[str] = None) -> Dict[str, np.ndarray]:
    """A week-long CPU profile with per-window maxima for one long-running VM."""
    candidates = [vm for vm in trace.long_running(3.0) if vm.has_utilization()]
    if not candidates:
        raise ValueError("trace has no long-running VMs to profile")
    vm = trace.vm_by_id(vm_id) if vm_id else max(
        candidates, key=lambda v: v.series(Resource.CPU).utilization_range())
    return vm_week_profile(vm)


def figure08_peaks(trace: Trace) -> Dict[str, Dict[str, np.ndarray]]:
    """Peaks/valleys per 4-hour window for CPU and memory."""
    return {
        "cpu": peaks_and_valleys_by_window(trace, Resource.CPU),
        "memory": peaks_and_valleys_by_window(trace, Resource.MEMORY),
    }


def figure09_consistency(trace: Trace) -> Dict[str, Dict[int, Dict[str, List[float]]]]:
    """Day-over-day peak/valley difference CDFs for CPU and memory."""
    return {
        "cpu": peak_consistency_cdf(trace, Resource.CPU),
        "memory": peak_consistency_cdf(trace, Resource.MEMORY),
    }


def figure10_weekly_savings(trace: Trace, cluster_id: str = "C1") -> Dict[str, Dict[str, List[float]]]:
    """Per-day potential savings for one cluster across window lengths."""
    return weekly_savings_profile(trace, cluster_id)


def figure11_savings_distribution(trace: Trace) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Savings distribution (violin statistics) across all clusters."""
    return savings_distribution(trace)


def figure12_predictability(trace: Trace) -> Dict[str, object]:
    """Grouping-based predictability scatter and summary."""
    return {
        "memory": group_predictability(trace, Resource.MEMORY),
        "cpu": group_predictability(trace, Resource.CPU),
        "summary_memory": predictability_summary(trace, Resource.MEMORY),
        "summary_cpu": predictability_summary(trace, Resource.CPU, tolerance_pct=20.0),
    }


# --------------------------------------------------------------------------- #
# Section 3/4: design and evaluation figures
# --------------------------------------------------------------------------- #
def figure15_pa_va_tradeoff(step_gb: float = 4.0) -> Dict[str, List[float]]:
    """PA/VA slowdown and allocation heat map for a 32 GB VM (18 GB working set)."""
    points = pa_va_sweep(step_gb=step_gb)
    return {
        "pa_gb": [p.pa_gb for p in points],
        "va_gb": [p.va_gb for p in points],
        "slowdown": [p.slowdown for p in points],
        "allocated_gb": [p.allocated_gb for p in points],
    }


def figure17_oversub_accesses(trace: Trace,
                              percentiles: Sequence[float] = (65, 70, 75, 80, 85, 90, 95),
                              window_hours_sweep: Sequence[int] = SWEEP_WINDOW_HOURS,
                              resource: Resource = Resource.MEMORY,
                              min_days: float = 1.0) -> Dict[str, object]:
    """Expected accesses to oversubscribed memory vs prediction percentile.

    Assumes each VM uniformly accesses its utilized memory (as the paper
    does): in each slot, the fraction of accesses beyond the PA allocation is
    ``max(0, u - pa) / u``.
    """
    vms = trace.long_running(min_days).vms
    mean_table: Dict[int, Dict[float, float]] = {}
    cdf_4hr: Dict[float, List[float]] = {}

    for window_hours in window_hours_sweep:
        config = TimeWindowConfig(window_hours)
        mean_table[window_hours] = {}
        for percentile in percentiles:
            per_vm: List[float] = []
            for vm in vms:
                series = vm.series(resource)
                window_pct = series.lifetime_window_percentile(config, percentile)
                window_pct = window_pct[~np.isnan(window_pct)]
                if window_pct.size == 0:
                    continue
                pa_fraction = bucketize(float(window_pct.max()))
                utilization = series.values
                with np.errstate(divide="ignore", invalid="ignore"):
                    oversub = np.where(utilization > 1e-9,
                                       np.maximum(0.0, utilization - pa_fraction) / utilization,
                                       0.0)
                per_vm.append(float(oversub.mean()))
            mean_table[window_hours][percentile] = (
                100.0 * float(np.mean(per_vm)) if per_vm else 0.0)
            if window_hours == 4:
                cdf_4hr[percentile] = sorted(100.0 * v for v in per_vm)

    worst_case = {float(p): 100.0 - float(p) for p in percentiles}
    return {"mean_oversub_access_pct": mean_table, "cdf_4hr_pct": cdf_4hr,
            "worst_case_pct": worst_case}


def figure18_workloads() -> Dict[str, Dict[str, float]]:
    """Slowdown of every Table-2 workload under GPVM / CVM / CVM-Floor / OVM."""
    return summarize_results(run_figure18())


def figure19_prediction_accuracy(trace: Trace,
                                 percentiles: Sequence[float] = (95.0, 90.0, 85.0),
                                 n_estimators: int = 8,
                                 max_eval_vms: int = 200) -> List[PredictionAccuracy]:
    """Over-allocation error and under-allocation rate of the long-term model.

    The ideal allocation is the oracle plan built from the VM's actual future
    utilization; the planned allocation comes from the learned model trained
    on the first week.
    """
    history, future = trace.split_at(7 * SLOTS_PER_DAY)
    history_vms = history.long_running().vms
    eval_vms = [vm for vm in future.long_running().vms if vm.has_utilization()]
    eval_vms = eval_vms[:max_eval_vms]
    if not history_vms or not eval_vms:
        raise ValueError("trace too small for the prediction-accuracy experiment")

    results: List[PredictionAccuracy] = []
    for percentile in percentiles:
        windows = TimeWindowConfig(4)
        model = LongTermUtilizationModel(windows=windows, percentile=percentile,
                                         n_estimators=n_estimators)
        model.fit(history_vms)
        oracle = OracleUtilizationModel(windows, percentile)
        for resource in (Resource.CPU, Resource.MEMORY):
            over_errors: List[float] = []
            under_count = 0
            for vm in eval_vms:
                predicted = model.predict(vm)
                ideal = oracle.predict(vm)
                allocation = {r: vm.allocated(r) for r in ALL_RESOURCES}
                planned = plan_vm(vm.vm_id, allocation, predicted, True)
                ideal_plan = plan_vm(vm.vm_id, allocation, ideal, True)
                planned_amount = planned.plans[resource].guaranteed
                ideal_amount = ideal_plan.plans[resource].guaranteed
                if ideal_amount <= 1e-9:
                    continue
                if planned_amount + 1e-9 < ideal_amount:
                    under_count += 1
                else:
                    over_errors.append(100.0 * (planned_amount - ideal_amount) / ideal_amount)
            results.append(PredictionAccuracy(
                resource=resource.value,
                percentile=float(percentile),
                over_allocation_error_pct=float(np.mean(over_errors)) if over_errors else 0.0,
                under_allocation_pct=100.0 * under_count / len(eval_vms),
                n_vms=len(eval_vms),
            ))
    return results


def figure20_packing(trace: Trace,
                     policies: Optional[Dict[str, PolicyConfig]] = None,
                     clusters: Sequence[str] = ("C1", "C4", "C8"),
                     n_estimators: int = 5,
                     parallelism: int = 1,
                     sweep_parallelism: int = 1) -> Dict[str, Dict[str, float]]:
    """Additional capacity and performance violations per policy.

    *parallelism* fans the clusters of each policy run across a thread pool;
    *sweep_parallelism* fans whole policies across worker processes (one
    policy per process, the GIL-free axis).  Results are bitwise identical
    for any combination of the two; see
    :func:`repro.simulator.engine.simulate_policy` and
    :mod:`repro.simulator.sweep`.
    """
    config = SimulationConfig(clusters=list(clusters), n_estimators=n_estimators,
                              parallelism=parallelism,
                              sweep_parallelism=sweep_parallelism)
    results = evaluate_policies(trace, policies or STANDARD_POLICIES, config)
    return {
        name: {
            "additional_capacity_pct": float(evaluation.additional_capacity_pct or 0.0),
            "cpu_violation_pct": evaluation.violations.cpu_violation_pct,
            "memory_violation_pct": evaluation.violations.memory_violation_pct,
            "accepted_vms": float(evaluation.accepted_vms),
            "average_concurrent_cores": evaluation.average_concurrent_cores,
            "servers_in_use": float(evaluation.servers_in_use),
            "server_reduction_pct": float(evaluation.server_reduction_pct or 0.0),
        }
        for name, evaluation in results.items()
    }


def _cluster_of_server(server_id: str) -> str:
    """Cluster id of a scheduler server id (``"C4-s017"`` -> ``"C4"``)."""
    cluster, sep, _index = server_id.rpartition("-s")
    return cluster if sep else server_id


def hotspot_report(violations: ViolationStats, top_n: int = 10) -> Dict[str, object]:
    """Per-server contention hotspots and per-cluster violation-rate CDFs.

    Surfaces the per-server breakdowns :class:`ViolationStats` records (the
    ROADMAP follow-up to the PR-2 replay work): which servers concentrate
    the contention -- the candidates for the paper's mitigation/migration
    actions -- and how violation rates distribute inside each cluster.

    Returns::

        {"n_servers": int,                     # servers with occupied slots
         "hotspots": [{"server_id", "cluster_id", "observed_slots",
                       "cpu_violation_slots", "memory_violation_slots",
                       "violation_rate"}, ...],       # worst top_n first
         "per_cluster": {cluster_id: {
             "n_servers": int,
             "observed_slots": int,
             "cpu_violation_slots": int,
             "memory_violation_slots": int,
             "violation_rate": [...],   # sorted per-server rates (CDF x)
             "cdf": [...],              # cumulative server fraction (CDF y)
         }}}

    The violation rate of a server is its CPU *plus* memory violation slots
    over its observed slots -- a combined contention-pressure score, not a
    fraction of slots: a slot violating both resources counts twice, so the
    rate can exceed 1 (``ViolationStats`` records the two counts separately
    and the union is not recoverable from them).  Server ids are the
    scheduler's ``<cluster>-s<index>`` names, so the grouping needs no
    extra lookup.
    """
    servers = []
    for server_id, observed in violations.per_server_observed.items():
        cpu = violations.per_server_cpu_violations.get(server_id, 0)
        memory = violations.per_server_memory_violations.get(server_id, 0)
        servers.append({
            "server_id": server_id,
            "cluster_id": _cluster_of_server(server_id),
            "observed_slots": int(observed),
            "cpu_violation_slots": int(cpu),
            "memory_violation_slots": int(memory),
            "violation_rate": (cpu + memory) / observed if observed else 0.0,
        })
    # Worst first; ties broken by id so the report is deterministic.
    servers.sort(key=lambda row: (-row["violation_rate"], row["server_id"]))

    per_cluster: Dict[str, Dict[str, object]] = {}
    for row in servers:
        bucket = per_cluster.setdefault(row["cluster_id"], {
            "n_servers": 0, "observed_slots": 0, "cpu_violation_slots": 0,
            "memory_violation_slots": 0, "violation_rate": []})
        bucket["n_servers"] += 1
        bucket["observed_slots"] += row["observed_slots"]
        bucket["cpu_violation_slots"] += row["cpu_violation_slots"]
        bucket["memory_violation_slots"] += row["memory_violation_slots"]
        bucket["violation_rate"].append(row["violation_rate"])
    for bucket in per_cluster.values():
        bucket["violation_rate"] = sorted(bucket["violation_rate"])
        n = bucket["n_servers"]
        bucket["cdf"] = [(i + 1) / n for i in range(n)]

    return {
        "n_servers": len(servers),
        "hotspots": servers[:top_n],
        "per_cluster": dict(sorted(per_cluster.items())),
    }


def figure21_mitigation(duration_seconds: float = 330.0,
                        interval_seconds: float = 15.0) -> Dict[str, Dict[str, object]]:
    """Mitigation-policy timelines for the contention scenario."""
    timelines = run_all_mitigation_policies(duration_seconds, interval_seconds)
    return {
        name: {
            "times_seconds": timeline.times_seconds,
            "available_oversub_gb": timeline.available_oversub_gb,
            "cache_slowdown": timeline.slowdown.get("cache", []),
            "kvstore_slowdown": timeline.slowdown.get("kvstore", []),
            "recovered": timeline.recovered(),
            "peak_cache_slowdown": timeline.peak_slowdown("cache"),
            "peak_kvstore_slowdown": timeline.peak_slowdown("kvstore"),
        }
        for name, timeline in timelines.items()
    }
