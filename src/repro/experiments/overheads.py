"""Platform overhead measurements (Section 4.5).

The paper reports the cost of running Coach: offline training time and model
size for the long-term predictor, the extra scheduling latency from the
additional bin-packing dimensions, the footprint of the local contention
predictors, and the bandwidth of the trim/extend mitigation mechanisms.
These harnesses measure the equivalents on this reproduction's substrate.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.core.cluster_manager import ClusterManager
from repro.core.mitigation import EXTEND_BANDWIDTH_GBPS, TRIM_BANDWIDTH_GBPS
from repro.core.policy import COACH_POLICY, NO_OVERSUBSCRIPTION_POLICY
from repro.prediction.lstm import LSTMConfig, LSTMPredictor
from repro.prediction.utilization_model import LongTermUtilizationModel, OracleUtilizationModel
from repro.trace.trace import Trace


def training_overheads(trace: Trace, n_estimators: int = 10) -> Dict[str, float]:
    """Offline training cost of the long-term utilization model."""
    history_vms = trace.long_running().vms
    model = LongTermUtilizationModel(n_estimators=n_estimators)
    model.fit(history_vms)
    report = model.report
    return {
        "n_training_vms": float(report.n_training_vms),
        "n_training_rows": float(report.n_training_rows),
        "training_seconds": report.training_seconds,
        "training_data_mb": report.training_data_bytes / 1e6,
        "model_size_mb": report.model_size_bytes / 1e6,
    }


def scheduling_overheads(trace: Trace, cluster_id: str = "C1",
                         max_vms: int = 200) -> Dict[str, float]:
    """Per-VM scheduling latency with and without the time-window dimensions."""
    vms = [vm for vm in trace.vms if vm.cluster_id == cluster_id][:max_vms]
    if not vms:
        raise ValueError(f"no VMs target cluster {cluster_id}")
    oracle = OracleUtilizationModel(COACH_POLICY.windows, COACH_POLICY.percentile)
    timings: Dict[str, float] = {}
    for label, policy in (("coach", COACH_POLICY), ("none", NO_OVERSUBSCRIPTION_POLICY)):
        model = oracle if policy.oversubscribe else None
        manager = ClusterManager(trace.fleet.get(cluster_id), policy, model)
        start = time.perf_counter()
        for vm in vms:
            manager.request_vm(vm)
        elapsed = time.perf_counter() - start
        timings[f"{label}_ms_per_vm"] = 1000.0 * elapsed / len(vms)
    timings["added_ms_per_vm"] = timings["coach_ms_per_vm"] - timings["none_ms_per_vm"]
    return timings


def local_predictor_overheads(samples: int = 500, seed: int = 0) -> Dict[str, float]:
    """Memory footprint and per-cycle latency of the local LSTM predictor."""
    rng = np.random.default_rng(seed)
    model = LSTMPredictor(LSTMConfig(epochs=1))
    series = np.clip(0.4 + 0.2 * np.sin(np.arange(samples) / 15)
                     + rng.normal(0, 0.02, samples), 0, 1)
    from repro.prediction.lstm import build_sequences

    sequences, targets = build_sequences(series, model.config.sequence_length)
    start = time.perf_counter()
    model.fit(sequences[:64], targets[:64], epochs=1)
    model.predict(sequences[:1])
    cycle_ms = 1000.0 * (time.perf_counter() - start)
    return {
        "model_memory_kb": model.memory_bytes() / 1024.0,
        "train_infer_cycle_ms": cycle_ms,
        "parameter_count": float(model.parameter_count()),
    }


def mitigation_bandwidths() -> Dict[str, float]:
    """The trim/extend bandwidths used by the mitigation engine (GB/s)."""
    return {
        "trim_bandwidth_gbps": TRIM_BANDWIDTH_GBPS,
        "extend_bandwidth_gbps": EXTEND_BANDWIDTH_GBPS,
    }


def overhead_report(trace: Trace, n_estimators: int = 8) -> Dict[str, Dict[str, float]]:
    """All Section 4.5 overheads in one report."""
    return {
        "training": training_overheads(trace, n_estimators),
        "scheduling": scheduling_overheads(trace),
        "local_predictor": local_predictor_overheads(),
        "mitigation": mitigation_bandwidths(),
    }
