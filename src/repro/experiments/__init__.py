"""Experiment harnesses regenerating every evaluated figure and table."""

from repro.experiments import figures, overheads
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    default_experiment_trace,
    get_experiment,
    list_experiments,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "default_experiment_trace",
    "figures",
    "get_experiment",
    "list_experiments",
    "overheads",
]
