"""Registry mapping every reproduced figure/table to its harness function."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments import figures, overheads
from repro.trace.generator import generate_trace
from repro.trace.trace import Trace


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment (a paper figure, table, or section)."""

    experiment_id: str
    title: str
    #: Callable taking a trace (or None for trace-free experiments).
    runner: Callable[..., object]
    needs_trace: bool = True

    def run(self, trace: Optional[Trace] = None, **kwargs: object) -> object:
        if self.needs_trace:
            if trace is None:
                trace = default_experiment_trace()
            return self.runner(trace, **kwargs)
        return self.runner(**kwargs)


def default_experiment_trace(n_vms: int = 1200, seed: int = 2024) -> Trace:
    """The trace used by the experiment harnesses when none is supplied."""
    return generate_trace(n_vms=n_vms, n_days=14, seed=seed, n_subscriptions=80,
                          servers_per_cluster=3)


EXPERIMENTS: Dict[str, Experiment] = {
    "figure02": Experiment("figure02", "Resource hours by VM duration",
                           figures.figure02_duration),
    "figure03": Experiment("figure03", "Resource hours by VM size",
                           figures.figure03_size),
    "figure04": Experiment("figure04", "Stranding by resource and oversubscription",
                           figures.figure04_stranding),
    "figure05": Experiment("figure05", "Bottleneck resource per cluster",
                           figures.figure05_bottlenecks),
    "figure06": Experiment("figure06", "CPU/memory utilization correlation",
                           figures.figure06_utilization),
    "figure07": Experiment("figure07", "Week-long VM utilization profile",
                           figures.figure07_vm_profile),
    "figure08": Experiment("figure08", "Peaks and valleys per time window",
                           figures.figure08_peaks),
    "figure09": Experiment("figure09", "Day-over-day peak consistency",
                           figures.figure09_consistency),
    "figure10": Experiment("figure10", "Weekly savings for one cluster",
                           figures.figure10_weekly_savings),
    "figure11": Experiment("figure11", "Savings distribution across clusters",
                           figures.figure11_savings_distribution),
    "figure12": Experiment("figure12", "History-based predictability",
                           figures.figure12_predictability),
    "figure15": Experiment("figure15", "PA/VA trade-off heat map",
                           figures.figure15_pa_va_tradeoff, needs_trace=False),
    "figure17": Experiment("figure17", "Oversubscribed accesses vs percentile",
                           figures.figure17_oversub_accesses),
    "figure18": Experiment("figure18", "Workload slowdown per VM configuration",
                           figures.figure18_workloads, needs_trace=False),
    "figure19": Experiment("figure19", "Prediction over/under-allocation",
                           figures.figure19_prediction_accuracy),
    "figure20": Experiment("figure20", "Packing and violations per policy",
                           figures.figure20_packing),
    "figure21": Experiment("figure21", "Mitigation policy timelines",
                           figures.figure21_mitigation, needs_trace=False),
    "section4.5": Experiment("section4.5", "Platform overheads",
                             overheads.overhead_report),
}


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {list_experiments()}") from exc
