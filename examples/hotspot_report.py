"""Contention hotspots: which servers concentrate the violations?

Replays the coach policy over a small synthetic trace (store-backed, so the
replay runs on the columnar fast paths) and prints the per-server hotspot
table and per-cluster violation-rate CDFs from
:func:`repro.experiments.figures.hotspot_report` -- the starting point for a
mitigation/migration experiment: the paper's Section 5 mitigations act
exactly on the servers this report ranks first.
Run with ``python examples/hotspot_report.py``.
"""

import statistics

from repro.core.policy import COACH_POLICY
from repro.experiments.figures import hotspot_report
from repro.simulator import SimulationConfig, simulate_policy
from repro.trace.generator import generate_trace
from repro.trace.store import TraceStore


def main() -> None:
    trace = generate_trace(n_vms=500, n_days=10, seed=1234, n_subscriptions=30,
                           servers_per_cluster=1)
    store_trace = TraceStore.from_trace(trace).as_trace()
    evaluation = simulate_policy(
        store_trace, COACH_POLICY,
        SimulationConfig(clusters=["C1", "C2", "C3"], n_estimators=3))
    report = hotspot_report(evaluation.violations, top_n=5)

    print(f"{report['n_servers']} servers hosted occupied slots; worst offenders:\n")
    # "pressure" = (cpu + mem violation slots) / observed slots; a slot
    # violating both resources counts twice, so it can exceed 100%.
    print(f"{'server':12s} {'cluster':8s} {'observed':>9s} {'cpu viol':>9s} "
          f"{'mem viol':>9s} {'pressure':>8s}")
    for row in report["hotspots"]:
        print(f"{row['server_id']:12s} {row['cluster_id']:8s} "
              f"{row['observed_slots']:9d} {row['cpu_violation_slots']:9d} "
              f"{row['memory_violation_slots']:9d} "
              f"{100.0 * row['violation_rate']:6.2f}%")

    print("\nPer-cluster violation-rate distribution (CDF):")
    for cluster_id, stats in report["per_cluster"].items():
        rates = stats["violation_rate"]
        median = statistics.median(rates)
        print(f"  {cluster_id}: {stats['n_servers']} servers, "
              f"median rate {100.0 * median:.2f}%, "
              f"worst {100.0 * rates[-1]:.2f}%, "
              f"cpu={stats['cpu_violation_slots']} "
              f"mem={stats['memory_violation_slots']} violation slots")

    print("\nServers at the top of this table are the mitigation/migration")
    print("candidates: trimming or migrating their noisiest VM resolves the")
    print("bulk of the cluster's contention (Section 5 of the paper).")


if __name__ == "__main__":
    main()
