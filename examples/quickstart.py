"""Quickstart: generate a trace, train Coach's predictor, and place CoachVMs.

Run with ``python examples/quickstart.py``.
"""

from repro import COACH_POLICY, Resource, generate_trace
from repro.core.cluster_manager import ClusterManager, build_prediction_model
from repro.trace.timeseries import SLOTS_PER_DAY


def main() -> None:
    # 1. A synthetic two-week trace standing in for the Azure telemetry.
    trace = generate_trace(n_vms=600, n_days=14, seed=1, n_subscriptions=50,
                           servers_per_cluster=3)
    print("Trace:", {k: round(v, 2) for k, v in trace.summary().items()})

    # 2. Train the long-term utilization model on the first week.
    history, _future = trace.split_at(7 * SLOTS_PER_DAY)
    model = build_prediction_model(COACH_POLICY, history.long_running().vms,
                                   n_estimators=8)

    # 3. Admit the second week's arrivals to one cluster as CoachVMs.
    cluster_id = "C8"
    manager = ClusterManager(trace.fleet.get(cluster_id), COACH_POLICY, model)
    arrivals = [vm for vm in trace.vms
                if vm.cluster_id == cluster_id and vm.start_slot >= 7 * SLOTS_PER_DAY]
    for vm in arrivals:
        manager.request_vm(vm)

    summary = manager.capacity_summary()
    print(f"Placed {summary['vms_placed']:.0f} VMs "
          f"({summary['vms_rejected']:.0f} rejected) on "
          f"{summary['servers_in_use']:.0f} servers")
    print(f"Memory guaranteed up front but not reserved thanks to oversubscription: "
          f"{summary['savings_memory_gb']:.0f} GB; CPU: {summary['savings_cores']:.0f} cores")

    # 4. Inspect one CoachVM's guaranteed/oversubscribed split.
    for coach_vm in list(manager.placed_vms().values())[:3]:
        print(f"  {coach_vm.vm_id}: {coach_vm.config.name} -> "
              f"PA {coach_vm.memory.pa_gb:.0f} GB + VA {coach_vm.memory.va_gb:.0f} GB "
              f"(oversubscription rate "
              f"{100 * coach_vm.oversubscription_rate(Resource.MEMORY):.0f}%)")


if __name__ == "__main__":
    main()
