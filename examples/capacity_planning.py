"""Capacity planning: compare oversubscription policies on the same trace.

Reproduces the Figure 20 experiment at a small scale: how many more VMs the
platform hosts under Single / Coach / Aggressive Coach, and what it costs in
contention.  Run with ``python examples/capacity_planning.py``.
"""

from repro import generate_trace
from repro.core.policy import STANDARD_POLICIES
from repro.simulator import SimulationConfig, evaluate_policies


def main() -> None:
    trace = generate_trace(n_vms=900, n_days=14, seed=11, n_subscriptions=60,
                           servers_per_cluster=2)
    config = SimulationConfig(clusters=["C1", "C4", "C8"], n_estimators=5)
    results = evaluate_policies(trace, STANDARD_POLICIES, config)

    print(f"{'policy':12s} {'hosted cores':>12s} {'additional':>10s} "
          f"{'CPU viol.':>10s} {'MEM viol.':>10s} {'servers':>8s}")
    for name in ("none", "single", "coach", "aggr-coach"):
        r = results[name]
        print(f"{name:12s} {r.average_concurrent_cores:12.0f} "
              f"{(r.additional_capacity_pct or 0):9.1f}% "
              f"{r.violations.cpu_violation_pct:9.1f}% "
              f"{r.violations.memory_violation_pct:9.1f}% "
              f"{r.servers_in_use:8d}")

    coach = results["coach"]
    none = results["none"]
    print(f"\nCoach hosts {coach.average_concurrent_cores / max(none.average_concurrent_cores, 1e-9):.2f}x "
          "the sellable cores of the no-oversubscription baseline.")


if __name__ == "__main__":
    main()
