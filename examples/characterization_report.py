"""Characterization report: regenerate the Section 2 analysis on a trace.

Prints the headline numbers behind Figures 2-12, computed through the
columnar segment-reduce path (the trace is store-backed), and reports the
measured speedup over the per-VM reference loops — both passes run, and
their results are asserted identical before anything is printed.  Run with
``python examples/characterization_report.py``.
"""

from repro import generate_trace
from repro.characterization import (
    cluster_savings,
    median_vm_shape,
    predictability_summary,
    resource_hours_by_duration,
    stranding_by_scenario,
    utilization_summary,
)
from repro.simulator.benchmarking import measure_characterization_throughput
from repro.trace.store import TraceStore
from repro.trace.timeseries import SLOTS_PER_DAY


def main() -> None:
    trace = generate_trace(n_vms=800, n_days=14, seed=5, n_subscriptions=60,
                           servers_per_cluster=3)
    trace = TraceStore.from_trace(trace).as_trace()

    # Full Section-2 suite, columnar vs per-VM reference: asserts bitwise
    # equality, returns the wall-clocks (also how the benchmarks measure it).
    timing = measure_characterization_throughput(trace)
    print("== Columnar characterization ==")
    print(f"{timing['n_vms']} VMs / {timing['n_slots']} slots: "
          f"columnar {timing['columnar_seconds'] * 1e3:.0f} ms vs "
          f"per-VM reference {timing['reference_seconds'] * 1e3:.0f} ms "
          f"({timing['speedup']:.1f}x, results bitwise identical)")

    duration = resource_hours_by_duration(trace)
    one_day = duration["threshold_hours"].index(24)
    print("\n== Allocated resources (Figures 2-3) ==")
    print(f"VMs lasting >1 day: {duration['vms_pct'][one_day]:.0f}% of VMs, "
          f"{duration['cpu_hours_pct'][one_day]:.0f}% of core-hours")
    print("Median VM:", median_vm_shape(trace))

    print("\n== Stranding (Figures 4-5) ==")
    stranding = stranding_by_scenario(trace, sample_every_slots=SLOTS_PER_DAY)
    for scenario, result in stranding.items():
        fractions = {r.value: f"{100 * v:.0f}%" for r, v in result.stranded_fraction.items()}
        print(f"{scenario:12s} stranded: {fractions}")

    print("\n== Underutilization (Figure 6) ==")
    for key, value in utilization_summary(trace).items():
        print(f"  {key}: {value:.2f}")

    print("\n== Temporal savings (Figures 10-11) ==")
    for label, row in cluster_savings(trace, window_hours_sweep=[24, 6, 4, 1]).items():
        print(f"  {label:7s} CPU saved {row['cpu']:.1f}%  memory saved {row['memory']:.1f}%")

    print("\n== Predictability (Figure 12, memory) ==")
    for grouping, stats in predictability_summary(trace).items():
        print(f"  {grouping:28s} median matches {stats['median_matching_vms']:.0f}, "
              f"median range {stats['median_peak_range_pct']:.0f}%, "
              f"within 10%: {100 * stats['fraction_within_tolerance']:.0f}%")


if __name__ == "__main__":
    main()
