"""End-to-end bounded-memory pipeline: generate -> store -> replay -> characterize.

The eager path (``generate_trace`` then ``TraceStore.from_trace(...).save``)
holds the whole object trace and the concatenated telemetry buffers in RAM
at once.  This example runs the same pipeline without ever doing that:

1. **Generate + ingest, streaming.**  ``generate_trace_to_store`` drives the
   synthetic generator through a ``TraceStoreBuilder`` in bounded batches,
   appending telemetry straight to the on-disk columnar layout.
2. **Replay, memory-mapped.**  ``TraceStore.open(mmap=True)`` loads only the
   metadata columns; the chunked violation meter faults telemetry pages in
   one slot-chunk at a time.
3. **Characterize, columnar.**  Section-2 statistics run as segment
   reductions over the same mmap'd buffers.

Both ingest paths are byte-identical on disk (the builder's differential
contract), so the printed peak-memory ratio is the whole story -- nothing
else about the results changes.  Run with::

    python examples/streaming_pipeline.py

See docs/trace_store.md ("Streaming ingest") for the builder API.
"""

import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.core.policy import COACH_POLICY
from repro.simulator.engine import SimulationConfig, simulate_policy
from repro.simulator.replay import chunk_slots_for_budget
from repro.trace.generator import generate_trace, generate_trace_to_store
from repro.trace.store import TraceStore

N_VMS = 2000
N_DAYS = 30
SEED = 2026


def traced(label, fn):
    """Run *fn* under tracemalloc; print and return (result, peak_bytes)."""
    tracemalloc.start()
    begin = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - begin
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"  {label:<28s} peak {peak / 1e6:8.1f} MB   {seconds:6.1f}s")
    return result, peak


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="streaming-pipeline-"))
    store_path = workdir / "trace-store"
    print(f"Month-scale workload: {N_VMS} VMs x {N_DAYS} days -> {store_path}")

    # 1. Streaming ingest vs the eager baseline, same seed -> same bytes.
    print("Ingest:")
    _, stream_peak = traced(
        "streaming generate_to_store",
        lambda: generate_trace_to_store(store_path, n_vms=N_VMS, n_days=N_DAYS,
                                        seed=SEED, batch_vms=256))

    def eager():
        trace = generate_trace(n_vms=N_VMS, n_days=N_DAYS, seed=SEED)
        return TraceStore.from_trace(trace).save(workdir / "eager-store")

    eager_path, eager_peak = traced("eager from_trace + save", eager)
    for name in sorted(p.name for p in eager_path.iterdir()):
        assert (eager_path / name).read_bytes() == \
            (store_path / name).read_bytes(), f"{name} differs"
    print(f"  -> byte-identical stores; streaming peaked "
          f"{eager_peak / max(1, stream_peak):.1f}x lower")

    # 2. Replay from disk, memory-mapped, under a budget the telemetry
    #    buffer itself exceeds.
    store = TraceStore.open(store_path, mmap=True)
    budget = max(1, store.util_nbytes // 3)
    max_servers = max(c.server_count for c in store.fleet.clusters)
    chunk = chunk_slots_for_budget(max_servers, budget)
    print(f"Replay (buffer {store.util_nbytes / 1e6:.1f} MB, "
          f"budget {budget / 1e6:.1f} MB, chunk {chunk} slots):")
    evaluation, replay_peak = traced(
        "mmap + chunked replay",
        lambda: simulate_policy(store.as_trace(), COACH_POLICY,
                                SimulationConfig(replay_chunk_slots=chunk)))
    assert replay_peak < budget, "replay exceeded the memory budget"
    print(f"  -> {evaluation.accepted_vms}/{evaluation.requested_vms} VMs "
          f"accepted, memory violations "
          f"{evaluation.violations.memory_violation_pct:.2f}%, within budget")

    # 3. Columnar characterization over the same mmap'd store.
    from repro.characterization import utilization_summary
    print("Characterize:")
    summary, _ = traced("utilization_summary",
                        lambda: utilization_summary(store.as_trace()))
    print(f"  -> {len(summary)} headline statistics computed from the "
          f"mmap'd buffers")
    print(f"Done.  Store left at {store_path} (delete when finished).")


if __name__ == "__main__":
    main()
