"""Contention mitigation: the Figure 21 scenario on one oversubscribed server.

Cache and KV-Store CoachVMs are colocated with a Video-Conf CoachVM that uses
more memory than predicted; each mitigation policy is compared on how fast it
restores the oversubscribed pool and how much the latency-critical workloads
suffer.  Run with ``python examples/contention_mitigation.py``.
"""

from repro.workloads import run_all_mitigation_policies


def main() -> None:
    timelines = run_all_mitigation_policies(duration_seconds=330.0, interval_seconds=15.0)
    print(f"{'policy':20s} {'min avail GB':>12s} {'end avail GB':>12s} "
          f"{'peak cache':>11s} {'peak kv':>9s} {'recovered':>10s}")
    for name, timeline in timelines.items():
        print(f"{name:20s} {min(timeline.available_oversub_gb):12.2f} "
              f"{timeline.available_oversub_gb[-1]:12.2f} "
              f"x{timeline.peak_slowdown('cache'):10.2f} "
              f"x{timeline.peak_slowdown('kvstore'):8.2f} "
              f"{str(timeline.recovered()):>10s}")

    print("\nTakeaways (matching the paper's Figure 21):")
    print(" * Without mitigation the pool never recovers and tail latency spikes.")
    print(" * Trimming handles the first contention; it cannot handle the second.")
    print(" * Extending the pool (and migrating the noisy VM) resolves both;")
    print("   proactive triggers act before the pool is fully exhausted.")


if __name__ == "__main__":
    main()
