"""Regression: the repo-wide conftest reseeds BOTH global RNGs per test.

The root ``conftest.py`` autouse fixture calls ``random.seed(727)`` and
``np.random.seed(727)`` before every test.  Golden pins (trace, scenario,
benchmark smoke) lean on that safety net for any code path that falls back
to the module-level generators, so losing either half -- or the per-test
cadence -- would surface as unrelated flaky pins later.  These tests fail
immediately instead.

The two perturb/verify pairs below depend on pytest's definition-order
execution within a file: the first test of each pair scrambles the global
state, the second proves a fresh test still starts from seed 727.
"""

import random

import numpy as np

GLOBAL_TEST_SEED = 727


def _expected_python_draw() -> float:
    return random.Random(GLOBAL_TEST_SEED).random()


def _expected_numpy_draw() -> float:
    return float(np.random.RandomState(GLOBAL_TEST_SEED).random_sample())


def test_python_rng_starts_from_global_seed_then_perturbs():
    assert random.random() == _expected_python_draw()
    # Scramble the global stream; the next test must not see this.
    random.seed()
    random.random()


def test_python_rng_reseeded_after_previous_test_perturbed_it():
    assert random.random() == _expected_python_draw()


def test_numpy_rng_starts_from_global_seed_then_perturbs():
    assert float(np.random.random()) == _expected_numpy_draw()
    np.random.seed(1)
    np.random.random()


def test_numpy_rng_reseeded_after_previous_test_perturbed_it():
    assert float(np.random.random()) == _expected_numpy_draw()


def test_both_streams_are_independent_of_draw_order():
    """Drawing from one global generator does not advance the other."""
    assert float(np.random.random()) == _expected_numpy_draw()
    assert random.random() == _expected_python_draw()
