"""Tests for the resource model (Table 1) and ResourceVector arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.resources import (
    ALL_RESOURCES,
    RESOURCE_FUNGIBILITY,
    SHARING_MECHANISMS,
    Fungibility,
    Resource,
    ResourceVector,
    is_fungible,
)


class TestFungibilityTable:
    def test_table1_has_all_paper_rows(self):
        expected = {"cpu", "memory_space", "memory_bandwidth", "network_bandwidth",
                    "accelerated_network", "storage_bandwidth", "local_storage_space",
                    "remote_storage_space", "gpu", "power"}
        assert expected == set(SHARING_MECHANISMS)

    def test_memory_space_is_non_fungible(self):
        assert SHARING_MECHANISMS["memory_space"].fungibility is Fungibility.NON_FUNGIBLE
        assert not is_fungible(Resource.MEMORY)

    def test_cpu_is_fungible_via_cpu_groups(self):
        assert SHARING_MECHANISMS["cpu"].is_fungible
        assert SHARING_MECHANISMS["cpu"].mechanism == "CPU groups"
        assert is_fungible(Resource.CPU)

    def test_every_tracked_resource_has_fungibility(self):
        assert set(RESOURCE_FUNGIBILITY) == set(ALL_RESOURCES)


class TestResourceVector:
    def test_construction_and_access(self):
        vec = ResourceVector.of(cpu=4, memory=16, network=2, ssd=128)
        assert vec[Resource.CPU] == 4
        assert vec[Resource.MEMORY] == 16
        assert vec.total() == 150

    def test_addition_and_subtraction(self):
        a = ResourceVector.of(cpu=2, memory=8)
        b = ResourceVector.of(cpu=1, memory=4, network=1)
        assert (a + b)[Resource.CPU] == 3
        assert (a - b)[Resource.MEMORY] == 4
        assert (a - b)[Resource.NETWORK] == -1

    def test_scalar_multiplication(self):
        vec = ResourceVector.of(cpu=2, memory=8) * 2.5
        assert vec[Resource.CPU] == 5
        assert vec[Resource.MEMORY] == 20

    def test_fits_within(self):
        demand = ResourceVector.of(cpu=4, memory=16, network=1, ssd=100)
        capacity = ResourceVector.of(cpu=40, memory=160, network=25, ssd=3000)
        assert demand.fits_within(capacity)
        assert not capacity.fits_within(demand)

    def test_fits_within_is_per_component(self):
        demand = ResourceVector.of(cpu=1, memory=200)
        capacity = ResourceVector.of(cpu=40, memory=160)
        assert not demand.fits_within(capacity)

    def test_maximum_minimum(self):
        a = ResourceVector.of(cpu=2, memory=8)
        b = ResourceVector.of(cpu=4, memory=4)
        assert a.maximum(b)[Resource.CPU] == 4
        assert a.minimum(b)[Resource.MEMORY] == 4

    def test_clamp_min(self):
        vec = ResourceVector.of(cpu=-3, memory=5).clamp_min(0.0)
        assert vec[Resource.CPU] == 0.0
        assert vec[Resource.MEMORY] == 5.0

    def test_zero_and_equality(self):
        assert ResourceVector.zeros().is_zero()
        assert ResourceVector.of(cpu=1) == ResourceVector({Resource.CPU: 1})

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError):
            ResourceVector({"gpu": 1})


@given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=4, max_size=4))
def test_vector_add_then_subtract_roundtrips(values):
    vec = ResourceVector({r: v for r, v in zip(ALL_RESOURCES, values)})
    other = ResourceVector.uniform(3.5)
    assert (vec + other) - other == vec


@given(scale=st.floats(min_value=0, max_value=100),
       values=st.lists(st.floats(min_value=0, max_value=1e4), min_size=4, max_size=4))
def test_scaling_preserves_fit_ordering(scale, values):
    demand = ResourceVector({r: v for r, v in zip(ALL_RESOURCES, values)})
    capacity = demand * (1.0 + scale)
    assert demand.fits_within(capacity)
