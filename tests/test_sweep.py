"""Process-pool policy sweeps: determinism, merge order, failure surfacing.

The sweep engine (:mod:`repro.simulator.sweep`) must be an invisible
optimization: bitwise-identical results in policy-declaration order for any
worker count, and a worker failure must surface the original exception with
the failing policy's name attached -- never hang, never return a partial
sweep.  (The golden-trace pins in ``tests/test_golden_trace.py`` addition-
ally assert pool results against checked-in numbers.)
"""

import os
import pickle

import pytest

from repro.core.policy import (
    COACH_POLICY,
    NO_OVERSUBSCRIPTION_POLICY,
    SINGLE_RATE_POLICY,
    PolicyConfig,
)
from repro.simulator import PolicySweepError, SimulationConfig, SweepTask
from repro.simulator.sweep import (
    create_sweep_executor,
    run_sweep_task,
    sweep_policies,
)

#: A policy whose model training raises inside the worker: numpy rejects
#: percentiles outside [0, 100] during the forest-target computation.
BROKEN_POLICY = COACH_POLICY.with_percentile(-5.0)


class _PoolKillingPolicy(PolicyConfig):
    """A policy whose *unpickling* kills the worker process outright.

    Simulates a hard worker death (OOM-kill, segfault): the parent pickles
    the task fine, but reconstructing it in the spawned worker calls
    ``os._exit`` -- no Python exception, no ``_SweepFailure`` shipped back,
    just a broken pool.
    """

    def __reduce__(self):
        return (os._exit, (1,))


@pytest.fixture(scope="module")
def sweep_policies_under_test():
    return {"none": NO_OVERSUBSCRIPTION_POLICY, "coach": COACH_POLICY}


@pytest.fixture(scope="module")
def sweep_config(tiny_trace):
    return SimulationConfig(clusters=tiny_trace.cluster_ids()[:2],
                            n_estimators=2)


class TestSweepDeterminism:
    def test_pool_matches_serial_bitwise(self, tiny_trace,
                                         sweep_policies_under_test,
                                         sweep_config):
        serial = sweep_policies(tiny_trace, sweep_policies_under_test,
                                sweep_config)
        pooled = sweep_policies(
            tiny_trace, sweep_policies_under_test,
            SimulationConfig(clusters=sweep_config.clusters, n_estimators=2,
                             sweep_parallelism=2))
        assert list(serial) == list(pooled)
        for name in serial:
            assert serial[name] == pooled[name], f"policy {name} diverged"

    def test_merge_preserves_declaration_order(self, tiny_trace, sweep_config):
        """Results come back in declaration order even when it is not the
        standard one and completion order differs."""
        declaration = {"coach": COACH_POLICY, "none": NO_OVERSUBSCRIPTION_POLICY,
                       "single": SINGLE_RATE_POLICY}
        pooled = sweep_policies(
            tiny_trace, declaration,
            SimulationConfig(clusters=sweep_config.clusters, n_estimators=2,
                             sweep_parallelism=3))
        assert list(pooled) == ["coach", "none", "single"]
        # "none" present -> relative capacity columns are filled in.
        assert pooled["none"].additional_capacity_pct == pytest.approx(0.0)
        assert pooled["coach"].additional_capacity_pct is not None

    def test_worker_surplus_is_clamped(self, tiny_trace,
                                       sweep_policies_under_test,
                                       sweep_config):
        """More workers than policies must not spawn idle processes or
        change results."""
        serial = sweep_policies(tiny_trace, sweep_policies_under_test,
                                sweep_config)
        pooled = sweep_policies(
            tiny_trace, sweep_policies_under_test,
            SimulationConfig(clusters=sweep_config.clusters, n_estimators=2,
                             sweep_parallelism=16))
        assert serial == pooled

    def test_external_executor_is_reused_and_left_running(
            self, tiny_trace, sweep_policies_under_test, sweep_config):
        """A caller-owned pool serves consecutive sweeps bitwise-identically
        to serial and survives them (warm-worker reuse, PR 9)."""
        serial = sweep_policies(tiny_trace, sweep_policies_under_test,
                                sweep_config)
        pool_config = SimulationConfig(clusters=sweep_config.clusters,
                                       n_estimators=2, sweep_parallelism=2)
        executor = create_sweep_executor(2)
        try:
            first = sweep_policies(tiny_trace, sweep_policies_under_test,
                                   pool_config, executor=executor)
            second = sweep_policies(tiny_trace, sweep_policies_under_test,
                                    pool_config, executor=executor)
            assert serial == first == second
            # The sweep must not have shut the caller's pool down.
            assert executor.submit(int, 7).result() == 7
        finally:
            executor.shutdown()

    def test_external_executor_forces_pool_path(
            self, tiny_trace, sweep_policies_under_test, sweep_config):
        """Passing a pool opts into the pool path even when the config says
        serial (sweep_parallelism=1) -- the caller built workers to use."""
        executor = create_sweep_executor(2)
        try:
            serial = sweep_policies(tiny_trace, sweep_policies_under_test,
                                    sweep_config)
            pooled = sweep_policies(tiny_trace, sweep_policies_under_test,
                                    sweep_config, executor=executor)
            assert serial == pooled
        finally:
            executor.shutdown()


class TestSweepFailures:
    def test_worker_failure_surfaces_policy_name(self, tiny_trace, sweep_config):
        """A policy raising inside a worker process raises PolicySweepError
        naming the policy and the original exception -- no hang, no partial
        result dict."""
        with pytest.raises(PolicySweepError) as excinfo:
            sweep_policies(
                tiny_trace,
                {"coach": COACH_POLICY, "broken": BROKEN_POLICY},
                SimulationConfig(clusters=sweep_config.clusters, n_estimators=2,
                                 sweep_parallelism=2))
        error = excinfo.value
        assert error.policy_name == "broken"
        assert error.original_type == "ValueError"
        assert "broken" in str(error)
        assert error.original_message in str(error)
        # The worker-side traceback travels with the error for debuggability.
        assert "Traceback" in error.worker_traceback

    def test_failure_leaves_external_executor_usable(self, tiny_trace,
                                                     sweep_config):
        """A failing policy on a caller-owned pool surfaces the same
        PolicySweepError, drains the in-flight siblings, and leaves the
        pool alive for the caller's next sweep."""
        executor = create_sweep_executor(2)
        pool_config = SimulationConfig(clusters=sweep_config.clusters,
                                       n_estimators=2, sweep_parallelism=2)
        try:
            with pytest.raises(PolicySweepError) as excinfo:
                sweep_policies(
                    tiny_trace, {"coach": COACH_POLICY, "broken": BROKEN_POLICY},
                    pool_config, executor=executor)
            assert excinfo.value.policy_name == "broken"
            # The pool survived the failed sweep and still computes.
            survivors = {"none": NO_OVERSUBSCRIPTION_POLICY,
                         "coach": COACH_POLICY}
            recovered = sweep_policies(tiny_trace, survivors, pool_config,
                                       executor=executor)
            assert recovered == sweep_policies(tiny_trace, survivors,
                                               sweep_config)
        finally:
            executor.shutdown()

    def test_serial_failure_uses_same_exception_shape(self, tiny_trace,
                                                      sweep_config):
        with pytest.raises(PolicySweepError) as excinfo:
            sweep_policies(tiny_trace, {"broken": BROKEN_POLICY},
                           sweep_config)
        error = excinfo.value
        assert error.policy_name == "broken"
        assert error.original_type == "ValueError"
        # The serial path chains the original exception for debugging.
        assert isinstance(error.__cause__, ValueError)

    def test_dead_worker_surfaces_policy_name(self, tiny_trace, sweep_config):
        """A worker that dies outright (no Python exception to catch) must
        still raise PolicySweepError with the pending policy attributed --
        not a bare BrokenProcessPool."""
        killer = _PoolKillingPolicy(
            kind=COACH_POLICY.kind, windows=COACH_POLICY.windows,
            percentile=COACH_POLICY.percentile, oversubscribe=True)
        with pytest.raises(PolicySweepError) as excinfo:
            sweep_policies(
                tiny_trace,
                {"killer": killer, "coach": COACH_POLICY},
                SimulationConfig(clusters=sweep_config.clusters, n_estimators=2,
                                 sweep_parallelism=2))
        error = excinfo.value
        assert error.policy_name == "killer"
        assert error.original_type == "BrokenProcessPool"
        assert "died abruptly" in str(error)

    def test_run_sweep_task_never_raises(self, tiny_trace, sweep_config):
        """The worker entry point ships failures as data (raising would
        round-trip through pickle and mask the root cause)."""
        outcome = run_sweep_task(SweepTask("broken", BROKEN_POLICY,
                                           tiny_trace, sweep_config))
        assert outcome.evaluation is None
        assert outcome.failure is not None
        assert outcome.failure.original_type == "ValueError"


class TestSweepTask:
    def test_task_round_trips_through_pickle(self, tiny_trace, sweep_config):
        """Spawned workers share nothing: the task must be self-contained."""
        task = SweepTask("coach", COACH_POLICY, tiny_trace, sweep_config)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.policy_name == "coach"
        assert clone.policy == COACH_POLICY
        assert clone.config == sweep_config
        assert len(clone.trace.vms) == len(tiny_trace.vms)
