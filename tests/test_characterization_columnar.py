"""Differential suite: columnar characterization vs the per-VM reference.

Every statistic rewired onto the segment-reduce kernels is pinned against
the seed per-VM path on three store backends:

* **dense** -- ``TraceStore.from_trace`` with the native float64 telemetry;
  results must be *bitwise* identical (the columnar exactness contract);
* **mmap** -- the same store round-tripped through ``save``/``open(mmap=True)``
  (read-only memory-mapped buffers); also bitwise;
* **float32** -- ``util_dtype=np.float32``; mean/percentile statistics may
  differ by rounding (numpy's scalar path keeps float32 intermediates where
  the vectorized kernels promote), so those compare with a tolerance.

The reference side is ``trace.without_store()``: the identical zero-copy VM
views minus the columnar dispatch, i.e. the seed loops reading the same
buffers.  Edge cases -- an empty trace, single-sample VMs, and VMs shorter
than one time window -- get a handmade trace of their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization import (
    cluster_savings,
    fraction_consistent,
    group_predictability,
    measure_stranding,
    median_vm_shape,
    peak_consistency_cdf,
    peaks_and_valleys_by_window,
    predictability_summary,
    resource_hours_by_duration,
    resource_hours_by_size,
    savings_distribution,
    stranding_by_scenario,
    utilization_scatter,
    utilization_summary,
    vm_week_profile,
    weekly_savings_profile,
)
from repro.characterization import columnar
from repro.core.resources import ALL_RESOURCES, Resource
from repro.simulator.benchmarking import assert_results_identical
from repro.trace.hardware import ClusterConfig, Fleet
from repro.trace.store import (
    TraceStore,
    rowwise_mean,
    segment_percentile,
    segment_percentiles,
    segment_reduce,
    segment_sort,
)
from repro.trace.timeseries import (
    SLOTS_PER_DAY,
    TimeWindowConfig,
    UtilizationSeries,
)
from repro.trace.trace import Trace
from repro.trace.vm import VM_CATALOG, VMRecord

#: Backends swept by the differential tests; the value is the float
#: tolerance (0.0 = bitwise) for order-dependent statistics.
BACKENDS = {"dense": 0.0, "mmap": 0.0, "float32": 1e-4}


@pytest.fixture(scope="module", params=sorted(BACKENDS))
def backend_trace(request, small_trace, tmp_path_factory):
    """``(store-backed trace, float tolerance)`` for one backend."""
    name = request.param
    if name == "dense":
        trace = TraceStore.from_trace(small_trace).as_trace()
    elif name == "mmap":
        path = tmp_path_factory.mktemp("columnar-store") / "trace"
        TraceStore.from_trace(small_trace).save(path)
        trace = TraceStore.open(path, mmap=True).as_trace()
    else:
        trace = TraceStore.from_trace(small_trace,
                                      util_dtype=np.float32).as_trace()
    return trace, BACKENDS[name]


def _check(statistic, trace, rtol, *args, **kwargs):
    columnar_result = statistic(trace, *args, **kwargs)
    reference_result = statistic(trace.without_store(), *args, **kwargs)
    assert_results_identical(reference_result, columnar_result, rtol=rtol)
    return columnar_result


class TestDifferentialAgainstReference:
    def test_dispatch_takes_columnar_path(self, backend_trace):
        """Guard against a silent fallback: every maybe_* must engage."""
        trace, _rtol = backend_trace
        assert columnar.duration_columns(trace) is not None
        assert columnar.size_columns(trace) is not None
        assert columnar.maybe_median_vm_shape(trace) is not None
        assert columnar.maybe_utilization_scatter(trace, 1.0) is not None
        assert columnar.maybe_peaks_and_valleys(
            trace, Resource.CPU, 4, 1.0, 0.05) is not None
        assert columnar.maybe_peak_consistency_cdf(
            trace, Resource.CPU, [4], 2.0, [0.1]) is not None
        assert columnar.maybe_cluster_savings(
            trace, None, [4], True, 1.0) is not None
        assert columnar.maybe_weekly_savings_profile(
            trace, None, [4], 1.0) is not None
        assert columnar.maybe_stranding_inputs(
            trace, {r: False for r in ALL_RESOURCES},
            VM_CATALOG["D4_v5"], SLOTS_PER_DAY, trace.cluster_ids()) is not None
        assert columnar.maybe_predictability_features(
            trace, Resource.MEMORY, 7 * SLOTS_PER_DAY, 0.25) is not None

    def test_allocated(self, backend_trace):
        trace, rtol = backend_trace
        _check(resource_hours_by_duration, trace, rtol)
        _check(resource_hours_by_size, trace, rtol)
        _check(median_vm_shape, trace, rtol)

    def test_utilization(self, backend_trace):
        trace, rtol = backend_trace
        _check(utilization_scatter, trace, rtol)
        _check(utilization_summary, trace, rtol)

    @pytest.mark.parametrize("window_hours", [1, 4, 24])
    def test_peaks_and_valleys(self, backend_trace, window_hours):
        trace, rtol = backend_trace
        _check(peaks_and_valleys_by_window, trace, rtol, Resource.CPU,
               window_hours=window_hours)

    def test_peak_consistency(self, backend_trace):
        trace, rtol = backend_trace
        _check(peak_consistency_cdf, trace, rtol, Resource.CPU,
               window_hours_sweep=[1, 4, 24])
        _check(fraction_consistent, trace, rtol, Resource.MEMORY)

    def test_savings(self, backend_trace):
        trace, rtol = backend_trace
        _check(cluster_savings, trace, rtol, window_hours_sweep=[24, 4, 1])
        cluster = trace.cluster_ids()[0]
        _check(cluster_savings, trace, rtol, cluster_id=cluster,
               window_hours_sweep=[4])
        _check(weekly_savings_profile, trace, rtol, window_hours_sweep=[4, 12])
        _check(savings_distribution, trace, rtol, window_hours_sweep=[4])

    @pytest.mark.parametrize("scenario", ["no-oversub", "cpu-only", "cpu+memory"])
    def test_stranding(self, backend_trace, scenario):
        trace, rtol = backend_trace
        _check(measure_stranding, trace, rtol, scenario,
               sample_every_slots=SLOTS_PER_DAY)

    def test_stranding_cluster_subset(self, backend_trace):
        trace, rtol = backend_trace
        _check(stranding_by_scenario, trace, rtol,
               sample_every_slots=SLOTS_PER_DAY,
               clusters=trace.cluster_ids()[:2])

    def test_predictability(self, backend_trace):
        trace, rtol = backend_trace
        _check(group_predictability, trace, rtol)
        _check(predictability_summary, trace, rtol, Resource.MEMORY)


# --------------------------------------------------------------------------- #
# Edge cases: empty trace, single-sample VMs, sub-window VMs
# --------------------------------------------------------------------------- #
_EDGE_FLEET = Fleet(clusters=[
    ClusterConfig("E1", "edge", (("gen4-intel", 1),)),
    ClusterConfig("E2", "edge", (("gen6-amd", 1),)),
])


def _edge_vm(vm_id, cluster_id, start_slot, end_slot, *, config="D2_v5",
             subscription="sub-a", seed=0):
    rng = np.random.default_rng(seed)
    length = end_slot - start_slot
    return VMRecord(
        vm_id=vm_id, subscription_id=subscription, config=VM_CATALOG[config],
        cluster_id=cluster_id, start_slot=start_slot, end_slot=end_slot,
        utilization={r: UtilizationSeries(rng.uniform(0.0, 1.0, length),
                                          start_slot)
                     for r in ALL_RESOURCES},
    )


@pytest.fixture(scope="module")
def edge_trace():
    """Single-sample VMs, VMs shorter than one window, mid-window starts."""
    slots_per_window = 4 * (SLOTS_PER_DAY // 24)  # one 4-hour window
    vms = [
        # One-sample lifetime: a single telemetry slot.
        _edge_vm("one-sample", "E1", 5, 6, seed=1),
        # Shorter than one window, fully inside it.
        _edge_vm("sub-window", "E1", 1, 4, seed=2),
        # Shorter than one window but straddling a window boundary.
        _edge_vm("straddle", "E2", slots_per_window - 2,
                 slots_per_window + 2, seed=3),
        # Starts mid-window, runs multiple days (exercises partial first and
        # last windows plus day-over-day pairs).
        _edge_vm("multi-day", "E1", slots_per_window // 2,
                 slots_per_window // 2 + 3 * SLOTS_PER_DAY, seed=4,
                 subscription="sub-b"),
        # Second-week arrival for the predictability split.
        _edge_vm("second-week", "E2", 8 * SLOTS_PER_DAY,
                 9 * SLOTS_PER_DAY + 7, seed=5, subscription="sub-b"),
    ]
    trace = Trace(vms=vms, fleet=_EDGE_FLEET, n_slots=14 * SLOTS_PER_DAY)
    return TraceStore.from_trace(trace).as_trace()


@pytest.fixture(scope="module")
def empty_trace():
    trace = Trace(vms=[], fleet=_EDGE_FLEET, n_slots=SLOTS_PER_DAY)
    return TraceStore.from_trace(trace).as_trace()


class TestEdgeCases:
    @pytest.mark.parametrize("fixture", ["edge_trace", "empty_trace"])
    def test_full_suite(self, fixture, request):
        trace = request.getfixturevalue(fixture)
        # min_days=0.0 keeps the single-sample and sub-window VMs inside
        # every statistic instead of being filtered by long_running().
        _check(resource_hours_by_duration, trace, 0.0)
        _check(resource_hours_by_size, trace, 0.0)
        _check(median_vm_shape, trace, 0.0)
        _check(utilization_scatter, trace, 0.0, min_days=0.0)
        _check(peaks_and_valleys_by_window, trace, 0.0, Resource.CPU,
               window_hours=4, min_days=0.0)
        _check(peak_consistency_cdf, trace, 0.0, Resource.CPU,
               window_hours_sweep=[4], min_days=0.0)
        _check(cluster_savings, trace, 0.0, window_hours_sweep=[4, 24],
               min_days=0.0)
        _check(weekly_savings_profile, trace, 0.0, window_hours_sweep=[4],
               min_days=0.0)
        _check(stranding_by_scenario, trace, 0.0,
               sample_every_slots=SLOTS_PER_DAY // 4)
        _check(group_predictability, trace, 0.0, Resource.MEMORY,
               min_lifetime_days=0.0)

    def test_empty_cluster_selection(self, edge_trace):
        # E2 exists in the fleet but cluster_savings can also target a
        # cluster with no long-running VMs at the default min_days.
        _check(cluster_savings, edge_trace, 0.0, cluster_id="E2",
               window_hours_sweep=[4])


# --------------------------------------------------------------------------- #
# Kernel-level pins (the building blocks, against their numpy equivalents)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def random_segments():
    rng = np.random.default_rng(11)
    lengths = rng.integers(1, 200, 300)
    buffer = rng.uniform(0.0, 1.0, int(lengths.sum()))
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return buffer, starts.astype(np.int64), lengths.astype(np.int64)


class TestKernels:
    def test_segment_reduce(self, random_segments):
        buffer, starts, lengths = random_segments
        for ufunc in (np.maximum, np.minimum):
            got = segment_reduce(ufunc, buffer, starts, lengths)
            expected = np.array([ufunc.reduce(buffer[s:s + l])
                                 for s, l in zip(starts, lengths)])
            assert np.array_equal(got, expected)

    def test_segment_sort_and_percentile(self, random_segments):
        buffer, starts, lengths = random_segments
        values, offsets = segment_sort(buffer, starts, lengths)
        for start, length, lo in zip(starts, lengths, offsets[:-1]):
            assert np.array_equal(values[lo:lo + length],
                                  np.sort(buffer[start:start + length]))
        for pct in (0.0, 5.0, 50.0, 95.0, 100.0):
            got = segment_percentile(values, offsets, pct)
            expected = np.array([np.percentile(buffer[s:s + l], pct)
                                 for s, l in zip(starts, lengths)])
            assert np.array_equal(got, expected)

    def test_segment_percentiles_partitioned(self, random_segments):
        buffer, starts, lengths = random_segments
        results = segment_percentiles(buffer, starts, lengths,
                                      (5.0, 95.0, 0.0, 100.0, 50.0))
        for pct, got in results.items():
            expected = np.array([np.percentile(buffer[s:s + l], pct)
                                 for s, l in zip(starts, lengths)])
            assert np.array_equal(got, expected)

    def test_rowwise_mean(self, random_segments):
        buffer, starts, lengths = random_segments
        got = rowwise_mean(buffer, starts, lengths)
        expected = np.array([np.mean(buffer[s:s + l])
                             for s, l in zip(starts, lengths)])
        assert np.array_equal(got, expected)

    def test_rowwise_mean_with_minuend(self, random_segments):
        buffer, starts, lengths = random_segments
        minuend = segment_reduce(np.maximum, buffer, starts, lengths)
        got = rowwise_mean(buffer, starts, lengths, minuend=minuend)
        expected = np.array([np.mean(float(m) - buffer[s:s + l])
                             for m, s, l in zip(minuend, starts, lengths)])
        assert np.array_equal(got, expected)

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        buffer = np.empty(0)
        assert segment_reduce(np.maximum, buffer, empty, empty).size == 0
        values, offsets = segment_sort(buffer, empty, empty)
        assert values.size == 0 and offsets.tolist() == [0]
        assert segment_percentile(values, offsets, 95.0).size == 0
        assert segment_percentiles(buffer, empty, empty, (95.0,))[95.0].size == 0
        assert rowwise_mean(buffer, empty, empty).size == 0


# --------------------------------------------------------------------------- #
# vm_week_profile stays zero-copy on store rows
# --------------------------------------------------------------------------- #
class TestWeekProfileView:
    def test_store_backed_profile_is_a_readonly_view(self, backend_trace):
        trace, _rtol = backend_trace
        vm = trace.long_running(2.0).vms[0]
        profile = vm_week_profile(vm)
        store_buffer = trace.store.util[Resource.CPU]
        assert np.shares_memory(profile["utilization"], store_buffer)
        assert not profile["utilization"].flags.writeable
        with pytest.raises(ValueError):
            profile["utilization"][0] = 0.5

    def test_object_backed_profile_is_readonly(self, small_trace):
        vm = small_trace.long_running(2.0).vms[0]
        profile = vm_week_profile(vm)
        assert np.shares_memory(profile["utilization"],
                                vm.series(Resource.CPU).values)
        assert not profile["utilization"].flags.writeable


class TestSegmentReduceBounds:
    """The reduceat final-bound contract: drop only on exact coverage."""

    def test_final_segment_ending_exactly_at_buffer_end(self):
        buffer = np.arange(10.0)
        starts = np.array([0, 4], dtype=np.int64)
        lengths = np.array([4, 6], dtype=np.int64)  # ends exactly at 10
        got = segment_reduce(np.maximum, buffer, starts, lengths)
        assert np.array_equal(got, np.array([3.0, 9.0]))

    def test_final_segment_ending_before_buffer_end(self):
        buffer = np.arange(10.0)
        starts = np.array([0, 4], dtype=np.int64)
        lengths = np.array([4, 3], dtype=np.int64)  # trailing slack of 3
        got = segment_reduce(np.maximum, buffer, starts, lengths)
        assert np.array_equal(got, np.array([3.0, 6.0]))

    def test_overshooting_segment_raises(self):
        buffer = np.arange(10.0)
        starts = np.array([0, 4], dtype=np.int64)
        lengths = np.array([4, 7], dtype=np.int64)  # end 11 > 10 samples
        with pytest.raises(ValueError, match="overruns the telemetry buffer"):
            segment_reduce(np.maximum, buffer, starts, lengths)

    def test_interior_overshoot_raises_too(self):
        buffer = np.arange(10.0)
        starts = np.array([0, 8], dtype=np.int64)
        lengths = np.array([11, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="overruns the telemetry buffer"):
            segment_reduce(np.minimum, buffer, starts, lengths)


class TestWindowEntryCache:
    def test_repeat_calls_return_the_cached_tuple(self, backend_trace):
        trace, _rtol = backend_trace
        config = TimeWindowConfig(6)
        first = columnar.window_entries(trace.store, Resource.CPU, config)
        second = columnar.window_entries(trace.store, Resource.CPU, config)
        assert all(a is b for a, b in zip(first, second))

    def test_cached_arrays_are_readonly(self, backend_trace):
        trace, _rtol = backend_trace
        entries = columnar.window_entries(trace.store, Resource.CPU,
                                          TimeWindowConfig(6))
        for array in entries:
            assert not array.flags.writeable

    def test_distinct_keys_get_distinct_entries(self, backend_trace):
        trace, _rtol = backend_trace
        cpu = columnar.window_entries(trace.store, Resource.CPU,
                                      TimeWindowConfig(6))
        memory = columnar.window_entries(trace.store, Resource.MEMORY,
                                         TimeWindowConfig(6))
        longer = columnar.window_entries(trace.store, Resource.CPU,
                                         TimeWindowConfig(12))
        assert cpu[3] is not memory[3]
        assert cpu[0] is not longer[0]

    def test_long_running_memoization_shares_the_store(self, backend_trace):
        # Statistics all start from trace.long_running(min_days); the
        # memoized selection means they hit one store object, so the
        # window-entry cache actually connects across statistics.
        trace, _rtol = backend_trace
        first = trace.long_running(3.0)
        second = trace.long_running(3.0)
        assert first is second
        assert first.store is second.store
        other = trace.long_running(5.0)
        assert other is not first
