"""Tests for the scheduler, policies, and cluster manager."""

import numpy as np
import pytest

from repro.core.cluster_manager import ClusterManager, build_prediction_model
from repro.core.policy import (
    AGGR_COACH_POLICY,
    COACH_POLICY,
    NO_OVERSUBSCRIPTION_POLICY,
    SINGLE_RATE_POLICY,
    STANDARD_POLICIES,
    policy_by_name,
)
from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import (
    ClusterScheduler,
    ServerAccount,
    plan_demand_matrix,
    schedule_all,
)
from repro.core.windows import plan_vm
from repro.prediction.utilization_model import (
    NoOversubscriptionModel,
    OracleUtilizationModel,
    WindowUtilizationPrediction,
)
from repro.trace.hardware import ClusterConfig, HARDWARE_GENERATIONS
from repro.trace.timeseries import TimeWindowConfig


class TestPolicies:
    def test_standard_policies_present(self):
        assert set(STANDARD_POLICIES) == {"none", "single", "coach", "aggr-coach"}

    def test_coach_defaults(self):
        assert COACH_POLICY.windows.window_hours == 4
        assert COACH_POLICY.percentile == 95.0
        assert COACH_POLICY.oversubscribe

    def test_aggressive_uses_p50(self):
        assert AGGR_COACH_POLICY.percentile == 50.0

    def test_single_rate_uses_one_window(self):
        assert SINGLE_RATE_POLICY.windows.windows_per_day == 1

    def test_none_disables_oversubscription(self):
        assert not NO_OVERSUBSCRIPTION_POLICY.oversubscribe

    def test_lookup_and_modifiers(self):
        assert policy_by_name("Coach") is COACH_POLICY
        with pytest.raises(KeyError):
            policy_by_name("bogus")
        assert COACH_POLICY.with_percentile(80.0).percentile == 80.0
        assert COACH_POLICY.with_windows(6).windows.windows_per_day == 4


def _flat_prediction(windows, percentile, maximum):
    return WindowUtilizationPrediction(
        windows=windows,
        percentile={r: np.full(windows.windows_per_day, percentile) for r in ALL_RESOURCES},
        maximum={r: np.full(windows.windows_per_day, maximum) for r in ALL_RESOURCES},
    )


def _plan(vm_id, windows, memory_gb=16.0, cores=4.0, percentile=1.0, maximum=1.0):
    prediction = _flat_prediction(windows, percentile, maximum)
    allocation = {Resource.CPU: cores, Resource.MEMORY: memory_gb,
                  Resource.NETWORK: 2.0, Resource.SSD: 128.0}
    return plan_vm(vm_id, allocation, prediction, oversubscribe=percentile < 1.0)


def _random_window_plan(rng, vm_id, windows, random_size=False):
    """A plan with random per-window utilization (and optionally random size).

    Shared by the churn-drift regression and the ledger property tests so
    the randomized plan shape cannot drift between them.
    """
    n = windows.windows_per_day
    maximum = {r: rng.uniform(0.1, 1.0, n) for r in ALL_RESOURCES}
    percentile = {r: np.minimum(maximum[r], rng.uniform(0.05, 0.9, n))
                  for r in ALL_RESOURCES}
    prediction = WindowUtilizationPrediction(
        windows=windows, percentile=percentile, maximum=maximum)
    if random_size:
        cores = float(rng.choice([1, 2, 2, 4, 8]))
        allocation = {Resource.CPU: cores,
                      Resource.MEMORY: cores * float(rng.choice([2, 4, 8])),
                      Resource.NETWORK: min(0.5 * cores, 16.0),
                      Resource.SSD: 32.0 * cores}
        oversubscribe = bool(rng.random() < 0.8)
    else:
        allocation = {Resource.CPU: 2.0, Resource.MEMORY: 8.0,
                      Resource.NETWORK: 1.0, Resource.SSD: 64.0}
        oversubscribe = True
    return plan_vm(vm_id, allocation, prediction, oversubscribe=oversubscribe)


class TestServerAccount:
    def _account(self, windows=TimeWindowConfig(4)):
        return ServerAccount("s0", HARDWARE_GENERATIONS["gen4-intel"], windows)

    def test_commit_and_release_are_inverse(self):
        account = self._account()
        plan = _plan("vm-a", account.windows, percentile=0.5, maximum=0.75)
        account.commit(plan)
        assert account.n_vms == 1
        assert account.pa_memory_gb > 0
        account.release("vm-a")
        assert account.n_vms == 0
        assert account.pa_memory_gb == pytest.approx(0.0)
        assert np.allclose(account.va_window_demand, 0.0)

    def test_full_allocation_packing_limit(self):
        """Without oversubscription, a 40-core/160 GB server fits ten 4-core/16 GB VMs."""
        account = self._account()
        placed = 0
        for i in range(15):
            plan = _plan(f"vm-{i}", account.windows)
            if account.can_fit(plan):
                account.commit(plan)
                placed += 1
        assert placed == 10

    def test_oversubscription_fits_more(self):
        account = self._account()
        placed = 0
        for i in range(40):
            plan = _plan(f"vm-{i}", account.windows, percentile=0.5, maximum=0.6)
            if account.can_fit(plan):
                account.commit(plan)
                placed += 1
        assert placed > 10

    def test_duplicate_commit_rejected(self):
        account = self._account()
        plan = _plan("vm-a", account.windows)
        account.commit(plan)
        with pytest.raises(ValueError):
            account.commit(plan)

    def test_release_unknown_vm_raises(self):
        with pytest.raises(KeyError):
            self._account().release("ghost")

    def test_window_mismatch_rejected(self):
        account = self._account(TimeWindowConfig(4))
        plan = _plan("vm-a", TimeWindowConfig(8))
        with pytest.raises(ValueError):
            account.can_fit(plan)

    def test_backing_check_stricter_than_vector_check(self):
        account = self._account()
        # Fill most of the server, then check the two admission variants agree
        # on obviously-fitting and obviously-not-fitting plans.
        small = _plan("small", account.windows, memory_gb=8.0, cores=2.0,
                      percentile=0.25, maximum=0.5)
        assert account.fits_vector_check(small) and account.fits_backing_check(small)
        huge = _plan("huge", account.windows, memory_gb=512.0, cores=80.0)
        assert not account.fits_vector_check(huge)
        assert not account.fits_backing_check(huge)


class TestReleaseDriftRegression:
    """Repeated commit/release churn must not accumulate float residues."""

    def test_thousand_cycle_churn_leaves_account_exactly_empty(self):
        windows = TimeWindowConfig(4)
        account = ServerAccount("s0", HARDWARE_GENERATIONS["gen4-intel"], windows)
        rng = np.random.default_rng(31)
        resident = _random_window_plan(rng, "resident", windows)
        account.commit(resident)
        for cycle in range(1000):
            first = _random_window_plan(rng, f"churn-{cycle}-a", windows)
            second = _random_window_plan(rng, f"churn-{cycle}-b", windows)
            account.commit(first)
            account.commit(second)
            # Release in commit order (not LIFO) so the float additions and
            # subtractions interleave instead of trivially cancelling.
            account.release(first.vm_id)
            account.release(second.vm_id)
        account.release("resident")
        assert account.is_empty()
        # Exact zeros, not approximately zero: residues must be snapped.
        assert account.pa_memory_gb == 0.0
        assert np.all(account.va_window_demand == 0.0)
        for resource in ALL_RESOURCES:
            assert np.all(account.window_demand[resource] == 0.0)

    def test_empty_account_never_looks_partially_full(self):
        windows = TimeWindowConfig(4)
        account = ServerAccount("s0", HARDWARE_GENERATIONS["gen4-intel"], windows)
        rng = np.random.default_rng(77)
        for cycle in range(200):
            plan = _random_window_plan(rng, f"vm-{cycle}", windows)
            account.commit(plan)
            account.release(plan.vm_id)
            assert account.committed_memory_backing_gb == 0.0


class TestLedgerInvariants:
    """Property-style check: whatever the commit/release interleaving, every
    ledger row must equal the summed demands of the plans currently live on
    it, and fully drain to exact zero when the last plan leaves."""

    def _assert_rows_match_live_plans(self, scheduler):
        ledger = scheduler.ledger
        for account in scheduler.servers.values():
            row = account._row
            expected_demand = np.zeros((len(ALL_RESOURCES), ledger.n_windows))
            expected_pa = 0.0
            expected_va = np.zeros(ledger.n_windows)
            for plan in account.plans.values():
                expected_demand += plan_demand_matrix(plan)
                memory_plan = plan.plans[Resource.MEMORY]
                expected_pa += memory_plan.guaranteed
                expected_va += memory_plan.window_oversubscribed
            np.testing.assert_allclose(ledger.demand[:, row], expected_demand,
                                       atol=1e-9)
            assert ledger.pa_memory[row] == pytest.approx(expected_pa, abs=1e-9)
            np.testing.assert_allclose(ledger.va_demand[row], expected_va, atol=1e-9)

    @pytest.mark.parametrize("seed", [0, 13, 99, 4096])
    def test_random_interleavings_preserve_row_sums(self, seed):
        windows = TimeWindowConfig(4)
        cluster = ClusterConfig("LP", "test", (("gen4-intel", 2), ("gen6-amd", 1)))
        scheduler = ClusterScheduler(cluster, windows)
        rng = np.random.default_rng(seed)
        live = []
        for i in range(250):
            if live and rng.random() < 0.45:
                victim = live.pop(int(rng.integers(len(live))))
                scheduler.deallocate(victim)
            else:
                plan = _random_window_plan(rng, f"vm-{seed}-{i}", windows,
                                           random_size=True)
                if scheduler.place(plan).accepted:
                    live.append(plan.vm_id)
            if i % 25 == 0:
                self._assert_rows_match_live_plans(scheduler)
        self._assert_rows_match_live_plans(scheduler)

        # Drain everything: rows must be *exactly* zero, not approximately.
        for vm_id in live:
            scheduler.deallocate(vm_id)
        ledger = scheduler.ledger
        assert np.all(ledger.demand == 0.0)
        assert np.all(ledger.pa_memory == 0.0)
        assert np.all(ledger.va_demand == 0.0)
        assert scheduler.servers_in_use() == 0


class TestClusterScheduler:
    def _scheduler(self, windows=TimeWindowConfig(4)):
        cluster = ClusterConfig("CT", "test", (("gen4-intel", 2),))
        return ClusterScheduler(cluster, windows)

    def test_placement_and_deallocation(self):
        scheduler = self._scheduler()
        plan = _plan("vm-a", TimeWindowConfig(4))
        decision = scheduler.place(plan)
        assert decision.accepted
        assert scheduler.server_of("vm-a") == decision.server_id
        scheduler.deallocate("vm-a")
        assert scheduler.server_of("vm-a") is None
        assert scheduler.servers_in_use() == 0

    def test_best_fit_consolidates(self):
        scheduler = self._scheduler()
        decisions = schedule_all(scheduler, [
            _plan(f"vm-{i}", TimeWindowConfig(4), memory_gb=8.0, cores=2.0)
            for i in range(5)])
        assert all(d.accepted for d in decisions)
        # Best-fit should pack all five small VMs onto a single server.
        assert scheduler.servers_in_use() == 1

    def test_duplicate_placement_rejected_until_deallocated(self):
        """Placing an already-placed vm_id must fail loudly (a silent
        overwrite would leak the old server's committed demand), and succeed
        again once the VM is deallocated."""
        scheduler = self._scheduler()
        plan = _plan("vm-a", TimeWindowConfig(4))
        assert scheduler.place(plan).accepted
        with pytest.raises(ValueError):
            scheduler.place(_plan("vm-a", TimeWindowConfig(4)))
        scheduler.deallocate("vm-a")
        assert scheduler.place(_plan("vm-a", TimeWindowConfig(4))).accepted

    def test_rejection_when_full(self):
        scheduler = self._scheduler()
        decisions = schedule_all(scheduler, [
            _plan(f"vm-{i}", TimeWindowConfig(4), memory_gb=64.0, cores=16.0)
            for i in range(10)])
        assert any(not d.accepted for d in decisions)
        assert scheduler.rejected_count() > 0
        assert scheduler.accepted_count() + scheduler.rejected_count() == 10

    def test_decision_ring_is_capped_but_counters_are_exact(self):
        cluster = ClusterConfig("CT", "test", (("gen4-intel", 2),))
        scheduler = ClusterScheduler(cluster, TimeWindowConfig(4),
                                     decision_history=4)
        schedule_all(scheduler, [
            _plan(f"vm-{i}", TimeWindowConfig(4), memory_gb=64.0, cores=16.0)
            for i in range(10)])
        assert len(scheduler.decisions) == 4
        assert scheduler.accepted_count() + scheduler.rejected_count() == 10

    def test_capacity_totals(self):
        scheduler = self._scheduler()
        assert scheduler.total_capacity(Resource.CPU) == pytest.approx(80.0)
        assert scheduler.total_capacity(Resource.MEMORY) == pytest.approx(320.0)


class TestClusterManager:
    def test_none_policy_never_oversubscribes(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id),
                                 NO_OVERSUBSCRIPTION_POLICY)
        vms = [vm for vm in tiny_trace.vms if vm.cluster_id == cluster_id][:10]
        results = manager.request_many(vms)
        for result in results:
            if result.accepted:
                assert not result.coach_vm.is_oversubscribed
        assert manager.stats.oversubscribed == 0

    def test_coach_policy_with_oracle_oversubscribes(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        oracle = OracleUtilizationModel(COACH_POLICY.windows, COACH_POLICY.percentile)
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id), COACH_POLICY, oracle)
        vms = [vm for vm in tiny_trace.vms if vm.cluster_id == cluster_id][:10]
        results = manager.request_many(vms)
        accepted = [r for r in results if r.accepted]
        assert accepted
        assert any(r.coach_vm.is_oversubscribed for r in accepted)
        assert manager.stats.savings_gb > 0

    def test_deallocate_frees_capacity(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id),
                                 NO_OVERSUBSCRIPTION_POLICY)
        vm = next(v for v in tiny_trace.vms if v.cluster_id == cluster_id)
        result = manager.request_vm(vm)
        assert result.accepted
        manager.deallocate(vm.vm_id)
        assert vm.vm_id not in manager.placed_vms()

    def test_window_mismatch_between_policy_and_model(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        wrong_model = NoOversubscriptionModel(TimeWindowConfig(8))
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id), COACH_POLICY, wrong_model)
        with pytest.raises(ValueError):
            manager.request_vm(tiny_trace.vms[0])

    def test_capacity_summary_keys(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id),
                                 NO_OVERSUBSCRIPTION_POLICY)
        summary = manager.capacity_summary()
        assert {"vms_placed", "servers_in_use", "allocated_cores"} <= set(summary)

    def test_vms_on_server_index_tracks_admit_and_deallocate(self, tiny_trace):
        """The server->vm index must stay consistent through deallocate and
        reuse of the freed capacity by later arrivals."""
        cluster_id = tiny_trace.cluster_ids()[0]
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id),
                                 NO_OVERSUBSCRIPTION_POLICY)
        vms = [vm for vm in tiny_trace.vms if vm.cluster_id == cluster_id][:12]
        accepted = [r for r in manager.request_many(vms) if r.accepted]
        assert len(accepted) >= 3

        def index_snapshot():
            by_server = {}
            for coach_vm in manager.placed_vms().values():
                by_server.setdefault(coach_vm.server_id, set()).add(coach_vm.vm_id)
            return by_server

        for server_id, expected in index_snapshot().items():
            assert {vm.vm_id for vm in manager.vms_on_server(server_id)} == expected

        # Deallocate one VM: it must vanish from its server's listing only.
        victim = accepted[0]
        manager.deallocate(victim.vm_id)
        assert victim.vm_id not in {
            vm.vm_id for vm in manager.vms_on_server(victim.server_id)}
        for server_id, expected in index_snapshot().items():
            assert {vm.vm_id for vm in manager.vms_on_server(server_id)} == expected

        # Reuse: re-admit the same VM record; the index must pick it up on
        # whichever server it now lands on.
        again = manager.request_vm(victim.coach_vm.vm)
        assert again.accepted
        assert again.vm_id in {
            vm.vm_id for vm in manager.vms_on_server(again.server_id)}
        # Unknown server ids simply report no residents.
        assert manager.vms_on_server("no-such-server") == []

    def test_build_prediction_model_variants(self, tiny_trace):
        history = tiny_trace.long_running().vms
        none_model = build_prediction_model(NO_OVERSUBSCRIPTION_POLICY, history)
        assert isinstance(none_model, NoOversubscriptionModel)
        oracle = build_prediction_model(COACH_POLICY, history, oracle=True)
        assert isinstance(oracle, OracleUtilizationModel)
