"""Tests for the scheduler, policies, and cluster manager."""

import numpy as np
import pytest

from repro.core.cluster_manager import ClusterManager, build_prediction_model
from repro.core.policy import (
    AGGR_COACH_POLICY,
    COACH_POLICY,
    NO_OVERSUBSCRIPTION_POLICY,
    SINGLE_RATE_POLICY,
    STANDARD_POLICIES,
    policy_by_name,
)
from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import ClusterScheduler, ServerAccount, schedule_all
from repro.core.windows import plan_vm
from repro.prediction.utilization_model import (
    NoOversubscriptionModel,
    OracleUtilizationModel,
    WindowUtilizationPrediction,
)
from repro.trace.hardware import ClusterConfig, HARDWARE_GENERATIONS
from repro.trace.timeseries import TimeWindowConfig


class TestPolicies:
    def test_standard_policies_present(self):
        assert set(STANDARD_POLICIES) == {"none", "single", "coach", "aggr-coach"}

    def test_coach_defaults(self):
        assert COACH_POLICY.windows.window_hours == 4
        assert COACH_POLICY.percentile == 95.0
        assert COACH_POLICY.oversubscribe

    def test_aggressive_uses_p50(self):
        assert AGGR_COACH_POLICY.percentile == 50.0

    def test_single_rate_uses_one_window(self):
        assert SINGLE_RATE_POLICY.windows.windows_per_day == 1

    def test_none_disables_oversubscription(self):
        assert not NO_OVERSUBSCRIPTION_POLICY.oversubscribe

    def test_lookup_and_modifiers(self):
        assert policy_by_name("Coach") is COACH_POLICY
        with pytest.raises(KeyError):
            policy_by_name("bogus")
        assert COACH_POLICY.with_percentile(80.0).percentile == 80.0
        assert COACH_POLICY.with_windows(6).windows.windows_per_day == 4


def _flat_prediction(windows, percentile, maximum):
    return WindowUtilizationPrediction(
        windows=windows,
        percentile={r: np.full(windows.windows_per_day, percentile) for r in ALL_RESOURCES},
        maximum={r: np.full(windows.windows_per_day, maximum) for r in ALL_RESOURCES},
    )


def _plan(vm_id, windows, memory_gb=16.0, cores=4.0, percentile=1.0, maximum=1.0):
    prediction = _flat_prediction(windows, percentile, maximum)
    allocation = {Resource.CPU: cores, Resource.MEMORY: memory_gb,
                  Resource.NETWORK: 2.0, Resource.SSD: 128.0}
    return plan_vm(vm_id, allocation, prediction, oversubscribe=percentile < 1.0)


class TestServerAccount:
    def _account(self, windows=TimeWindowConfig(4)):
        return ServerAccount("s0", HARDWARE_GENERATIONS["gen4-intel"], windows)

    def test_commit_and_release_are_inverse(self):
        account = self._account()
        plan = _plan("vm-a", account.windows, percentile=0.5, maximum=0.75)
        account.commit(plan)
        assert account.n_vms == 1
        assert account.pa_memory_gb > 0
        account.release("vm-a")
        assert account.n_vms == 0
        assert account.pa_memory_gb == pytest.approx(0.0)
        assert np.allclose(account.va_window_demand, 0.0)

    def test_full_allocation_packing_limit(self):
        """Without oversubscription, a 40-core/160 GB server fits ten 4-core/16 GB VMs."""
        account = self._account()
        placed = 0
        for i in range(15):
            plan = _plan(f"vm-{i}", account.windows)
            if account.can_fit(plan):
                account.commit(plan)
                placed += 1
        assert placed == 10

    def test_oversubscription_fits_more(self):
        account = self._account()
        placed = 0
        for i in range(40):
            plan = _plan(f"vm-{i}", account.windows, percentile=0.5, maximum=0.6)
            if account.can_fit(plan):
                account.commit(plan)
                placed += 1
        assert placed > 10

    def test_duplicate_commit_rejected(self):
        account = self._account()
        plan = _plan("vm-a", account.windows)
        account.commit(plan)
        with pytest.raises(ValueError):
            account.commit(plan)

    def test_release_unknown_vm_raises(self):
        with pytest.raises(KeyError):
            self._account().release("ghost")

    def test_window_mismatch_rejected(self):
        account = self._account(TimeWindowConfig(4))
        plan = _plan("vm-a", TimeWindowConfig(8))
        with pytest.raises(ValueError):
            account.can_fit(plan)

    def test_backing_check_stricter_than_vector_check(self):
        account = self._account()
        # Fill most of the server, then check the two admission variants agree
        # on obviously-fitting and obviously-not-fitting plans.
        small = _plan("small", account.windows, memory_gb=8.0, cores=2.0,
                      percentile=0.25, maximum=0.5)
        assert account.fits_vector_check(small) and account.fits_backing_check(small)
        huge = _plan("huge", account.windows, memory_gb=512.0, cores=80.0)
        assert not account.fits_vector_check(huge)
        assert not account.fits_backing_check(huge)


class TestReleaseDriftRegression:
    """Repeated commit/release churn must not accumulate float residues."""

    def _random_plan(self, rng, vm_id, windows):
        n = windows.windows_per_day
        maximum = {r: rng.uniform(0.1, 1.0, n) for r in ALL_RESOURCES}
        percentile = {r: np.minimum(maximum[r], rng.uniform(0.05, 0.9, n))
                      for r in ALL_RESOURCES}
        prediction = WindowUtilizationPrediction(
            windows=windows, percentile=percentile, maximum=maximum)
        allocation = {Resource.CPU: 2.0, Resource.MEMORY: 8.0,
                      Resource.NETWORK: 1.0, Resource.SSD: 64.0}
        return plan_vm(vm_id, allocation, prediction, oversubscribe=True)

    def test_thousand_cycle_churn_leaves_account_exactly_empty(self):
        windows = TimeWindowConfig(4)
        account = ServerAccount("s0", HARDWARE_GENERATIONS["gen4-intel"], windows)
        rng = np.random.default_rng(31)
        resident = self._random_plan(rng, "resident", windows)
        account.commit(resident)
        for cycle in range(1000):
            first = self._random_plan(rng, f"churn-{cycle}-a", windows)
            second = self._random_plan(rng, f"churn-{cycle}-b", windows)
            account.commit(first)
            account.commit(second)
            # Release in commit order (not LIFO) so the float additions and
            # subtractions interleave instead of trivially cancelling.
            account.release(first.vm_id)
            account.release(second.vm_id)
        account.release("resident")
        assert account.is_empty()
        # Exact zeros, not approximately zero: residues must be snapped.
        assert account.pa_memory_gb == 0.0
        assert np.all(account.va_window_demand == 0.0)
        for resource in ALL_RESOURCES:
            assert np.all(account.window_demand[resource] == 0.0)

    def test_empty_account_never_looks_partially_full(self):
        windows = TimeWindowConfig(4)
        account = ServerAccount("s0", HARDWARE_GENERATIONS["gen4-intel"], windows)
        rng = np.random.default_rng(77)
        for cycle in range(200):
            plan = self._random_plan(rng, f"vm-{cycle}", windows)
            account.commit(plan)
            account.release(plan.vm_id)
            assert account.committed_memory_backing_gb == 0.0


class TestClusterScheduler:
    def _scheduler(self, windows=TimeWindowConfig(4)):
        cluster = ClusterConfig("CT", "test", (("gen4-intel", 2),))
        return ClusterScheduler(cluster, windows)

    def test_placement_and_deallocation(self):
        scheduler = self._scheduler()
        plan = _plan("vm-a", TimeWindowConfig(4))
        decision = scheduler.place(plan)
        assert decision.accepted
        assert scheduler.server_of("vm-a") == decision.server_id
        scheduler.deallocate("vm-a")
        assert scheduler.server_of("vm-a") is None
        assert scheduler.servers_in_use() == 0

    def test_best_fit_consolidates(self):
        scheduler = self._scheduler()
        decisions = schedule_all(scheduler, [
            _plan(f"vm-{i}", TimeWindowConfig(4), memory_gb=8.0, cores=2.0)
            for i in range(5)])
        assert all(d.accepted for d in decisions)
        # Best-fit should pack all five small VMs onto a single server.
        assert scheduler.servers_in_use() == 1

    def test_rejection_when_full(self):
        scheduler = self._scheduler()
        decisions = schedule_all(scheduler, [
            _plan(f"vm-{i}", TimeWindowConfig(4), memory_gb=64.0, cores=16.0)
            for i in range(10)])
        assert any(not d.accepted for d in decisions)
        assert scheduler.rejected_count() > 0
        assert scheduler.accepted_count() + scheduler.rejected_count() == 10

    def test_decision_ring_is_capped_but_counters_are_exact(self):
        cluster = ClusterConfig("CT", "test", (("gen4-intel", 2),))
        scheduler = ClusterScheduler(cluster, TimeWindowConfig(4),
                                     decision_history=4)
        schedule_all(scheduler, [
            _plan(f"vm-{i}", TimeWindowConfig(4), memory_gb=64.0, cores=16.0)
            for i in range(10)])
        assert len(scheduler.decisions) == 4
        assert scheduler.accepted_count() + scheduler.rejected_count() == 10

    def test_capacity_totals(self):
        scheduler = self._scheduler()
        assert scheduler.total_capacity(Resource.CPU) == pytest.approx(80.0)
        assert scheduler.total_capacity(Resource.MEMORY) == pytest.approx(320.0)


class TestClusterManager:
    def test_none_policy_never_oversubscribes(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id),
                                 NO_OVERSUBSCRIPTION_POLICY)
        vms = [vm for vm in tiny_trace.vms if vm.cluster_id == cluster_id][:10]
        results = manager.request_many(vms)
        for result in results:
            if result.accepted:
                assert not result.coach_vm.is_oversubscribed
        assert manager.stats.oversubscribed == 0

    def test_coach_policy_with_oracle_oversubscribes(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        oracle = OracleUtilizationModel(COACH_POLICY.windows, COACH_POLICY.percentile)
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id), COACH_POLICY, oracle)
        vms = [vm for vm in tiny_trace.vms if vm.cluster_id == cluster_id][:10]
        results = manager.request_many(vms)
        accepted = [r for r in results if r.accepted]
        assert accepted
        assert any(r.coach_vm.is_oversubscribed for r in accepted)
        assert manager.stats.savings_gb > 0

    def test_deallocate_frees_capacity(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id),
                                 NO_OVERSUBSCRIPTION_POLICY)
        vm = next(v for v in tiny_trace.vms if v.cluster_id == cluster_id)
        result = manager.request_vm(vm)
        assert result.accepted
        manager.deallocate(vm.vm_id)
        assert vm.vm_id not in manager.placed_vms()

    def test_window_mismatch_between_policy_and_model(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        wrong_model = NoOversubscriptionModel(TimeWindowConfig(8))
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id), COACH_POLICY, wrong_model)
        with pytest.raises(ValueError):
            manager.request_vm(tiny_trace.vms[0])

    def test_capacity_summary_keys(self, tiny_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        manager = ClusterManager(tiny_trace.fleet.get(cluster_id),
                                 NO_OVERSUBSCRIPTION_POLICY)
        summary = manager.capacity_summary()
        assert {"vms_placed", "servers_in_use", "allocated_cores"} <= set(summary)

    def test_build_prediction_model_variants(self, tiny_trace):
        history = tiny_trace.long_running().vms
        none_model = build_prediction_model(NO_OVERSUBSCRIPTION_POLICY, history)
        assert isinstance(none_model, NoOversubscriptionModel)
        oracle = build_prediction_model(COACH_POLICY, history, oracle=True)
        assert isinstance(oracle, OracleUtilizationModel)
