"""Differential tests for the incremental scheduler layer (PR 7).

Three contracts are pinned here:

* the :class:`ClusterLedger` caches (``demand_sum`` / ``demand_peak`` /
  ``va_peak`` / ``score_base`` / ``row_used``) stay *bitwise* equal to a
  fresh full-matrix recompute after thousands of interleaved commit/release
  cycles -- the float-drift regression for the summation-order contract;
* the incremental screened best-fit (``ClusterScheduler(incremental=True)``,
  the default) and batched placement (:meth:`ClusterScheduler.place_batch`)
  produce decision sequences identical to the dense PR 6 path and to
  sequential :meth:`place`, including rejection ordering on saturated
  clusters;
* the over-release accounting fixes: :meth:`ClusterLedger.release_row`
  raises on genuinely negative residues (double release, never-committed
  plans) instead of clamping, and
  :func:`bulk_cpu_capacity_and_memory_backing` returns empty vectors for
  empty account sequences (zero-server clusters);
* the PR 9 tiered candidate index and multi-row scatter commit: decisions
  at 100k servers (the band-descent regime) stay bitwise equal to
  sequential ``place`` and the dense reference, rejection ordering
  survives batch saturation, and an index rebuilt from scratch is
  indistinguishable -- structurally and behaviourally -- from one
  maintained incrementally through commit/release churn.
"""

import numpy as np
import pytest

from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import (
    _TIERED_MIN_SERVERS,
    ClusterLedger,
    ClusterScheduler,
    ServerAccount,
    bulk_cpu_capacity_and_memory_backing,
    plan_demand_matrix,
)
from repro.simulator.synthetic import build_scaled_bench_cluster
from repro.core.windows import plan_vm
from repro.prediction.utilization_model import WindowUtilizationPrediction
from repro.trace.hardware import HARDWARE_GENERATIONS, ClusterConfig
from repro.trace.timeseries import TimeWindowConfig

WINDOWS = TimeWindowConfig(4)

SMALL_CLUSTER = ClusterConfig(
    "INC", "test",
    (("gen4-intel", 6), ("gen5-intel", 5), ("gen6-amd", 5), ("gen7-amd", 4)))

#: A cluster tiny enough that a long plan stream saturates it, so the
#: batch-vs-sequential comparison exercises rejection ordering too.
TINY_CLUSTER = ClusterConfig("TINY", "test", (("gen4-intel", 3),))


def _random_plan(rng, vm_id, *, windows=WINDOWS):
    n = windows.windows_per_day
    maximum = {r: rng.uniform(0.1, 1.0, n) for r in ALL_RESOURCES}
    percentile = {r: np.minimum(maximum[r], rng.uniform(0.05, 0.9, n))
                  for r in ALL_RESOURCES}
    prediction = WindowUtilizationPrediction(
        windows=windows, percentile=percentile, maximum=maximum)
    cores = float(rng.choice([1, 2, 2, 4, 8]))
    allocation = {Resource.CPU: cores,
                  Resource.MEMORY: cores * float(rng.choice([2, 4, 8])),
                  Resource.NETWORK: min(0.5 * cores, 16.0),
                  Resource.SSD: 32.0 * cores}
    return plan_vm(vm_id, allocation, prediction,
                   oversubscribe=bool(rng.random() < 0.8))


def _assert_caches_fresh(ledger: ClusterLedger) -> None:
    """Every cache must equal a from-scratch reduction, bitwise."""
    assert np.array_equal(ledger.demand_sum, ledger.demand.sum(axis=2))
    assert np.array_equal(ledger.demand_peak, ledger.demand.max(axis=2))
    assert np.array_equal(ledger.va_peak, ledger.va_demand.max(axis=1))
    fresh_base = np.array([
        (ledger.demand_sum[:, s] / ledger.n_windows)
        @ ledger._inv_capacity[:, s]
        for s in range(ledger.n_servers)])
    assert np.array_equal(ledger.score_base, fresh_base)
    for s in range(ledger.n_servers):
        used = bool(ledger.demand[:, s].any() or ledger.pa_memory[s]
                    or ledger.va_demand[s].any())
        assert bool(ledger.row_used[s]) == used


class TestIncrementalCacheChurn:
    @pytest.mark.parametrize("seed", [0, 7, 2024])
    def test_thousands_of_commit_release_cycles_leave_caches_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        scheduler = ClusterScheduler(SMALL_CLUSTER, WINDOWS)
        dense = ClusterScheduler(SMALL_CLUSTER, WINDOWS, incremental=False)
        placed: list = []
        for i in range(3000):
            plan = _random_plan(rng, f"vm-{i}")
            decision = scheduler.place(plan)
            assert dense.place(plan) == decision
            if decision.accepted:
                placed.append(plan.vm_id)
            # ~40% deallocation churn keeps commit and release interleaved.
            if placed and rng.random() < 0.4:
                victim = placed.pop(int(rng.integers(len(placed))))
                scheduler.deallocate(victim)
                dense.deallocate(victim)
        _assert_caches_fresh(scheduler.ledger)
        # The incremental scores must equal a fresh full mean(axis=2) pass.
        assert np.array_equal(scheduler.ledger.packing_scores(),
                              dense.ledger.packing_scores())
        assert np.array_equal(scheduler.ledger.demand, dense.ledger.demand)

    def test_incremental_scores_match_dense_for_arbitrary_plans(self):
        rng = np.random.default_rng(11)
        scheduler = ClusterScheduler(SMALL_CLUSTER, WINDOWS)
        for i in range(200):
            scheduler.place(_random_plan(rng, f"vm-{i}"))
        ledger = scheduler.ledger
        probe = plan_demand_matrix(_random_plan(rng, "probe"))
        approx_input = probe.mean(axis=1)
        approx = ledger.approx_packing_scores(approx_input)
        exact = ledger.packing_scores(probe)
        # The approximation drives candidate screening only; it must stay
        # within the tolerance band the gathered exact re-score relies on.
        assert np.all(np.abs(approx - exact) < 1e-9)


class TestBatchedPlacement:
    @pytest.mark.parametrize("cluster", [SMALL_CLUSTER, TINY_CLUSTER],
                             ids=["small", "saturating"])
    def test_place_batch_equals_sequential_place(self, cluster):
        rng = np.random.default_rng(3)
        plans = [_random_plan(rng, f"vm-{i}") for i in range(400)]
        sequential = ClusterScheduler(cluster, WINDOWS)
        batched = ClusterScheduler(cluster, WINDOWS)
        expected = [sequential.place(plan) for plan in plans]
        actual = batched.place_batch(plans)
        assert actual == expected
        if cluster is TINY_CLUSTER:
            # The saturating stream must genuinely exercise rejections.
            assert any(not d.accepted for d in expected)
        assert batched.accepted_count() == sequential.accepted_count()
        assert batched.rejected_count() == sequential.rejected_count()
        assert np.array_equal(batched.ledger.demand, sequential.ledger.demand)

    def test_place_batch_equals_dense_reference(self):
        rng = np.random.default_rng(5)
        plans = [_random_plan(rng, f"vm-{i}") for i in range(300)]
        dense = ClusterScheduler(SMALL_CLUSTER, WINDOWS, incremental=False)
        batched = ClusterScheduler(SMALL_CLUSTER, WINDOWS)
        assert batched.place_batch(plans) == [dense.place(p) for p in plans]

    def test_empty_batch_is_a_noop(self):
        scheduler = ClusterScheduler(SMALL_CLUSTER, WINDOWS)
        assert scheduler.place_batch([]) == []
        assert scheduler.accepted_count() == 0

    def test_window_mismatch_fails_batch_before_any_commit(self):
        scheduler = ClusterScheduler(SMALL_CLUSTER, WINDOWS)
        rng = np.random.default_rng(9)
        good = _random_plan(rng, "good")
        bad = _random_plan(rng, "bad", windows=TimeWindowConfig(8))
        with pytest.raises(ValueError, match="different time window"):
            scheduler.place_batch([good, bad])
        # Fail-fast validation: the good predecessor was not committed.
        assert scheduler.accepted_count() == 0
        assert scheduler.servers_in_use() == 0


class TestTieredIndexDifferential:
    """PR 9: band-descent candidate index + provable-run scatter commits."""

    def test_100k_server_batch_matches_sequential_and_dense(self):
        # Smoke-scale version of the benchmark acceptance criterion: at
        # 100k servers every placement flows through the tiered index
        # (batch and sequential alike) and the batch path additionally
        # uses provable runs with multi-row scatter commits.  All three
        # schedulers must agree bitwise -- vm ids, accept/reject order,
        # chosen rows -- and leave bitwise-identical ledgers.
        cluster = build_scaled_bench_cluster(100_000)
        rng = np.random.default_rng(17)
        plans = [_random_plan(rng, f"vm-{i}") for i in range(60)]

        batched = ClusterScheduler(cluster, WINDOWS)
        assert batched.ledger.n_servers >= _TIERED_MIN_SERVERS
        sequential = ClusterScheduler(cluster, WINDOWS)
        dense = ClusterScheduler(cluster, WINDOWS, incremental=False)

        expected = [sequential.place(plan) for plan in plans]
        assert batched.place_batch(plans) == expected
        assert [dense.place(plan) for plan in plans] == expected
        assert all(decision.accepted for decision in expected), \
            "a 100k-server fleet must absorb a 60-plan stream"
        assert np.array_equal(batched.ledger.demand, sequential.ledger.demand)
        assert np.array_equal(batched.ledger.score_base,
                              sequential.ledger.score_base)
        assert np.array_equal(batched.ledger.score_base,
                              dense.ledger.score_base)

    def test_saturated_batch_preserves_rejection_ordering(self):
        # Pre-saturate the tiny cluster sequentially on both twins, then
        # feed a batch that is mostly rejections: the provable-run
        # protocol must reproduce the exact interleaving of residual
        # accepts and rejects, not just the accept set.
        rng = np.random.default_rng(23)
        warm = [_random_plan(rng, f"warm-{i}") for i in range(20)]
        batch = [_random_plan(rng, f"late-{i}") for i in range(120)]
        sequential = ClusterScheduler(TINY_CLUSTER, WINDOWS)
        batched = ClusterScheduler(TINY_CLUSTER, WINDOWS)
        for plan in warm:
            assert batched.place(plan) == sequential.place(plan)

        expected = [sequential.place(plan) for plan in batch]
        actual = batched.place_batch(batch)
        assert actual == expected
        rejected = [d.vm_id for d in expected if not d.accepted]
        assert len(rejected) >= 60, "the batch must be rejection-dominated"
        assert any(d.accepted for d in expected), \
            "residual accepts must interleave with the rejections"
        assert [d.vm_id for d in actual if not d.accepted] == rejected
        assert np.array_equal(batched.ledger.demand, sequential.ledger.demand)

    def test_rebuilt_index_matches_incrementally_maintained_twin(self):
        # Churn commits and releases through a fleet large enough for the
        # band-descent path, then rebuild one twin's index from scratch.
        # The rebuilt structures must match what incremental maintenance
        # produced, and subsequent decisions must stay bitwise equal to
        # the never-rebuilt twin.
        cluster = build_scaled_bench_cluster(10_000)
        rng = np.random.default_rng(31)
        churned = ClusterScheduler(cluster, WINDOWS)
        twin = ClusterScheduler(cluster, WINDOWS)
        assert churned.ledger.n_servers >= _TIERED_MIN_SERVERS
        placed: list = []
        for i in range(400):
            plan = _random_plan(rng, f"vm-{i}")
            decision = churned.place(plan)
            assert twin.place(plan) == decision
            if decision.accepted:
                placed.append(plan.vm_id)
            if placed and rng.random() < 0.4:
                victim = placed.pop(int(rng.integers(len(placed))))
                churned.deallocate(victim)
                twin.deallocate(victim)

        ledger = churned.ledger
        maintained_row_band = ledger._row_band.copy()
        maintained_bands = {band: set(members)
                            for band, members in ledger._band_members.items()}
        maintained_heaps = [list(heap) for heap in ledger._empty_heaps]

        ledger.rebuild_candidate_index()

        # Band structures are reproduced exactly by the from-scratch pass.
        assert np.array_equal(ledger._row_band, maintained_row_band)
        assert {band: set(members)
                for band, members in ledger._band_members.items()} \
            == maintained_bands
        # Heaps only guarantee coverage: a maintained heap may carry stale
        # entries for rows that became used again, but every currently
        # empty row must be present, and the eagerly-cleaned top must be
        # the globally lowest-index empty row of its kind -- the only
        # empty row that can win a tie.
        for kind, rebuilt in enumerate(ledger._empty_heaps):
            kind_rows = np.flatnonzero(ledger._capacity_kind == kind)
            empty_rows = {int(r) for r in kind_rows if not ledger.row_used[r]}
            maintained = maintained_heaps[kind]
            live = {row for row in maintained if not ledger.row_used[row]}
            assert live == empty_rows == set(rebuilt)
            if empty_rows:
                assert maintained[0] == rebuilt[0] == min(empty_rows)

        # Behavioural equality: the rebuilt index drives the same
        # decisions as the incrementally maintained one, bitwise.
        followup = [_random_plan(rng, f"post-{i}") for i in range(120)]
        assert churned.place_batch(followup) \
            == [twin.place(plan) for plan in followup]
        assert np.array_equal(churned.ledger.score_base,
                              twin.ledger.score_base)
        _assert_caches_fresh(twin.ledger)


class TestOverReleaseAccounting:
    def _account(self):
        return ServerAccount("s0", HARDWARE_GENERATIONS["gen4-intel"], WINDOWS)

    def test_double_release_raises_instead_of_clamping(self):
        account = self._account()
        rng = np.random.default_rng(1)
        keep = _random_plan(rng, "keep")
        victim = _random_plan(rng, "victim")
        account.commit(keep)
        account.commit(victim)
        released = account.release("victim")
        snapshot = account._ledger.demand.copy()
        pa_snapshot = account._ledger.pa_memory.copy()
        va_snapshot = account._ledger.va_demand.copy()
        with pytest.raises(ValueError, match="already released"):
            account._ledger.release_row(account._row, released)
        # The failed release validated before mutating: the survivor's
        # accounting is untouched, bitwise.
        assert np.array_equal(account._ledger.demand, snapshot)
        assert np.array_equal(account._ledger.pa_memory, pa_snapshot)
        assert np.array_equal(account._ledger.va_demand, va_snapshot)

    def test_releasing_never_committed_plan_raises(self):
        account = self._account()
        rng = np.random.default_rng(2)
        account.commit(_random_plan(rng, "resident"))
        stranger = _random_plan(rng, "stranger")
        with pytest.raises(ValueError, match="not committed"):
            account._ledger.release_row(account._row, stranger)

    def test_failed_release_leaves_caches_in_sync(self):
        account = self._account()
        rng = np.random.default_rng(4)
        account.commit(_random_plan(rng, "resident"))
        with pytest.raises(ValueError):
            account._ledger.release_row(account._row, _random_plan(rng, "x"))
        _assert_caches_fresh(account._ledger)

    def test_legitimate_float_drift_still_snaps_to_zero(self):
        account = self._account()
        rng = np.random.default_rng(6)
        plans = [_random_plan(rng, f"vm-{i}") for i in range(20)]
        for plan in plans:
            account.commit(plan)
        for plan in plans:
            account.release(plan.vm_id)
        assert account.is_empty()
        assert not account._ledger.row_used[account._row]


class TestBulkEmptyAccounts:
    def test_empty_sequence_returns_empty_vectors(self):
        capacity, backing = bulk_cpu_capacity_and_memory_backing([])
        assert capacity.shape == (0,)
        assert backing.shape == (0,)
        assert capacity.dtype.kind == "f" and backing.dtype.kind == "f"

    def test_zero_server_cluster_schedules_without_crashing(self):
        cluster = ClusterConfig("EMPTY", "test", ())
        scheduler = ClusterScheduler(cluster, WINDOWS)
        capacity, backing = bulk_cpu_capacity_and_memory_backing(
            scheduler._accounts)
        assert capacity.shape == (0,) and backing.shape == (0,)
        rng = np.random.default_rng(8)
        decision = scheduler.place(_random_plan(rng, "vm-0"))
        assert not decision.accepted
        assert scheduler.place_batch([_random_plan(rng, "vm-1")]) \
            == [scheduler.decisions[-1]]
