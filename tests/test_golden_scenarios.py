"""Golden-scenario regression: pinned fingerprints for every named scenario.

Each scenario in :data:`repro.scenarios.SCENARIOS` is run once (module-scope
cache) and its fingerprint -- admission counts, failure counters, violation
slots, and the SHA-256 over the decision ring -- is compared field for field
against the checked-in table.  The decision-ring hash is the strongest pin:
it covers the accept/reject verdict, the chosen server, and the preemption
list of *every* placement decision in order, so any drift in the scheduler,
the trace generator, the failure engine, or the scenario axes fails here
even if the aggregate counts happen to survive.

If a deliberate behaviour change shifts these numbers, regenerate with::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.scenarios import scenario_names, run_scenario
    for name in scenario_names():
        print(json.dumps(run_scenario(name).fingerprint))
    PY

and update the table in the same commit that changes the behaviour.
"""

import pytest

from repro.scenarios import (
    SCENARIOS,
    ScenarioResult,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.simulator.benchmarking import assert_store_dirs_identical
from repro.trace.generator import TraceGenerator

#: scenario -> (requested, accepted, rejected, preempted, evacuated,
#:              crashed_vms, failure_events, observed_server_slots,
#:              cpu_violation_slots, memory_violation_slots,
#:              decision_ring_sha256)
GOLDEN = {
    "baseline": (
        400, 395, 5, 0, 0, 0, 0, 50347, 85, 0,
        "04ba81c6b5c3ff22d17ba28b717431be81a6ddc27d662693bd4089bbd6f4bdee"),
    "heterogeneous-fleet": (
        400, 341, 59, 0, 0, 0, 0, 30591, 206, 0,
        "3c31e8724d0a8313ee56dcd645dc776a926e077bc575f9fc3a1352a4a8bc352e"),
    "reserved-heavy": (
        500, 499, 1, 1, 0, 0, 0, 48925, 0, 0,
        "9410c45f270589d82dc8c696325e76dd5db22cbddb01a7eb379b705ed4cc5d6b"),
    "spot-market": (
        600, 252, 348, 38, 0, 0, 0, 16128, 305, 0,
        "9b18abc309ed466ce58d26793e55c6e74181ee99f2ef9b19ed1b238c22cc7bad"),
    "diurnal-surge": (
        400, 395, 5, 0, 0, 0, 0, 50347, 1553, 0,
        "04ba81c6b5c3ff22d17ba28b717431be81a6ddc27d662693bd4089bbd6f4bdee"),
    "flash-crowd": (
        400, 398, 2, 0, 0, 0, 0, 45843, 686, 0,
        "5dc8ec43e26386c5779ecbe2af1c20ac3ca1f9c126835a37b81f9a45ab190a98"),
    "drain-storm": (
        407, 397, 10, 0, 7, 0, 6, 48331, 55, 0,
        "bab37242d86df56fd9876627f9f2533db552934b59a9a163125618c96e05a5f6"),
    "crash-heavy": (
        400, 395, 5, 0, 0, 5, 5, 46315, 85, 0,
        "04ba81c6b5c3ff22d17ba28b717431be81a6ddc27d662693bd4089bbd6f4bdee"),
    "spot-churn-with-crashes": (
        615, 420, 195, 31, 15, 8, 5, 19137, 210, 0,
        "45d1b85e1f9de23566e3adc73b0de8ffa679c6966ee6ab19b277fa64cba64d20"),
}

_FINGERPRINT_FIELDS = (
    "requested", "accepted", "rejected", "preempted", "evacuated",
    "crashed_vms", "failure_events", "observed_server_slots",
    "cpu_violation_slots", "memory_violation_slots", "decision_ring_sha256")


@pytest.fixture(scope="module")
def scenario_results():
    """Every named scenario, run exactly once for the whole module."""
    cache = {}

    def result(name: str) -> ScenarioResult:
        if name not in cache:
            cache[name] = run_scenario(name)
        return cache[name]

    return result


def test_registry_covers_golden_table():
    """The registry and the golden table stay in lockstep, and the registry
    meets the scenario-engine floor of eight named scenarios."""
    assert set(scenario_names()) == set(GOLDEN)
    assert len(SCENARIOS) >= 8


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_scenario_matches_golden_fingerprint(scenario_results, name):
    result = scenario_results(name)
    expected = dict(zip(_FINGERPRINT_FIELDS, GOLDEN[name]))
    actual = {field: result.fingerprint[field]
              for field in _FINGERPRINT_FIELDS}
    assert actual == expected


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_scenario_invariants_hold(scenario_results, name):
    result = scenario_results(name)
    assert result.ok, result.invariant_failures


def test_crash_heavy_shares_baseline_decisions_but_loses_occupancy():
    """crash-heavy differs from baseline only by its failure axis, and on
    this seed no crash changes a later placement decision -- so the decision
    ring hashes are identical while the crashed VMs' lost occupancy shows up
    as strictly fewer observed server-slots.  That pair is exactly the
    composability promise: toggling one axis shifts only what it touches."""
    assert GOLDEN["crash-heavy"][-1] == GOLDEN["baseline"][-1]
    crash_slots = GOLDEN["crash-heavy"][7]
    baseline_slots = GOLDEN["baseline"][7]
    assert crash_slots < baseline_slots


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError) as excinfo:
        get_scenario("no-such-scenario")
    assert "baseline" in str(excinfo.value)


# ---------------------------------------------------------------------- #
# Property: scenarios are reproducible down to the stored bytes
# ---------------------------------------------------------------------- #
def test_same_scenario_writes_byte_identical_stores(tmp_path):
    """Generating the same scenario's trace twice yields byte-identical
    on-disk TraceStores: every random draw descends from the scenario seed,
    so there is no hidden state to drift between runs."""
    scenario = get_scenario("spot-churn-with-crashes")
    first = TraceGenerator(scenario.generator_config()).generate_to_store(
        tmp_path / "first")
    second = TraceGenerator(scenario.generator_config()).generate_to_store(
        tmp_path / "second")
    assert_store_dirs_identical(first, second)


def test_failure_scenarios_leave_no_negative_ledger_residue(scenario_results):
    """Drains and crashes release exactly what was committed: after the
    failure-heavy runs, no ledger array dips below zero anywhere."""
    for name in ("drain-storm", "crash-heavy", "spot-churn-with-crashes"):
        for sim in scenario_results(name).simulations:
            ledger = sim.manager.scheduler.ledger
            assert float(ledger.demand.min(initial=0.0)) >= 0.0, name
            assert float(ledger.pa_memory.min(initial=0.0)) >= 0.0, name
            assert float(ledger.va_demand.min(initial=0.0)) >= 0.0, name


def test_repeated_run_reproduces_fingerprint(scenario_results):
    """Running a scenario a second time in the same process reproduces the
    fingerprint exactly -- no cross-run state in the registry or engine."""
    again = run_scenario("drain-storm")
    assert again.fingerprint == scenario_results("drain-storm").fingerprint
