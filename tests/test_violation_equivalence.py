"""Equivalence of the vectorized violation replay and the seed loop.

The dense :class:`VectorizedViolationMeter` must reproduce the seed
per-server replay (:class:`ReferenceViolationMeter`) *exactly* -- identical
``ViolationStats`` including the per-server breakdowns -- across randomized
workloads with truncated telemetry, VMs straddling the start of the
evaluation period, empty servers, and stale plan entries.  The same file
pins the parallel multi-cluster driver: ``simulate_policy`` must return
bitwise-identical ``PolicyEvaluation`` results for any parallelism level.
"""

import pytest

from repro.core.policy import COACH_POLICY, NO_OVERSUBSCRIPTION_POLICY
from repro.core.scheduler import ClusterScheduler
from repro.simulator import SimulationConfig, ViolationStats, simulate_policy
from repro.simulator.replay import (
    ReferenceViolationMeter,
    VectorizedViolationMeter,
    get_violation_meter,
)
from repro.simulator.synthetic import build_placed_replay_state
from repro.trace.hardware import ClusterConfig
from repro.trace.timeseries import TimeWindowConfig

WINDOWS = TimeWindowConfig(4)
N_SLOTS = 200

SMALL_CLUSTER = ClusterConfig("VQ", "test", (("gen4-intel", 4), ("gen6-amd", 2)))


def _random_placed_state(seed, n_vms=120):
    """Randomized scheduler + telemetry state for the differential tests.

    The workload deliberately includes: series covering only part of the
    lifetime (truncated telemetry), lifetimes overrunning the evaluation
    window, committed plans whose VM never lands in ``placed`` (stale
    entries), interleaved deallocations, and servers without any plans
    (the cluster is never filled).
    """
    return build_placed_replay_state(
        SMALL_CLUSTER, WINDOWS, n_vms, N_SLOTS, seed=seed,
        lifetime_range=(5, 120), start_margin=10, max_end_overshoot=20,
        config_names=("D1_v5", "D2_v5", "D4_v5", "E2_v5"),
        util_max_range=(0.1, 0.9), util_pct_range=(0.05, 0.6),
        full_coverage_probability=0.6, stale_plan_probability=0.05,
        churn_probability=0.2)


class TestMeterEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 2024])
    def test_randomized_traces_produce_identical_stats(self, seed):
        servers, placed = _random_placed_state(seed)
        reference = ReferenceViolationMeter().measure(servers, placed, 0, N_SLOTS, 0.5)
        vectorized = VectorizedViolationMeter().measure(servers, placed, 0, N_SLOTS, 0.5)
        # Exact dataclass equality: fractions, totals, and per-server counts.
        assert vectorized == reference
        assert reference.observed_server_slots > 0

    @pytest.mark.parametrize("seed", [3, 11])
    def test_vms_straddling_placement_start(self, seed):
        """Evaluation starting mid-trace clamps lifetimes and series alike."""
        servers, placed = _random_placed_state(seed)
        start = N_SLOTS // 3
        reference = ReferenceViolationMeter().measure(servers, placed, start, N_SLOTS, 0.5)
        vectorized = VectorizedViolationMeter().measure(servers, placed, start, N_SLOTS, 0.5)
        assert vectorized == reference
        # The workload must actually contain straddlers for this to bite.
        assert any(vm.start_slot < start < vm.end_slot for vm in placed.values())

    def test_empty_state(self):
        servers = list(ClusterScheduler(SMALL_CLUSTER, WINDOWS).servers.values())
        reference = ReferenceViolationMeter().measure(servers, {}, 0, N_SLOTS, 0.5)
        vectorized = VectorizedViolationMeter().measure(servers, {}, 0, N_SLOTS, 0.5)
        assert vectorized == reference
        assert reference.observed_server_slots == 0
        assert reference.per_server_observed == {}

    def test_empty_evaluation_window(self):
        servers, placed = _random_placed_state(5)
        reference = ReferenceViolationMeter().measure(servers, placed, N_SLOTS, N_SLOTS, 0.5)
        vectorized = VectorizedViolationMeter().measure(servers, placed, N_SLOTS, N_SLOTS, 0.5)
        assert vectorized == reference
        assert reference.observed_server_slots == 0

    def test_per_server_totals_are_consistent(self):
        servers, placed = _random_placed_state(9)
        stats = VectorizedViolationMeter().measure(servers, placed, 0, N_SLOTS, 0.5)
        assert sum(stats.per_server_observed.values()) == stats.observed_server_slots
        assert sum(stats.per_server_cpu_violations.values()) == stats.cpu_violation_slots
        assert sum(stats.per_server_memory_violations.values()) == stats.memory_violation_slots
        for server_id, observed in stats.per_server_observed.items():
            assert stats.per_server_cpu_violations[server_id] <= observed
            assert stats.per_server_memory_violations[server_id] <= observed

    def test_unknown_meter_name_raises(self):
        with pytest.raises(KeyError):
            get_violation_meter("bogus")

    def test_merge_rejects_duplicate_server_ids(self):
        """Merging the same cluster twice must fail loudly, not drop counts."""
        part = ViolationStats.from_counts({"C1-s000": 10}, {"C1-s000": 2},
                                          {"C1-s000": 0})
        with pytest.raises(ValueError):
            ViolationStats.merge([part, part])


class TestEngineEquivalence:
    def test_full_simulation_matches_across_meters(self, small_trace):
        """End to end: the engine's two replay paths agree on a real trace."""
        cluster = small_trace.cluster_ids()[0]
        evaluations = {}
        for meter in ("vectorized", "reference"):
            config = SimulationConfig(clusters=[cluster], oracle_predictions=True,
                                      violation_meter=meter)
            evaluations[meter] = simulate_policy(small_trace, COACH_POLICY, config)
        assert evaluations["vectorized"] == evaluations["reference"]
        assert evaluations["vectorized"].violations.observed_server_slots > 0


class TestParallelDriver:
    def test_parallelism_is_bitwise_identical(self, small_trace):
        """k=1 and k>1 return the same PolicyEvaluation, field for field."""
        clusters = small_trace.cluster_ids()[:3]
        assert len(clusters) >= 2
        config = SimulationConfig(clusters=clusters, oracle_predictions=True)
        serial = simulate_policy(small_trace, COACH_POLICY, config, parallelism=1)
        threaded = simulate_policy(small_trace, COACH_POLICY, config, parallelism=4)
        assert serial == threaded

    def test_parallelism_config_knob(self, small_trace):
        clusters = small_trace.cluster_ids()[:2]
        serial = simulate_policy(
            small_trace, NO_OVERSUBSCRIPTION_POLICY,
            SimulationConfig(clusters=clusters, parallelism=1))
        threaded = simulate_policy(
            small_trace, NO_OVERSUBSCRIPTION_POLICY,
            SimulationConfig(clusters=clusters, parallelism=2))
        assert serial == threaded
        assert serial.requested_vms > 0
