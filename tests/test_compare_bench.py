"""The BENCH-record regression comparator: tracked fields, thresholds, exits.

``scripts/compare_bench.py`` is stdlib-only and runs as an informational CI
step; this mirror in tier-1 pins its contract -- which fields are tracked,
what counts as a regression, and the graceful exits (too few records,
smoke/full mismatch, fields absent from older records) -- so a silent
comparator breakage cannot survive a local ``pytest -x -q``.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import compare_bench  # noqa: E402


def _record(plans=1000.0, largest=30.0, replay=5e6, sweep=1.5,
            characterization=8.0, vms=900.0, samples=4e5,
            scenario_vms=800.0, *, smoke=False, revision="abc1234"):
    return {
        "git_revision": revision,
        "smoke": smoke,
        "placement": {"plans_per_second": plans},
        "scheduler_scaling": {"largest_speedup": largest},
        "replay": {"server_slots_per_second": replay},
        "sweep": {"speedup": sweep},
        "characterization": {"speedup": characterization},
        "streaming_ingest": {"vms_per_second": vms,
                             "samples_per_second": samples},
        "scenario_matrix": {"vms_per_second": scenario_vms},
    }


def _write(path, record):
    path.write_text(json.dumps(record) + "\n")
    return path


class TestCompare:
    def test_identical_records_pass(self, tmp_path, capsys):
        old = _write(tmp_path / "BENCH_2026-01-01.json", _record())
        new = _write(tmp_path / "BENCH_2026-01-02.json", _record())
        assert compare_bench.compare(old, new) == 0
        assert "no tracked field regressed" in capsys.readouterr().out

    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        old = _write(tmp_path / "BENCH_2026-01-01.json", _record())
        new = _write(tmp_path / "BENCH_2026-01-02.json",
                     _record(largest=20.0))  # 30 -> 20 is a 33% drop
        assert compare_bench.compare(old, new) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "scheduler_scaling.largest_speedup" in out

    def test_drop_within_threshold_passes(self, tmp_path):
        old = _write(tmp_path / "BENCH_2026-01-01.json", _record())
        new = _write(tmp_path / "BENCH_2026-01-02.json",
                     _record(plans=850.0))  # 15% drop < 20% threshold
        assert compare_bench.compare(old, new) == 0

    def test_improvements_never_fail(self, tmp_path):
        old = _write(tmp_path / "BENCH_2026-01-01.json", _record())
        new = _write(tmp_path / "BENCH_2026-01-02.json",
                     _record(plans=5000.0, largest=150.0, sweep=4.0))
        assert compare_bench.compare(old, new) == 0

    def test_smoke_vs_full_is_not_comparable(self, tmp_path, capsys):
        old = _write(tmp_path / "BENCH_2026-01-01.json",
                     _record(smoke=True))
        new = _write(tmp_path / "BENCH_2026-01-02.json",
                     _record(largest=1.0))  # would regress if compared
        assert compare_bench.compare(old, new) == 0
        assert "not comparable" in capsys.readouterr().out

    def test_fields_absent_from_older_record_are_skipped(self, tmp_path,
                                                         capsys):
        older = _record()
        del older["streaming_ingest"]  # predates the ingest benchmark
        old = _write(tmp_path / "BENCH_2026-01-01.json", older)
        new = _write(tmp_path / "BENCH_2026-01-02.json", _record())
        assert compare_bench.compare(old, new) == 0
        out = capsys.readouterr().out
        assert out.count("skipped (absent from BENCH_2026-01-01.json)") == 2


class TestDiscoveryAndCli:
    def test_picks_two_newest_by_filename(self, tmp_path):
        for day, largest in (("01", 30.0), ("02", 31.0), ("03", 32.0)):
            _write(tmp_path / f"BENCH_2026-01-{day}.json",
                   _record(largest=largest))
        found = compare_bench.bench_records(tmp_path)
        assert [p.name for p in found] == [
            "BENCH_2026-01-01.json", "BENCH_2026-01-02.json",
            "BENCH_2026-01-03.json"]
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_fewer_than_two_records_is_a_noop(self, tmp_path, capsys):
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0
        assert "need two to compare" in capsys.readouterr().out
        _write(tmp_path / "BENCH_2026-01-01.json", _record())
        assert compare_bench.main(["--dir", str(tmp_path)]) == 0

    def test_explicit_pair_overrides_discovery(self, tmp_path):
        old = _write(tmp_path / "old.json", _record())
        new = _write(tmp_path / "new.json", _record(replay=1e6))  # 80% drop
        assert compare_bench.main([str(old), str(new)]) == 1

    def test_tracked_fields_exist_in_the_emitted_record_shape(self):
        # Every tracked dotted path must resolve against the shape
        # scripts/run_benchmarks.py emits (here: the test fixture mirror),
        # so a field rename cannot silently stop being tracked.
        record = _record()
        for field in compare_bench.TRACKED_FIELDS:
            assert compare_bench.lookup(record, field) is not None, field
