"""Chunked streaming replay is bitwise identical to the dense meter.

The chunked mode of :class:`VectorizedViolationMeter` tiles the slot axis
into bounded ``(n_servers, chunk_slots)`` blocks to survive multi-week
traces; it must match the dense pass (and therefore the seed reference
loop) *exactly* -- same ViolationStats including per-server breakdowns --
for every chunk size, including chunks of one slot, chunk boundaries that
split VM demand segments, chunk widths that do not divide the evaluation
window, and evaluation windows starting mid-trace.
"""

import pytest

from repro.core.policy import COACH_POLICY
from repro.simulator import SimulationConfig, simulate_policy
from repro.simulator.replay import (
    ReferenceViolationMeter,
    VectorizedViolationMeter,
    get_violation_meter,
)
from repro.simulator.synthetic import build_placed_replay_state
from repro.trace.hardware import ClusterConfig
from repro.trace.timeseries import TimeWindowConfig

WINDOWS = TimeWindowConfig(4)
N_SLOTS = 200

SMALL_CLUSTER = ClusterConfig("CQ", "test", (("gen4-intel", 4), ("gen6-amd", 2)))

#: Chunk widths swept by the differential tests: one-slot tiles, widths that
#: split every multi-slot demand segment, widths that do not divide N_SLOTS,
#: the exact window, and a chunk larger than the window (dense-equivalent).
CHUNK_SIZES = [1, 7, 32, 64, 128, N_SLOTS, N_SLOTS + 133]


def _random_placed_state(seed, n_vms=120):
    """Randomized scheduler + telemetry state (same shape as the meter
    equivalence tests): truncated series, stale plans, churn, lifetimes
    overrunning the window."""
    return build_placed_replay_state(
        SMALL_CLUSTER, WINDOWS, n_vms, N_SLOTS, seed=seed,
        lifetime_range=(5, 120), start_margin=10, max_end_overshoot=20,
        config_names=("D1_v5", "D2_v5", "D4_v5", "E2_v5"),
        util_max_range=(0.1, 0.9), util_pct_range=(0.05, 0.6),
        full_coverage_probability=0.6, stale_plan_probability=0.05,
        churn_probability=0.2)


class TestChunkedEquivalence:
    @pytest.mark.parametrize("chunk_slots", CHUNK_SIZES)
    def test_chunked_matches_dense_and_reference(self, chunk_slots):
        servers, placed = _random_placed_state(seed=3)
        reference = ReferenceViolationMeter().measure(servers, placed, 0, N_SLOTS, 0.5)
        dense = VectorizedViolationMeter().measure(servers, placed, 0, N_SLOTS, 0.5)
        chunked = VectorizedViolationMeter(chunk_slots=chunk_slots).measure(
            servers, placed, 0, N_SLOTS, 0.5)
        assert dense == reference
        assert chunked == dense
        assert reference.observed_server_slots > 0

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_randomized_workloads_across_chunk_sizes(self, seed):
        servers, placed = _random_placed_state(seed)
        dense = VectorizedViolationMeter().measure(servers, placed, 0, N_SLOTS, 0.5)
        for chunk_slots in (1, 13, 50):
            chunked = VectorizedViolationMeter(chunk_slots=chunk_slots).measure(
                servers, placed, 0, N_SLOTS, 0.5)
            assert chunked == dense, f"chunk_slots={chunk_slots}"

    def test_chunk_boundaries_split_demand_segments(self):
        """With 32-slot chunks and lifetimes of 60..120 slots, *every* VM
        demand segment straddles at least one chunk boundary."""
        servers, placed = build_placed_replay_state(
            SMALL_CLUSTER, WINDOWS, 60, N_SLOTS, seed=5,
            lifetime_range=(60, 120), full_coverage_probability=1.0)
        assert placed, "workload must place VMs"
        assert all(vm.end_slot - vm.start_slot >= 60 for vm in placed.values())
        dense = VectorizedViolationMeter().measure(servers, placed, 0, N_SLOTS, 0.5)
        chunked = VectorizedViolationMeter(chunk_slots=32).measure(
            servers, placed, 0, N_SLOTS, 0.5)
        assert chunked == dense
        assert dense.observed_server_slots > 0

    @pytest.mark.parametrize("chunk_slots", [1, 17, 64])
    def test_evaluation_window_starting_mid_trace(self, chunk_slots):
        """Chunks are tiled from the window start, not slot zero."""
        servers, placed = _random_placed_state(seed=11)
        start = N_SLOTS // 3
        dense = VectorizedViolationMeter().measure(
            servers, placed, start, N_SLOTS, 0.5)
        chunked = VectorizedViolationMeter(chunk_slots=chunk_slots).measure(
            servers, placed, start, N_SLOTS, 0.5)
        assert chunked == dense
        assert any(vm.start_slot < start < vm.end_slot for vm in placed.values())

    def test_empty_window_and_empty_state(self):
        servers, placed = _random_placed_state(seed=2)
        meter = VectorizedViolationMeter(chunk_slots=16)
        assert meter.measure(servers, placed, N_SLOTS, N_SLOTS, 0.5) == \
            ReferenceViolationMeter().measure(servers, placed, N_SLOTS, N_SLOTS, 0.5)
        assert meter.measure(servers, {}, 0, N_SLOTS, 0.5).observed_server_slots == 0


class TestChunkedConfiguration:
    @pytest.mark.parametrize("bad", [0, -1, -288])
    def test_non_positive_chunk_rejected(self, bad):
        with pytest.raises(ValueError):
            VectorizedViolationMeter(chunk_slots=bad)

    def test_registry_forwards_chunk_slots(self):
        meter = get_violation_meter("vectorized", chunk_slots=24)
        assert isinstance(meter, VectorizedViolationMeter)
        assert meter.chunk_slots == 24

    def test_reference_meter_rejects_chunking(self):
        with pytest.raises(ValueError):
            get_violation_meter("reference", chunk_slots=24)

    def test_engine_fails_fast_on_bad_chunk_config(self, tiny_trace):
        config = SimulationConfig(clusters=tiny_trace.cluster_ids()[:1],
                                  replay_chunk_slots=0)
        with pytest.raises(ValueError):
            simulate_policy(tiny_trace, COACH_POLICY, config)


class TestEngineChunkedEquivalence:
    def test_simulate_policy_chunked_matches_dense(self, tiny_trace):
        """End to end: ``SimulationConfig.replay_chunk_slots`` changes peak
        memory, never the PolicyEvaluation."""
        cluster = tiny_trace.cluster_ids()[:1]
        dense = simulate_policy(
            tiny_trace, COACH_POLICY,
            SimulationConfig(clusters=cluster, oracle_predictions=True))
        for chunk_slots in (50, 288):
            chunked = simulate_policy(
                tiny_trace, COACH_POLICY,
                SimulationConfig(clusters=cluster, oracle_predictions=True,
                                 replay_chunk_slots=chunk_slots))
            assert chunked == dense, f"replay_chunk_slots={chunk_slots}"
        assert dense.violations.observed_server_slots > 0
