"""Tests for monitoring, mitigation, the server memory model, and the agent."""

import pytest

from repro.core.mitigation import (
    MITIGATION_POLICIES,
    MitigationAction,
    MitigationEngine,
    mitigation_policy,
)
from repro.core.monitoring import (
    MonitoringComponent,
    ServerSample,
)
from repro.core.resources import Resource
from repro.core.server_manager import OversubscriptionAgent
from repro.simulator.memory import ServerMemoryModel
from repro.workloads.runner import _static_coachvm


def sample(time_s=0.0, cpu=0.3, wait=0.0, demand=10.0, capacity=32.0,
           pool=6.0, available=3.0, faults=0.0):
    return ServerSample(time_seconds=time_s, cpu_utilization=cpu,
                        cpu_wait_fraction=wait, memory_demand_gb=demand,
                        memory_capacity_gb=capacity, oversub_pool_gb=pool,
                        oversub_available_gb=available, page_fault_gb=faults)


class TestMonitoring:
    def test_quiet_sample_raises_no_signal(self):
        monitor = MonitoringComponent()
        assert monitor.observe(sample()) == []

    def test_cpu_contention_detection(self):
        monitor = MonitoringComponent()
        signals = monitor.observe(sample(cpu=0.6, wait=0.01))
        assert any(s.resource is Resource.CPU for s in signals)

    def test_cpu_wait_alone_not_enough(self):
        """Wait time only counts when utilization is above the floor."""
        monitor = MonitoringComponent()
        signals = monitor.observe(sample(cpu=0.05, wait=0.01))
        assert not any(s.resource is Resource.CPU for s in signals)

    def test_memory_pool_exhaustion_detection(self):
        monitor = MonitoringComponent()
        signals = monitor.observe(sample(available=0.2))
        assert any(s.resource is Resource.MEMORY for s in signals)

    def test_page_fault_detection(self):
        monitor = MonitoringComponent()
        signals = monitor.observe(sample(available=5.0, faults=0.5))
        assert any(s.resource is Resource.MEMORY for s in signals)

    def test_history_is_bounded(self):
        monitor = MonitoringComponent(max_history=10)
        for i in range(25):
            monitor.observe(sample(time_s=i))
        assert len(monitor.history) == 10

    def test_summary(self):
        monitor = MonitoringComponent()
        monitor.observe(sample())
        summary = monitor.summary()
        assert summary["samples"] == 1.0


def build_server(pool_gb=6.0):
    """A 32 GB server hosting the Figure 21 trio of CoachVMs."""
    memory = ServerMemoryModel(capacity_gb=32.0, host_reserved_gb=2.0,
                               oversub_pool_gb=pool_gb)
    memory.add_vm(_static_coachvm("cache", 8.0, 3.0))
    memory.add_vm(_static_coachvm("kvstore", 8.0, 3.0))
    memory.add_vm(_static_coachvm("videoconf", 8.0, 1.0))
    return memory


class TestServerMemoryModel:
    def test_capacity_accounting(self):
        memory = build_server()
        assert memory.pa_allocated_gb == pytest.approx(7.0)
        assert memory.unallocated_gb() == pytest.approx(32 - 2 - 7 - 6)
        assert memory.oversub_available_gb == pytest.approx(6.0)

    def test_demand_within_pa_causes_no_faults(self):
        memory = build_server()
        outcome = memory.apply_demands({"cache": 2.0, "kvstore": 2.0, "videoconf": 1.0}, 20.0)
        assert outcome.page_fault_gb == 0.0
        assert memory.oversub_used_gb == 0.0

    def test_spill_consumes_pool_then_faults(self):
        memory = build_server(pool_gb=2.0)
        outcome = memory.apply_demands({"cache": 6.0, "kvstore": 6.0, "videoconf": 1.0}, 20.0)
        # Each of cache/kvstore spills 3 GB beyond PA; only 2 GB pool available.
        assert memory.oversub_used_gb == pytest.approx(2.0)
        assert outcome.unbacked_gb == pytest.approx(4.0)
        assert outcome.page_fault_gb > 0

    def test_trim_frees_pool(self):
        memory = build_server(pool_gb=3.0)
        memory.apply_demands({"cache": 6.0, "kvstore": 3.0, "videoconf": 1.0}, 20.0)
        # Cache backed 3 GB; demand drops, making memory cold and trimmable.
        memory.apply_demands({"cache": 3.0, "kvstore": 3.0, "videoconf": 1.0}, 20.0)
        assert memory.trimmable_gb() > 0
        before = memory.oversub_available_gb
        freed = memory.trim_cold_memory(1.0)
        assert freed > 0
        assert memory.oversub_available_gb == pytest.approx(before + freed)

    def test_extend_pool_bounded_by_unallocated(self):
        memory = build_server()
        unallocated = memory.unallocated_gb()
        added = memory.extend_pool(unallocated + 100.0)
        assert added == pytest.approx(unallocated)
        assert memory.unallocated_gb() == pytest.approx(0.0)

    def test_pa_must_fit_unallocated(self):
        memory = ServerMemoryModel(capacity_gb=16.0, host_reserved_gb=2.0,
                                   oversub_pool_gb=4.0)
        with pytest.raises(ValueError):
            memory.add_vm(_static_coachvm("big", 32.0, 12.0))

    def test_migration_removes_vm_and_frees_memory(self):
        memory = build_server()
        memory.apply_demands({"cache": 5.0, "kvstore": 5.0, "videoconf": 6.0}, 20.0)
        candidates = memory.migration_candidates()
        assert candidates[0] == "videoconf"  # most over its PA portion
        duration = memory.start_migration("videoconf")
        assert duration > 0
        # Advance enough simulated time for the migration to finish.
        for _ in range(10):
            memory.apply_demands({"cache": 5.0, "kvstore": 5.0}, 30.0)
        assert "videoconf" not in memory.vms

    def test_resize_pool_validation(self):
        memory = build_server()
        with pytest.raises(ValueError):
            memory.resize_pool(100.0)
        memory.resize_pool(4.0)
        assert memory.oversub_pool_gb == 4.0


class TestMitigationEngine:
    def test_policy_catalogue_matches_figure21(self):
        assert set(MITIGATION_POLICIES) == {
            "none", "trim-reactive", "trim-proactive", "extend-reactive",
            "extend-proactive", "migrate-reactive", "migrate-proactive"}
        with pytest.raises(KeyError):
            mitigation_policy("reboot")

    def test_none_policy_does_nothing(self):
        memory = build_server(pool_gb=1.0)
        memory.apply_demands({"cache": 7.0, "kvstore": 7.0, "videoconf": 7.0}, 20.0)
        engine = MitigationEngine(mitigation_policy("none"))
        result = engine.mitigate(memory, 20.0)
        assert result.actions == []

    def test_extend_policy_grows_pool(self):
        memory = build_server(pool_gb=1.0)
        memory.apply_demands({"cache": 7.0, "kvstore": 7.0, "videoconf": 7.0}, 20.0)
        engine = MitigationEngine(mitigation_policy("extend-reactive"))
        result = engine.mitigate(memory, 20.0)
        assert MitigationAction.EXTEND in result.actions
        assert result.extended_gb > 0

    def test_migrate_policy_starts_migration(self):
        memory = build_server(pool_gb=0.5)
        memory.apply_demands({"cache": 8.0, "kvstore": 8.0, "videoconf": 8.0}, 20.0)
        engine = MitigationEngine(mitigation_policy("migrate-reactive"))
        result = engine.mitigate(memory, 20.0)
        assert result.migrated_vm is not None
        assert memory.migrations_in_progress()

    def test_trim_bandwidth_limits_amount(self):
        memory = build_server(pool_gb=6.0)
        memory.apply_demands({"cache": 8.0, "kvstore": 8.0, "videoconf": 1.0}, 20.0)
        memory.apply_demands({"cache": 2.0, "kvstore": 2.0, "videoconf": 1.0}, 20.0)
        engine = MitigationEngine(mitigation_policy("trim-reactive"))
        result = engine.mitigate(memory, dt_seconds=1.0, needed_gb=100.0)
        # At 1.1 GB/s, one second can trim at most 1.1 GB.
        assert result.trimmed_gb <= 1.1 + 1e-9


class TestOversubscriptionAgent:
    def test_agent_tracks_available_pool(self):
        memory = build_server()
        agent = OversubscriptionAgent(memory, mitigation_policy("none"),
                                      interval_seconds=20.0)
        report = agent.tick(0.0, {"cache": 2.0, "kvstore": 2.0, "videoconf": 1.0})
        assert report.oversub_available_gb == pytest.approx(6.0)
        assert not report.reactive_trigger

    def test_reactive_trigger_on_pool_exhaustion(self):
        memory = build_server(pool_gb=1.0)
        agent = OversubscriptionAgent(memory, mitigation_policy("extend-reactive"),
                                      interval_seconds=20.0)
        report = agent.tick(0.0, {"cache": 7.0, "kvstore": 7.0, "videoconf": 7.0})
        assert report.reactive_trigger
        assert report.mitigation is not None and report.mitigation.actions

    def test_agent_report_series(self):
        memory = build_server()
        agent = OversubscriptionAgent(memory, mitigation_policy("trim-reactive"),
                                      interval_seconds=20.0)
        for step in range(5):
            agent.tick(step * 20.0, {"cache": 3.0, "kvstore": 3.0, "videoconf": 2.0})
        assert len(agent.available_series()) == 5
        assert len(agent.fault_series()) == 5
        assert agent.total_page_faults_gb() >= 0.0
