"""Tests for the workload models, performance model, and scenario runners."""

import pytest

from repro.workloads import (
    MemoryConfiguration,
    WORKLOADS,
    figure18_configurations,
    pa_va_sweep,
    run_figure18,
    run_mitigation_scenario,
    slowdown,
    summarize_results,
    total_allocated_memory,
    va_access_fraction,
    workload,
)
from repro.workloads.base import KeyMetric


class TestSuite:
    def test_nine_workloads(self):
        assert len(WORKLOADS) == 9

    def test_key_metrics_match_table2(self):
        assert workload("cache").key_metric is KeyMetric.TAIL_LATENCY
        assert workload("bigdata").key_metric is KeyMetric.RUN_TIME
        assert workload("web").key_metric is KeyMetric.THROUGHPUT
        assert workload("llm-ft").key_metric is KeyMetric.RUN_TIME

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload("spark")

    def test_baseline_values_from_paper(self):
        assert workload("kvstore").baseline_value == pytest.approx(0.41)
        assert workload("database").baseline_value == pytest.approx(40.0)
        assert workload("llm-ft").baseline_value == pytest.approx(3.7)


class TestPerformanceModel:
    def test_fully_guaranteed_has_no_slowdown(self):
        config = MemoryConfiguration("gpvm", pa_gb=32.0, va_gb=0.0)
        for profile in WORKLOADS.values():
            assert slowdown(profile, config) == pytest.approx(1.0)

    def test_va_access_zero_when_pa_covers_working_set(self):
        profile = workload("cache")
        config = MemoryConfiguration("cvm", pa_gb=profile.working_set_gb + 2, va_gb=10.0)
        assert va_access_fraction(profile, config) == 0.0

    def test_va_access_grows_with_spill(self):
        profile = workload("database")
        small = MemoryConfiguration("a", pa_gb=profile.working_set_gb - 2, va_gb=16.0)
        large = MemoryConfiguration("b", pa_gb=profile.working_set_gb - 8, va_gb=16.0)
        assert va_access_fraction(profile, large) > va_access_fraction(profile, small)

    def test_unbacked_memory_much_worse_than_backed(self):
        profile = workload("cache")
        backed = MemoryConfiguration("backed", pa_gb=4.0, va_gb=28.0,
                                     va_backing_fraction=1.0)
        unbacked = MemoryConfiguration("unbacked", pa_gb=4.0, va_gb=28.0,
                                       va_backing_fraction=0.0)
        assert slowdown(profile, unbacked) > 2 * slowdown(profile, backed)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MemoryConfiguration("bad", pa_gb=-1.0, va_gb=4.0).validate()
        with pytest.raises(ValueError):
            MemoryConfiguration("bad", pa_gb=0.0, va_gb=0.0).validate()

    def test_total_allocated_memory(self):
        config = MemoryConfiguration("x", pa_gb=16.0, va_gb=16.0, va_backing_fraction=0.75)
        assert total_allocated_memory(config) == pytest.approx(28.0)


class TestFigure18:
    def test_configuration_set(self):
        configs = figure18_configurations(workload("cache"))
        names = [c.name for c in configs]
        assert names == ["gpvm", "cvm", "cvm-floor", "ovm"]
        assert configs[0].pa_gb == 32.0 and configs[-1].pa_gb == 0.0

    def test_figure18_ordering_matches_paper(self):
        """GPVM <= CVM << OVM, and CVM stays within ~15% of the baseline."""
        table = summarize_results(run_figure18())
        for name, row in table.items():
            assert row["gpvm"] == pytest.approx(1.0)
            assert row["cvm"] <= 1.25
            assert row["ovm"] >= row["cvm"] - 1e-9
        # Tail-latency workloads are the most sensitive to full oversubscription.
        assert table["kvstore"]["ovm"] > table["web"]["ovm"]
        assert table["cache"]["ovm"] > table["graph"]["ovm"]

    def test_under_allocation_hurts_latency_workloads_most(self):
        table = summarize_results(run_figure18())
        assert table["kvstore"]["cvm-floor"] > 1.5
        assert table["cache"]["cvm-floor"] > 1.5
        assert table["web"]["cvm-floor"] < 1.3


class TestFigure15Sweep:
    def test_sweep_shape_and_validity(self):
        points = pa_va_sweep(step_gb=8.0)
        assert points
        for point in points:
            assert 0 < point.pa_gb + point.va_gb <= 32.0 + 1e-9
            assert point.slowdown >= 1.0

    def test_full_pa_has_no_slowdown_and_no_savings(self):
        points = {(p.pa_gb, p.va_gb): p for p in pa_va_sweep(step_gb=8.0)}
        full_pa = points[(32.0, 0.0)]
        assert full_pa.slowdown == pytest.approx(1.0)
        assert full_pa.allocated_gb == pytest.approx(32.0)

    def test_insufficient_memory_region_is_red(self):
        """Configurations with less memory than the working set thrash."""
        points = {(p.pa_gb, p.va_gb): p for p in pa_va_sweep(step_gb=8.0)}
        assert points[(8.0, 0.0)].slowdown > 5.0

    def test_splitting_saves_memory(self):
        points = {(p.pa_gb, p.va_gb): p for p in pa_va_sweep(step_gb=8.0)}
        split = points[(16.0, 16.0)]
        assert split.allocated_gb < 32.0


class TestMitigationScenario:
    def test_none_policy_fails_to_recover(self):
        timeline = run_mitigation_scenario("none", interval_seconds=20.0)
        assert min(timeline.available_oversub_gb) == pytest.approx(0.0, abs=1e-6)
        assert not timeline.recovered()
        assert timeline.peak_slowdown("cache") > 1.5

    def test_extend_recovers_second_contention(self):
        timeline = run_mitigation_scenario("extend-proactive", interval_seconds=20.0)
        assert timeline.recovered()

    def test_migrate_frees_the_most_memory(self):
        extend = run_mitigation_scenario("extend-proactive", interval_seconds=20.0)
        migrate = run_mitigation_scenario("migrate-proactive", interval_seconds=20.0)
        assert migrate.available_oversub_gb[-1] >= extend.available_oversub_gb[-1]

    def test_mitigation_reduces_peak_slowdown(self):
        none_timeline = run_mitigation_scenario("none", interval_seconds=20.0)
        extend_timeline = run_mitigation_scenario("extend-proactive", interval_seconds=20.0)
        assert (extend_timeline.peak_slowdown("kvstore")
                <= none_timeline.peak_slowdown("kvstore") + 1e-9)

    def test_timeline_lengths_consistent(self):
        timeline = run_mitigation_scenario("trim-reactive", duration_seconds=200.0,
                                           interval_seconds=20.0)
        n = len(timeline.times_seconds)
        assert n == 10
        assert len(timeline.available_oversub_gb) == n
        assert all(len(series) == n for series in timeline.slowdown.values())
