"""Tier-1 tests for the invariant analyzer (``repro.analysis``).

Each rule gets at least one positive (flagged) and one negative (clean)
code sample, the baseline workflow is exercised end to end, the CLI's exit
codes are pinned, and -- the acceptance gate -- the repo's own ``src/repro``
tree must be clean modulo the checked-in ``analysis_baseline.json`` with no
unused baseline entries.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisEngine,
    Finding,
    ModuleInfo,
    Project,
    analyze_source,
    apply_baseline,
    default_rules,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(source: str, *, module: str = "repro.core.sample") -> list:
    return analyze_source(textwrap.dedent(source), module=module,
                          path=f"{module.replace('.', '/')}.py")


def rule_ids(findings) -> list:
    return sorted({f.rule_id for f in findings})


# --------------------------------------------------------------------------- #
# REP001: unseeded RNG
# --------------------------------------------------------------------------- #
class TestRep001UnseededRng:
    def test_flags_global_generator_calls(self):
        findings = run("""
            import numpy as np

            def jitter(x):
                return x + np.random.normal(0.0, 0.1)
        """)
        assert rule_ids(findings) == ["REP001"]
        assert "global generator" in findings[0].message

    def test_flags_default_rng_without_seed(self):
        findings = run("""
            import numpy as np
            from numpy.random import default_rng

            def make():
                a = np.random.default_rng()
                b = default_rng()
                return a, b
        """)
        assert [f.rule_id for f in findings] == ["REP001", "REP001"]

    def test_flags_global_seed_call(self):
        findings = run("""
            import numpy as np
            np.random.seed(0)
        """)
        assert rule_ids(findings) == ["REP001"]

    def test_seeded_construction_is_clean(self):
        findings = run("""
            import numpy as np
            from numpy.random import default_rng

            def make(seed):
                gen = np.random.Generator(np.random.PCG64(seed))
                return np.random.default_rng(seed), default_rng(7), gen
        """)
        assert findings == []

    def test_test_modules_are_exempt(self):
        findings = run("""
            import numpy as np
            np.random.seed(0)
        """, module="tests.test_sample")
        assert findings == []


# --------------------------------------------------------------------------- #
# REP002: shared-memory hygiene
# --------------------------------------------------------------------------- #
class TestRep002ShmHygiene:
    def test_flags_creation_without_finally(self):
        findings = run("""
            from multiprocessing import shared_memory

            def leaky(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                shm.buf[0] = 1
        """)
        assert rule_ids(findings) == ["REP002"]
        assert "SharedMemory(create=True)" in findings[0].message

    def test_flags_export_shared_without_cleanup(self):
        findings = run("""
            def leaky(store):
                handle = store.export_shared()
                handle.attach()
        """)
        assert rule_ids(findings) == ["REP002"]
        assert "export_shared()" in findings[0].message

    def test_finally_unlink_is_clean(self):
        findings = run("""
            def tidy(store):
                handle = store.export_shared()
                try:
                    return handle.attach()
                finally:
                    handle.unlink()
        """)
        assert findings == []

    def test_returning_the_handle_transfers_ownership(self):
        findings = run("""
            def factory_direct(store):
                return store.export_shared()

            def factory_bound(store):
                handle = store.export_shared()
                register(handle)
                return handle
        """)
        assert findings == []

    def test_attach_by_name_is_not_a_creation(self):
        findings = run("""
            from multiprocessing import shared_memory

            def attach(name):
                shm = shared_memory.SharedMemory(name=name)
                return shm
        """)
        assert findings == []


# --------------------------------------------------------------------------- #
# REP003: hot-path copies
# --------------------------------------------------------------------------- #
class TestRep003HotPathCopy:
    def test_flags_copies_under_pragma(self):
        findings = run("""
            # repro: hot-path
            import numpy as np

            def gather(buffer, index):
                rows = index.tolist()
                dense = np.ascontiguousarray(buffer)
                return dense.copy(), rows
        """)
        assert [f.rule_id for f in findings] == ["REP003"] * 3
        assert any(".tolist()" in f.message for f in findings)
        assert any("np.ascontiguousarray" in f.message for f in findings)
        assert all("(in `gather`)" in f.message for f in findings)

    def test_module_without_pragma_is_exempt(self):
        findings = run("""
            def gather(buffer, index):
                return buffer.copy(), index.tolist()
        """)
        assert findings == []

    def test_pragma_module_without_copies_is_clean(self):
        findings = run("""
            # repro: hot-path
            def gather(buffer, lo, hi):
                return buffer[lo:hi]
        """)
        assert findings == []


# --------------------------------------------------------------------------- #
# REP004: wall-clock reads
# --------------------------------------------------------------------------- #
class TestRep004WallClock:
    def test_flags_clock_reads(self):
        findings = run("""
            import time
            from datetime import datetime

            def stamp(result):
                result["at"] = time.time()
                result["when"] = datetime.now()
                result["took"] = time.perf_counter()
                return result
        """)
        assert [f.rule_id for f in findings] == ["REP004"] * 3
        assert any("`time.time()`" in f.message for f in findings)
        assert any("`datetime.now()`" in f.message for f in findings)

    def test_benchmarking_harness_is_allowed(self):
        findings = run("""
            import time

            def measure(fn):
                begin = time.perf_counter()
                fn()
                return time.perf_counter() - begin
        """, module="repro.simulator.benchmarking")
        assert findings == []

    def test_non_clock_attributes_are_clean(self):
        findings = run("""
            import time

            def wait():
                time.sleep(0.0)
        """)
        assert findings == []


# --------------------------------------------------------------------------- #
# REP005: dispatch twins
# --------------------------------------------------------------------------- #
def _project(columnar_src: str, sibling_src: str) -> Project:
    columnar = ModuleInfo.from_source(
        textwrap.dedent(columnar_src),
        path="src/repro/characterization/columnar.py",
        module="repro.characterization.columnar")
    sibling = ModuleInfo.from_source(
        textwrap.dedent(sibling_src),
        path="src/repro/characterization/stat.py",
        module="repro.characterization.stat")
    return Project([columnar, sibling])


class TestRep005DispatchTwin:
    def test_dispatch_with_fallback_is_clean(self):
        project = _project(
            """
            def maybe_stat(trace):
                return None
            """,
            """
            from repro.characterization import columnar

            def stat(trace):
                result = columnar.maybe_stat(trace)
                if result is not None:
                    return result
                return sum(vm.value for vm in trace)
            """)
        assert AnalysisEngine().analyze_project(project) == []

    def test_undispatched_twin_is_flagged(self):
        project = _project(
            """
            def maybe_stat(trace):
                return None

            def maybe_orphan(trace):
                return None
            """,
            """
            from repro.characterization import columnar

            def stat(trace):
                result = columnar.maybe_stat(trace)
                if result is not None:
                    return result
                return 0
            """)
        findings = AnalysisEngine().analyze_project(project)
        assert rule_ids(findings) == ["REP005"]
        assert "maybe_orphan" in findings[0].message
        assert "never dispatched" in findings[0].message

    def test_dispatch_without_fallback_is_flagged(self):
        project = _project(
            """
            def maybe_stat(trace):
                return None
            """,
            """
            from repro.characterization import columnar

            def stat(trace):
                return columnar.maybe_stat(trace)
            """)
        findings = AnalysisEngine().analyze_project(project)
        assert rule_ids(findings) == ["REP005"]
        assert "lacks a reference fallback" in findings[0].message


# --------------------------------------------------------------------------- #
# REP006: ledger direct writes
# --------------------------------------------------------------------------- #
class TestRep006LedgerWrite:
    def test_flags_writes_outside_mutators(self):
        findings = run("""
            def rebalance(ledger, row):
                ledger.demand[:, row, :] = 0.0
                ledger.pa_memory[row] += 1.0
                ledger.demand_sum = None
        """)
        assert [f.rule_id for f in findings] == ["REP006"] * 3
        assert any("`.demand`" in f.message for f in findings)
        assert any("`.pa_memory`" in f.message for f in findings)
        assert any("`.demand_sum`" in f.message for f in findings)

    def test_sanctioned_mutators_are_clean(self):
        findings = run("""
            class ClusterLedger:
                def __init__(self):
                    self.demand = None
                    self.demand_sum = None

                def commit_row(self, row):
                    self.demand[:, row, :] += 1.0
                    self._refresh_row_caches(row)

                def release_row(self, row):
                    self.va_demand[row] = 0.0

                def _refresh_row_caches(self, row):
                    self.demand_sum[:, row] = self.demand[:, row, :].sum(axis=1)
                    self.va_peak[row] = self.va_demand[row].max()
        """)
        assert findings == []

    def test_unrelated_attributes_are_clean(self):
        findings = run("""
            def tally(stats):
                stats.requests += 1
                stats.demand_curve = []
        """)
        assert findings == []

    def test_test_modules_are_exempt(self):
        findings = run("""
            def test_corrupt(ledger):
                ledger.demand[:] = -1.0
        """, module="tests.test_sample")
        assert findings == []


# --------------------------------------------------------------------------- #
# REP007: tiered candidate-index direct writes
# --------------------------------------------------------------------------- #
class TestRep007CandidateIndexWrite:
    def test_flags_writes_and_mutations_outside_mutators(self):
        findings = run("""
            from heapq import heappush

            def rebalance(ledger, row, band):
                ledger._row_band[row] = band
                ledger._band_members[band].add(row)
                heappush(ledger._empty_heaps[0], row)
        """)
        assert [f.rule_id for f in findings] == ["REP007"] * 3
        assert any("`._row_band`" in f.message for f in findings)
        assert any("`.add()` call on" in f.message for f in findings)
        assert any("`heappush` on" in f.message for f in findings)

    def test_read_path_pops_are_flagged(self):
        # The read path must trust heap tops without cleaning them up
        # itself; lazy deletion belongs to the mutators.
        findings = run("""
            from heapq import heappop

            def best_fit_row(ledger, kind):
                heap = ledger._empty_heaps[kind]
                while heap and ledger.row_used[heap[0]]:
                    heappop(ledger._empty_heaps[kind])
        """)
        assert rule_ids(findings) == ["REP007"]

    def test_sanctioned_maintainers_are_clean(self):
        findings = run("""
            from heapq import heapify, heappop, heappush

            class ClusterLedger:
                def rebuild_candidate_index(self):
                    self._row_band = None
                    self._band_members = {}
                    self._empty_heaps = [[]]
                    heapify(self._empty_heaps[0])

                def _index_update_row(self, row):
                    self._band_members.setdefault(0, set()).add(row)
                    self._row_band[row] = 0
                    heappush(self._empty_heaps[0], row)
                    while self._empty_heaps[0]:
                        heappop(self._empty_heaps[0])
        """)
        assert findings == []

    def test_reads_and_unrelated_attributes_are_clean(self):
        findings = run("""
            def shortlist(ledger, queue):
                reps = [heap[0] for heap in ledger._empty_heaps if heap]
                bands = sorted(ledger._band_members, reverse=True)
                queue.append(bands)
                return reps
        """)
        assert findings == []

    def test_test_modules_are_exempt(self):
        findings = run("""
            def test_corrupt(ledger):
                ledger._band_members.clear()
        """, module="tests.test_sample")
        assert findings == []


# --------------------------------------------------------------------------- #
# REP008: scenario RNG must derive from the scenario seed
# --------------------------------------------------------------------------- #
class TestRep008ScenarioRng:
    def test_flags_literal_seeded_rng_in_scenario_layer(self):
        # Seeded, so REP001-clean -- but anchored to a literal instead of
        # the scenario seed, which is exactly what REP008 exists to catch.
        findings = run("""
            import numpy as np

            def surge_slots(n):
                rng = np.random.default_rng(1234)
                return rng.integers(0, n, size=4)
        """, module="repro.scenarios.sample")
        assert rule_ids(findings) == ["REP008"]
        assert "bypasses derive_rng" in findings[0].message
        assert "`surge_slots`" in findings[0].message

    def test_flags_imported_constructor_alias(self):
        findings = run("""
            from numpy.random import default_rng as rng_factory

            def pick(seed):
                return rng_factory(seed)
        """, module="repro.scenarios.sample")
        assert rule_ids(findings) == ["REP008"]
        assert "`rng_factory(...)`" in findings[0].message

    def test_flags_bit_generator_construction(self):
        findings = run("""
            import numpy as np

            def make(seed):
                return np.random.Generator(np.random.PCG64(seed))
        """, module="repro.scenarios.sample")
        assert [f.rule_id for f in findings] == ["REP008"] * 2

    def test_derive_rng_itself_is_sanctioned(self):
        findings = run("""
            import numpy as np

            def derive_rng(seed, label):
                return np.random.default_rng(seed)
        """, module="repro.scenarios.axes")
        assert findings == []

    def test_modules_outside_scenarios_are_not_its_business(self):
        findings = run("""
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
        """, module="repro.trace.sample")
        assert findings == []

    def test_test_modules_are_exempt(self):
        findings = run("""
            import numpy as np

            def helper():
                return np.random.default_rng(42)
        """, module="tests.test_scenarios_sample")
        assert findings == []


# --------------------------------------------------------------------------- #
# Baseline workflow
# --------------------------------------------------------------------------- #
class TestBaseline:
    def _finding(self, message: str = "bad thing (in `f`)") -> Finding:
        return Finding(path="src/repro/x.py", line=3, col=0,
                       rule_id="REP001", message=message)

    def test_roundtrip_and_matching_ignores_lines(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self._finding()], path)
        baseline = load_baseline(path)
        drifted = Finding(path="src/repro/x.py", line=99, col=4,
                          rule_id="REP001", message="bad thing (in `f`)")
        result = apply_baseline([drifted], baseline)
        assert result.active == []
        assert result.suppressed == [drifted]
        assert result.unused_entries == []

    def test_unused_entries_are_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self._finding()], path)
        result = apply_baseline([], load_baseline(path))
        assert len(result.unused_entries) == 1
        assert result.unused_entries[0]["rule"] == "REP001"

    def test_justifications_carry_forward(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = self._finding()
        write_baseline([finding], path)
        payload = json.loads(path.read_text())
        payload["entries"][0]["justification"] = "because physics"
        path.write_text(json.dumps(payload))
        write_baseline([finding], path, justifications=load_baseline(path))
        assert json.loads(path.read_text())["entries"][0]["justification"] \
            == "because physics"

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
@pytest.fixture()
def dirty_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "dirty.py").write_text(textwrap.dedent("""
        import numpy as np

        def jitter(x):
            return x + np.random.normal(0.0, 0.1)
    """))
    return pkg


class TestCli:
    def test_exit_one_on_findings(self, dirty_tree, capsys):
        assert main([str(dirty_tree), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "1 finding(s)" in out

    def test_baseline_suppresses_to_exit_zero(self, dirty_tree, tmp_path,
                                              capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(dirty_tree), "--write-baseline", str(baseline)]) == 0
        assert main([str(dirty_tree), "--baseline", str(baseline)]) == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_json_format_and_output_file(self, dirty_tree, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main([str(dirty_tree), "--no-baseline", "--format", "json",
                     "--output", str(report)])
        assert code == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(report.read_text())
        assert stdout_payload == file_payload
        assert stdout_payload["counts"]["active"] == 1
        assert stdout_payload["findings"][0]["rule"] == "REP001"

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope"), "--no-baseline"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_missing_explicit_baseline_exits_two(self, dirty_tree, tmp_path,
                                                 capsys):
        code = main([str(dirty_tree),
                     "--baseline", str(tmp_path / "absent.json")])
        assert code == 2
        assert "baseline not found" in capsys.readouterr().err

    def test_list_rules_covers_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005",
                        "REP006", "REP007", "REP008"):
            assert rule_id in out


# --------------------------------------------------------------------------- #
# The acceptance gate: the repo's own tree is clean modulo the baseline
# --------------------------------------------------------------------------- #
class TestTreeClean:
    def test_src_repro_clean_modulo_baseline(self):
        engine = AnalysisEngine(default_rules())
        findings = engine.analyze_paths([REPO_ROOT / "src" / "repro"],
                                        rel_root=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / "analysis_baseline.json")
        result = apply_baseline(findings, baseline)
        assert result.active == [], \
            "new invariant violations:\n" + \
            "\n".join(f.format() for f in result.active)
        assert result.unused_entries == [], \
            "stale baseline entries: " + json.dumps(result.unused_entries)

    def test_every_rule_has_baselined_or_zero_findings(self):
        # The suppressed set documents exactly the justified violations;
        # pin the shape so a rule silently going dead is noticed.
        engine = AnalysisEngine(default_rules())
        findings = engine.analyze_paths([REPO_ROOT / "src" / "repro"],
                                        rel_root=REPO_ROOT)
        by_rule = {f.rule_id for f in findings}
        # REP002/REP003/REP004 have known, justified baselined findings.
        assert {"REP002", "REP003", "REP004"} <= by_rule
        # REP001/REP005/REP006/REP007/REP008 must stay at zero findings
        # tree-wide.
        assert "REP001" not in by_rule
        assert "REP005" not in by_rule
        assert "REP006" not in by_rule
        assert "REP007" not in by_rule
        assert "REP008" not in by_rule
