"""Tests for the time-window demand formulation (Equations 1-4) and CoachVM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coachvm import CoachVM, MemorySplit
from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.windows import (
    guaranteed_memory,
    multiplexed_oversubscribed_memory,
    plan_resource,
    plan_vm,
    scheduling_vector,
    server_memory_backing,
    unmultiplexed_oversubscribed_memory,
)
from repro.prediction.utilization_model import WindowUtilizationPrediction
from repro.trace.timeseries import TimeWindowConfig
from repro.trace.vm import VM_CATALOG, VMRecord
from repro.trace.timeseries import UtilizationSeries


def make_prediction(windows, percentile_by_resource, maximum_by_resource,
                    oversubscribable=True):
    return WindowUtilizationPrediction(
        windows=windows,
        percentile={Resource(r): np.asarray(v, dtype=float)
                    for r, v in percentile_by_resource.items()},
        maximum={Resource(r): np.asarray(v, dtype=float)
                 for r, v in maximum_by_resource.items()},
        oversubscribable=oversubscribable,
    )


def paper_figure16_prediction(windows):
    """The Figure 16 example: a 32 GB VM with three 8-hour windows."""
    # CVM1: PA-demand 16 GB (max percentile), VA demands {10, 0, 8} roughly.
    pct = {r: [0.5, 0.25, 0.5] for r in ("cpu", "memory", "network", "ssd")}
    mx = {r: [0.875, 0.25, 0.6875] for r in ("cpu", "memory", "network", "ssd")}
    return make_prediction(windows, pct, mx)


class TestPlanResource:
    def test_memory_pa_is_max_percentile_across_windows(self):
        windows = TimeWindowConfig(8)
        prediction = paper_figure16_prediction(windows)
        plan = plan_resource(Resource.MEMORY, 32.0, prediction)
        # Eq. 1: PA = max_t(P95_t) * 32 GB = 16 GB.
        assert plan.guaranteed == pytest.approx(16.0)
        # Eq. 2: VA demand = max(0, Pmax_t*32 - 16).
        np.testing.assert_allclose(plan.window_oversubscribed, [12.0, 0.0, 6.0])

    def test_no_oversubscription_plan_is_full(self):
        windows = TimeWindowConfig(8)
        prediction = paper_figure16_prediction(windows)
        plan = plan_resource(Resource.MEMORY, 32.0, prediction, oversubscribe=False)
        assert plan.guaranteed == 32.0
        assert np.all(plan.window_demand == 32.0)
        assert np.all(plan.window_oversubscribed == 0.0)

    def test_memory_guaranteed_rounded_to_granularity(self):
        windows = TimeWindowConfig(12)
        prediction = make_prediction(
            windows, {r: [0.33, 0.4] for r in ("cpu", "memory", "network", "ssd")},
            {r: [0.5, 0.5] for r in ("cpu", "memory", "network", "ssd")})
        plan = plan_resource(Resource.MEMORY, 7.0, prediction)
        assert plan.guaranteed == pytest.approx(3.0)  # 0.4*7 = 2.8 -> 3 GB

    def test_guaranteed_never_exceeds_request(self):
        windows = TimeWindowConfig(24)
        prediction = make_prediction(
            windows, {r: [1.0] for r in ("cpu", "memory", "network", "ssd")},
            {r: [1.0] for r in ("cpu", "memory", "network", "ssd")})
        plan = plan_resource(Resource.MEMORY, 16.0, prediction)
        assert plan.guaranteed <= 16.0

    def test_fungible_resource_uses_window_demand(self):
        windows = TimeWindowConfig(8)
        prediction = make_prediction(
            windows, {r: [0.2, 0.6, 0.4] for r in ("cpu", "memory", "network", "ssd")},
            {r: [0.25, 0.75, 0.5] for r in ("cpu", "memory", "network", "ssd")})
        plan = plan_resource(Resource.CPU, 8.0, prediction)
        np.testing.assert_allclose(plan.window_demand, [2.0, 6.0, 4.0])
        assert plan.guaranteed == pytest.approx(1.6)  # smallest window percentile


class TestServerAggregation:
    def test_figure16_multiplexing_example(self):
        """Two 32 GB VMs with complementary VA demands (Figure 16b)."""
        windows = TimeWindowConfig(8)
        vm1 = make_prediction(
            windows,
            {r: [0.5, 0.25, 0.5] for r in ("cpu", "memory", "network", "ssd")},
            {r: [0.875, 0.25, 0.6875] for r in ("cpu", "memory", "network", "ssd")})
        vm2 = make_prediction(
            windows,
            {r: [0.25, 0.375, 0.25] for r in ("cpu", "memory", "network", "ssd")},
            {r: [0.25, 0.75, 0.5] for r in ("cpu", "memory", "network", "ssd")})
        alloc = {r: 32.0 for r in ALL_RESOURCES}
        plan1 = plan_vm("cvm1", alloc, vm1)
        plan2 = plan_vm("cvm2", alloc, vm2)

        pa = guaranteed_memory([plan1, plan2])
        va = multiplexed_oversubscribed_memory([plan1, plan2])
        naive_va = unmultiplexed_oversubscribed_memory([plan1, plan2])
        # Guaranteed = 16 + 12 = 28 GB; multiplexed VA < sum of peaks.
        assert pa == pytest.approx(28.0)
        assert va <= naive_va
        # Total backing fits the 48 GB server of the example.
        assert pa + va <= 48.0 + 1e-9
        backing = server_memory_backing([plan1, plan2])
        assert backing["pa_backing_gb"] == pytest.approx(pa)
        assert backing["va_backing_gb"] == pytest.approx(va)

    def test_multiplexing_empty_is_zero(self):
        assert multiplexed_oversubscribed_memory([]) == 0.0
        assert guaranteed_memory([]) == 0.0

    def test_scheduling_vector_has_extra_dimension_for_memory(self):
        windows = TimeWindowConfig(4)
        prediction = make_prediction(
            windows, {r: [0.3] * 6 for r in ("cpu", "memory", "network", "ssd")},
            {r: [0.5] * 6 for r in ("cpu", "memory", "network", "ssd")})
        plan = plan_vm("vm", {r: 16.0 for r in ALL_RESOURCES}, prediction)
        vector = scheduling_vector(plan, Resource.MEMORY)
        assert vector.shape == (7,)
        assert vector[-1] == plan.plans[Resource.MEMORY].guaranteed
        cpu_vector = scheduling_vector(plan, Resource.CPU)
        assert cpu_vector[-1] == 0.0


class TestCoachVM:
    def _plan(self, windows=TimeWindowConfig(4)):
        prediction = make_prediction(
            windows, {r: [0.5] * windows.windows_per_day
                      for r in ("cpu", "memory", "network", "ssd")},
            {r: [0.75] * windows.windows_per_day
             for r in ("cpu", "memory", "network", "ssd")})
        return plan_vm("vm-1", {r: 16.0 for r in ALL_RESOURCES}, prediction)

    def _record(self):
        config = VM_CATALOG["D4_v5"]
        return VMRecord(vm_id="vm-1", subscription_id="s", config=config,
                        cluster_id="C1", start_slot=0, end_slot=10,
                        utilization={r: UtilizationSeries([0.5] * 10, 0)
                                     for r in ALL_RESOURCES})

    def test_from_plan_splits_memory(self):
        coach_vm = CoachVM.from_plan(self._record(), self._plan(), 0.7)
        assert coach_vm.memory.pa_gb == pytest.approx(8.0)
        assert coach_vm.memory.va_gb == pytest.approx(8.0)
        assert coach_vm.memory.va_backed_gb == pytest.approx(5.6)
        assert coach_vm.is_oversubscribed

    def test_fully_guaranteed_vm(self):
        coach_vm = CoachVM.fully_guaranteed(self._record(), self._plan())
        assert coach_vm.memory.va_gb == 0.0
        assert not coach_vm.is_oversubscribed

    def test_trim_and_back_accounting(self):
        coach_vm = CoachVM.from_plan(self._record(), self._plan(), 1.0)
        coach_vm.update_cold_memory(demand_gb=10.0)
        assert coach_vm.cold_memory_gb == pytest.approx(6.0)
        freed = coach_vm.trim(4.0)
        assert freed == pytest.approx(4.0)
        assert coach_vm.memory.va_backed_gb == pytest.approx(4.0)
        added = coach_vm.back_va(10.0)
        assert added == pytest.approx(4.0)  # capped at the VA size

    def test_unbacked_demand(self):
        coach_vm = CoachVM.from_plan(self._record(), self._plan(), 0.0)
        assert coach_vm.unbacked_demand_gb(12.0) == pytest.approx(4.0)
        assert coach_vm.unbacked_demand_gb(6.0) == 0.0

    def test_oversubscription_rate(self):
        coach_vm = CoachVM.from_plan(self._record(), self._plan())
        assert coach_vm.oversubscription_rate(Resource.MEMORY) == pytest.approx(0.5)

    def test_invalid_memory_split_rejected(self):
        with pytest.raises(ValueError):
            MemorySplit(pa_gb=4.0, va_gb=2.0, va_backed_gb=3.0).validate()


@settings(max_examples=40, deadline=None)
@given(
    percentiles=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=6, max_size=6),
    maxima=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=6, max_size=6),
    allocated=st.floats(min_value=1.0, max_value=512.0),
)
def test_plan_invariants_hold_for_any_prediction(percentiles, maxima, allocated):
    """Eq. 1-2 invariants: PA <= request, VA demand >= 0, demand <= request."""
    windows = TimeWindowConfig(4)
    prediction = make_prediction(
        windows,
        {r: percentiles for r in ("cpu", "memory", "network", "ssd")},
        {r: maxima for r in ("cpu", "memory", "network", "ssd")},
    ).clipped()
    plan = plan_vm("vm", {r: allocated for r in ALL_RESOURCES}, prediction)
    for resource in ALL_RESOURCES:
        rp = plan.plans[resource]
        assert rp.guaranteed <= rp.requested + 1e-6
        assert np.all(rp.window_oversubscribed >= -1e-9)
        assert np.all(rp.window_demand <= rp.requested + 1e-6)


@settings(max_examples=40, deadline=None)
@given(
    n_vms=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_multiplexed_backing_never_exceeds_naive_sum(n_vms, seed):
    """Eq. 4 saves memory relative to summing per-VM peaks (or ties)."""
    rng = np.random.default_rng(seed)
    windows = TimeWindowConfig(4)
    plans = []
    for i in range(n_vms):
        pct = rng.uniform(0, 0.8, windows.windows_per_day)
        mx = np.minimum(1.0, pct + rng.uniform(0, 0.3, windows.windows_per_day))
        prediction = make_prediction(
            windows, {r: pct for r in ("cpu", "memory", "network", "ssd")},
            {r: mx for r in ("cpu", "memory", "network", "ssd")})
        plans.append(plan_vm(f"vm-{i}", {r: 32.0 for r in ALL_RESOURCES}, prediction))
    assert (multiplexed_oversubscribed_memory(plans)
            <= unmultiplexed_oversubscribed_memory(plans) + 1e-9)
