"""Tests for the Section-2 characterization analyses."""

import numpy as np
import pytest

from repro.characterization import (
    cluster_savings,
    fraction_consistent,
    group_predictability,
    measure_stranding,
    median_vm_shape,
    peak_consistency_cdf,
    peaks_and_valleys_by_window,
    predictability_summary,
    resource_hours_by_duration,
    resource_hours_by_size,
    savings_distribution,
    stranding_by_scenario,
    utilization_scatter,
    utilization_summary,
    vm_week_profile,
)
from repro.core.resources import Resource
from repro.trace.timeseries import SLOTS_PER_DAY


class TestAllocatedCharacterization:
    def test_duration_shares_are_monotone(self, small_trace):
        rows = resource_hours_by_duration(small_trace)
        # Larger thresholds can only reduce the share of VMs and hours.
        assert rows["vms_pct"] == sorted(rows["vms_pct"], reverse=True)
        assert rows["cpu_hours_pct"] == sorted(rows["cpu_hours_pct"], reverse=True)

    def test_long_running_vms_dominate_hours(self, small_trace):
        rows = resource_hours_by_duration(small_trace)
        one_day_index = rows["threshold_hours"].index(24)
        assert rows["cpu_hours_pct"][one_day_index] > 85.0
        assert rows["vms_pct"][one_day_index] < 50.0

    def test_size_shares(self, small_trace):
        rows = resource_hours_by_size(small_trace)
        assert rows["cores"]["resource_hours_pct"][0] == pytest.approx(100.0)
        assert rows["memory"]["vms_pct"] == sorted(rows["memory"]["vms_pct"], reverse=True)

    def test_median_shape(self, small_trace):
        shape = median_vm_shape(small_trace)
        assert shape["median_cores"] >= 1
        assert shape["n_vms"] == len(small_trace)


class TestStranding:
    def test_scenarios(self, tiny_trace):
        results = stranding_by_scenario(tiny_trace, sample_every_slots=SLOTS_PER_DAY)
        assert set(results) == {"no-oversub", "cpu-only", "cpu+memory"}
        for result in results.values():
            for fraction in result.stranded_fraction.values():
                assert 0.0 <= fraction <= 1.0
            assert sum(result.bottleneck_fraction.values()) == pytest.approx(1.0)

    def test_oversubscription_reduces_non_cpu_stranding(self, small_trace):
        base = measure_stranding(small_trace, "no-oversub",
                                 sample_every_slots=SLOTS_PER_DAY)
        cpu_only = measure_stranding(small_trace, "cpu-only",
                                     sample_every_slots=SLOTS_PER_DAY)
        # Freeing underutilized CPU lets the fill consume more of the other
        # resources, so their stranding cannot increase.
        assert (cpu_only.stranded_fraction[Resource.MEMORY]
                <= base.stranded_fraction[Resource.MEMORY] + 1e-9)

    def test_unknown_scenario_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            measure_stranding(tiny_trace, "network-only")

    def test_cluster_hardware_drives_bottleneck(self, small_trace):
        result = measure_stranding(small_trace, "no-oversub",
                                   sample_every_slots=SLOTS_PER_DAY,
                                   clusters=["C1", "C4"])
        c1 = result.per_cluster_bottleneck["C1"]
        c4 = result.per_cluster_bottleneck["C4"]
        # C1 is memory-rich (CPU binds); C4 is core-rich (memory binds).
        assert c1[Resource.CPU] >= c4[Resource.CPU]
        assert c4[Resource.MEMORY] >= c1[Resource.MEMORY]


class TestUnderutilization:
    def test_scatter_fields_aligned(self, small_trace):
        scatter = utilization_scatter(small_trace)
        n = len(scatter["vm_id"])
        assert n > 0
        assert all(len(v) == n for v in scatter.values())

    def test_summary_reflects_paper_shape(self, small_trace):
        summary = utilization_summary(small_trace)
        assert summary["fraction_cpu_mean_below_50"] > 0.5
        assert summary["median_memory_range"] < summary["median_cpu_range"]


class TestTemporal:
    def test_week_profile_fields(self, small_trace, long_running_vm):
        profile = vm_week_profile(long_running_vm)
        assert profile["utilization"].size == long_running_vm.lifetime_slots
        assert profile["lifetime_window_max"].shape == (3,)

    def test_peaks_distribution_shapes(self, small_trace):
        result = peaks_and_valleys_by_window(small_trace, Resource.CPU)
        assert result["peaks"].shape == (7, 6)
        assert result["valleys"].shape == (7, 6)
        assert np.all(result["none"] <= 1.0)

    def test_most_vms_have_cpu_peaks(self, small_trace):
        result = peaks_and_valleys_by_window(small_trace, Resource.CPU)
        # The paper reports <10% of VMs without CPU peaks; allow some slack.
        assert result["none"].mean() < 0.35

    def test_consistency_cdf_monotone(self, small_trace):
        cdfs = peak_consistency_cdf(small_trace, Resource.CPU, [4, 24])
        for rows in cdfs.values():
            assert rows["cdf"] == sorted(rows["cdf"])
            assert rows["cdf"][-1] <= 1.0

    def test_memory_more_consistent_than_cpu(self, small_trace):
        cpu = fraction_consistent(small_trace, Resource.CPU, tolerance=0.05)
        mem = fraction_consistent(small_trace, Resource.MEMORY, tolerance=0.05)
        assert mem >= cpu


class TestSavings:
    def test_finer_windows_save_more(self, small_trace):
        savings = cluster_savings(small_trace, window_hours_sweep=[24, 4, 1])
        assert savings["24x1hr"]["cpu"] >= savings["6x4hr"]["cpu"] >= savings["1x24hr"]["cpu"]
        assert savings["ideal"]["cpu"] >= savings["24x1hr"]["cpu"] - 1e-9

    def test_cpu_savings_exceed_memory_savings(self, small_trace):
        savings = cluster_savings(small_trace, window_hours_sweep=[4])
        assert savings["6x4hr"]["cpu"] >= savings["6x4hr"]["memory"]

    def test_distribution_statistics_ordered(self, small_trace):
        dist = savings_distribution(small_trace, window_hours_sweep=[4])
        stats = dist["6x4hr"]["cpu"]
        assert stats["min"] <= stats["p25"] <= stats["median"] <= stats["p75"] <= stats["max"]


class TestPredictability:
    def test_groupings_produce_aligned_lists(self, small_trace):
        detail = group_predictability(small_trace)
        for rows in detail.values():
            n = len(rows["matching_vms"])
            assert len(rows["peak_range_pct"]) == n
            assert len(rows["prediction_error_pct"]) == n

    def test_configuration_grouping_has_most_matches(self, small_trace):
        summary = predictability_summary(small_trace)
        assert (summary["configuration"]["median_matching_vms"]
                >= summary["subscription+configuration"]["median_matching_vms"])

    def test_combined_grouping_has_smallest_range(self, small_trace):
        summary = predictability_summary(small_trace)
        assert (summary["subscription+configuration"]["median_peak_range_pct"]
                <= summary["configuration"]["median_peak_range_pct"] + 1e-9)

    def test_memory_reasonably_predictable(self, small_trace):
        summary = predictability_summary(small_trace, Resource.MEMORY)
        assert summary["subscription+configuration"]["fraction_within_tolerance"] > 0.3
