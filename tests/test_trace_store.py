"""Columnar trace store: views, filters, persistence, shared memory.

Three contracts are pinned here:

* **Equivalence** -- a store-backed trace exposes the same VMs, in the same
  order, with byte-identical telemetry as the object trace it came from,
  and every vectorized filter selects exactly what the seed's Python loop
  selects.  Replay and characterization on top of it are bitwise identical.
* **Persistence** -- save -> open round-trips everything (dense and mmap),
  and the shared-memory export/attach/unlink lifecycle never leaks a
  segment, including when the attaching worker dies without cleanup.
* **Validation** -- non-uniform telemetry and duplicate VM ids fail loudly
  at construction, not silently downstream.
"""

import os
from dataclasses import replace
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

import repro.simulator.sweep as sweep_module
from repro.core.policy import COACH_POLICY, NO_OVERSUBSCRIPTION_POLICY
from repro.core.resources import Resource
from repro.experiments.figures import figure02_duration
from repro.simulator import (
    PolicySweepError,
    SimulationConfig,
    simulate_policy,
    sweep_policies,
)
from repro.trace.store import STORE_FORMAT_VERSION, TraceStore
from repro.trace.timeseries import UtilizationSeries
from repro.trace.trace import Trace
from repro.trace.vm import VM_CATALOG, VMRecord


def segment_is_gone(name: str) -> bool:
    try:
        segment = SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


@pytest.fixture(scope="module")
def store(tiny_trace):
    return TraceStore.from_trace(tiny_trace)


@pytest.fixture(scope="module")
def store_trace(store):
    return store.as_trace()


class TestColumnarViews:
    def test_row_views_match_source_records(self, tiny_trace, store_trace):
        assert len(store_trace) == len(tiny_trace)
        for vm, view in zip(tiny_trace.vms, store_trace.vms):
            assert view.vm_id == vm.vm_id
            assert view.subscription_id == vm.subscription_id
            assert view.config == vm.config
            assert view.cluster_id == vm.cluster_id
            assert view.start_slot == vm.start_slot
            assert view.end_slot == vm.end_slot
            assert view.offering == vm.offering
            assert view.subscription_type == vm.subscription_type
            for resource, series in vm.utilization.items():
                view_series = view.utilization[resource]
                assert view_series.start_slot == series.start_slot
                np.testing.assert_array_equal(view_series.values, series.values)

    def test_views_share_the_flat_buffer(self, store, store_trace):
        """Telemetry is not copied: every series is a slice of the buffer."""
        for view in store_trace.vms[:20]:
            for resource, series in view.utilization.items():
                assert series.values.base is store.util[resource]

    def test_from_trace_preserves_dtype_by_default(self, store):
        assert store.util_dtype == np.dtype(np.float64)

    def test_float32_dtype_option(self, tiny_trace):
        compact = TraceStore.from_trace(tiny_trace, util_dtype=np.float32)
        assert compact.util_dtype == np.dtype(np.float32)
        assert compact.util_nbytes * 2 == TraceStore.from_trace(tiny_trace).util_nbytes

    def test_offsets_are_canonical(self, store):
        offsets = store.offsets
        assert offsets.shape == (len(store) + 1,)
        assert offsets[0] == 0
        np.testing.assert_array_equal(np.diff(offsets), store.row_length)
        for buffer in store.util.values():
            assert buffer.size == offsets[-1]

    def test_non_uniform_resource_set_rejected(self, tiny_trace):
        vms = [tiny_trace.vms[0], tiny_trace.vms[1]]
        stripped = VMRecord(
            vm_id="stripped", subscription_id="s", config=vms[0].config,
            cluster_id=vms[0].cluster_id, start_slot=vms[0].start_slot,
            end_slot=vms[0].end_slot,
            utilization={Resource.CPU: vms[0].utilization[Resource.CPU]})
        broken = Trace(vms=vms + [stripped], fleet=tiny_trace.fleet,
                       n_slots=tiny_trace.n_slots)
        with pytest.raises(ValueError, match="uniform resource set"):
            TraceStore.from_trace(broken)

    def test_unequal_series_coverage_rejected(self, tiny_trace):
        source = tiny_trace.vms[0]
        utilization = dict(source.utilization)
        cpu = utilization[Resource.CPU]
        utilization[Resource.MEMORY] = UtilizationSeries(
            cpu.values[:-1] if len(cpu) > 1 else cpu.values, cpu.start_slot + 1)
        lopsided = VMRecord(
            vm_id="lopsided", subscription_id="s", config=source.config,
            cluster_id=source.cluster_id, start_slot=source.start_slot,
            end_slot=source.end_slot, utilization=utilization)
        broken = Trace(vms=[lopsided], fleet=tiny_trace.fleet,
                       n_slots=tiny_trace.n_slots)
        with pytest.raises(ValueError, match="equal coverage"):
            TraceStore.from_trace(broken)

    def test_duplicate_ids_rejected(self, tiny_trace):
        store = TraceStore.from_trace(tiny_trace)
        store.vm_ids[1] = store.vm_ids[0]
        with pytest.raises(ValueError, match="duplicate VM id"):
            TraceStore.from_trace(store.as_trace())


class TestVectorizedFilters:
    def test_alive_at_matches_object_loop(self, tiny_trace, store_trace):
        for slot in (0, 100, tiny_trace.n_slots // 2, tiny_trace.n_slots - 1):
            expected = [vm.vm_id for vm in tiny_trace.alive_at(slot)]
            assert [vm.vm_id for vm in store_trace.alive_at(slot)] == expected

    def test_alive_at_returns_the_trace_own_records(self, store_trace):
        vm = store_trace.vms[0]
        mid = (vm.start_slot + vm.end_slot) // 2
        assert any(found is vm for found in store_trace.alive_at(mid))

    def test_arriving_in_matches_object_loop(self, tiny_trace, store_trace):
        windows = [(0, 1), (100, 500), (0, tiny_trace.n_slots)]
        for start, end in windows:
            expected = [vm.vm_id for vm in tiny_trace.arriving_in(start, end)]
            assert [vm.vm_id
                    for vm in store_trace.arriving_in(start, end)] == expected

    def test_long_running_matches_object_loop(self, tiny_trace, store_trace):
        for min_days in (0.5, 1.0, 3.0):
            expected = [vm.vm_id for vm in tiny_trace.long_running(min_days)]
            selected = store_trace.long_running(min_days)
            assert [vm.vm_id for vm in selected] == expected
            # The selection stays store-backed, so the next filter is
            # vectorized too.
            assert selected.store is not None

    def test_in_cluster_matches_object_loop(self, tiny_trace, store_trace):
        for cluster_id in tiny_trace.cluster_ids():
            expected = [vm.vm_id for vm in tiny_trace.in_cluster(cluster_id)]
            assert [vm.vm_id
                    for vm in store_trace.in_cluster(cluster_id)] == expected

    def test_in_cluster_unknown_id_is_empty(self, store_trace):
        assert len(store_trace.in_cluster("no-such-cluster")) == 0

    def test_split_at_matches_object_loop(self, tiny_trace, store_trace):
        split = tiny_trace.n_slots // 3
        before_obj, after_obj = tiny_trace.split_at(split)
        before, after = store_trace.split_at(split)
        assert [vm.vm_id for vm in before] == [vm.vm_id for vm in before_obj]
        assert [vm.vm_id for vm in after] == [vm.vm_id for vm in after_obj]

    def test_generic_filter_matches_and_keeps_store(self, tiny_trace, store_trace):
        predicate = lambda vm: vm.config.cores >= 4
        expected = [vm.vm_id for vm in tiny_trace.filter(predicate)]
        filtered = store_trace.filter(predicate)
        assert [vm.vm_id for vm in filtered] == expected
        assert filtered.store is not None
        # ... and the selection's telemetry still views the parent buffer.
        if len(filtered):
            series = filtered.vms[0].utilization[Resource.CPU]
            assert series.values.base is store_trace.store.util[Resource.CPU]

    def test_vm_by_id_o1_index(self, tiny_trace, store_trace):
        vm = tiny_trace.vms[len(tiny_trace.vms) // 2]
        assert store_trace.vm_by_id(vm.vm_id).vm_id == vm.vm_id
        with pytest.raises(KeyError):
            store_trace.vm_by_id("vm-does-not-exist")

    def test_duplicate_id_rejected_at_trace_construction(self, tiny_trace):
        vm = tiny_trace.vms[0]
        with pytest.raises(ValueError, match="duplicate VM id"):
            Trace(vms=[vm, vm], fleet=tiny_trace.fleet,
                  n_slots=tiny_trace.n_slots)


class TestDifferential:
    """Store-backed results pinned bitwise against the object-based path."""

    def test_replay_bitwise_identical(self, tiny_trace, store_trace):
        config = SimulationConfig(clusters=tiny_trace.cluster_ids()[:2],
                                  n_estimators=2)
        reference = simulate_policy(tiny_trace, COACH_POLICY, config)
        columnar = simulate_policy(store_trace, COACH_POLICY, config)
        assert columnar == reference

    def test_characterization_bitwise_identical(self, tiny_trace, store_trace):
        assert store_trace.summary() == tiny_trace.summary()
        assert (store_trace.total_resource_hours(Resource.CPU)
                == tiny_trace.total_resource_hours(Resource.CPU))
        assert figure02_duration(store_trace) == figure02_duration(tiny_trace)

    def test_mmap_replay_bitwise_identical(self, tiny_trace, store, tmp_path):
        config = SimulationConfig(clusters=tiny_trace.cluster_ids()[:2],
                                  n_estimators=2)
        reference = simulate_policy(tiny_trace, COACH_POLICY, config)
        store.save(tmp_path / "store")
        mapped = TraceStore.open(tmp_path / "store", mmap=True)
        streamed = simulate_policy(
            mapped.as_trace(), COACH_POLICY,
            replace(config, replay_chunk_slots=113))
        assert streamed == reference


class TestPersistence:
    def test_save_open_round_trip(self, tiny_trace, store, tmp_path):
        store.save(tmp_path / "store")
        loaded = TraceStore.open(tmp_path / "store")
        self._assert_stores_equal(loaded, store)
        reloaded = loaded.as_trace()
        assert [vm.vm_id for vm in reloaded] == [vm.vm_id for vm in tiny_trace]
        assert reloaded.fleet.cluster_ids() == tiny_trace.fleet.cluster_ids()
        assert reloaded.subscriptions == tiny_trace.subscriptions
        sample = reloaded.vms[0]
        source = tiny_trace.vms[0]
        assert sample.config == source.config
        assert sample.offering == source.offering
        assert sample.subscription_type == source.subscription_type

    def test_open_mmap_is_lazy_and_equal(self, store, tmp_path):
        store.save(tmp_path / "store")
        mapped = TraceStore.open(tmp_path / "store", mmap=True)
        for resource, buffer in mapped.util.items():
            assert isinstance(buffer, np.memmap)
            np.testing.assert_array_equal(np.asarray(buffer),
                                          store.util[resource])

    def test_float32_round_trip_preserves_dtype(self, tiny_trace, tmp_path):
        compact = TraceStore.from_trace(tiny_trace, util_dtype=np.float32)
        compact.save(tmp_path / "store32")
        loaded = TraceStore.open(tmp_path / "store32")
        assert loaded.util_dtype == np.dtype(np.float32)
        for resource, buffer in loaded.util.items():
            np.testing.assert_array_equal(buffer, compact.util[resource])

    def test_selection_save_compacts(self, store_trace, tmp_path):
        selection = store_trace.long_running()
        selection.store.save(tmp_path / "selection")
        loaded = TraceStore.open(tmp_path / "selection")
        assert len(loaded) == len(selection)
        reloaded = loaded.as_trace()
        for vm, view in zip(selection.vms, reloaded.vms):
            assert vm.vm_id == view.vm_id
            np.testing.assert_array_equal(
                view.utilization[Resource.CPU].values,
                vm.utilization[Resource.CPU].values)

    def test_unknown_format_version_rejected(self, store, tmp_path):
        store.save(tmp_path / "store")
        meta = (tmp_path / "store" / "meta.json")
        meta.write_text(meta.read_text().replace(
            f'"format_version": {STORE_FORMAT_VERSION}',
            '"format_version": 99'))
        with pytest.raises(ValueError, match="format version"):
            TraceStore.open(tmp_path / "store")

    def test_reordered_enum_tables_rejected(self, store, tmp_path):
        """A store written with different enum code tables must not be
        silently re-labelled through the current ones."""
        store.save(tmp_path / "store")
        meta = (tmp_path / "store" / "meta.json")
        meta.write_text(meta.read_text().replace('"iaas"', '"serverless"', 1))
        with pytest.raises(ValueError, match="offering_values"):
            TraceStore.open(tmp_path / "store")

    @staticmethod
    def _assert_stores_equal(loaded: TraceStore, original: TraceStore) -> None:
        assert len(loaded) == len(original)
        assert loaded.n_slots == original.n_slots
        assert loaded.cluster_ids == original.cluster_ids
        assert loaded.configs == original.configs
        np.testing.assert_array_equal(loaded.start_slot, original.start_slot)
        np.testing.assert_array_equal(loaded.end_slot, original.end_slot)
        np.testing.assert_array_equal(loaded.offsets, original.offsets)
        assert loaded.vm_ids.tolist() == original.vm_ids.tolist()
        assert loaded.server_ids.tolist() == original.server_ids.tolist()
        for resource, buffer in original.util.items():
            np.testing.assert_array_equal(loaded.util[resource], buffer)


def _attach_and_crash(handle) -> None:
    """Child entry point: attach the shared store, then die uncleanly."""
    attached = handle.attach()
    assert attached.util_nbytes > 0
    os._exit(1)


class TestSharedMemory:
    def test_export_attach_round_trip(self, store):
        handle = store.export_shared()
        try:
            attached = handle.attach()
            for resource, buffer in store.util.items():
                np.testing.assert_array_equal(
                    np.asarray(attached.util[resource]), buffer)
            trace = attached.as_trace()
            assert len(trace) == len(store)
            attached.close_shared()
        finally:
            handle.unlink()
        assert all(segment_is_gone(name) for name in handle.segment_names)

    def test_unlink_is_idempotent(self, store):
        handle = store.export_shared()
        handle.unlink()
        handle.unlink()
        assert all(segment_is_gone(name) for name in handle.segment_names)

    def test_unlink_after_attached_use_is_still_a_noop_for_workers(self, store):
        """REP002's model: the owner's unlink is the single cleanup point;
        a second unlink after a worker attached and closed stays a no-op."""
        handle = store.export_shared()
        attached = handle.attach()
        attached.close_shared()
        handle.unlink()
        handle.unlink()
        assert all(segment_is_gone(name) for name in handle.segment_names)

    def test_attach_after_owner_unlink_raises_cleanly(self, store):
        """Attaching a handle whose owner already unlinked must fail with
        FileNotFoundError (no half-built store, no segment resurrection)."""
        handle = store.export_shared()
        handle.unlink()
        with pytest.raises(FileNotFoundError):
            handle.attach()
        # The failed attach must not have re-created anything.
        assert all(segment_is_gone(name) for name in handle.segment_names)

    def test_close_shared_is_idempotent(self, store):
        handle = store.export_shared()
        try:
            attached = handle.attach()
            attached.close_shared()
            attached.close_shared()
        finally:
            handle.unlink()
        assert all(segment_is_gone(name) for name in handle.segment_names)

    def test_worker_crash_does_not_leak_segments(self, store):
        """A worker dying mid-attach must not leak: the exporting process
        owns the segments and its unlink is the single cleanup point."""
        handle = store.export_shared()
        try:
            worker = get_context("spawn").Process(
                target=_attach_and_crash, args=(handle,))
            worker.start()
            worker.join(timeout=60)
            assert worker.exitcode == 1
        finally:
            handle.unlink()
        assert all(segment_is_gone(name) for name in handle.segment_names)


class TestSweepTransports:
    @pytest.fixture(scope="class")
    def sweep_config(self, tiny_trace):
        return SimulationConfig(clusters=tiny_trace.cluster_ids()[:2],
                                n_estimators=2)

    def test_transports_bitwise_identical(self, tiny_trace, store_trace,
                                          sweep_config):
        policies = {"coach": COACH_POLICY}
        serial = sweep_policies(tiny_trace, policies, sweep_config)
        shared = sweep_policies(
            store_trace, policies,
            replace(sweep_config, sweep_parallelism=2,
                    sweep_trace_transport="shared"))
        pickled = sweep_policies(
            tiny_trace, policies,
            replace(sweep_config, sweep_parallelism=2,
                    sweep_trace_transport="pickle"))
        assert serial == shared == pickled

    def test_unknown_transport_fails_fast(self, tiny_trace, sweep_config):
        with pytest.raises(ValueError, match="sweep trace transport"):
            sweep_policies(tiny_trace, {"coach": COACH_POLICY},
                           replace(sweep_config, sweep_parallelism=2,
                                   sweep_trace_transport="carrier-pigeon"))

    def test_failing_policy_unlinks_segments(self, store_trace, sweep_config,
                                             monkeypatch):
        """PolicySweepError paths must still unlink the exported segments."""
        captured = {}
        original = sweep_module._export_shared_trace

        def spy(trace, config):
            handle = original(trace, config)
            captured["names"] = handle.segment_names if handle else []
            return handle

        monkeypatch.setattr(sweep_module, "_export_shared_trace", spy)
        broken = COACH_POLICY.with_percentile(-5.0)
        with pytest.raises(PolicySweepError):
            sweep_policies(store_trace,
                           {"broken": broken, "coach": COACH_POLICY},
                           replace(sweep_config, sweep_parallelism=2,
                                   sweep_trace_transport="shared"))
        assert captured["names"], "the shared transport should have exported"
        assert all(segment_is_gone(name) for name in captured["names"])

    def test_successful_sweep_unlinks_segments(self, store_trace, sweep_config,
                                               monkeypatch):
        captured = {}
        original = sweep_module._export_shared_trace

        def spy(trace, config):
            handle = original(trace, config)
            captured["names"] = handle.segment_names if handle else []
            return handle

        monkeypatch.setattr(sweep_module, "_export_shared_trace", spy)
        results = sweep_policies(
            store_trace,
            {"none": NO_OVERSUBSCRIPTION_POLICY, "coach": COACH_POLICY},
            replace(sweep_config, sweep_parallelism=2))
        assert set(results) == {"none", "coach"}
        assert captured["names"], "auto transport should share a store-backed trace"
        assert all(segment_is_gone(name) for name in captured["names"])


class TestMiscStore:
    def test_alloc_matrix_matches_configs(self, tiny_trace, store):
        alloc = store.alloc
        for i, vm in enumerate(tiny_trace.vms[:10]):
            assert alloc[i, 0] == vm.allocated(Resource.CPU)
            assert alloc[i, 1] == vm.allocated(Resource.MEMORY)

    def test_index_of_matches_order(self, store):
        for i in (0, len(store) // 2, len(store) - 1):
            assert store.index_of(store.vm_ids[i]) == i
        with pytest.raises(KeyError):
            store.index_of("nope")

    def test_select_rejects_repeated_indices(self, store):
        with pytest.raises(ValueError, match="unique"):
            store.select([0, 0])

    def test_select_accepts_boolean_mask(self, store):
        mask = store.long_running_mask()
        selected = store.select(mask)
        assert len(selected) == int(mask.sum())
        assert (selected.vm_ids.tolist()
                == store.vm_ids[np.nonzero(mask)[0]].tolist())
        with pytest.raises(ValueError, match="mask has shape"):
            store.select(mask[:-1])

    def test_empty_selection_round_trips(self, store_trace):
        empty = store_trace.filter(lambda vm: False)
        assert len(empty) == 0
        assert empty.store is not None
        assert len(empty.alive_at(0)) == 0

    def test_catalog_configs_deduplicated(self, store):
        assert len(store.configs) <= len(VM_CATALOG)
        assert len(set(store.configs)) == len(store.configs)


class TestUtilizationMatrix:
    """The scatter kernel vs the per-VM reference loop, bitwise."""

    @pytest.mark.parametrize("resource", [Resource.CPU, Resource.MEMORY])
    @pytest.mark.parametrize("absolute", [True, False])
    def test_scatter_matches_reference_loop(self, tiny_trace, store_trace,
                                            resource, absolute):
        got = store_trace.utilization_matrix(resource, absolute=absolute)
        expected = tiny_trace.utilization_matrix(resource, absolute=absolute)
        assert got.shape == expected.shape
        assert np.array_equal(got, expected)

    def test_cluster_filter_matches_reference_loop(self, tiny_trace, store_trace):
        cluster_id = tiny_trace.cluster_ids()[0]
        got = store_trace.utilization_matrix(Resource.CPU, cluster_id=cluster_id)
        expected = tiny_trace.utilization_matrix(Resource.CPU,
                                                 cluster_id=cluster_id)
        assert np.array_equal(got, expected)

    def test_float32_backend_stays_bitwise(self, tiny_trace):
        trace32 = TraceStore.from_trace(tiny_trace,
                                        util_dtype=np.float32).as_trace()
        got = trace32.utilization_matrix(Resource.CPU)
        # The reference twin is the same trace without the store: both paths
        # read the identical float32 samples, so the float64 output matrices
        # must match bitwise (the NEP50 scale-cast contract).
        expected = trace32.without_store().utilization_matrix(Resource.CPU)
        assert np.array_equal(got, expected)

    def test_aggregate_demand_matches_reference_loop(self, tiny_trace, store_trace):
        for cluster_id in (None, tiny_trace.cluster_ids()[1]):
            got = store_trace.aggregate_demand(Resource.MEMORY, cluster_id)
            expected = tiny_trace.aggregate_demand(Resource.MEMORY, cluster_id)
            assert np.array_equal(got, expected)

    def test_truncated_horizon_clips_series(self, store):
        # A horizon shorter than some series exercises the eff_len clipping.
        n_slots = max(int(store.start_slot.min()) + 1, 2)
        matrix = store.utilization_matrix(Resource.CPU, n_slots)
        assert matrix.shape == (len(store), n_slots)
        assert np.isfinite(matrix).all()

    def test_row_subset_scatter(self, store, store_trace):
        rows = np.arange(0, len(store), 3, dtype=np.intp)
        got = store.utilization_matrix(Resource.CPU, store_trace.n_slots,
                                       rows=rows)
        full = store.utilization_matrix(Resource.CPU, store_trace.n_slots)
        assert np.array_equal(got, full[rows])
