"""Streaming TraceStoreBuilder: byte-identity, edge cases, lifecycle.

The builder's contract has three parts, each pinned here:

* **Byte identity** -- for any append chunking (and for the generator's
  ``generate_to_store`` at any ``batch_vms``), the finalized directory is
  byte-for-byte what ``TraceStore.from_trace(trace).save(path)`` writes,
  so ``open(mmap=True)`` reads it unchanged and every downstream
  differential guarantee transfers for free.
* **Validation parity** -- the streaming path raises on exactly what the
  eager path raises on (duplicate ids, non-uniform resource sets, unequal
  series coverage), plus the documented streaming restriction (mixed
  source dtypes need an explicit ``util_dtype``).
* **Lifecycle** -- an abandoned builder leaves no partial directory
  behind, and a finalized/aborted builder refuses further appends.
"""

import numpy as np
import pytest

from repro.trace.generator import TraceGenerator, TraceGeneratorConfig
from repro.trace.store import TraceStore, TraceStoreBuilder
from repro.trace.trace import Trace
from repro.trace.vm import VMRecord


def build_streamed(trace, path, chunk):
    """Stream *trace* through a builder in appends of *chunk* VMs."""
    with TraceStoreBuilder(path, fleet=trace.fleet, n_slots=trace.n_slots,
                           subscriptions=trace.subscriptions) as builder:
        for i in range(0, len(trace.vms), chunk):
            builder.append_many(trace.vms[i:i + chunk])
    return path


def assert_dirs_byte_identical(reference, candidate):
    ref_names = sorted(p.name for p in reference.iterdir())
    assert ref_names == sorted(p.name for p in candidate.iterdir())
    for name in ref_names:
        assert (reference / name).read_bytes() == \
            (candidate / name).read_bytes(), f"{name} differs byte-wise"


def float32_clone(vm: VMRecord) -> VMRecord:
    """The same VM with float32 telemetry (``from_validated`` keeps dtype)."""
    from repro.trace.timeseries import UtilizationSeries
    clone = VMRecord(
        vm_id=vm.vm_id, subscription_id=vm.subscription_id, config=vm.config,
        cluster_id=vm.cluster_id, start_slot=vm.start_slot,
        end_slot=vm.end_slot, offering=vm.offering,
        subscription_type=vm.subscription_type, server_id=vm.server_id)
    clone.utilization = {
        resource: UtilizationSeries.from_validated(
            series.values.astype(np.float32), series.start_slot)
        for resource, series in vm.utilization.items()}
    return clone


@pytest.fixture(scope="module")
def eager_dir(tiny_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("eager") / "store"
    TraceStore.from_trace(tiny_trace).save(path)
    return path


class TestByteIdentity:
    @pytest.mark.parametrize("chunk", [1, 7, 1000])
    def test_any_chunking_matches_from_trace_save(self, tiny_trace, eager_dir,
                                                  tmp_path, chunk):
        streamed = build_streamed(tiny_trace, tmp_path / "streamed", chunk)
        assert_dirs_byte_identical(eager_dir, streamed)

    def test_streamed_store_opens_mmap(self, tiny_trace, tmp_path):
        streamed = build_streamed(tiny_trace, tmp_path / "streamed", 16)
        opened = TraceStore.open(streamed, mmap=True)
        assert len(opened) == len(tiny_trace.vms)
        assert opened.n_slots == tiny_trace.n_slots
        reference = TraceStore.from_trace(tiny_trace)
        for resource in reference.resources:
            assert np.array_equal(opened.util[resource],
                                  reference.util[resource])
        assert opened.vm_ids.tolist() == reference.vm_ids.tolist()
        assert np.array_equal(opened.offsets, reference.offsets)

    def test_generate_to_store_matches_eager_for_any_batch(self, tmp_path):
        config = TraceGeneratorConfig(n_vms=60, n_days=5, seed=13,
                                      n_subscriptions=10,
                                      servers_per_cluster=2)
        eager = tmp_path / "eager"
        trace = TraceGenerator(config).generate()
        TraceStore.from_trace(trace).save(eager)
        for batch_vms in (1, 17, 4096):
            out = tmp_path / f"stream-{batch_vms}"
            TraceGenerator(config).generate_to_store(out, batch_vms=batch_vms)
            assert_dirs_byte_identical(eager, out)

    def test_save_is_deterministic(self, tiny_trace, eager_dir, tmp_path):
        again = tmp_path / "again"
        TraceStore.from_trace(tiny_trace).save(again)
        assert_dirs_byte_identical(eager_dir, again)


class TestEdgeCases:
    def test_empty_trace(self, tiny_trace, tmp_path):
        empty = Trace(vms=[], fleet=tiny_trace.fleet, n_slots=288,
                      subscriptions={})
        eager = tmp_path / "eager"
        TraceStore.from_trace(empty).save(eager)
        streamed = tmp_path / "streamed"
        with TraceStoreBuilder(streamed, fleet=empty.fleet,
                               n_slots=empty.n_slots):
            pass
        assert_dirs_byte_identical(eager, streamed)
        opened = TraceStore.open(streamed)
        assert len(opened) == 0
        assert opened.util == {}
        assert opened.util_dtype == np.dtype(np.float64)

    def test_single_vm(self, tiny_trace, tmp_path):
        single = Trace(vms=tiny_trace.vms[:1], fleet=tiny_trace.fleet,
                       n_slots=tiny_trace.n_slots,
                       subscriptions=tiny_trace.subscriptions)
        eager = tmp_path / "eager"
        TraceStore.from_trace(single).save(eager)
        streamed = build_streamed(single, tmp_path / "streamed", 1)
        assert_dirs_byte_identical(eager, streamed)

    def test_float32_source_dtype_streams_unchanged(self, tiny_trace, tmp_path):
        vms = [float32_clone(vm) for vm in tiny_trace.vms[:12]]
        trace = Trace(vms=vms, fleet=tiny_trace.fleet,
                      n_slots=tiny_trace.n_slots,
                      subscriptions=tiny_trace.subscriptions)
        eager = tmp_path / "eager"
        TraceStore.from_trace(trace).save(eager)
        streamed = build_streamed(trace, tmp_path / "streamed", 5)
        assert_dirs_byte_identical(eager, streamed)
        assert TraceStore.open(streamed).util_dtype == np.dtype(np.float32)

    def test_util_dtype_cast_matches_eager_cast(self, tiny_trace, tmp_path):
        eager = tmp_path / "eager"
        TraceStore.from_trace(tiny_trace, util_dtype=np.float32).save(eager)
        streamed = tmp_path / "streamed"
        with TraceStoreBuilder(streamed, fleet=tiny_trace.fleet,
                               n_slots=tiny_trace.n_slots,
                               subscriptions=tiny_trace.subscriptions,
                               util_dtype=np.float32) as builder:
            builder.append_many(tiny_trace.vms)
        assert_dirs_byte_identical(eager, streamed)

    def test_mixed_source_dtype_raises_without_util_dtype(self, tiny_trace,
                                                          tmp_path):
        builder = TraceStoreBuilder(tmp_path / "store",
                                    fleet=tiny_trace.fleet,
                                    n_slots=tiny_trace.n_slots)
        builder.append(tiny_trace.vms[0])  # float64 fixes the stream dtype
        with pytest.raises(ValueError, match="pass util_dtype"):
            builder.append(float32_clone(tiny_trace.vms[1]))
        builder.abort()

    def test_non_uniform_resource_set_raises(self, tiny_trace, tmp_path):
        builder = TraceStoreBuilder(tmp_path / "store",
                                    fleet=tiny_trace.fleet,
                                    n_slots=tiny_trace.n_slots)
        builder.append(tiny_trace.vms[0])
        stripped = float32_clone(tiny_trace.vms[1])
        stripped.utilization = dict(
            list(tiny_trace.vms[1].utilization.items())[:1])
        with pytest.raises(ValueError, match="uniform resource set"):
            builder.append(stripped)
        builder.abort()

    def test_duplicate_vm_id_raises(self, tiny_trace, tmp_path):
        builder = TraceStoreBuilder(tmp_path / "store",
                                    fleet=tiny_trace.fleet,
                                    n_slots=tiny_trace.n_slots)
        builder.append(tiny_trace.vms[0])
        with pytest.raises(ValueError, match="duplicate VM id"):
            builder.append(tiny_trace.vms[0])
        builder.abort()


class TestLifecycle:
    def test_abandoned_builder_leaves_no_partial_directory(self, tiny_trace,
                                                           tmp_path):
        target = tmp_path / "store"
        builder = TraceStoreBuilder(target, fleet=tiny_trace.fleet,
                                    n_slots=tiny_trace.n_slots)
        builder.append_many(tiny_trace.vms[:5])
        builder.abort()
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_exception_in_context_aborts(self, tiny_trace, tmp_path):
        target = tmp_path / "store"
        with pytest.raises(RuntimeError, match="mid-ingest failure"):
            with TraceStoreBuilder(target, fleet=tiny_trace.fleet,
                                   n_slots=tiny_trace.n_slots) as builder:
                builder.append_many(tiny_trace.vms[:5])
                raise RuntimeError("mid-ingest failure")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_append_after_finalize_raises(self, tiny_trace, tmp_path):
        builder = TraceStoreBuilder(tmp_path / "store",
                                    fleet=tiny_trace.fleet,
                                    n_slots=tiny_trace.n_slots,
                                    subscriptions=tiny_trace.subscriptions)
        builder.append(tiny_trace.vms[0])
        builder.finalize()
        with pytest.raises(RuntimeError, match="already finalized"):
            builder.append(tiny_trace.vms[1])
        with pytest.raises(RuntimeError, match="already finalized"):
            builder.finalize()

    def test_abort_after_finalize_keeps_the_store(self, tiny_trace, tmp_path):
        target = tmp_path / "store"
        builder = TraceStoreBuilder(target, fleet=tiny_trace.fleet,
                                    n_slots=tiny_trace.n_slots)
        builder.append(tiny_trace.vms[0])
        builder.finalize()
        builder.abort()  # idempotent no-op after finalize
        assert TraceStore.open(target).n_vms == 1

    def test_builder_counters(self, tiny_trace, tmp_path):
        builder = TraceStoreBuilder(tmp_path / "store",
                                    fleet=tiny_trace.fleet,
                                    n_slots=tiny_trace.n_slots)
        builder.append_many(tiny_trace.vms[:4])
        assert builder.n_vms == 4
        assert builder.n_samples == sum(
            len(next(iter(vm.utilization.values())))
            for vm in tiny_trace.vms[:4])
        builder.abort()
