"""Tests for the from-scratch tree, forest, EWMA, LSTM, and bucket helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prediction.buckets import (
    BUCKET_WIDTH,
    bucket_centers,
    bucketize,
    bucketize_array,
    round_memory_up,
)
from repro.prediction.ewma import EWMAPredictor, ewma_series, one_step_errors
from repro.prediction.forest import RandomForestRegressor
from repro.prediction.lstm import LSTMConfig, LSTMPredictor, build_sequences
from repro.prediction.tree import DecisionTreeRegressor


class TestDecisionTree:
    def test_fits_simple_step_function(self):
        rng = np.random.default_rng(0)
        x = rng.random((300, 3))
        y = np.where(x[:, 0] > 0.5, 1.0, 0.0)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        predictions = tree.predict(x)
        assert np.mean(np.abs(predictions - y)) < 0.05

    def test_respects_max_depth(self):
        rng = np.random.default_rng(1)
        x = rng.random((200, 4))
        y = rng.random(200)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(2)
        x = rng.random((64, 2))
        y = rng.random(64)
        tree = DecisionTreeRegressor(min_samples_leaf=16).fit(x, y)
        leaf_sizes = [node.n_samples for node in tree._nodes if node.feature < 0]
        assert min(leaf_sizes) >= 16

    def test_constant_target_single_leaf(self):
        x = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 0.7)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.node_count == 1
        assert tree.predict([[5.0]])[0] == pytest.approx(0.7)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros(10), np.zeros(10))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((10, 2)), np.zeros(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_feature_importances_sum_to_one(self):
        rng = np.random.default_rng(3)
        x = rng.random((150, 5))
        y = x[:, 2] * 2.0
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        importances = tree.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        assert importances.argmax() == 2


class TestRandomForest:
    def test_forest_beats_noise_floor(self):
        rng = np.random.default_rng(4)
        x = rng.random((400, 6))
        y = 0.6 * x[:, 0] + 0.3 * (x[:, 1] > 0.5) + rng.normal(0, 0.02, 400)
        forest = RandomForestRegressor(n_estimators=12, random_state=0).fit(x, y)
        predictions = forest.predict(x)
        assert np.mean(np.abs(predictions - y)) < 0.08
        assert forest.oob_error_ is not None and forest.oob_error_ < 0.2

    def test_reproducible_with_seed(self):
        rng = np.random.default_rng(5)
        x = rng.random((100, 3))
        y = x[:, 0]
        a = RandomForestRegressor(n_estimators=5, random_state=11).fit(x, y).predict(x[:10])
        b = RandomForestRegressor(n_estimators=5, random_state=11).fit(x, y).predict(x[:10])
        np.testing.assert_allclose(a, b)

    def test_predict_quantile_is_conservative(self):
        rng = np.random.default_rng(6)
        x = rng.random((200, 3))
        y = x[:, 0] + rng.normal(0, 0.1, 200)
        forest = RandomForestRegressor(n_estimators=10, random_state=1).fit(x, y)
        mean_pred = forest.predict(x[:20])
        p90_pred = forest.predict_quantile(x[:20], 0.9)
        assert np.all(p90_pred >= mean_pred - 1e-9)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_model_size_estimate_positive(self):
        rng = np.random.default_rng(7)
        x = rng.random((50, 2))
        forest = RandomForestRegressor(n_estimators=3, random_state=0).fit(x, x[:, 0])
        assert forest.estimate_model_size_bytes() > 0


class TestEWMA:
    def test_converges_to_constant_signal(self):
        predictor = EWMAPredictor(alpha=0.5)
        for _ in range(20):
            predictor.update(0.6)
        assert predictor.predict() == pytest.approx(0.6, abs=1e-6)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=1.5)

    def test_predict_before_update_raises(self):
        with pytest.raises(RuntimeError):
            EWMAPredictor().predict()

    def test_low_error_on_stable_series(self):
        rng = np.random.default_rng(8)
        series = np.clip(0.5 + rng.normal(0, 0.01, 200), 0, 1)
        errors = one_step_errors(series, alpha=0.5)
        assert errors.mean() < 0.04

    def test_ewma_series_matches_online(self):
        values = np.array([0.2, 0.8, 0.4, 0.6])
        offline = ewma_series(values, alpha=0.5)
        predictor = EWMAPredictor(alpha=0.5)
        online = [predictor.update(v) for v in values]
        np.testing.assert_allclose(offline, online)


class TestLSTM:
    def test_learns_periodic_signal(self):
        rng = np.random.default_rng(9)
        series = np.clip(0.4 + 0.25 * np.sin(np.arange(300) / 10) + rng.normal(0, 0.01, 300), 0, 1)
        sequences, targets = build_sequences(series, 5)
        model = LSTMPredictor(LSTMConfig(epochs=50, seed=0))
        model.fit(sequences[:200], targets[:200])
        predictions = model.predict(sequences[200:])
        assert np.mean(np.abs(predictions - targets[200:])) < 0.08
        assert model.training_loss_[-1] < model.training_loss_[0]

    def test_output_bounded(self):
        model = LSTMPredictor(LSTMConfig(seed=1))
        sequence = np.random.default_rng(0).random((4, 5, 2))
        predictions = model.predict(sequence)
        assert np.all(predictions >= 0) and np.all(predictions <= 1)

    def test_shape_validation(self):
        model = LSTMPredictor()
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 3, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 5, 4)), np.zeros(10))

    def test_memory_footprint_small(self):
        # Section 4.5: each local predictor takes ~25 KB.
        model = LSTMPredictor()
        assert model.memory_bytes() < 64 * 1024

    def test_build_sequences_with_windowing(self):
        series = np.linspace(0, 1, 100)
        sequences, targets = build_sequences(series, sequence_length=5, window=4)
        assert sequences.shape[1:] == (5, 2)
        assert sequences.shape[0] == targets.shape[0] > 0


class TestBuckets:
    def test_paper_example(self):
        # 17.3% rounds up to 20%.
        assert bucketize(0.173) == pytest.approx(0.20)

    def test_exact_boundary_not_bumped(self):
        assert bucketize(0.20) == pytest.approx(0.20)

    def test_zero_and_one(self):
        assert bucketize(0.0) == 0.0
        assert bucketize(1.0) == 1.0
        assert bucketize(0.999) == 1.0

    def test_memory_rounding(self):
        assert round_memory_up(12.3) == 13.0
        assert round_memory_up(8.0) == 8.0
        assert round_memory_up(0.0) == 0.0

    def test_bucket_centers_cover_unit_interval(self):
        centers = bucket_centers()
        assert centers[0] == pytest.approx(BUCKET_WIDTH)
        assert centers[-1] == pytest.approx(1.0)
        assert len(centers) == 20

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bucketize(0.5, width=0)


@settings(max_examples=100, deadline=None)
@given(value=st.floats(min_value=0.0, max_value=1.0))
def test_bucketize_never_decreases_and_bounds_error(value):
    bucketed = bucketize(value)
    assert bucketed + 1e-9 >= value
    assert bucketed - value <= BUCKET_WIDTH + 1e-9
    assert 0.0 <= bucketed <= 1.0


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30))
def test_bucketize_array_matches_scalar(values):
    arr = bucketize_array(values)
    for scalar, vectorised in zip(values, arr):
        assert vectorised == pytest.approx(bucketize(scalar))
