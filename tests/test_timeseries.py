"""Tests for utilization time series and time-window statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.timeseries import (
    SLOTS_PER_DAY,
    SLOTS_PER_HOUR,
    TimeWindowConfig,
    UtilizationSeries,
    slots_for_days,
    slots_for_hours,
)


class TestTimeWindowConfig:
    def test_default_windows_per_day(self):
        assert TimeWindowConfig(4).windows_per_day == 6
        assert TimeWindowConfig(24).windows_per_day == 1
        assert TimeWindowConfig(1).windows_per_day == 24

    def test_invalid_window_length_rejected(self):
        with pytest.raises(ValueError):
            TimeWindowConfig(5)
        with pytest.raises(ValueError):
            TimeWindowConfig(0)

    def test_window_of_slot(self):
        config = TimeWindowConfig(8)
        assert config.window_of_slot(0) == 0
        assert config.window_of_slot(8 * SLOTS_PER_HOUR) == 1
        assert config.window_of_slot(SLOTS_PER_DAY + 1) == 0

    def test_labels(self):
        assert TimeWindowConfig(8).labels() == ["0-8hr", "8-16hr", "16-24hr"]


class TestUtilizationSeries:
    def test_basic_statistics(self):
        series = UtilizationSeries([0.1, 0.5, 0.9, 0.3], start_slot=10)
        assert series.maximum() == pytest.approx(0.9)
        assert series.minimum() == pytest.approx(0.1)
        assert series.mean() == pytest.approx(0.45)
        assert series.end_slot == 14

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            UtilizationSeries([0.5, 1.5])
        with pytest.raises(ValueError):
            UtilizationSeries([])

    def test_value_at_and_covers(self):
        series = UtilizationSeries([0.2, 0.4], start_slot=5)
        assert series.value_at(6) == pytest.approx(0.4)
        assert series.covers_slot(5)
        assert not series.covers_slot(7)
        with pytest.raises(IndexError):
            series.value_at(7)

    def test_window_max_per_day_shape(self):
        # Two full days of samples.
        values = np.linspace(0, 1, 2 * SLOTS_PER_DAY)
        series = UtilizationSeries(values, start_slot=0)
        config = TimeWindowConfig(6)
        per_day = series.window_max_per_day(config)
        assert per_day.shape == (2, 4)
        assert not np.isnan(per_day).any()
        # Monotonically increasing series: last window of last day has the max.
        assert per_day[-1, -1] == pytest.approx(1.0)

    def test_lifetime_window_max_tracks_busiest_day(self):
        # Day 0 quiet, day 1 busy in window 0 only.
        day0 = np.full(SLOTS_PER_DAY, 0.1)
        day1 = np.full(SLOTS_PER_DAY, 0.1)
        day1[:TimeWindowConfig(8).slots_per_window] = 0.8
        series = UtilizationSeries(np.concatenate([day0, day1]), start_slot=0)
        lifetime = series.lifetime_window_max(TimeWindowConfig(8))
        assert lifetime[0] == pytest.approx(0.8)
        assert lifetime[1] == pytest.approx(0.1)

    def test_partial_window_alignment(self):
        # Series starting mid-day still aligns windows to wall-clock hours.
        start = 10 * SLOTS_PER_HOUR
        series = UtilizationSeries(np.full(SLOTS_PER_HOUR * 6, 0.5), start_slot=start)
        per_day = series.window_max_per_day(TimeWindowConfig(8))
        # Covers windows 1 (8-16) and 2 (16-24) of day 0 only.
        assert per_day.shape == (1, 3)
        assert np.isnan(per_day[0, 0])
        assert per_day[0, 1] == pytest.approx(0.5)

    def test_peaks_and_valleys_detection(self):
        # Clear peak in the 8-16 h window every day.
        day = np.full(SLOTS_PER_DAY, 0.1)
        day[8 * SLOTS_PER_HOUR:16 * SLOTS_PER_HOUR] = 0.7
        series = UtilizationSeries(np.tile(day, 2), start_slot=0)
        result = series.daily_peaks_and_valleys(TimeWindowConfig(8))
        assert len(result) == 2
        for _day, peaks, valleys in result:
            assert peaks == [1]
            assert 1 not in valleys and valleys

    def test_flat_series_has_no_peaks(self):
        series = UtilizationSeries(np.full(SLOTS_PER_DAY, 0.4), start_slot=0)
        result = series.daily_peaks_and_valleys(TimeWindowConfig(8))
        assert result[0][1] == [] and result[0][2] == []

    def test_peak_consistency_zero_for_identical_days(self):
        day = np.clip(np.sin(np.linspace(0, 3, SLOTS_PER_DAY)) * 0.4 + 0.4, 0, 1)
        series = UtilizationSeries(np.tile(day, 3), start_slot=0)
        diffs = series.peak_consistency(TimeWindowConfig(6))
        assert diffs.size > 0
        assert np.all(diffs < 1e-9)

    def test_downsample_max(self):
        series = UtilizationSeries([0.1, 0.9, 0.2, 0.4], start_slot=0)
        down = series.downsample_max(2)
        assert len(down) == 2
        assert down.values[0] == pytest.approx(0.9)
        assert down.values[1] == pytest.approx(0.4)

    def test_downsample_max_misaligned_start_keeps_group_alignment(self):
        """A series starting mid-group must aggregate into the containing
        absolute groups, not shift every group by ``start_slot % factor``."""
        series = UtilizationSeries([0.1, 0.9, 0.2, 0.4], start_slot=1)
        down = series.downsample_max(2)
        # Absolute groups: [0, 2) sees slot 1 only, [2, 4) sees slots 2-3,
        # [4, 6) sees slot 4 only.
        assert down.start_slot == 0
        assert len(down) == 3
        assert down.values[0] == pytest.approx(0.1)
        assert down.values[1] == pytest.approx(0.9)
        assert down.values[2] == pytest.approx(0.4)

    def test_downsample_max_aligned_start_scales_start_slot(self):
        series = UtilizationSeries([0.3, 0.7, 0.5, 0.1], start_slot=4)
        down = series.downsample_max(2)
        assert down.start_slot == 2
        assert down.values.tolist() == [pytest.approx(0.7), pytest.approx(0.5)]

    def test_slice_absolute_clipping(self):
        series = UtilizationSeries([0.1, 0.2, 0.3], start_slot=100)
        assert series.slice_absolute(0, 101).tolist() == [0.1]
        assert series.slice_absolute(102, 200).tolist() == [pytest.approx(0.3)]
        assert series.slice_absolute(200, 300).size == 0


def test_slot_conversions():
    assert slots_for_hours(1) == SLOTS_PER_HOUR
    assert slots_for_days(2) == 2 * SLOTS_PER_DAY


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=400),
       start=st.integers(min_value=0, max_value=SLOTS_PER_DAY))
def test_percentile_bounded_by_min_max(values, start):
    series = UtilizationSeries(values, start_slot=start)
    p95 = series.percentile(95)
    assert series.minimum() - 1e-12 <= p95 <= series.maximum() + 1e-12


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1.0),
                       min_size=SLOTS_PER_DAY, max_size=SLOTS_PER_DAY))
def test_lifetime_window_max_dominates_window_percentiles(values):
    series = UtilizationSeries(values, start_slot=0)
    config = TimeWindowConfig(4)
    maxima = series.lifetime_window_max(config)
    p95 = series.lifetime_window_percentile(config, 95)
    mask = ~np.isnan(maxima)
    assert np.all(maxima[mask] + 1e-9 >= p95[mask])
