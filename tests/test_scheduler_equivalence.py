"""Equivalence of the vectorized scheduler and the per-server reference loop.

The matrix-form :class:`ClusterScheduler` must reproduce the seed best-fit
logic decision for decision: same accept/reject sequence and the same server
for every accepted VM, across random workloads with interleaved departures.
"""

import numpy as np
import pytest

from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import ClusterScheduler, ReferenceLoopScheduler
from repro.core.windows import plan_vm
from repro.prediction.utilization_model import WindowUtilizationPrediction
from repro.trace.hardware import ClusterConfig
from repro.trace.timeseries import TimeWindowConfig

WINDOWS = TimeWindowConfig(4)

MIXED_CLUSTER = ClusterConfig(
    "EQ", "test", (("gen4-intel", 3), ("gen6-amd", 2), ("gen5-intel", 2)))


def random_plan(rng, vm_id, windows=WINDOWS):
    """A VM plan with random per-window utilization and random size."""
    n = windows.windows_per_day
    maximum = {r: rng.uniform(0.1, 1.0, n) for r in ALL_RESOURCES}
    percentile = {r: np.minimum(maximum[r], rng.uniform(0.05, 0.9, n))
                  for r in ALL_RESOURCES}
    prediction = WindowUtilizationPrediction(
        windows=windows, percentile=percentile, maximum=maximum)
    cores = float(rng.choice([1, 2, 2, 4, 4, 8, 16]))
    allocation = {Resource.CPU: cores,
                  Resource.MEMORY: cores * float(rng.choice([2, 4, 8])),
                  Resource.NETWORK: min(0.5 * cores, 16.0),
                  Resource.SSD: 32.0 * cores}
    return plan_vm(vm_id, allocation, prediction,
                   oversubscribe=bool(rng.random() < 0.7))


@pytest.mark.parametrize("seed", [0, 7, 2024])
@pytest.mark.parametrize("conservative", [True, False])
def test_vectorized_matches_reference_loop(seed, conservative):
    """Same decisions on a random arrival/departure sequence, both checks."""
    rng = np.random.default_rng(seed)
    vectorized = ClusterScheduler(MIXED_CLUSTER, WINDOWS, conservative=conservative)
    reference = ReferenceLoopScheduler(MIXED_CLUSTER, WINDOWS, conservative=conservative)

    live = []
    accepted = rejected = 0
    for i in range(300):
        plan = random_plan(rng, f"vm-{i}")
        vec_decision = vectorized.place(plan)
        ref_decision = reference.place(plan)
        assert vec_decision.accepted == ref_decision.accepted, plan.vm_id
        assert vec_decision.server_id == ref_decision.server_id, plan.vm_id
        if vec_decision.accepted:
            accepted += 1
            live.append(plan.vm_id)
        else:
            rejected += 1
        # Interleave departures so both schedulers churn through commit and
        # release, not just a monotone fill.
        if live and rng.random() < 0.3:
            victim = live.pop(int(rng.integers(len(live))))
            vectorized.deallocate(victim)
            reference.deallocate(victim)

    # The workload must exercise both outcomes for the equivalence to mean much.
    assert accepted > 0 and rejected > 0
    assert vectorized.accepted_count() == accepted
    assert vectorized.rejected_count() == rejected
    # Final per-server occupancy agrees as well.
    for server_id, account in vectorized.servers.items():
        assert set(account.plans) == set(reference.servers[server_id].plans)


def test_vectorized_matches_reference_per_server_state():
    """After identical workloads, ledger rows equal the reference accounts."""
    rng = np.random.default_rng(99)
    vectorized = ClusterScheduler(MIXED_CLUSTER, WINDOWS)
    reference = ReferenceLoopScheduler(MIXED_CLUSTER, WINDOWS)
    for i in range(120):
        plan = random_plan(rng, f"vm-{i}")
        vectorized.place(plan)
        reference.place(plan)
    for server_id, account in vectorized.servers.items():
        ref_account = reference.servers[server_id]
        assert account.pa_memory_gb == pytest.approx(ref_account.pa_memory_gb)
        np.testing.assert_array_equal(account.va_window_demand,
                                      ref_account.va_window_demand)
        for resource in ALL_RESOURCES:
            np.testing.assert_array_equal(account.window_demand[resource],
                                          ref_account.window_demand[resource])
