"""Equivalence of the vectorized scheduler and the per-server reference loop.

The matrix-form :class:`ClusterScheduler` must reproduce the seed best-fit
logic decision for decision: same accept/reject sequence and the same server
for every accepted VM, across random workloads with interleaved departures.
"""

import numpy as np
import pytest

from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import ClusterScheduler, ReferenceLoopScheduler
from repro.core.windows import plan_vm
from repro.prediction.utilization_model import WindowUtilizationPrediction
from repro.trace.hardware import ClusterConfig
from repro.trace.timeseries import TimeWindowConfig

WINDOWS = TimeWindowConfig(4)

MIXED_CLUSTER = ClusterConfig(
    "EQ", "test", (("gen4-intel", 3), ("gen6-amd", 2), ("gen5-intel", 2)))


def random_plan(rng, vm_id, windows=WINDOWS):
    """A VM plan with random per-window utilization and random size."""
    n = windows.windows_per_day
    maximum = {r: rng.uniform(0.1, 1.0, n) for r in ALL_RESOURCES}
    percentile = {r: np.minimum(maximum[r], rng.uniform(0.05, 0.9, n))
                  for r in ALL_RESOURCES}
    prediction = WindowUtilizationPrediction(
        windows=windows, percentile=percentile, maximum=maximum)
    cores = float(rng.choice([1, 2, 2, 4, 4, 8, 16]))
    allocation = {Resource.CPU: cores,
                  Resource.MEMORY: cores * float(rng.choice([2, 4, 8])),
                  Resource.NETWORK: min(0.5 * cores, 16.0),
                  Resource.SSD: 32.0 * cores}
    return plan_vm(vm_id, allocation, prediction,
                   oversubscribe=bool(rng.random() < 0.7))


@pytest.mark.parametrize("seed", [0, 7, 2024])
@pytest.mark.parametrize("conservative", [True, False])
def test_vectorized_matches_reference_loop(seed, conservative):
    """Same decisions on a random arrival/departure sequence, both checks."""
    rng = np.random.default_rng(seed)
    vectorized = ClusterScheduler(MIXED_CLUSTER, WINDOWS, conservative=conservative)
    reference = ReferenceLoopScheduler(MIXED_CLUSTER, WINDOWS, conservative=conservative)

    live = []
    accepted = rejected = 0
    for i in range(300):
        plan = random_plan(rng, f"vm-{i}")
        vec_decision = vectorized.place(plan)
        ref_decision = reference.place(plan)
        assert vec_decision.accepted == ref_decision.accepted, plan.vm_id
        assert vec_decision.server_id == ref_decision.server_id, plan.vm_id
        if vec_decision.accepted:
            accepted += 1
            live.append(plan.vm_id)
        else:
            rejected += 1
        # Interleave departures so both schedulers churn through commit and
        # release, not just a monotone fill.
        if live and rng.random() < 0.3:
            victim = live.pop(int(rng.integers(len(live))))
            vectorized.deallocate(victim)
            reference.deallocate(victim)

    # The workload must exercise both outcomes for the equivalence to mean much.
    assert accepted > 0 and rejected > 0
    assert vectorized.accepted_count() == accepted
    assert vectorized.rejected_count() == rejected
    # Final per-server occupancy agrees as well.
    for server_id, account in vectorized.servers.items():
        assert set(account.plans) == set(reference.servers[server_id].plans)


def test_vectorized_matches_reference_per_server_state():
    """After identical workloads, ledger rows equal the reference accounts."""
    rng = np.random.default_rng(99)
    vectorized = ClusterScheduler(MIXED_CLUSTER, WINDOWS)
    reference = ReferenceLoopScheduler(MIXED_CLUSTER, WINDOWS)
    for i in range(120):
        plan = random_plan(rng, f"vm-{i}")
        vectorized.place(plan)
        reference.place(plan)
    for server_id, account in vectorized.servers.items():
        ref_account = reference.servers[server_id]
        assert account.pa_memory_gb == pytest.approx(ref_account.pa_memory_gb)
        np.testing.assert_array_equal(account.va_window_demand,
                                      ref_account.va_window_demand)
        for resource in ALL_RESOURCES:
            np.testing.assert_array_equal(account.window_demand[resource],
                                          ref_account.window_demand[resource])


# ---------------------------------------------------------------------- #
# Class-aware admission (reserved preempts spot) -- differential twins
# ---------------------------------------------------------------------- #
from repro.trace.vm import AllocationClass  # noqa: E402

_CLASSES = (AllocationClass.RESERVED, AllocationClass.ON_DEMAND,
            AllocationClass.SPOT, AllocationClass.BURSTABLE)
_CLASS_PROBS = (0.3, 0.2, 0.4, 0.1)


def random_class(rng):
    return _CLASSES[int(rng.choice(len(_CLASSES), p=_CLASS_PROBS))]


@pytest.mark.parametrize("seed", [1, 11, 2025])
def test_class_aware_matches_reference_loop(seed):
    """Identical decisions AND identical eviction lists under preemption."""
    rng = np.random.default_rng(seed)
    vectorized = ClusterScheduler(MIXED_CLUSTER, WINDOWS, class_aware=True)
    reference = ReferenceLoopScheduler(MIXED_CLUSTER, WINDOWS, class_aware=True)

    live = []
    preemptions = 0
    rejected_with_evictions = 0
    for i in range(400):
        plan = random_plan(rng, f"vm-{i}")
        allocation_class = random_class(rng)
        vec = vectorized.place(plan, allocation_class=allocation_class)
        ref = reference.place(plan, allocation_class=allocation_class)
        assert vec.accepted == ref.accepted, plan.vm_id
        assert vec.server_id == ref.server_id, plan.vm_id
        # Preemption order is part of the contract: oldest surviving spot
        # VM first, re-searching after every eviction.
        assert vec.preempted == ref.preempted, plan.vm_id
        preemptions += len(vec.preempted)
        if not vec.accepted and vec.preempted:
            rejected_with_evictions += 1
        for victim in vec.preempted:
            if victim in live:
                live.remove(victim)
        if vec.accepted:
            live.append(plan.vm_id)
        if live and rng.random() < 0.25:
            victim = live.pop(int(rng.integers(len(live))))
            vectorized.deallocate(victim)
            reference.deallocate(victim)

    # The workload must actually exercise the preemption machinery.
    assert preemptions > 0
    for server_id, account in vectorized.servers.items():
        assert set(account.plans) == set(reference.servers[server_id].plans)


def test_reserved_rejection_keeps_evictions_in_order():
    """A reserved arrival too big for the cluster still evicts every spot
    VM (oldest first) before rejecting -- identically in both twins."""
    rng = np.random.default_rng(5)
    small = ClusterConfig("EQ1", "test", (("gen4-intel", 1),))
    vectorized = ClusterScheduler(small, WINDOWS, class_aware=True)
    reference = ReferenceLoopScheduler(small, WINDOWS, class_aware=True)

    spot_ids = []
    for i in range(100):
        plan = random_plan(rng, f"spot-{i}")
        vec = vectorized.place(plan, allocation_class=AllocationClass.SPOT)
        ref = reference.place(plan, allocation_class=AllocationClass.SPOT)
        assert vec.accepted == ref.accepted
        if vec.accepted:
            spot_ids.append(plan.vm_id)
    assert len(spot_ids) >= 2

    # An impossible reserved request: bigger than the whole server.
    n = WINDOWS.windows_per_day
    ones = {r: np.ones(n) for r in ALL_RESOURCES}
    prediction = WindowUtilizationPrediction(
        windows=WINDOWS, percentile=ones, maximum=ones)
    huge = plan_vm("huge", {Resource.CPU: 4096.0, Resource.MEMORY: 65536.0,
                            Resource.NETWORK: 1000.0, Resource.SSD: 1e6},
                   prediction, oversubscribe=False)
    vec = vectorized.place(huge, allocation_class=AllocationClass.RESERVED)
    ref = reference.place(huge, allocation_class=AllocationClass.RESERVED)
    assert not vec.accepted and not ref.accepted
    # Evictions stand on rejection, in acceptance (FIFO) order.
    assert vec.preempted == tuple(spot_ids)
    assert ref.preempted == tuple(spot_ids)
    assert vectorized.servers_in_use() == 0


def test_class_aware_flag_without_class_is_class_blind():
    """place() without an allocation class draws the classic decisions even
    on a class-aware scheduler: class-awareness is strictly opt-in."""
    rng = np.random.default_rng(17)
    plans = [random_plan(rng, f"vm-{i}") for i in range(150)]
    blind = ClusterScheduler(MIXED_CLUSTER, WINDOWS)
    aware = ClusterScheduler(MIXED_CLUSTER, WINDOWS, class_aware=True)
    for plan in plans:
        expected = blind.place(plan)
        actual = aware.place(plan)
        assert (actual.accepted, actual.server_id, actual.preempted) == \
            (expected.accepted, expected.server_id, expected.preempted)


# ---------------------------------------------------------------------- #
# Failure injection (disable_server) -- differential twins
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [3, 42])
def test_drain_during_saturation_matches_reference_loop(seed):
    """Disabling servers mid-churn (with forced re-placement of their
    residents) keeps the vectorized scheduler decision-identical."""
    rng = np.random.default_rng(seed)
    vectorized = ClusterScheduler(MIXED_CLUSTER, WINDOWS)
    reference = ReferenceLoopScheduler(MIXED_CLUSTER, WINDOWS)
    server_ids = list(vectorized.servers)

    plans = {}
    residents = {server_id: [] for server_id in server_ids}
    disabled = []
    redirected = 0
    for i in range(300):
        plan = random_plan(rng, f"vm-{i}")
        plans[plan.vm_id] = plan
        vec = vectorized.place(plan)
        ref = reference.place(plan)
        assert (vec.accepted, vec.server_id) == (ref.accepted, ref.server_id)
        if vec.accepted:
            assert vec.server_id not in disabled
            if disabled:
                redirected += 1
            residents[vec.server_id].append(plan.vm_id)
        # Interleaved departures keep capacity churning so evacuees and
        # post-drain arrivals have somewhere to land.
        if rng.random() < 0.25:
            alive = [vm_id for ids in residents.values() for vm_id in ids]
            if alive:
                victim = alive[int(rng.integers(len(alive)))]
                vectorized.deallocate(victim)
                reference.deallocate(victim)
                for ids in residents.values():
                    if victim in ids:
                        ids.remove(victim)
                        break
        if i in (120, 200) and len(disabled) < len(server_ids) - 1:
            # Drain: evacuate residents, disable, re-place the evacuees
            # through normal admission -- mirrored on both schedulers.
            victim_server = server_ids[len(disabled)]
            evacuees = residents.pop(victim_server)
            for vm_id in evacuees:
                vectorized.deallocate(vm_id)
                reference.deallocate(vm_id)
            vectorized.disable_server(victim_server)
            reference.disable_server(victim_server)
            disabled.append(victim_server)
            for vm_id in evacuees:
                vec = vectorized.place(plans[vm_id])
                ref = reference.place(plans[vm_id])
                assert (vec.accepted, vec.server_id) == \
                    (ref.accepted, ref.server_id)
                if vec.accepted:
                    assert vec.server_id not in disabled
                    residents[vec.server_id].append(vm_id)
                    redirected += 1

    assert disabled and redirected > 0
    for server_id in disabled:
        assert len(vectorized.servers[server_id].plans) == 0
    for server_id, account in vectorized.servers.items():
        assert set(account.plans) == set(reference.servers[server_id].plans)


@pytest.mark.parametrize("incremental", [True, False])
def test_disabled_server_never_wins(incremental):
    """An empty disabled server is skipped by every best-fit path."""
    rng = np.random.default_rng(8)
    scheduler = ClusterScheduler(MIXED_CLUSTER, WINDOWS,
                                 incremental=incremental)
    target = next(iter(scheduler.servers))
    scheduler.disable_server(target)
    for i in range(60):
        decision = scheduler.place(random_plan(rng, f"vm-{i}"))
        if decision.accepted:
            assert decision.server_id != target
    assert len(scheduler.servers[target].plans) == 0
