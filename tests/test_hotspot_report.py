"""The hotspot report: per-server breakdowns surfaced per cluster.

`ViolationStats` has recorded per-server observed/violation counts since
PR 2; `hotspot_report` turns them into the mitigation-facing view (worst
servers first, per-cluster violation-rate CDFs).  The structure is pinned
on hand-built stats so the ranking and grouping rules cannot drift, plus
one integration pass over a real simulation result.
"""

import pytest

from repro.core.policy import COACH_POLICY
from repro.experiments.figures import hotspot_report
from repro.simulator import SimulationConfig, ViolationStats, simulate_policy


@pytest.fixture()
def stats():
    return ViolationStats.from_counts(
        per_server_observed={"C1-s000": 100, "C1-s001": 200, "C2-s000": 50,
                             "C2-s001": 100},
        per_server_cpu_violations={"C1-s000": 10, "C1-s001": 5, "C2-s000": 25,
                                   "C2-s001": 0},
        per_server_memory_violations={"C1-s000": 10, "C1-s001": 0,
                                      "C2-s000": 0, "C2-s001": 1},
    )


class TestHotspotReport:
    def test_hotspots_ranked_worst_first(self, stats):
        report = hotspot_report(stats)
        rates = [row["violation_rate"] for row in report["hotspots"]]
        assert rates == sorted(rates, reverse=True)
        # C2-s000: 25/50 = 0.5 is the worst server.
        worst = report["hotspots"][0]
        assert worst["server_id"] == "C2-s000"
        assert worst["cluster_id"] == "C2"
        assert worst["violation_rate"] == pytest.approx(0.5)
        assert report["n_servers"] == 4

    def test_top_n_truncates(self, stats):
        report = hotspot_report(stats, top_n=2)
        assert len(report["hotspots"]) == 2
        # Truncation only limits the table; cluster stats stay complete.
        assert report["n_servers"] == 4
        assert sum(c["n_servers"] for c in report["per_cluster"].values()) == 4

    def test_per_cluster_cdf(self, stats):
        report = hotspot_report(stats)
        assert sorted(report["per_cluster"]) == ["C1", "C2"]
        c1 = report["per_cluster"]["C1"]
        assert c1["n_servers"] == 2
        assert c1["observed_slots"] == 300
        assert c1["cpu_violation_slots"] == 15
        assert c1["memory_violation_slots"] == 10
        assert c1["violation_rate"] == sorted(c1["violation_rate"])
        assert c1["cdf"] == [0.5, 1.0]
        c2 = report["per_cluster"]["C2"]
        assert c2["violation_rate"] == pytest.approx([0.01, 0.5])

    def test_rate_is_a_pressure_score_not_a_fraction(self):
        """A slot violating both resources counts twice (documented): the
        rate is cpu+mem pressure over observed slots and may exceed 1."""
        both = ViolationStats.from_counts(
            {"C1-s000": 10}, {"C1-s000": 10}, {"C1-s000": 10})
        report = hotspot_report(both)
        assert report["hotspots"][0]["violation_rate"] == pytest.approx(2.0)

    def test_zero_observed_servers_ok(self):
        report = hotspot_report(ViolationStats.from_counts({}, {}, {}))
        assert report["n_servers"] == 0
        assert report["hotspots"] == []
        assert report["per_cluster"] == {}

    def test_integration_with_simulation(self, tiny_trace):
        evaluation = simulate_policy(
            tiny_trace, COACH_POLICY,
            SimulationConfig(clusters=tiny_trace.cluster_ids()[:2],
                             n_estimators=2))
        report = hotspot_report(evaluation.violations, top_n=3)
        assert report["n_servers"] == len(
            evaluation.violations.per_server_observed)
        total_cpu = sum(c["cpu_violation_slots"]
                        for c in report["per_cluster"].values())
        assert total_cpu == evaluation.violations.cpu_violation_slots
        for row in report["hotspots"]:
            assert row["server_id"].startswith(row["cluster_id"])
