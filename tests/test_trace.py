"""Tests for the trace substrate: generation, records, and statistics."""

import numpy as np
import pytest

from repro.core.resources import ALL_RESOURCES, Resource
from repro.trace import (
    HARDWARE_GENERATIONS,
    TYPICAL_VM_CONFIG,
    VM_CATALOG,
    TraceGenerator,
    TraceGeneratorConfig,
    default_clusters,
    generate_trace,
)
from repro.trace.patterns import (
    ARCHETYPES,
    archetype_defaults,
    generate_resource_patterns,
    generate_series,
    jitter_parameters,
    make_subscription_profile,
)
from repro.trace.timeseries import SLOTS_PER_DAY
from repro.trace.vm import VMRecord


class TestHardware:
    def test_ten_default_clusters(self):
        clusters = default_clusters()
        assert len(clusters) == 10
        assert [c.cluster_id for c in clusters] == [f"C{i}" for i in range(1, 11)]

    def test_cluster_hardware_heterogeneity(self):
        clusters = {c.cluster_id: c for c in default_clusters()}
        # C1 is memory-rich (CPU bottleneck), C4 is core-rich (memory bottleneck).
        assert clusters["C1"].dominant_gb_per_core() > clusters["C4"].dominant_gb_per_core()

    def test_generation_capacity_vectors(self):
        for config in HARDWARE_GENERATIONS.values():
            capacity = config.capacity_vector()
            assert capacity[Resource.CPU] == config.cores
            assert capacity[Resource.MEMORY] == config.memory_gb


class TestVMCatalog:
    def test_typical_vm_is_4gb_per_core(self):
        assert TYPICAL_VM_CONFIG.gb_per_core == pytest.approx(4.0)

    def test_catalog_families(self):
        families = {cfg.family for cfg in VM_CATALOG.values()}
        assert families == {"general-purpose", "memory-optimized", "compute-optimized"}

    def test_memory_optimized_has_more_memory_per_core(self):
        assert VM_CATALOG["E8_v5"].gb_per_core > VM_CATALOG["D8_v5"].gb_per_core


class TestPatterns:
    def test_all_archetypes_have_defaults(self):
        for archetype in ARCHETYPES:
            params = archetype_defaults(archetype)
            assert 0 < params.base <= 1
            assert 0 < params.peak <= 1

    def test_unknown_archetype_rejected(self):
        with pytest.raises(ValueError):
            archetype_defaults("quantum")

    def test_generated_series_in_range(self):
        rng = np.random.default_rng(0)
        params = archetype_defaults("diurnal")
        values = generate_series(params, 2 * SLOTS_PER_DAY, 0, rng)
        assert values.shape == (2 * SLOTS_PER_DAY,)
        assert np.all(values >= 0) and np.all(values <= 1)

    def test_diurnal_pattern_peaks_in_daytime(self):
        rng = np.random.default_rng(1)
        params = archetype_defaults("diurnal")
        values = generate_series(params, SLOTS_PER_DAY, 0, rng)
        day_window = values[12 * 12:16 * 12]     # 12:00-16:00
        night_window = values[0:4 * 12]          # 00:00-04:00
        assert day_window.mean() > night_window.mean()

    def test_memory_pattern_less_variable_than_cpu(self):
        rng = np.random.default_rng(2)
        cpu = archetype_defaults("diurnal")
        per_resource = generate_resource_patterns(cpu, rng)
        cpu_swing = per_resource[Resource.CPU].peak - per_resource[Resource.CPU].base
        mem_swing = per_resource[Resource.MEMORY].peak - per_resource[Resource.MEMORY].base
        assert mem_swing <= cpu_swing + 1e-9

    def test_jitter_stays_in_valid_ranges(self):
        rng = np.random.default_rng(3)
        params = archetype_defaults("bursty")
        for _ in range(20):
            jittered = jitter_parameters(params, rng)
            assert 0 < jittered.base <= 1
            assert 0 < jittered.peak <= 1
            assert 0 <= jittered.noise <= 0.3

    def test_subscription_profile_round_trip(self):
        rng = np.random.default_rng(4)
        profile = make_subscription_profile("nocturnal", rng)
        assert profile.archetype == "nocturnal"
        assert 0.2 <= profile.vm_jitter <= 0.5


class TestTraceGeneration:
    def test_trace_validates(self, small_trace):
        small_trace.validate()
        assert len(small_trace) == 250

    def test_long_running_vms_dominate_resource_hours(self, small_trace):
        summary = small_trace.summary()
        assert 0.15 <= summary["fraction_long_running"] <= 0.45
        assert summary["fraction_core_hours_long_running"] > 0.85

    def test_every_vm_has_all_resource_series(self, small_trace):
        for vm in small_trace:
            assert vm.has_utilization()
            for resource in ALL_RESOURCES:
                assert len(vm.series(resource)) == vm.lifetime_slots

    def test_reproducible_with_same_seed(self):
        config = TraceGeneratorConfig(n_vms=30, n_days=3, seed=42, n_subscriptions=10)
        a = TraceGenerator(config).generate()
        b = TraceGenerator(config).generate()
        assert [vm.vm_id for vm in a] == [vm.vm_id for vm in b]
        assert [vm.config.name for vm in a] == [vm.config.name for vm in b]
        np.testing.assert_allclose(a.vms[0].series(Resource.CPU).values,
                                   b.vms[0].series(Resource.CPU).values)

    def test_different_seed_differs(self):
        a = generate_trace(n_vms=30, n_days=3, seed=1, n_subscriptions=10)
        b = generate_trace(n_vms=30, n_days=3, seed=2, n_subscriptions=10)
        assert [vm.config.name for vm in a] != [vm.config.name for vm in b]

    def test_subscriptions_are_sticky_to_clusters(self, small_trace):
        by_sub = small_trace.by_subscription()
        for vms in by_sub.values():
            clusters = {vm.cluster_id for vm in vms}
            assert len(clusters) <= 3

    def test_cpu_utilization_mostly_below_50(self, small_trace):
        means = [vm.mean_utilization(Resource.CPU) for vm in small_trace.long_running()]
        assert np.mean(np.array(means) < 0.5) > 0.7

    def test_memory_range_narrower_than_cpu(self, small_trace):
        lr = small_trace.long_running().vms
        cpu = np.median([vm.series(Resource.CPU).utilization_range() for vm in lr])
        mem = np.median([vm.series(Resource.MEMORY).utilization_range() for vm in lr])
        assert mem < cpu


class TestTraceContainer:
    def test_filtering_by_cluster(self, small_trace):
        cluster = small_trace.cluster_ids()[0]
        sub = small_trace.in_cluster(cluster)
        assert all(vm.cluster_id == cluster for vm in sub)

    def test_split_at_partitions_vms(self, small_trace):
        split = 7 * SLOTS_PER_DAY
        before, after = small_trace.split_at(split)
        assert len(before) + len(after) == len(small_trace)
        assert all(vm.start_slot < split for vm in before)
        assert all(vm.start_slot >= split for vm in after)

    def test_alive_at(self, small_trace):
        vm = small_trace.vms[0]
        mid = (vm.start_slot + vm.end_slot) // 2
        assert vm in small_trace.alive_at(mid)

    def test_aggregate_demand_shape(self, tiny_trace):
        demand = tiny_trace.aggregate_demand(Resource.CPU)
        assert demand.shape == (tiny_trace.n_slots,)
        assert np.all(demand >= 0)

    def test_vm_by_id_missing_raises(self, tiny_trace):
        with pytest.raises(KeyError):
            tiny_trace.vm_by_id("vm-does-not-exist")

    def test_resource_hours_positive(self, tiny_trace):
        assert tiny_trace.total_resource_hours(Resource.MEMORY) > 0


class TestVMRecord:
    def test_invalid_lifetime_rejected(self):
        with pytest.raises(ValueError):
            VMRecord(vm_id="x", subscription_id="s", config=TYPICAL_VM_CONFIG,
                     cluster_id="C1", start_slot=10, end_slot=10)

    def test_demand_outside_lifetime_is_zero(self, long_running_vm):
        assert long_running_vm.demand_at(Resource.CPU, long_running_vm.end_slot + 5) == 0.0

    def test_demand_vector_scales_with_allocation(self, long_running_vm):
        slot = long_running_vm.start_slot
        vec = long_running_vm.demand_vector_at(slot)
        for resource in ALL_RESOURCES:
            assert 0 <= vec[resource] <= long_running_vm.allocated(resource) + 1e-9

    def test_creation_weekday_in_range(self, small_trace):
        for vm in small_trace.vms[:50]:
            assert 0 <= vm.creation_weekday <= 6
